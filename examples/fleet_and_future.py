"""Sec. VII forward-looking studies: fleet TCO, edge offload, hourly RPR.

The paper's conclusion sketches three future directions — a comprehensive
TCO model, accelerator-level parallelism across edge/cloud, and RPR for
infrequent tasks.  This example runs all three as implemented here.

Usage::

    python examples/fleet_and_future.py
"""

from repro.core import calibration
from repro.core.fleet import FleetTcoModel, paper_compute_tiers
from repro.core.latency_model import LatencyModel
from repro.hw.offload import (
    avoidance_range_with_offload,
    cloud_datacenter,
    edge_server,
    offload_plan,
)
from repro.hw.rpr import hourly_task_swap_overhead


def fleet_tco() -> None:
    print("=== Fleet TCO: cost vs latency (Sec. VII) ===")
    model = FleetTcoModel(fleet_size=10)
    print(f"{'tier':<17} {'Tcomp':>7} {'unit $':>8} {'power':>7} "
          f"{'safe':>5} {'trips/d':>8} {'profit $/d':>11}")
    for tier, profit in model.compare_tiers():
        safe = model.is_safe(tier)
        trips = model.trips_per_vehicle_day(tier) if safe else 0.0
        profit_str = f"{profit:11.2f}" if safe else "   UNSAFE  "
        print(f"{tier.name:<17} {tier.mean_tcomp_s*1e3:5.0f}ms "
              f"{tier.unit_cost_usd:>8,.0f} {tier.power_w:>6.0f}W "
              f"{str(safe):>5} {trips:>8.1f} {profit_str}")
    best = model.best_tier()
    print(f"-> profit-optimal safe tier: {best.name}")


def edge_cloud_offload() -> None:
    print("\n=== Edge/cloud offload (accelerator-level parallelism) ===")
    print(f"{'task':<14} {'local':>8} {'venue':>7} {'mean':>8} {'p99':>8} "
          f"{'worthwhile':>11}")
    for decision in offload_plan(seed=0):
        print(f"{decision.task:<14} {decision.local_latency_s*1e3:6.1f}ms "
              f"{decision.target:>7} {decision.offloaded_mean_s*1e3:6.1f}ms "
              f"{decision.offloaded_p99_s*1e3:6.1f}ms "
              f"{str(decision.worthwhile):>11}")
    # Safety view: what offloading detection does to avoidance range.
    from repro.hw.offload import evaluate_offload

    decision = evaluate_offload("detection", 0.070, edge_server(), seed=0)
    other = calibration.MEAN_COMPUTING_LATENCY_S - 0.070
    mean_reach, tail_reach = avoidance_range_with_offload(decision, other)
    local_reach = LatencyModel().min_avoidable_distance_m(
        calibration.MEAN_COMPUTING_LATENCY_S
    )
    print(f"\navoidance range, detection offloaded to edge: "
          f"mean {mean_reach:.2f} m, p99 {tail_reach:.2f} m "
          f"(all-local: {local_reach:.2f} m)")
    print("-> the network tail is a safety budget item, not just a mean")


def rpr_infrequent_tasks() -> None:
    print("\n=== RPR for infrequent tasks (hourly compression upload) ===")
    result = hourly_task_swap_overhead(operating_hours=10.0)
    print(f"swaps per day: {int(result['uses']) * 2} "
          f"(task in + resident accel back, once per hour)")
    print(f"total swap delay:  {result['total_swap_delay_s']*1e3:.1f} ms/day")
    print(f"total swap energy: {result['total_swap_energy_j']*1e3:.1f} mJ/day")
    print(f"always-resident static energy: "
          f"{result['resident_static_energy_j']/1e3:.1f} kJ/day")
    print(f"-> time-sharing saves {result['energy_saving_ratio']:,.0f}x "
          f"the energy of a resident block")


if __name__ == "__main__":
    fleet_tco()
    edge_cloud_offload()
    rpr_infrequent_tasks()
