"""Procedural scenario tour: generate, inspect, drive, and sweep.

Samples a handful of procedurally generated scenes from the default
``ProcGenSpace`` — straight corridors, narrowing gaps, T- and 4-way
intersections with intent-driven carts, platoons, occluded crossings,
and cyclists — shows their structure, proves bit-identical regeneration,
drives one closed-loop, sweeps a small generated campaign through the
fleet engine with the invariant harness, composes a generated scene with
chaos fault draws, and finishes with the Eq. 2 mission-range frontier.

Every violation the harness prints carries a replay one-liner; paste it
back here to re-run that single generated cell serially, optionally
exporting a Perfetto trace of the failing drive::

    python examples/procgen_matrix.py --cell-id procgen:0:17:i1 \
        [--trace out.json]

Usage::

    python examples/procgen_matrix.py [generator_seed] [n_cells]
    python examples/procgen_matrix.py --cell-id <id> [--trace PATH]
"""

import sys

from repro.fleetops.campaign import procgen_summary, run_procgen_campaign
from repro.fleetops.supervisor import FleetConfig
from repro.robustness.chaos import ChaosConfig, run_chaos_campaign
from repro.scene.corridors import make_corridor_sov
from repro.scene.procgen import (
    DEFAULT_SPACE,
    MissionSpec,
    evaluate_mission,
    scene_checksum,
    scene_fingerprint,
)


def replay_main(argv) -> None:
    """The ``--cell-id`` path: re-run one named cell and exit."""
    from repro.triage.replay import replay_cell

    cell_id = argv[argv.index("--cell-id") + 1]
    trace = (
        argv[argv.index("--trace") + 1] if "--trace" in argv else None
    )
    result = replay_cell(cell_id, trace_path=trace)
    sys.exit(1 if getattr(result.record, "violations", ()) else 0)


def main() -> None:
    if "--cell-id" in sys.argv[1:]:
        replay_main(sys.argv[1:])
    args = [int(a) for a in sys.argv[1:]]
    generator_seed = args[0] if args else 0
    n_cells = args[1] if len(args) > 1 else 8
    print(f"Procedural scenario generator — seed {generator_seed}")
    print("=" * 78)

    print("\n-- sampled scenes -----------------------------------------------")
    for index in range(n_cells):
        scene = DEFAULT_SPACE.sample(generator_seed, index)
        regen = DEFAULT_SPACE.sample(generator_seed, index)
        assert scene_fingerprint(scene) == scene_fingerprint(regen)
        tags = ["blocked"] if scene.blocked else []
        intents = ", ".join(scene.intents) or "no agents"
        suffix = f"  [{', '.join(tags)}]" if tags else ""
        print(
            f"  cell {index}: {scene.topology:<14} "
            f"{len(scene.world.obstacles)} obstacles, "
            f"{len(scene.world.agents)} agents ({intents}), "
            f"{scene.corridor_length_m:.0f} m, "
            f"crc {scene_checksum(scene):08x}{suffix}"
        )

    print("\n-- one cell closed-loop -----------------------------------------")
    scene = DEFAULT_SPACE.sample(generator_seed, 0)
    result = make_corridor_sov(scene, safety_net=True).drive(scene.duration_s)
    print(
        f"  {scene.name} cell 0: collided={result.collided} "
        f"final_mode={result.final_mode} "
        f"min_clearance={result.min_obstacle_clearance_m:.2f} m"
    )

    print("\n-- fleet campaign with invariant harness ------------------------")
    campaign = run_procgen_campaign(
        generator_seed=generator_seed,
        n_cells=n_cells,
        fleet=FleetConfig(n_workers=2, seed=generator_seed),
    )
    flat = procgen_summary(campaign)
    print(
        f"  {n_cells} cells: violations={flat['violations']:.0f} "
        f"collisions={flat['collision_rate']:.3f} "
        f"checks={flat['checks_run']:.0f} "
        f"campaign_crc={campaign.campaign_checksum:08x}"
    )
    print(f"  topologies: {campaign.topology_counts}")

    print("\n-- chaos over a generated scene ---------------------------------")
    envelope = run_chaos_campaign(
        ChaosConfig(
            n_drives=6,
            seed=generator_seed,
            safety_net=True,
            corridor="procgen:crossroads",
        )
    ).envelope
    print(
        f"  6 chaos drives through generated crossroads: "
        f"collision_rate={envelope.collision_rate:.3f} "
        f"safe_stop_rate={envelope.safe_stop_rate:.3f}"
    )

    print("\n-- Eq. 2 mission-range frontier ---------------------------------")
    for pad_w in (0.0, 100.0, 175.0, 300.0, 500.0):
        outcome = evaluate_mission(
            MissionSpec(
                name=f"frontier-{pad_w:g}",
                route_length_m=0.0,
                ad_power_w=pad_w,
            )
        )
        print(
            f"  AD load {pad_w:5.0f} W -> max feasible route "
            f"{outcome.limit_route_length_m / 1000.0:6.1f} km"
        )

    ok = flat["violations"] == 0 and not result.collided
    print("\nDone." if ok else "\nVIOLATIONS FOUND (see repro lines).")
    sys.exit(0 if ok else 1)


if __name__ == "__main__":
    main()
