"""Closed-loop obstacle gauntlet (paper Sec. III-A, IV, V-C).

Drives the full SoV — planner, CAN bus, ECU, mechanical latency, vehicle
dynamics, reactive path — through a set of safety scenarios and prints an
avoidance matrix: which obstacle distances each configuration survives.

Usage::

    python examples/obstacle_gauntlet.py
"""

from repro.core import LatencyModel
from repro.runtime import SovConfig, SystemsOnAVehicle, obstacle_ahead_scenario
from repro.scene.lanes import straight_corridor
from repro.scene.world import Agent, Obstacle, World
from repro.vehicle.dynamics import VehicleState


def avoidance_matrix() -> None:
    print("=== Avoidance matrix: obstacle surface distance x configuration ===")
    print("(o = avoided, X = collision; obstacle radius 0.4 m)")
    configurations = [
        ("reactive only (30 ms)", 0.030, True),
        ("proactive mean (164 ms)", 0.164, False),
        ("proactive + reactive", 0.164, True),
        ("proactive worst (740 ms)", 0.740, False),
    ]
    surfaces = [3.5, 4.2, 4.6, 5.2, 6.0, 8.0, 8.6]
    header = "  ".join(f"{s:>5.1f}m" for s in surfaces)
    print(f"{'configuration':<26} {header}")
    model = LatencyModel()
    for label, tcomp, reactive in configurations:
        cells = []
        for surface in surfaces:
            sov = obstacle_ahead_scenario(
                surface + 0.4,  # center distance
                computing_latency_s=tcomp,
                reactive_enabled=reactive,
            )
            result = sov.drive(4.5)
            cells.append("    o " if not result.collided else "    X ")
        print(f"{label:<26} {'  '.join(c.strip().rjust(5) for c in cells)}")
    print(f"\nanalytical anchors: braking floor {model.braking_distance_m:.1f} m, "
          f"reactive reach {model.min_avoidable_distance_m(0.030):.1f} m, "
          f"proactive reach {model.min_avoidable_distance_m(0.164):.1f} m")


def lane_change_demo() -> None:
    print("\n=== Two-lane corridor: swerving beats stopping ===")
    world = World(obstacles=[Obstacle(25.0, 0.0, 0.6)])
    sov = SystemsOnAVehicle(
        world=world,
        lane_map=straight_corridor(length_m=300.0, n_lanes=2),
        initial_state=VehicleState(speed_mps=5.6),
        config=SovConfig(seed=3),
    )
    result = sov.drive(8.0)
    print(f"collided: {result.collided}; distance covered: "
          f"{result.ops.distance_m:.1f} m; final speed: "
          f"{result.final_state.speed_mps:.1f} m/s")
    print(f"final lateral position: {result.final_state.y_m:.2f} m "
          f"(lane 1 is at y = 2.5 m)")


def pedestrian_demo() -> None:
    print("\n=== Crossing pedestrian ===")
    world = World(agents=[Agent(1, 25.0, -6.0, 0.0, 1.2)])
    sov = SystemsOnAVehicle(
        world=world,
        lane_map=straight_corridor(length_m=300.0, n_lanes=1),
        initial_state=VehicleState(speed_mps=5.6),
        config=SovConfig(seed=4),
    )
    result = sov.drive(8.0)
    print(f"collided: {result.collided}; reactive overrides: "
          f"{result.ops.reactive_overrides}; proactive fraction: "
          f"{result.ops.proactive_fraction:.0%}")


def latency_telemetry_demo() -> None:
    print("\n=== Latency telemetry from a clear-road drive ===")
    sov = SystemsOnAVehicle(
        world=World(),
        lane_map=straight_corridor(length_m=400.0, n_lanes=1),
        initial_state=VehicleState(speed_mps=5.6),
        config=SovConfig(seed=5),
    )
    result = sov.drive(10.0)
    summary = result.latency.summary()
    print(f"iterations: {result.latency.count}")
    print(f"best {summary['best_s']*1e3:.0f} ms | mean {summary['mean_s']*1e3:.0f} ms"
          f" | p99 {summary['p99_s']*1e3:.0f} ms | worst {summary['worst_s']*1e3:.0f} ms")
    for stage in ("sensing", "perception", "planning"):
        print(f"  {stage:<11} mean {result.latency.stage_mean_s(stage)*1e3:6.1f} ms "
              f"({result.latency.stage_fraction(stage):5.1%} of total)")


if __name__ == "__main__":
    avoidance_matrix()
    lane_change_demo()
    pedestrian_demo()
    latency_telemetry_demo()
