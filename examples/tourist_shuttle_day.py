"""A day of operations at the tourist-site deployment (paper Sec. II/III).

Models one vehicle's 10-hour day at the Japanese tourist site: battery
budget, trip economics at the $1 fare, data uplink, cloud model upkeep,
and the what-if analyses the paper walks through (add a server? switch to
LiDAR?).

Usage::

    python examples/tourist_shuttle_day.py
"""

from repro.cloud import (
    ModelTrainingService,
    OnboardStorage,
    paper_data_classes,
    plan_uplink,
)
from repro.core import (
    ConstraintSet,
    DesignCandidate,
    TcoModel,
    calibration,
    paper_camera_vehicle,
)
from repro.core.energy_model import PowerComponent
from repro.core.units import TB, to_hours
from repro.vehicle import Battery, lidar_variant, two_seater_pod


def main() -> None:
    pod = two_seater_pod()
    energy = pod.energy_model()

    print("=== Vehicle: 2-seater pod, Nara tourist site ===")
    print(f"AD power: {pod.ad_power.total_power_w:.0f} W")
    print(f"Sensor BOM: ${pod.sensor_bom.total_cost_usd:,.0f}")
    print(f"Driving time on a charge: {to_hours(energy.driving_time_s):.1f} h")

    # -- Battery through the day ------------------------------------------
    battery = Battery()
    hours_driven = 0.0
    total_power = pod.vehicle_power_w + pod.ad_power.total_power_w
    while battery.charge_j >= total_power * 3600.0 and hours_driven < 10.0:
        battery.drain(total_power, 3600.0)
        hours_driven += 1.0
    print(f"\nHours driven before recharge: {hours_driven:.0f}")
    print(f"State of charge at end: {battery.state_of_charge:.0%}")

    # -- Trip economics -----------------------------------------------------
    tco = TcoModel(vehicle=paper_camera_vehicle())
    trips = 90
    fare = calibration.FARE_PER_TRIP_USD
    profit = tco.daily_profit_usd(fare, trips)
    print(f"\n{trips} trips at ${fare:.2f}: daily profit ${profit:,.2f}")
    print(f"Breakeven fare: ${tco.breakeven_fare_usd(trips):.2f}")

    # -- What-if: add a second server ----------------------------------------
    print("\n=== What-if: add a second compute server ===")
    loss = energy.revenue_time_lost_fraction(calibration.SERVER_IDLE_POWER_W)
    print(f"Idle power alone costs {loss:.1%} of the day "
          f"({loss * hours_driven:.1f} h of driving)")

    heavier = pod.ad_power.with_component(PowerComponent("server2", 149.0))
    verdict = ConstraintSet().evaluate(
        DesignCandidate(
            computing_latency_s=calibration.MEAN_COMPUTING_LATENCY_S,
            throughput_hz=10.0,
            ad_power_inventory=heavier,
            sensor_bom=pod.sensor_bom,
        )
    )
    for row in verdict:
        print(f"  {row}")

    # -- What-if: switch to LiDAR ---------------------------------------------
    print("\n=== What-if: the LiDAR variant ===")
    lv = lidar_variant()
    lv_energy = lv.energy_model()
    print(f"AD power: {lv.ad_power.total_power_w:.0f} W "
          f"(+{lv.ad_power.total_power_w - pod.ad_power.total_power_w:.0f} W)")
    print(f"Driving time: {to_hours(lv_energy.driving_time_s):.1f} h "
          f"(-{to_hours(energy.driving_time_s - lv_energy.driving_time_s):.1f} h)")
    print(f"Retail price: ${lv.retail_price_usd:,.0f} vs ${pod.retail_price_usd:,.0f}")

    # -- End of day: data and models -------------------------------------------
    print("\n=== End of day: data uplink and model upkeep ===")
    for decision in plan_uplink():
        print(
            f"  {decision.data_class}: {decision.transport} "
            f"({decision.fraction_of_link:.1%} of link, fits={decision.fits})"
        )
    ssd = OnboardStorage(capacity_bytes=2 * TB)
    ssd.record(1 * TB)  # the day's raw captures
    print(f"  SSD fill before depot offload: {ssd.fill_fraction:.0%}")
    ssd.offload()

    training = ModelTrainingService(eval_scenes=3)
    version = training.train("nara_japan", n_scenes=15)
    print(
        f"  retrained nara_japan detector v{version.version}: "
        f"precision {version.precision:.2f}, recall {version.recall:.2f}"
    )


if __name__ == "__main__":
    main()
