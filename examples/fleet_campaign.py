"""Fleet campaign: a supervised chaos sweep that survives its own fleet.

Runs one chaos campaign twice — serially, then across the supervised
worker pool (``repro.fleetops``) with faults injected into the campaign
runner itself: a worker killed mid-cell, a cell delayed into straggler
territory, and the checkpoint journal torn mid-record before a resume.
Prints the supervision ledger and proves the fleet envelope is
bit-identical to the serial one through all of it.

Usage::

    python examples/fleet_campaign.py [n_cells] [n_workers]
    python examples/fleet_campaign.py 24 4 --kill-worker   # CI smoke mode
"""

import os
import sys
import tempfile

from repro.fleetops import (
    FleetCampaignConfig,
    FleetConfig,
    FleetSupervisor,
    WorkerFaultPlan,
    run_fleet_campaign,
    truncate_journal_tail,
)
from repro.fleetops.cells import run_cell
from repro.robustness.chaos import ChaosConfig, iter_cells, run_chaos_campaign

SEED = 0
DURATION_S = 2.0


def main() -> None:
    positional = [a for a in sys.argv[1:] if not a.startswith("--")]
    n_cells = int(positional[0]) if positional else 24
    n_workers = int(positional[1]) if len(positional) > 1 else 4
    kill_worker = "--kill-worker" in sys.argv

    chaos = ChaosConfig(
        n_drives=n_cells, seed=SEED, duration_s=DURATION_S, safety_net=True
    )
    fleet = FleetConfig(
        n_workers=n_workers,
        seed=SEED,
        min_straggler_s=1.0,
        straggler_factor=4.0,
    )
    specs = list(iter_cells(chaos))
    print(
        f"Fleet campaign — {n_cells} chaos cells across {n_workers} workers"
        + (" (one worker killed mid-cell)" if kill_worker else "")
    )
    print("=" * 78)

    serial = run_chaos_campaign(chaos)
    print(
        f"\nserial reference: collisions "
        f"{serial.envelope.collisions}/{serial.envelope.n_drives}, "
        f"safe-stops {serial.envelope.safe_stop_rate:.1%}"
    )

    plan = None
    if kill_worker:
        plan = WorkerFaultPlan(
            crash_cells=(specs[0].cell_id,),
            delay_cells=((specs[min(2, n_cells - 1)].cell_id, 2.5),),
        )

    with tempfile.TemporaryDirectory() as tmp:
        journal_path = os.path.join(tmp, "journal.jsonl")
        result = run_fleet_campaign(
            FleetCampaignConfig(chaos=chaos, fleet=fleet),
            journal_path=journal_path,
            fault_plan=plan,
        )
        report = result.report
        print(
            f"\nfleet run: {len(report.results)} cells in "
            f"{report.wall_s:.2f} s ({report.cells_per_s:.1f} cells/s)"
        )
        print(
            f"  exactly-once: lost {report.lost_cells}, "
            f"duplicates {report.duplicate_cells}, "
            f"failed {len(report.failed_cells)}"
        )
        print(
            f"  supervision: crashes {report.worker_crashes}, "
            f"restarts {report.workers_restarted}, "
            f"retries {report.retries}, "
            f"stragglers {report.stragglers_detected}, "
            f"speculative {report.speculative_launches}, "
            f"twins discarded {report.duplicates_discarded}"
        )
        identical = result.campaign.envelope == serial.envelope
        print(f"  envelope bit-identical to serial: {identical}")
        if not identical or not report.ok:
            raise SystemExit("fleet campaign diverged from serial")

        # Tear the last journal record (a crash mid-append), then resume.
        truncate_journal_tail(journal_path, drop_bytes=40)
        resumed = FleetSupervisor(fleet).run(specs, journal_path=journal_path)
        serial_ids = [run_cell(spec).identity() for spec in specs]
        resumed_ok = [
            r.identity() for r in resumed.results
        ] == serial_ids and resumed.ok
        print(
            f"\nresume after torn journal: {resumed.cells_from_journal} cells "
            f"from the trusted prefix, {resumed.journal_tail_dropped} torn "
            f"record(s) dropped, re-ran "
            f"{len(specs) - resumed.cells_from_journal}"
        )
        print(f"  resumed results bit-identical to serial: {resumed_ok}")
        if not resumed_ok:
            raise SystemExit("journal resume diverged from serial")

    rollup = result.rollup
    print(
        f"\nSec. VII rollup: best tier {rollup.best_tier!r}, "
        f"risk-adjusted profit ${rollup.risk_adjusted_profit_per_day_usd:.0f}"
        f"/day at collision rate {rollup.collision_rate:.1%}"
    )
    print("\nOK — fleet execution changed where cells ran, not what they computed")


if __name__ == "__main__":
    main()
