"""Chaos sweep: randomized fault campaigns and the safety frontier.

Samples seeded random fault scenarios from the nominal fault space and
drives each through the closed-loop SoV with and without the safety net,
then bisects the fault-intensity dial until the net leaks a collision.
Prints the collision-free envelope — collision/SAFE_STOP rates, mode
residency, MTTR percentiles, shed work, the Eq. 1 deadline-miss
attribution table — plus a replay of the first unprotected failure,
demonstrating the per-seed replay hook.

Usage::

    python examples/chaos_sweep.py [n_drives]
"""

import sys

from repro.robustness.chaos import (
    ChaosConfig,
    adaptive_intensity_frontier,
    replay_drive,
    run_chaos_campaign,
)

SEED = 0


def main() -> None:
    n_drives = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    print(
        f"Chaos sweep — {n_drives} seeded random fault scenarios, "
        "obstacle 25 m ahead, 5.6 m/s"
    )
    print("=" * 78)

    protected = run_chaos_campaign(
        ChaosConfig(n_drives=n_drives, seed=SEED, safety_net=True)
    ).envelope
    unprotected = run_chaos_campaign(
        ChaosConfig(n_drives=n_drives, seed=SEED, safety_net=False)
    ).envelope

    print("\nwith safety net:")
    print(
        f"  collisions {protected.collisions}/{protected.n_drives}"
        f"  safe-stops {protected.safe_stop_rate:.1%}"
        f"  reactive triggers/drive "
        f"{protected.mean_reactive_interventions:.1f}"
    )
    residency = ", ".join(
        f"{mode} {frac:.1%}"
        for mode, frac in sorted(protected.mode_residency_mean.items())
        if frac > 0
    )
    print(f"  mode residency: {residency}")
    print(
        f"  MTTR p50/p90/p99: {protected.mttr_p50_s:.2f}/"
        f"{protected.mttr_p90_s:.2f}/{protected.mttr_p99_s:.2f} s"
        f"   restarts {dict(sorted(protected.restarts_by_module.items()))}"
    )
    print(
        f"  shed task slots: {dict(sorted(protected.sheds_by_mode.items()))}"
    )
    print("\nwithout safety net:")
    print(
        f"  collisions {unprotected.collisions}/{unprotected.n_drives}"
        f"  ({unprotected.collision_rate:.1%})"
        f"  failing drives {list(unprotected.failing_indices)[:8]}"
    )

    if unprotected.failing_indices:
        index = unprotected.failing_indices[0]
        scenario, result = replay_drive(SEED, index, safety_net=False)
        print(
            f"\nreplay of failing drive {index} ({scenario.description}): "
            f"collided={result.collided}, "
            f"clearance {result.min_obstacle_clearance_m:.2f} m"
        )
        _scenario, saved = replay_drive(SEED, index, safety_net=True)
        print(
            f"  same drive with the net: collided={saved.collided}, "
            f"final mode {saved.final_mode}"
        )

    if protected.attribution is not None and protected.deadline_misses:
        print("\ndeadline-miss attribution (Eq. 1 budget, protected arm):")
        for line in protected.attribution.format_table().splitlines():
            print(f"  {line}")

    print("\nfault-intensity frontier (safety net engaged, bisection):")
    points, frontier = adaptive_intensity_frontier(
        n_drives=max(12, n_drives // 4)
    )
    for p in points:
        print(
            f"  intensity {p.intensity:.2f}: "
            f"{p.collisions}/{p.n_drives} collisions, "
            f"safe-stops {p.safe_stop_rate:.1%}"
        )
    print(
        "  frontier: "
        + (
            "not reached in this bracket"
            if frontier is None
            else f"net first leaks at intensity {frontier:.2f}"
        )
    )


if __name__ == "__main__":
    main()
