"""Corridor suite tour: drive every scenario, check every invariant.

Generates the full multi-obstacle corridor suite (slalom, narrow gap,
occluded crossing, oncoming cart, pedestrian platoon, cluttered stop,
and their sensor-degraded variants), drives each cell closed-loop under
the protected configuration, and runs the property-based safety-invariant
harness over the whole ``scenario x seed`` matrix.  Finishes with a
chaos campaign routed down one corridor, demonstrating that the chaos
sampler's fault draws compose with a corridor's own fault schedule.

The matrix runs on the fault-tolerant fleet substrate by default
(identical results cell for cell — run_cell is pure per spec); pass
``--serial`` for the in-process path.

Every violation the report prints carries a replay one-liner; paste it
back here to re-run that single cell serially, with an optional
Perfetto trace of the failing drive::

    python examples/corridor_matrix.py --cell-id invariant:slalom:1 \
        [--trace out.json]

Usage::

    python examples/corridor_matrix.py [--serial] [seed ...]
    python examples/corridor_matrix.py --cell-id <id> [--trace PATH]
"""

import sys

from repro.robustness.chaos import ChaosConfig, run_chaos_campaign
from repro.scene.corridors import corridor_names, generate_corridor
from repro.testing.invariants import run_invariant_matrix


def replay_main(argv) -> None:
    """The ``--cell-id`` path: re-run one named cell and exit."""
    from repro.triage.replay import replay_cell

    cell_id = argv[argv.index("--cell-id") + 1]
    trace = (
        argv[argv.index("--trace") + 1] if "--trace" in argv else None
    )
    result = replay_cell(cell_id, trace_path=trace)
    sys.exit(1 if getattr(result.record, "violations", ()) else 0)


def main() -> None:
    argv = sys.argv[1:]
    if "--cell-id" in argv:
        replay_main(argv)
    serial = "--serial" in argv
    seeds = [int(s) for s in argv if s != "--serial"] or [0, 1, 2]
    engine = "serial" if serial else "fleet"
    print(f"Corridor scenario suite — seeds {seeds} ({engine} engine)")
    print("=" * 78)

    print("\n-- the suite ----------------------------------------------------")
    for name in corridor_names():
        scenario = generate_corridor(name, seed=seeds[0])
        tags = []
        if scenario.blocked:
            tags.append("blocked")
        if scenario.degraded:
            tags.append(f"faults: {scenario.fault_scenario.name}")
        suffix = f"  [{', '.join(tags)}]" if tags else ""
        print(
            f"  {name:<26} {len(scenario.world.obstacles)} obstacles, "
            f"{scenario.n_lanes} lane(s), {scenario.duration_s:.0f} s"
            f"{suffix}"
        )
        print(f"      {scenario.description}")

    print("\n-- invariant matrix ---------------------------------------------")
    report = run_invariant_matrix(seeds=seeds, engine=engine)
    print(report.format_report())

    print("\n-- chaos over a corridor ----------------------------------------")
    envelope = run_chaos_campaign(
        ChaosConfig(n_drives=12, seed=0, safety_net=True, corridor="slalom")
    ).envelope
    print(
        f"  12 chaos drives down 'slalom': "
        f"collision_rate={envelope.collision_rate:.3f} "
        f"safe_stop_rate={envelope.safe_stop_rate:.3f} "
        f"reactive/drive={envelope.mean_reactive_interventions:.2f}"
    )

    print("\nDone." if report.ok else "\nVIOLATIONS FOUND (see repro lines).")
    sys.exit(0 if report.ok else 1)


if __name__ == "__main__":
    main()
