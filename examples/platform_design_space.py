"""Hardware design-space exploration (paper Sec. V).

Walks the paper's platform decisions: why mobile SoCs and automotive
ASICs were rejected as the sensor hub, how tasks map onto the FPGA+server
platform, what partial reconfiguration buys, and what the LiDAR-vs-camera
choice costs in memory behavior.

Usage::

    python examples/platform_design_space.py
"""

from repro.core.units import MB
from repro.hw import (
    all_platforms,
    automotive_asic_platform,
    cpu_driven_reconfiguration,
    enumerate_mappings,
    evaluate_sensor_hub,
    fig6_comparison,
    paper_fpga_floorplan,
    paper_localization_variants,
    RprEngine,
    RprManager,
)
from repro.hw.cache import CacheConfig, CacheSimulator
from repro.lidar import run_kernel, simulate_lidar_scan


def sensor_hub_selection() -> None:
    print("=== Who can be the sensor hub? (Sec. V-A / V-B1) ===")
    for name, platform in all_platforms().items():
        verdict = evaluate_sensor_hub(platform)
        status = "SUITABLE" if verdict.suitable else "rejected"
        print(f"  {name:<5} [{status}] ${platform.unit_cost_usd:,.0f}")
        for reason in verdict.reasons:
            print(f"         - {reason}")
    asic = automotive_asic_platform()
    print(f"  automotive ASIC (PX2-class): ${asic.unit_cost_usd:,.0f} — "
          f"cost alone disqualifies it")


def task_mapping() -> None:
    print("\n=== Task mapping (Fig. 8) ===")
    print(f"{'mapping':<58} perception latency")
    for mapping in sorted(
        enumerate_mappings(), key=lambda m: m.perception_latency_s
    ):
        marker = "  <- our design" if (
            dict(mapping.assignment)
            == {"scene_understanding": "gpu", "localization": "fpga"}
        ) else ""
        print(f"{mapping.label:<58} {mapping.perception_latency_s*1e3:6.1f} ms{marker}")


def platform_bars() -> None:
    print("\n=== Fig. 6: per-task latency (ms) and energy (J) ===")
    rows = fig6_comparison()
    tasks = ("depth", "detection", "localization")
    platforms = ("cpu", "gpu", "tx2", "fpga")
    table = {(r.task, r.platform): r for r in rows}
    print(f"{'task':<14}" + "".join(f"{p:>10}" for p in platforms))
    for task in tasks:
        cells = "".join(
            f"{table[(task, p)].latency_s*1e3:>10.1f}" for p in platforms
        )
        print(f"{task:<14}{cells}   (latency ms)")
        cells = "".join(
            f"{table[(task, p)].energy_j:>10.2f}" for p in platforms
        )
        print(f"{'':<14}{cells}   (energy J)")


def rpr_study() -> None:
    print("\n=== Runtime partial reconfiguration (Sec. V-B3) ===")
    engine = RprEngine()
    event = engine.reconfigure(1 * MB)
    cpu = cpu_driven_reconfiguration(1 * MB)
    print(f"1 MB partial bitstream:")
    print(f"  RPR engine: {event.delay_s*1e3:5.2f} ms "
          f"({event.throughput_bps/MB:.0f} MB/s, {event.energy_j*1e3:.1f} mJ)")
    print(f"  CPU path:   {cpu.delay_s:5.2f} s ({cpu.throughput_bps/1024:.0f} KB/s)")
    manager = RprManager()
    for bitstream in paper_localization_variants():
        manager.register(bitstream)
    for period in (2, 5, 10, 30):
        manager.loaded = None
        manager.n_reconfigs = 0
        mean = manager.run_frame_schedule(keyframe_period=period, n_frames=300)
        print(f"  keyframe every {period:>2} frames: mean frame "
              f"{mean*1e3:5.2f} ms ({manager.n_reconfigs} swaps)")

    floorplan = paper_fpga_floorplan()
    print("FPGA floorplan utilization:")
    for kind, util in floorplan.utilization().items():
        print(f"  {kind:<10} {util:6.1%}")


def lidar_memory_behavior() -> None:
    print("\n=== Why not LiDAR: irregular memory behavior (Fig. 4b) ===")
    scan = simulate_lidar_scan(n_beams=6, n_azimuth=90, seed=1).downsampled(0.8)
    cloud_bytes = len(scan) * 16
    config = CacheConfig(
        size_bytes=max(1024, int(cloud_bytes / 8 // 256) * 256),
        line_bytes=64,
        associativity=4,
    )
    for kernel in ("localization", "recognition", "segmentation"):
        result = run_kernel(kernel, scan)
        sim = CacheSimulator(config)
        stats = sim.run_trace(result.trace.byte_addresses())
        print(f"  {kernel:<15} {stats.normalized_traffic:6.1f}x optimal traffic "
              f"(hit rate {stats.hit_rate:.0%})")


if __name__ == "__main__":
    sensor_hub_selection()
    task_mapping()
    platform_bars()
    rpr_study()
    lidar_memory_behavior()
