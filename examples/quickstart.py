"""Quickstart: the paper's headline numbers in five minutes.

Runs the Sec. III analytical models, drives the closed-loop SoV against an
obstacle, and regenerates one of the paper's figures.

Usage::

    python examples/quickstart.py
"""

from repro.core import LatencyModel, EnergyModel, calibration
from repro.core.units import to_hours, to_ms
from repro.experiments import run_experiment
from repro.runtime import obstacle_ahead_scenario


def main() -> None:
    # -- 1. The Eq. 1 latency model ----------------------------------------
    latency = LatencyModel()
    print("Eq. 1 — end-to-end latency model")
    print(f"  braking distance at 5.6 m/s: {latency.braking_distance_m:.2f} m")
    for tcomp_ms in (30, 164, 740):
        reach = latency.min_avoidable_distance_m(tcomp_ms / 1000.0)
        print(f"  Tcomp = {tcomp_ms:>3} ms -> avoids objects >= {reach:.2f} m away")
    budget = latency.latency_requirement_s(5.0)
    print(f"  to avoid objects at 5 m, Tcomp must be <= {to_ms(budget):.0f} ms")

    # -- 2. The Eq. 2 energy model ------------------------------------------
    energy = EnergyModel()
    print("\nEq. 2 — driving-time model")
    print(f"  driving time without AD: {to_hours(energy.base_driving_time_s):.1f} h")
    print(f"  driving time with AD:    {to_hours(energy.driving_time_s):.1f} h")
    loss = energy.revenue_time_lost_fraction(calibration.SERVER_IDLE_POWER_W)
    print(f"  adding one idle server loses {loss:.1%} of the work day")

    # -- 3. A closed-loop drive ----------------------------------------------
    print("\nClosed loop — obstacle 5.9 m ahead, mean computing latency")
    sov = obstacle_ahead_scenario(5.9, computing_latency_s=0.164)
    result = sov.drive(4.0)
    print(f"  stopped: {result.stopped}, collided: {result.collided}")
    print(f"  final clearance: {result.min_obstacle_clearance_m:.2f} m")
    print(f"  proactive fraction: {result.ops.proactive_fraction:.0%}")

    # -- 4. Regenerate a paper figure ----------------------------------------
    print()
    print(run_experiment("fig8").format_table())


if __name__ == "__main__":
    main()
