"""Fault drills: the paper's safety-net ablation, scenario by scenario.

Drives the five default fault scenarios (camera blackout, CAN loss burst,
perception outage, GPS denial, radar blackout) down a single-lane corridor
toward an obstacle, first with the safety net (reactive path + degradation
supervisor) and then without, and prints what each layer did: collisions,
reactive interventions, degradation-mode residency, module restarts, and
availability.

Usage::

    python examples/fault_drills.py
"""

from repro.experiments import run_experiment
from repro.experiments.fault_campaign import default_scenarios, run_drill


def main() -> None:
    print("Fault drills — obstacle 25 m ahead, 5.6 m/s, 10 s closed loop")
    print("=" * 78)
    for scenario in default_scenarios():
        protected = run_drill(scenario, safety_net=True)
        unprotected = run_drill(scenario, safety_net=False)
        print(f"\n{scenario.name}: {scenario.description}")
        print(
            f"  with net:    collided={protected.collided}  "
            f"final mode={protected.final_mode}  "
            f"reactive triggers={protected.ops.reactive_overrides}"
        )
        modes = {
            name: ticks
            for name, ticks in protected.ops.mode_ticks.items()
            if ticks
        }
        print(f"  mode ticks:  {modes}")
        health = protected.health
        if health is not None and health.total_restarts:
            print(
                f"  health:      {health.total_restarts} restarts, "
                f"worst availability {health.worst_availability:.1%}, "
                f"MTTR {health.mean_time_to_repair_s:.2f} s"
            )
        print(
            f"  without net: collided={unprotected.collided}  "
            f"(clearance {unprotected.min_obstacle_clearance_m:.2f} m)"
        )
    print()
    print(run_experiment("fault_campaign").format_table())


if __name__ == "__main__":
    main()
