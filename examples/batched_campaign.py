"""Batched campaign: the SoA multi-drive stepper vs the serial engine.

Runs one chaos campaign twice — each cell serially through
``SystemsOnAVehicle.drive``, then all cells together through the batched
multi-drive stepper (``repro.runtime.batched``), which advances every
drive in numpy-vectorized lockstep.  Proves the batched engine is an
*execution strategy*, not a semantic change: per-cell identities and the
campaign CRC must match bit for bit, and prints the wall-clock speedup
the vectorization buys.

Usage::

    python examples/batched_campaign.py [n_cells]
    python examples/batched_campaign.py 24    # CI smoke mode
"""

import sys
import time

from repro.fleetops.cells import campaign_crc, chaos_cells, run_cells
from repro.robustness.chaos import ChaosConfig

SEED = 0
DURATION_S = 2.0


def main() -> None:
    n_cells = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    config = ChaosConfig(
        n_drives=n_cells, seed=SEED, duration_s=DURATION_S, safety_net=True
    )
    specs = list(chaos_cells(config))
    print(f"Batched campaign — {n_cells} chaos cells, both engines")
    print("=" * 78)

    started = time.perf_counter()
    serial = run_cells(specs)
    serial_wall = time.perf_counter() - started
    print(f"\nserial engine:  {n_cells} cells in {serial_wall:.2f} s")

    started = time.perf_counter()
    batched = run_cells(specs, engine="batched")
    batched_wall = time.perf_counter() - started
    print(f"batched engine: {n_cells} cells in {batched_wall:.2f} s")
    if batched_wall > 0:
        print(f"speedup: {serial_wall / batched_wall:.2f}x")

    serial_crc = campaign_crc(serial)
    batched_crc = campaign_crc(batched)
    identities_match = [r.identity() for r in serial] == [
        r.identity() for r in batched
    ]
    print(
        f"\ncampaign CRC: serial {serial_crc:#010x}, "
        f"batched {batched_crc:#010x}"
    )
    print(f"per-cell identities bit-identical: {identities_match}")
    if serial_crc != batched_crc or not identities_match:
        raise SystemExit("batched campaign diverged from serial")
    print("\nOK — the batched stepper changed how drives ran, not what they computed")


if __name__ == "__main__":
    main()
