"""Sensor synchronization study (paper Sec. VI-A, Fig. 11/12).

Compares application-layer ("software-only") synchronization against the
hardware synchronizer, then shows what out-of-sync sensors do to
perception: stereo depth error (Fig. 11a) and localization error
(Fig. 11b).

Usage::

    python examples/sensor_sync_study.py
"""

import math

import numpy as np

from repro.perception.depth_error import StereoSyncErrorModel
from repro.perception.vio import (
    CameraImuSyncErrorModel,
    VisualInertialOdometry,
    trajectory_error_m,
)
from repro.scene.kitti_like import SequenceGenerator
from repro.scene.trajectory import CircuitTrajectory
from repro.scene.world import Landmark, World
from repro.sensors.base import SensorClock
from repro.sync import (
    HardwareSyncSimulation,
    HardwareSynchronizer,
    SoftwareSyncSimulation,
)


def ring_world(seed: int = 0, n: int = 600) -> World:
    rng = np.random.default_rng(seed)
    return World(
        landmarks=[
            Landmark(i, float(r * math.cos(t)), float(r * math.sin(t)), float(z))
            for i, (t, r, z) in enumerate(
                zip(
                    rng.uniform(0, 2 * math.pi, n),
                    rng.uniform(20.0, 45.0, n),
                    rng.uniform(0.5, 5.0, n),
                )
            )
        ]
    )


def main() -> None:
    # -- 1. Pairing quality: software vs hardware sync ----------------------
    print("=== Camera<->IMU sample pairing (10 s of operation) ===")
    software = SoftwareSyncSimulation(
        camera_clock=SensorClock(offset_s=0.02),
        imu_clock=SensorClock(offset_s=-0.01),
        seed=0,
    ).report(10.0)
    hardware = HardwareSyncSimulation(seed=0).report(10.0)
    print(f"software-only: mean |offset| = {software.mean_abs_offset_s*1e3:6.1f} ms, "
          f"max = {software.max_abs_offset_s*1e3:6.1f} ms")
    print(f"hardware sync: mean |offset| = {hardware.mean_abs_offset_s*1e3:6.3f} ms, "
          f"max = {hardware.max_abs_offset_s*1e3:6.3f} ms")

    sync = HardwareSynchronizer()
    sync.init_timer_from_gps(0.0)
    imu_times, cam_times = sync.trigger_schedule(1.0)
    print(f"common timer: {len(imu_times)} IMU triggers, "
          f"{len(cam_times)} camera triggers (divider 8)")
    print(f"synchronizer cost: {sync.spec.luts} LUTs, "
          f"{sync.spec.power_w*1e3:.0f} mW, "
          f"<= {sync.spec.added_latency_s*1e3:.0f} ms added latency")

    # -- 2. Fig. 11a: stereo depth error ------------------------------------
    print("\n=== Depth error vs stereo sync error (Fig. 11a) ===")
    model = StereoSyncErrorModel()
    for ms in (0, 30, 70, 110, 150):
        err = model.depth_error_m(ms / 1000.0)
        bar = "#" * int(err * 2)
        print(f"  {ms:>3} ms: {err:5.1f} m  {bar}")

    # -- 3. Fig. 11b: localization error ------------------------------------
    print("\n=== Localization error vs camera/IMU sync error (Fig. 11b) ===")
    drift = CameraImuSyncErrorModel()
    for ms in (0, 20, 40):
        print(f"  model, {ms:>2} ms offset: {drift.localization_error_m(ms/1000.0):5.1f} m "
              f"after a {drift.duration_s:.0f} s drive")
    world = ring_world()
    for offset in (0.0, 0.040):
        gen = SequenceGenerator(
            CircuitTrajectory(radius_m=15.0, speed_mps=5.6),
            world=world,
            camera_rate_hz=10.0,
            seed=1,
        )
        seq = gen.generate(duration_s=33.7, camera_time_offset_s=offset)
        estimates = VisualInertialOdometry().run(seq)
        mean_e, max_e = trajectory_error_m(estimates, seq)
        print(f"  real VIO, {offset*1e3:>2.0f} ms offset: mean {mean_e:.2f} m, "
              f"max {max_e:.2f} m (2-D lower bound)")


if __name__ == "__main__":
    main()
