"""Failure-triage tour: shrink a violation, classify it, file it, replay it.

Walks the full post-detection pipeline on a single injected failure and
then a small two-arm campaign:

1. drive an unprotected cell under a composed fault schedule until it
   collides,
2. delta-debug the schedule/agents/scene/horizon down to a 1-minimal
   counterexample,
3. fingerprint it, label it via the seeded flake protocol,
4. file it in a CRC-sealed regression corpus, and
5. replay the corpus bit-identically from disk.

Usage::

    python examples/failure_triage.py [seed] [--corpus DIR]
"""

import sys
import tempfile

from repro.fleetops.cells import CellSpec, TriageCell, run_cell
from repro.triage import (
    Shrinker,
    TriageCampaignConfig,
    classify_flakes,
    outcome_fingerprint,
    run_triage_campaign,
)
from repro.triage.campaign import INJECTION_SPACE


def main() -> None:
    argv = sys.argv[1:]
    corpus_dir = None
    if "--corpus" in argv:
        corpus_dir = argv[argv.index("--corpus") + 1]
        argv = [a for a in argv if a != "--corpus" and a != corpus_dir]
    seed = int(argv[0]) if argv else 0
    print(f"Failure triage — seed {seed}")
    print("=" * 78)

    print("\n-- one injected violation ---------------------------------------")
    cell = TriageCell(
        scene="drill-lane",
        sim_seed=seed,
        faults=INJECTION_SPACE.sample_schedule(seed, 0, 4),
        safety_net=False,
        duration_s=6.0,
        obstacle_distance_m=18.0,
        origin=f"chaos:drill-lane:{seed}:0:raw",
    )
    outcome = run_cell(CellSpec(kind="triage", index=0, cell=cell)).record
    print(
        f"  {len(cell.faults)} injected fault draws -> violated="
        f"{outcome.violated} ({outcome.detail})"
    )
    if not outcome.violated:
        print("  (this seed does not violate; try another)")
        sys.exit(0)

    print("\n-- delta-debugging the counterexample ---------------------------")
    shrink = Shrinker().shrink(cell)
    print(
        f"  faults {shrink.original_faults} -> {shrink.minimized_faults}, "
        f"horizon {shrink.original_duration_s:g}s -> "
        f"{shrink.minimized_duration_s:g}s "
        f"({shrink.reduction_ratio:.0%} reduction in "
        f"{shrink.evaluations} candidate drives)"
    )
    for fault in shrink.minimized.faults:
        print(f"    culprit: {fault!r}")
    print(f"  still violates: {shrink.still_violates}")
    print(f"  failure fingerprint: {outcome_fingerprint(shrink.minimized_outcome)}")

    print("\n-- flake protocol -----------------------------------------------")
    (label,) = classify_flakes([shrink.minimized], n_replicas=4)
    print(
        f"  {label.label}: violated {label.n_violating}/{label.n_replicas} "
        f"seeded replicas (replica 0 is the exact replay)"
    )

    print("\n-- two-arm campaign into the regression corpus ------------------")
    config = TriageCampaignConfig(seed=seed, n_chaos=6, n_procgen=6)
    if corpus_dir is not None:
        result = run_triage_campaign(config, corpus_dir=corpus_dir)
    else:
        with tempfile.TemporaryDirectory() as tmp:
            result = run_triage_campaign(config, corpus_dir=tmp)
    print("  " + result.format_report().replace("\n", "\n  "))

    ok = (
        shrink.still_violates
        and shrink.reduction_ratio >= 0.6  # the size bound CI asserts
        and result.still_violates_rate == 1.0
        and result.replay is not None
        and result.replay.ok
    )
    print("\nDone." if ok else "\nTRIAGE CONTRACT BROKEN (see above).")
    sys.exit(0 if ok else 1)


if __name__ == "__main__":
    main()
