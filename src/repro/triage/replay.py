"""Serial replay of one named campaign cell, with optional tracing.

Every violation the invariant harness reports now prints a one-liner
like ``python examples/procgen_matrix.py --cell-id procgen:0:17:i1``.
This module is what that flag runs: rebuild the cell from its id
(:func:`repro.fleetops.cells.parse_cell_id`), execute it serially
through the same :func:`~repro.fleetops.cells.run_cell` path the
campaign used (bit-identical by the purity contract), print the verdict,
and — for cell kinds whose drive we can rebuild — export a Perfetto
trace of the failing drive.
"""

from __future__ import annotations

from typing import Callable, Optional


def export_cell_trace(spec, trace_path: str) -> bool:
    """Re-drive *spec* with span tracing and export Chrome-trace JSON.

    Supported for ``invariant`` and ``procgen`` cells (the kinds whose
    ids the violation reports print); returns False for kinds whose
    drive construction is owned elsewhere.  The traced drive uses the
    identical seeds — the tracer never touches an RNG — so the exported
    spans describe exactly the campaign's failing trajectory.
    """
    from ..scene.corridors import make_corridor_sov
    from ..scene.providers import resolve_scene

    if spec.kind == "invariant":
        cell = spec.cell
        scenario = resolve_scene(cell.name, cell.seed)
    elif spec.kind == "procgen":
        cell = spec.cell
        scenario = cell.space.sample(cell.generator_seed, cell.cell_index)
    else:
        return False
    sov = make_corridor_sov(scenario, safety_net=True, tracing_enabled=True)
    sov.enable_attribution()
    result = sov.drive(scenario.duration_s)
    assert result.trace is not None
    result.trace.export_json(trace_path)
    return True


def replay_cell(
    cell_id: str,
    trace_path: Optional[str] = None,
    echo: Callable[[str], None] = print,
):
    """Re-run the campaign cell named *cell_id* serially and report.

    Returns the :class:`~repro.fleetops.cells.CellResult` (bit-identical
    to what the campaign computed for this id).  With *trace_path*, also
    exports a Perfetto trace of the drive when the kind supports it.
    """
    from ..fleetops.cells import parse_cell_id, run_cell

    spec = parse_cell_id(cell_id)
    echo(f"replaying {cell_id} (kind={spec.kind}, serial) ...")
    result = run_cell(spec)
    echo(
        "  "
        + " ".join(
            f"{key}={value:g}" for key, value in sorted(result.summary.items())
        )
    )
    violations = getattr(result.record, "violations", ())
    if violations:
        for violation in violations:
            echo(f"  VIOLATION {violation.invariant}: {violation.detail}")
    elif hasattr(result.record, "violations"):
        checked = getattr(result.record, "checked", ())
        echo(f"  all invariants hold ({', '.join(checked)})")
    echo(f"  drive fingerprint: {len(result.fingerprint)} fields, stable")
    if trace_path is not None:
        if export_cell_trace(spec, trace_path):
            echo(f"  trace exported: {trace_path} (open in Perfetto)")
        else:
            echo(
                f"  (trace export not supported for {spec.kind!r} cells; "
                "replay verdict above is still bit-exact)"
            )
    return result
