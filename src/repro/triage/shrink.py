"""Delta-debugging counterexample shrinker (Zeller's ddmin, four axes).

A campaign violation arrives as a haystack: a multi-draw fault schedule
composed with a generated scene full of scripted agents, driven for tens
of seconds.  :class:`Shrinker` reduces it to the needle — the minimal
cell that still violates the same invariant — by greedy minimization
along four axes, in fixed order:

1. **Scene simplification** — a ``procgen:<topology>`` scene falls back
   toward the simplest topology that still violates
   (:meth:`~repro.scene.procgen.ProcGenSpace.simpler_topologies`);
   adopting a simpler scene resets the agent drop-set, since agent
   identities belong to the scene that spawned them.
2. **Fault-schedule subset** — :func:`ddmin` over the explicit fault
   tuple.  Subsets re-run the surviving faults bit-identically (the
   schedule is data, not a seed), so the result is 1-minimal: removing
   any single remaining fault makes the violation vanish.
3. **Agent-script subset** — :func:`ddmin` over the scene's agent ids;
   the kept set's complement becomes ``drop_agents``.
4. **Time-horizon truncation** — binary search for the shortest drive
   prefix that still exhibits the failure, at a fixed resolution.  Only
   collision violations truncate: a "blocked but never stopped" verdict
   on a truncated prefix would be vacuous (the vehicle may simply not
   have arrived yet), so non-collision violations keep their horizon.

Every candidate is validated through the same
``run_cell``/``drive_fingerprint`` machinery the campaigns use, and
evaluations are memoized by cell id — the shrinker itself consumes no
randomness, so shrinking is deterministic per input cell.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple


def ddmin(
    items: Sequence,
    test: Callable[[Tuple], bool],
    granularity: int = 2,
) -> Tuple:
    """Zeller's ddmin: a 1-minimal subsequence of *items* passing *test*.

    *test* takes a tuple (a subsequence of *items*, order preserved) and
    returns True when the property of interest — "still violates" —
    holds.  The full sequence must pass.  The result is 1-minimal:
    removing any single element makes *test* fail.  Deterministic: no
    randomness, and candidate order depends only on the input.
    """
    current = tuple(items)
    if not test(current):
        raise ValueError("ddmin requires the full input to pass the test")
    if len(current) <= 1:
        return current
    n = max(2, min(granularity, len(current)))
    while len(current) >= 2:
        chunk = len(current) / n
        subsets = [
            current[int(i * chunk): int((i + 1) * chunk)] for i in range(n)
        ]
        subsets = [s for s in subsets if s]
        reduced = False
        # Try each subset alone (reduce to subset) ...
        for subset in subsets:
            if len(subset) < len(current) and test(subset):
                current = subset
                n = 2
                reduced = True
                break
        if reduced:
            continue
        # ... then each complement (reduce to complement).
        if n > 2:
            for i in range(len(subsets)):
                complement = tuple(
                    x for j, s in enumerate(subsets) if j != i for x in s
                )
                if len(complement) < len(current) and test(complement):
                    current = complement
                    n = max(2, n - 1)
                    reduced = True
                    break
        if reduced:
            continue
        if n >= len(current):
            break
        n = min(len(current), n * 2)
    return current


@dataclass(frozen=True)
class ShrinkResult:
    """One violation's minimization transcript."""

    original: "object"  # TriageCell
    minimized: "object"  # TriageCell
    original_outcome: "object"  # TriageOutcome
    minimized_outcome: "object"  # TriageOutcome
    minimized_fingerprint: Tuple
    evaluations: int
    original_faults: int
    minimized_faults: int
    original_agents: int
    minimized_agents: int
    original_duration_s: float
    minimized_duration_s: float
    #: Axis-by-axis log lines, for the triage report.
    steps: Tuple[str, ...]

    @property
    def still_violates(self) -> bool:
        return bool(self.minimized_outcome.violated) and (
            self.minimized_outcome.invariant
            == self.original_outcome.invariant
        )

    @property
    def reduction_ratio(self) -> float:
        """Fraction of (fault draws + agents) the shrinker removed."""
        before = self.original_faults + self.original_agents
        after = self.minimized_faults + self.minimized_agents
        if before == 0:
            return 0.0
        return (before - after) / before


class Shrinker:
    """Greedy four-axis minimizer over :class:`TriageCell` candidates.

    ``max_evaluations`` bounds the total candidate drives (the axes
    degrade gracefully — whatever the budget allowed stands, and the
    result is still a verified violating cell).  ``time_resolution_s``
    is the truncation grid; ``min_duration_s`` the shortest horizon the
    time axis will propose.
    """

    def __init__(
        self,
        time_resolution_s: float = 0.5,
        min_duration_s: float = 0.5,
        max_evaluations: int = 400,
    ):
        if time_resolution_s <= 0:
            raise ValueError("time resolution must be positive")
        if max_evaluations < 1:
            raise ValueError("need at least one evaluation")
        self.time_resolution_s = time_resolution_s
        self.min_duration_s = min_duration_s
        self.max_evaluations = max_evaluations
        self._cache: Dict[str, "object"] = {}
        self.evaluations = 0

    # -- candidate evaluation --------------------------------------------------

    def _run(self, cell):
        """Execute *cell* (memoized by cell id); returns the CellResult."""
        from ..fleetops.cells import CellSpec, run_cell

        key = cell.cell_id
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if self.evaluations >= self.max_evaluations:
            return None
        self.evaluations += 1
        result = run_cell(CellSpec(kind="triage", index=0, cell=cell))
        self._cache[key] = result
        return result

    def _violates(self, cell, reference) -> bool:
        """Does *cell* still violate the same way as *reference*?

        "Same way" = same invariant (carried by the cell) and the same
        collided/failed-to-stop flavor — a truncated prefix that
        manufactures a *different* failure is not a valid reduction.
        """
        result = self._run(cell)
        if result is None:
            return False
        outcome = result.record
        return bool(
            outcome.violated and outcome.collided == reference.collided
        )

    # -- the four axes ---------------------------------------------------------

    def shrink(self, cell) -> ShrinkResult:
        """Minimize *cell* (which must violate its target invariant)."""
        baseline = self._run(cell)
        if baseline is None or not baseline.record.violated:
            raise ValueError(
                f"cell {cell.cell_id} does not violate "
                f"{cell.invariant!r}; nothing to shrink"
            )
        reference = baseline.record
        steps: List[str] = []
        current = cell

        current = self._simplify_scene(current, reference, steps)
        current = self._shrink_faults(current, reference, steps)
        current = self._shrink_agents(current, reference, steps)
        current = self._truncate_time(current, reference, steps)

        final = self._run(current)
        assert final is not None and final.record.violated
        from .oracle import base_duration_s

        return ShrinkResult(
            original=cell,
            minimized=current,
            original_outcome=reference,
            minimized_outcome=final.record,
            minimized_fingerprint=final.fingerprint,
            evaluations=self.evaluations,
            original_faults=len(cell.faults),
            minimized_faults=len(current.faults),
            original_agents=reference.n_agents,
            minimized_agents=final.record.n_agents,
            original_duration_s=base_duration_s(cell),
            minimized_duration_s=final.record.duration_s,
            steps=tuple(steps),
        )

    def _simplify_scene(self, cell, reference, steps: List[str]):
        if not cell.scene.startswith("procgen:"):
            return cell
        from ..scene.procgen import DEFAULT_SPACE, ProcGenSpace

        topology = cell.scene.split(":", 1)[1]
        space = DEFAULT_SPACE if cell.space is None else cell.space
        for simpler in ProcGenSpace.simpler_topologies(topology):
            candidate = dataclasses.replace(
                cell,
                scene=f"procgen:{simpler}",
                drop_agents=(),  # agent ids belong to the old scene
            )
            if self._violates(candidate, reference):
                steps.append(f"scene: {topology} -> {simpler}")
                return candidate
        return cell

    def _shrink_faults(self, cell, reference, steps: List[str]):
        if not cell.faults:
            return cell

        def keep(subset: Tuple) -> bool:
            return self._violates(
                dataclasses.replace(cell, faults=subset), reference
            )

        minimized = ddmin(cell.faults, keep)
        if len(minimized) < len(cell.faults):
            steps.append(f"faults: {len(cell.faults)} -> {len(minimized)}")
        return dataclasses.replace(cell, faults=minimized)

    def _shrink_agents(self, cell, reference, steps: List[str]):
        from .oracle import scene_agent_ids

        universe = scene_agent_ids(cell)
        kept_now = tuple(a for a in universe if a not in set(cell.drop_agents))
        if not kept_now:
            return cell

        def keep(subset: Tuple) -> bool:
            drop = tuple(a for a in universe if a not in set(subset))
            return self._violates(
                dataclasses.replace(cell, drop_agents=drop), reference
            )

        minimized = ddmin(kept_now, keep)
        if len(minimized) < len(kept_now):
            steps.append(f"agents: {len(kept_now)} -> {len(minimized)}")
        drop = tuple(a for a in universe if a not in set(minimized))
        return dataclasses.replace(cell, drop_agents=drop)

    def _truncate_time(self, cell, reference, steps: List[str]):
        # Only collisions truncate meaningfully: they happen at a fixed
        # sim time, so "violates" is monotone in the horizon and binary
        # search applies.  Failure-to-stop verdicts need the full
        # horizon to be non-vacuous.
        if not reference.collided:
            return cell
        from .oracle import base_duration_s

        full = base_duration_s(cell)
        resolution = self.time_resolution_s
        lo_steps = max(1, int(round(self.min_duration_s / resolution)))
        hi_steps = max(lo_steps, int(round(full / resolution)))
        if hi_steps <= lo_steps:
            return cell

        def violates_at(n_steps: int) -> bool:
            duration = min(full, n_steps * resolution)
            return self._violates(
                dataclasses.replace(cell, duration_s=duration), reference
            )

        # Invariant: violates_at(hi) holds (the full horizon violates).
        lo, hi = lo_steps - 1, hi_steps
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if violates_at(mid):
                hi = mid
            else:
                lo = mid
        duration = min(full, hi * resolution)
        if duration < full:
            steps.append(f"duration: {full:g} s -> {duration:g} s")
        return dataclasses.replace(cell, duration_s=duration)


def shrink_violation(
    cell,
    time_resolution_s: float = 0.5,
    max_evaluations: int = 400,
) -> ShrinkResult:
    """Convenience wrapper: shrink one violating cell with fresh state."""
    shrinker = Shrinker(
        time_resolution_s=time_resolution_s,
        max_evaluations=max_evaluations,
    )
    return shrinker.shrink(cell)
