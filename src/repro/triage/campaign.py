"""The failure-triage campaign: harvest, shrink, classify, file, replay.

The end-to-end pipeline the ``triage_campaign`` experiment and the
triage bench workload run:

1. **Harvest** — seed violations by driving *unprotected* cells under
   composed multi-draw fault schedules
   (:meth:`~repro.robustness.chaos.FaultSpace.sample_schedule`), across
   two arms: the chaos drill lane and procedurally generated scenes.
   The injection space is deliberately harsher than the admission-gated
   campaign distribution (double-blind pairs allowed, long windows) —
   these are *injected* violations, the haystacks triage exists for.
2. **Shrink** — delta-debug each violating cell along the four axes
   (:class:`~repro.triage.shrink.Shrinker`).
3. **Fingerprint + dedup** — minimized failures with the same
   (invariant, dominant stage, mode trajectory) triple merge into one
   representative (first in campaign order wins).
4. **Classify** — the seeded re-execution protocol labels each unique
   failure deterministic / flaky / unreproducible
   (:func:`~repro.triage.flakes.classify_flakes`), on the fleet pool
   when a :class:`~repro.fleetops.supervisor.FleetConfig` is supplied.
5. **File + replay** — minimized cells land in the regression corpus
   (:mod:`repro.triage.corpus`) and the ``corpus_replay`` sweep verifies
   every record still reproduces bit-identically.

Everything but wall-clock timing is deterministic per config.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..robustness.chaos import FaultSpace, drive_seed
from .corpus import CorpusRecord, ReplayReport, replay_corpus, save_record
from .fingerprint import outcome_fingerprint
from .flakes import FlakeClassification, classify_flakes, label_stats
from .oracle import DRILL_LANE
from .shrink import Shrinker, ShrinkResult

#: The default violation-injection fault space: heavy on faults that
#: blind the proactive path and silence the reactive one, long windows,
#: double-blind pairs admitted (intensity 2.0 > the 1.75 admission
#: threshold).  This is the vocabulary violations are *seeded* from —
#: strictly harsher than anything the protected campaigns sample.
INJECTION_SPACE = FaultSpace(
    intensity=2.0,
    kind_weights=(
        ("camera_dropout", 3.0),
        ("camera_frame_drop", 1.5),
        ("radar_dropout", 3.0),
        ("radar_freeze", 1.0),
        ("perception_crash", 1.0),
        ("gps_denial", 0.8),
        ("can_burst", 0.8),
        ("latency_spike", 0.8),
    ),
    co_occurrence_prob=0.5,
    onset_window_s=(0.0, 2.0),
    duration_range_s=(2.0, 5.0),
)


@dataclass(frozen=True)
class TriageCampaignConfig:
    """One triage campaign, fully seeded."""

    seed: int = 0
    #: Chaos-arm candidates (unprotected drill lane).
    n_chaos: int = 12
    chaos_draws: int = 4
    chaos_duration_s: float = 6.0
    chaos_obstacle_m: float = 18.0
    #: Procgen-arm candidates (unprotected generated scenes).
    n_procgen: int = 10
    procgen_draws: int = 3
    procgen_intensity: float = 1.5
    injection_space: FaultSpace = field(
        default_factory=lambda: INJECTION_SPACE
    )
    #: Flake-protocol replicas per unique failure.
    n_replicas: int = 4
    #: Per-violation shrink budget (candidate drives).
    shrink_max_evaluations: int = 300
    time_resolution_s: float = 0.5
    #: Fleet pool for the flake protocol (None: serial, same results).
    fleet: Optional["object"] = None

    def __post_init__(self) -> None:
        if self.n_chaos < 0 or self.n_procgen < 0:
            raise ValueError("candidate counts cannot be negative")
        if self.n_replicas < 1:
            raise ValueError("need at least one flake replica")


@dataclass
class TriageCampaignResult:
    """Everything one triage campaign found, shrank, and filed."""

    config: TriageCampaignConfig
    corpus_dir: str
    n_candidates: int = 0
    violations: List[Tuple["object", "object"]] = field(default_factory=list)
    shrinks: List[ShrinkResult] = field(default_factory=list)
    classifications: List[FlakeClassification] = field(default_factory=list)
    #: minimized cell_id -> failure fingerprint (pre-dedup).
    fingerprints: Dict[str, str] = field(default_factory=dict)
    duplicates_merged: int = 0
    corpus_written: int = 0
    replay: Optional[ReplayReport] = None
    shrink_evaluations: int = 0
    wall_s: float = 0.0

    @property
    def n_violations(self) -> int:
        return len(self.violations)

    @property
    def unique_failures(self) -> int:
        return len(set(self.fingerprints.values()))

    @property
    def mean_reduction_ratio(self) -> float:
        if not self.shrinks:
            return 0.0
        return sum(s.reduction_ratio for s in self.shrinks) / len(self.shrinks)

    @property
    def still_violates_rate(self) -> float:
        if not self.shrinks:
            return 1.0
        return sum(s.still_violates for s in self.shrinks) / len(self.shrinks)

    @property
    def shrink_evals_per_s(self) -> float:
        if self.wall_s <= 0:
            return 0.0
        return self.shrink_evaluations / self.wall_s

    def label_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for c in self.classifications:
            counts[c.label] = counts.get(c.label, 0) + 1
        return counts

    def format_report(self) -> str:
        lines = [
            f"triage campaign: {self.n_candidates} candidates -> "
            f"{self.n_violations} violations -> "
            f"{self.unique_failures} unique failures -> "
            f"{self.corpus_written} corpus records"
        ]
        for shrink in self.shrinks:
            cell = shrink.original
            lines.append(
                f"  {cell.origin or cell.cell_id}: "
                f"faults {shrink.original_faults}->{shrink.minimized_faults}, "
                f"agents {shrink.original_agents}->{shrink.minimized_agents}, "
                f"{shrink.original_duration_s:g}s->"
                f"{shrink.minimized_duration_s:g}s "
                f"({shrink.reduction_ratio:.0%} reduction, "
                f"{', '.join(shrink.steps) or 'already minimal'})"
            )
        for c in self.classifications:
            lines.append(
                f"  {c.cell_id}: {c.label} "
                f"(violated {c.n_violating}/{c.n_replicas} replicas)"
            )
        if self.replay is not None:
            lines.append(
                f"  corpus replay: {self.replay.n_pass}/"
                f"{self.replay.n_records} bit-identical"
            )
        return "\n".join(lines)


def harvest_candidates(config: TriageCampaignConfig) -> List["object"]:
    """The seeded candidate cells of both arms, in campaign order."""
    from ..fleetops.cells import TriageCell
    from ..scene.procgen import DEFAULT_SPACE

    space = config.injection_space
    candidates: List[TriageCell] = []
    for i in range(config.n_chaos):
        candidates.append(
            TriageCell(
                scene=DRILL_LANE,
                scene_seed=config.seed,
                sim_seed=drive_seed(config.seed, i),
                faults=space.sample_schedule(
                    config.seed, i, config.chaos_draws
                ),
                safety_net=False,
                duration_s=config.chaos_duration_s,
                obstacle_distance_m=config.chaos_obstacle_m,
                invariant="no_collision_or_safe_stop",
                origin=f"chaos:drill-lane:{config.seed}:{i}:raw",
            )
        )
    pspace = DEFAULT_SPACE.with_intensity(config.procgen_intensity)
    for idx in range(config.n_procgen):
        scene = pspace.sample(config.seed, idx)
        candidates.append(
            TriageCell(
                scene=f"procgen:{scene.topology}",
                scene_seed=config.seed,
                sim_seed=scene.seed,
                faults=space.sample_schedule(
                    config.seed, 1_000_000 + idx, config.procgen_draws
                ),
                safety_net=False,
                space=pspace,
                cell_index=idx,
                invariant="no_collision_or_safe_stop",
                origin=(
                    f"procgen:{config.seed}:{idx}"
                    f":i{pspace.intensity:g}"
                ),
            )
        )
    return candidates


def run_triage_campaign(
    config: Optional[TriageCampaignConfig] = None,
    corpus_dir: str = "corpus",
) -> TriageCampaignResult:
    """Run the full harvest -> shrink -> classify -> file -> replay loop."""
    from ..fleetops.cells import CellSpec, run_cell

    config = config or TriageCampaignConfig()
    started = time.perf_counter()
    result = TriageCampaignResult(config=config, corpus_dir=corpus_dir)

    # 1. Harvest: run every candidate, keep the violators.
    candidates = harvest_candidates(config)
    result.n_candidates = len(candidates)
    for cell in candidates:
        cell_result = run_cell(CellSpec(kind="triage", index=0, cell=cell))
        if cell_result.record.violated:
            result.violations.append((cell, cell_result.record))

    # 2. Shrink each violation (fresh shrinker per cell: deterministic).
    for cell, _outcome in result.violations:
        shrinker = Shrinker(
            time_resolution_s=config.time_resolution_s,
            max_evaluations=config.shrink_max_evaluations,
        )
        shrink = shrinker.shrink(cell)
        result.shrinks.append(shrink)
        result.shrink_evaluations += shrink.evaluations

    # 3. Fingerprint the minimized failures; dedup keep-first.
    unique: List[Tuple[str, ShrinkResult]] = []
    seen: Dict[str, str] = {}
    for shrink in result.shrinks:
        fingerprint = outcome_fingerprint(shrink.minimized_outcome)
        result.fingerprints[shrink.minimized.cell_id] = fingerprint
        if fingerprint in seen:
            result.duplicates_merged += 1
            continue
        seen[fingerprint] = shrink.minimized.cell_id
        unique.append((fingerprint, shrink))

    # 4. Flake-classify the unique minimized failures.
    if unique:
        result.classifications = classify_flakes(
            [shrink.minimized for _fp, shrink in unique],
            n_replicas=config.n_replicas,
            fleet=config.fleet,
        )

    # 5. File each unique failure in the corpus.
    labels = {c.cell_id: c.label for c in result.classifications}
    for fingerprint, shrink in unique:
        save_record(
            corpus_dir,
            CorpusRecord(
                fingerprint=fingerprint,
                invariant=shrink.minimized.invariant,
                origin=shrink.original.origin,
                label=labels.get(shrink.minimized.cell_id, "unclassified"),
                cell=shrink.minimized,
                outcome=shrink.minimized_outcome,
                drive_fingerprint=shrink.minimized_fingerprint,
                reduction_ratio=shrink.reduction_ratio,
            ),
        )
        result.corpus_written += 1

    # 6. The corpus_replay sweep: every record must re-violate bit-identically.
    result.replay = replay_corpus(corpus_dir)

    result.wall_s = time.perf_counter() - started
    return result


def triage_summary(result: TriageCampaignResult) -> Dict[str, float]:
    """Flat numeric view (experiment rows, bench snapshots)."""
    counts = result.label_counts()
    replay = result.replay
    summary = {
        "n_candidates": float(result.n_candidates),
        "n_violations": float(result.n_violations),
        "unique_failures": float(result.unique_failures),
        "duplicates_merged": float(result.duplicates_merged),
        "mean_reduction_ratio": result.mean_reduction_ratio,
        "minimized_still_violates_rate": result.still_violates_rate,
        "shrink_evaluations": float(result.shrink_evaluations),
        "shrink_evals_per_s": result.shrink_evals_per_s,
        "corpus_records": float(result.corpus_written),
        "corpus_replay_pass_rate": (
            1.0 if replay is None else replay.pass_rate
        ),
        "corpus_quarantined": (
            0.0 if replay is None else float(replay.n_quarantined)
        ),
        "n_deterministic": float(counts.get("deterministic", 0)),
        "n_flaky": float(counts.get("flaky", 0)),
        "n_unreproducible": float(counts.get("unreproducible", 0)),
        "wall_s": result.wall_s,
    }
    for label, stats in label_stats(result.classifications).items():
        summary[f"{label}_mean_violation_rate"] = stats[
            "mean_violation_rate"
        ]
    return summary
