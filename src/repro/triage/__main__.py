"""Command-line front door for the failure-triage engine.

Usage::

    python -m repro.triage replay <cell_id> [--trace out.json]
    python -m repro.triage campaign [--seed N] [--corpus DIR]
    python -m repro.triage sweep [--corpus DIR]
    python -m repro.triage list [--corpus DIR]

``sweep`` is the ``corpus_replay`` runner CI uses: exit 0 iff every
corpus record still violates its filed invariant with a bit-identical
drive fingerprint (an empty corpus passes vacuously).
"""

from __future__ import annotations

import argparse
import sys

from .campaign import TriageCampaignConfig, run_triage_campaign
from .corpus import load_corpus, replay_corpus
from .replay import replay_cell


def _cmd_replay(args: argparse.Namespace) -> int:
    result = replay_cell(args.cell_id, trace_path=args.trace)
    violations = getattr(result.record, "violations", ())
    return 1 if violations else 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    config = TriageCampaignConfig(
        seed=args.seed,
        n_chaos=args.n_chaos,
        n_procgen=args.n_procgen,
        n_replicas=args.replicas,
    )
    result = run_triage_campaign(config, corpus_dir=args.corpus)
    print(result.format_report())
    ok = (
        result.still_violates_rate == 1.0
        and result.replay is not None
        and result.replay.ok
    )
    return 0 if ok else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    report = replay_corpus(args.corpus)
    print(
        f"corpus replay: {report.n_pass}/{report.n_records} bit-identical, "
        f"{report.n_quarantined} quarantined"
    )
    for fingerprint, why in report.failures:
        print(f"  FAIL {fingerprint}: {why}")
    return 0 if report.ok else 1


def _cmd_list(args: argparse.Namespace) -> int:
    state = load_corpus(args.corpus, quarantine=False)
    print(f"{len(state.records)} corpus record(s) in {args.corpus}")
    for record in state.records:
        print(
            f"  {record.fingerprint}  {record.invariant:<28} "
            f"{record.label:<15} reduction={record.reduction_ratio:.0%}  "
            f"from {record.origin or '?'}"
        )
    if state.quarantined:
        print(f"  ({len(state.quarantined)} unreadable, left in place)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.triage")
    sub = parser.add_subparsers(dest="command", required=True)

    p_replay = sub.add_parser("replay", help="re-run one cell by id")
    p_replay.add_argument("cell_id")
    p_replay.add_argument("--trace", default=None, metavar="PATH")
    p_replay.set_defaults(func=_cmd_replay)

    p_campaign = sub.add_parser("campaign", help="run a triage campaign")
    p_campaign.add_argument("--seed", type=int, default=0)
    p_campaign.add_argument("--n-chaos", type=int, default=12)
    p_campaign.add_argument("--n-procgen", type=int, default=10)
    p_campaign.add_argument("--replicas", type=int, default=4)
    p_campaign.add_argument("--corpus", default="corpus")
    p_campaign.set_defaults(func=_cmd_campaign)

    p_sweep = sub.add_parser("sweep", help="replay the regression corpus")
    p_sweep.add_argument("--corpus", default="corpus")
    p_sweep.set_defaults(func=_cmd_sweep)

    p_list = sub.add_parser("list", help="list corpus records")
    p_list.add_argument("--corpus", default="corpus")
    p_list.set_defaults(func=_cmd_list)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
