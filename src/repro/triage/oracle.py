"""The triage oracle: execute a fully-explicit cell and judge it.

Every question the failure-triage engine asks — "does this candidate
still violate?", "is this replica flaky?", "does this corpus record
still reproduce bit-identically?" — reduces to executing one
:class:`~repro.fleetops.cells.TriageCell` and evaluating its target
invariant.  This module is that single execution path, shared by the
shrinker, the flake protocol, the corpus replayer, and the fleet runner
(``run_cell`` on a ``kind="triage"`` spec dispatches here).

The contract matches every other cell kind: **pure per cell**.  The
scene regenerates from ``(scene, scene_seed, cell_index, space)``, the
fault schedule is carried explicitly (never re-rolled), the simulation
seed is carried explicitly, and dropped agents are removed by rebuilding
the world — so a candidate produced by deleting one fault from a
violating cell re-runs bit-identically anywhere, which is what makes a
shrunk counterexample trustworthy.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple

#: The scene name for the chaos drill lane (single obstacle, straight).
DRILL_LANE = "drill-lane"

#: Default drive horizon for drill-lane cells with no explicit duration.
DRILL_DURATION_S = 10.0


@dataclass(frozen=True)
class TriageOutcome:
    """The verdict of one triage-cell execution (picklable, frozen).

    ``violated`` answers the shrinker's only question.  The remaining
    fields feed the failure fingerprint (``invariant`` +
    ``dominant_stage`` + ``mode_trajectory``), the reduction-ratio
    accounting (``n_faults`` / ``n_agents`` / ``duration_s``), and the
    human-readable triage report.
    """

    violated: bool
    invariant: str
    detail: str
    collided: bool
    stopped: bool
    entered_safe_stop: bool
    final_mode: str
    min_clearance_m: float
    duration_s: float
    n_faults: int
    n_agents: int
    dominant_stage: str
    mode_trajectory: Tuple[str, ...]

    @property
    def failure_class(self) -> str:
        """How the invariant broke: ``collision`` vs ``overrun``.

        Both are violations of ``no_collision_or_safe_stop``, but hitting
        something and sailing past a blocked corridor end are different
        failure modes; the fingerprint's violation kind distinguishes
        them (``none`` for a passing cell).
        """
        if not self.violated:
            return "none"
        return "collision" if self.collided else "overrun"

    @property
    def violation_kind(self) -> str:
        """The invariant plus its failure class — the fingerprint's
        first component."""
        return f"{self.invariant}/{self.failure_class}"


def build_triage_scene(cell):
    """Regenerate the (possibly agent-stripped) scene for *cell*.

    Returns ``None`` for the drill lane, which has no
    :class:`~repro.scene.corridors.CorridorScenario` — the runner builds
    its single-obstacle world directly.
    """
    if cell.scene == DRILL_LANE:
        return None
    if cell.scene.startswith("procgen:"):
        from ..scene.procgen import DEFAULT_SPACE

        topology = cell.scene.split(":", 1)[1]
        space = DEFAULT_SPACE if cell.space is None else cell.space
        scenario = space.sample(
            cell.scene_seed, cell.cell_index, topology=topology
        )
    else:
        from ..scene.providers import resolve_scene

        scenario = resolve_scene(cell.scene, cell.scene_seed)
    if cell.drop_agents:
        scenario = strip_agents(scenario, cell.drop_agents)
    return scenario


def strip_agents(scenario, drop: Tuple[int, ...]):
    """*scenario* with the agents in *drop* removed (scripts included).

    Rebuilds the world rather than mutating it — scenarios are frozen,
    and the shrinker leans on every candidate being a fresh value.
    """
    from ..scene.procgen import ScriptedWorld
    from ..scene.world import World

    dropped = set(drop)
    world = scenario.world
    keep = [a for a in world.agents if a.agent_id not in dropped]
    if isinstance(world, ScriptedWorld):
        new_world = ScriptedWorld(
            obstacles=list(world.obstacles),
            agents=keep,
            landmarks=list(world.landmarks),
            scripts={
                agent_id: script
                for agent_id, script in world.scripts.items()
                if agent_id not in dropped
            },
        )
    else:
        new_world = World(
            obstacles=list(world.obstacles),
            agents=keep,
            landmarks=list(world.landmarks),
        )
    return dataclasses.replace(scenario, world=new_world)


def scene_agent_ids(cell) -> Tuple[int, ...]:
    """The agent ids of the cell's *unstripped* scene, in world order.

    The universe the agent-subset shrink axis runs ddmin over.
    """
    probe = dataclasses.replace(cell, drop_agents=())
    scenario = build_triage_scene(probe)
    if scenario is None:
        return ()
    return tuple(a.agent_id for a in scenario.world.agents)


def base_duration_s(cell) -> float:
    """The cell's drive horizon before any time-axis truncation."""
    if cell.duration_s is not None:
        return cell.duration_s
    if cell.scene == DRILL_LANE:
        return DRILL_DURATION_S
    scenario = build_triage_scene(cell)
    return scenario.duration_s


def _drive_once(cell):
    """Build the sov for *cell* and drive it; returns (scenario, sov, result)."""
    from ..robustness.faults import FaultScenario
    from ..runtime.sov import SovConfig, SystemsOnAVehicle

    faults = tuple(cell.faults)
    fault_scenario = (
        FaultScenario(
            name=f"triage-{cell.sim_seed}",
            faults=faults,
            description="triage-explicit schedule",
        )
        if faults
        else None
    )
    config = SovConfig(
        reactive_enabled=cell.safety_net,
        degradation_enabled=cell.safety_net,
        scenario=fault_scenario,
        seed=cell.sim_seed,
    )
    if cell.scene == DRILL_LANE:
        from ..scene.lanes import straight_corridor
        from ..scene.world import Obstacle, World
        from ..vehicle.dynamics import VehicleState

        scenario = None
        sov = SystemsOnAVehicle(
            world=World(
                obstacles=[
                    Obstacle(cell.obstacle_distance_m, 0.0, radius_m=0.4)
                ]
            ),
            lane_map=straight_corridor(300.0, 1),
            initial_state=VehicleState(speed_mps=cell.initial_speed_mps),
            config=config,
        )
    else:
        from ..scene.corridors import make_corridor_sov

        scenario = build_triage_scene(cell)
        sov = make_corridor_sov(
            scenario, safety_net=cell.safety_net, config=config
        )
    sov.enable_attribution()
    duration = (
        cell.duration_s
        if cell.duration_s is not None
        else (DRILL_DURATION_S if scenario is None else scenario.duration_s)
    )
    return scenario, sov, sov.drive(duration), duration


def execute_triage_cell(cell) -> Tuple[TriageOutcome, "object"]:
    """Run *cell* and evaluate its target invariant.

    Returns ``(outcome, DriveResult)``; the caller fingerprints the
    result (:func:`repro.testing.invariants.drive_fingerprint`) for the
    bit-identity checks the corpus replayer performs.
    """
    from ..testing.invariants import (
        check_drive_invariant,
        degradation_trajectory,
        dominant_attribution_stage,
    )

    scenario, sov, result, duration = _drive_once(cell)
    result2 = None
    if cell.invariant == "replay_determinism":
        _s2, _sov2, result2, _d2 = _drive_once(cell)
    blocked = bool(getattr(scenario, "blocked", False))
    violated, detail = check_drive_invariant(
        cell.invariant,
        result,
        blocked=blocked,
        sov=sov,
        result2=result2,
        faults=cell.faults,
    )
    n_agents = 0 if scenario is None else len(scenario.world.agents)
    outcome = TriageOutcome(
        violated=violated,
        invariant=cell.invariant,
        detail=detail,
        collided=result.collided,
        stopped=result.stopped,
        entered_safe_stop=result.entered_safe_stop,
        final_mode=result.final_mode,
        min_clearance_m=result.min_obstacle_clearance_m,
        duration_s=duration,
        n_faults=len(cell.faults),
        n_agents=n_agents,
        dominant_stage=dominant_attribution_stage(result),
        mode_trajectory=degradation_trajectory(sov),
    )
    return outcome, result
