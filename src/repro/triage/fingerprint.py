"""Failure fingerprinting: dedup violations across campaigns.

Two violations are "the same failure" when they violate the same
invariant, the Eq. 1 attribution charges the same dominant stage, and
the degradation supervisor walked the same mode trajectory — the triple
that characterizes *how* the stack failed rather than *where in the
campaign grid* it happened to surface.  The fingerprint is a stable
sha256 prefix of that triple (never Python's ``hash()``, which is
per-process salted), so corpus filenames and cross-campaign dedup agree
on every machine.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

#: Hex digits kept from the digest — 64 bits, comfortably collision-free
#: for any plausible corpus size, short enough for filenames and logs.
FINGERPRINT_HEX_DIGITS = 16


def failure_fingerprint(
    invariant: str,
    dominant_stage: str,
    mode_trajectory: Sequence[str],
) -> str:
    """The stable identity of one failure mode."""
    blob = repr((invariant, dominant_stage, tuple(mode_trajectory)))
    digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()
    return digest[:FINGERPRINT_HEX_DIGITS]


def outcome_fingerprint(outcome) -> str:
    """Fingerprint a :class:`~repro.triage.oracle.TriageOutcome`.

    The invariant-kind component is the outcome's ``violation_kind`` —
    invariant name plus failure class — so a collision and a
    blocked-corridor overrun of the same invariant stay distinct
    failures even when neither produced a deadline miss (dominant stage
    ``none``) or a degradation transition (trajectory ``('NOMINAL',)``),
    as is typical for unprotected harvest drives.
    """
    kind = getattr(outcome, "violation_kind", None) or outcome.invariant
    return failure_fingerprint(
        kind, outcome.dominant_stage, outcome.mode_trajectory
    )
