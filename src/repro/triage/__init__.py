"""Failure triage: shrink violating cells, classify flakes, file them.

The pipeline a violation rides after a campaign surfaces it:

* :mod:`~repro.triage.oracle` — execute a fully-explicit
  :class:`~repro.fleetops.cells.TriageCell` and judge its invariant.
* :mod:`~repro.triage.shrink` — delta-debug the cell along four axes
  (fault schedule, agent set, scene topology, time horizon) to a
  1-minimal counterexample that still violates.
* :mod:`~repro.triage.fingerprint` — stable failure identity
  (invariant, dominant attribution stage, degradation trajectory).
* :mod:`~repro.triage.flakes` — seeded re-execution protocol labeling
  failures deterministic / flaky / unreproducible.
* :mod:`~repro.triage.corpus` — the CRC-sealed on-disk regression
  corpus and the bit-exact ``corpus_replay`` sweep.
* :mod:`~repro.triage.campaign` — the end-to-end harvest → shrink →
  dedup → classify → file → replay loop.
* :mod:`~repro.triage.replay` — serial ``--cell-id`` replay of any
  campaign cell from its printed id.
"""

from .campaign import (
    INJECTION_SPACE,
    TriageCampaignConfig,
    TriageCampaignResult,
    harvest_candidates,
    run_triage_campaign,
    triage_summary,
)
from .corpus import (
    CorpusError,
    CorpusRecord,
    CorpusState,
    ReplayReport,
    load_corpus,
    load_record,
    replay_corpus,
    save_record,
)
from .fingerprint import failure_fingerprint, outcome_fingerprint
from .flakes import (
    FLAKE_LABELS,
    FlakeClassification,
    classify_flakes,
    classify_outcomes,
    label_stats,
    replica_cell,
)
from .oracle import TriageOutcome, execute_triage_cell
from .replay import export_cell_trace, replay_cell
from .shrink import Shrinker, ShrinkResult, ddmin, shrink_violation

__all__ = [
    "INJECTION_SPACE",
    "TriageCampaignConfig",
    "TriageCampaignResult",
    "harvest_candidates",
    "run_triage_campaign",
    "triage_summary",
    "CorpusError",
    "CorpusRecord",
    "CorpusState",
    "ReplayReport",
    "load_corpus",
    "load_record",
    "replay_corpus",
    "save_record",
    "failure_fingerprint",
    "outcome_fingerprint",
    "FLAKE_LABELS",
    "FlakeClassification",
    "classify_flakes",
    "classify_outcomes",
    "label_stats",
    "replica_cell",
    "TriageOutcome",
    "execute_triage_cell",
    "export_cell_trace",
    "replay_cell",
    "Shrinker",
    "ShrinkResult",
    "ddmin",
    "shrink_violation",
]
