"""Flake classification: seeded re-execution of violating cells.

A violation worth a corpus slot should be labeled before it is filed:
does it reproduce deterministically, or only under some simulation-seed
draws?  The protocol runs ``n_replicas`` executions of each violating
cell on the fleet pool:

* **replica 0** is the *exact* original cell — same scene seed, same
  fault schedule, same simulation seed.  Cells are pure per spec, so
  this replica must violate; if it does not, something outside the seed
  contract is leaking and the cell is labeled ``unreproducible``.
* **replicas k > 0** perturb only the simulation seed (derived from
  ``SeedSequence((sim_seed, k, stream))``), keeping the scene and the
  fault schedule fixed.  A violation that survives every perturbation is
  ``deterministic`` — the schedule itself forces the failure.  One that
  vanishes under some draws is ``flaky`` — it needs the stochastic
  fault realizations (frame-drop coin flips, CAN loss draws) to line up.

Per-label MTTR-style stats (violation rate, first violating replica,
expected replays per reproduction) ride along for the triage report.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Seed-stream domain tag for flake-replica sim-seed derivation.
FLAKE_SEED_STREAM = 0xF7A4E

#: The label vocabulary, in decreasing order of reproducibility.
FLAKE_LABELS = ("deterministic", "flaky", "unreproducible")


def replica_cell(cell, k: int):
    """Replica *k* of *cell*: exact for k=0, sim-seed-perturbed after."""
    if k < 0:
        raise ValueError("replica index must be non-negative")
    if k == 0:
        return dataclasses.replace(cell, replica=0)
    perturbed = int(
        np.random.SeedSequence(
            (cell.sim_seed, k, FLAKE_SEED_STREAM)
        ).generate_state(1)[0]
    )
    return dataclasses.replace(cell, sim_seed=perturbed, replica=k)


@dataclass(frozen=True)
class FlakeClassification:
    """One cell's verdict under the re-execution protocol."""

    cell_id: str
    label: str
    n_replicas: int
    n_violating: int
    violation_rate: float
    #: Index of the first violating replica (-1: none violated).
    first_violation_replica: int
    #: MTTR-style expectation: replays needed per reproduction
    #: (``n_replicas`` when nothing reproduced).
    replays_per_violation: float
    mean_wall_s: float
    #: Worker-side tracebacks for replicas that errored instead of
    #: completing (surfaced via FleetRunReport.failure_details).
    errors: Tuple[str, ...] = ()


def classify_outcomes(
    cell_id: str,
    violated: Sequence[bool],
    walls: Sequence[float] = (),
    errors: Sequence[str] = (),
) -> FlakeClassification:
    """Pure classification from per-replica violation flags.

    ``violated[0]`` must correspond to replica 0 (the exact replay).
    """
    if not violated:
        raise ValueError("need at least one replica")
    flags = [bool(v) for v in violated]
    n = len(flags)
    n_violating = sum(flags)
    if not flags[0]:
        label = "unreproducible"
    elif n_violating == n:
        label = "deterministic"
    else:
        label = "flaky"
    first = flags.index(True) if n_violating else -1
    return FlakeClassification(
        cell_id=cell_id,
        label=label,
        n_replicas=n,
        n_violating=n_violating,
        violation_rate=n_violating / n,
        first_violation_replica=first,
        replays_per_violation=(n / n_violating) if n_violating else float(n),
        mean_wall_s=(sum(walls) / len(walls)) if walls else 0.0,
        errors=tuple(errors),
    )


def classify_flakes(
    cells: Sequence,
    n_replicas: int = 4,
    fleet=None,
) -> List[FlakeClassification]:
    """Run the re-execution protocol for every cell in *cells*.

    *fleet* is a :class:`~repro.fleetops.supervisor.FleetConfig` to run
    the replica grid on the supervised worker pool (None: serially
    in-process — same results, cells are pure).  Replicas that error
    count as non-violating, with the worker traceback attached.
    """
    from ..fleetops.cells import CellSpec, run_cell

    if n_replicas < 1:
        raise ValueError("need at least one replica")
    specs: List[CellSpec] = []
    owners: Dict[str, Tuple[int, int]] = {}
    for i, cell in enumerate(cells):
        for k in range(n_replicas):
            replica = replica_cell(cell, k)
            spec = CellSpec(
                kind="triage", index=i * n_replicas + k, cell=replica
            )
            if spec.cell_id in owners:
                raise ValueError(
                    f"duplicate replica id {spec.cell_id}; classify "
                    "unique cells (dedup by fingerprint first)"
                )
            owners[spec.cell_id] = (i, k)
            specs.append(spec)

    flags: Dict[int, List[Optional[bool]]] = {
        i: [None] * n_replicas for i in range(len(cells))
    }
    walls: Dict[int, List[float]] = {i: [] for i in range(len(cells))}
    errors: Dict[int, List[str]] = {i: [] for i in range(len(cells))}

    if fleet is not None:
        from ..fleetops.supervisor import FleetSupervisor

        report = FleetSupervisor(fleet).run(specs)
        for result in report.results:
            i, k = owners[result.cell_id]
            flags[i][k] = bool(result.record.violated)
            walls[i].append(result.wall_s)
        for cell_id, traceback_text in report.failure_details.items():
            if cell_id in owners:
                i, _k = owners[cell_id]
                errors[i].append(traceback_text)
    else:
        for spec in specs:
            i, k = owners[spec.cell_id]
            try:
                result = run_cell(spec)
            except Exception as exc:  # an erroring replica is data here
                errors[i].append(f"{type(exc).__name__}: {exc}")
                continue
            flags[i][k] = bool(result.record.violated)
            walls[i].append(result.wall_s)

    classifications: List[FlakeClassification] = []
    for i, cell in enumerate(cells):
        per_replica = [bool(f) for f in flags[i]]  # None (lost) -> False
        classifications.append(
            classify_outcomes(
                cell.cell_id,
                per_replica,
                walls=walls[i],
                errors=errors[i],
            )
        )
    return classifications


def label_stats(
    classifications: Sequence[FlakeClassification],
) -> Dict[str, Dict[str, float]]:
    """Per-label aggregate stats for the triage report."""
    stats: Dict[str, Dict[str, float]] = {}
    for label in FLAKE_LABELS:
        members = [c for c in classifications if c.label == label]
        if not members:
            continue
        stats[label] = {
            "count": float(len(members)),
            "mean_violation_rate": (
                sum(c.violation_rate for c in members) / len(members)
            ),
            "mean_replays_per_violation": (
                sum(c.replays_per_violation for c in members) / len(members)
            ),
            "mean_wall_s": (
                sum(c.mean_wall_s for c in members) / len(members)
            ),
        }
    return stats
