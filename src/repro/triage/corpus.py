"""The quarantined regression corpus: minimized counterexamples, forever.

Every failure the triage engine minimizes lands here as one CRC-sealed
JSON file per failure fingerprint — the same discipline as the campaign
journal (:mod:`repro.fleetops.journal`): a canonical-JSON CRC32 seal
over the record, a zlib+pickle payload for the cell and outcome, atomic
tmp-then-rename writes so a crash can never leave a half-written record,
and trusted-prefix semantics on load (a corrupt file is quarantined to a
``.corrupt`` sibling, never silently skipped, never fatal).

:func:`replay_corpus` is the ``corpus_replay`` runner CI sweeps: every
stored cell re-executes through the standard ``run_cell`` path and must
(a) violate the same invariant it was filed under and (b) reproduce the
stored drive fingerprint **bit for bit** — the strongest replay claim
the repo knows how to make.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..fleetops.journal import _check_seal, _seal

CORPUS_VERSION = 1

#: Suffix a corrupt record is renamed to on load (quarantine, not loss).
CORRUPT_SUFFIX = ".corrupt"


class CorpusError(Exception):
    """A corpus record that cannot be trusted."""


@dataclass(frozen=True)
class CorpusRecord:
    """One minimized counterexample, sealed on disk."""

    fingerprint: str
    invariant: str
    #: The campaign cell id the violation was harvested from.
    origin: str
    #: Flake label at filing time (deterministic / flaky / unreproducible).
    label: str
    #: The minimized TriageCell (re-runnable anywhere).
    cell: "object"
    #: The minimized cell's TriageOutcome at filing time.
    outcome: "object"
    #: The minimized drive's bit-exact fingerprint — replay must match.
    drive_fingerprint: Tuple
    reduction_ratio: float


def _encode(obj) -> str:
    return base64.b64encode(
        zlib.compress(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    ).decode("ascii")


def _decode(payload: str):
    return pickle.loads(zlib.decompress(base64.b64decode(payload)))


def record_filename(fingerprint: str) -> str:
    return f"{fingerprint}.json"


def record_path(directory: str, record: CorpusRecord) -> str:
    return os.path.join(directory, record_filename(record.fingerprint))


def save_record(
    directory: str, record: CorpusRecord, fsync: bool = True
) -> str:
    """Atomically write *record* into *directory*; returns the path.

    Write-to-temp then ``os.replace`` — a reader (or a crash) sees
    either the old record or the new one, never a torn file.
    """
    os.makedirs(directory, exist_ok=True)
    sealed = _seal(
        {
            "v": CORPUS_VERSION,
            "fingerprint": record.fingerprint,
            "invariant": record.invariant,
            "origin": record.origin,
            "label": record.label,
            "reduction_ratio": record.reduction_ratio,
            "payload": _encode(
                (record.cell, record.outcome, record.drive_fingerprint)
            ),
        }
    )
    path = record_path(directory, record)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(sealed, handle, sort_keys=True, separators=(",", ":"))
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def load_record(path: str) -> CorpusRecord:
    """Load and verify one sealed record; raises :class:`CorpusError`."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            sealed = json.load(handle)
    except (OSError, ValueError) as exc:
        raise CorpusError(f"unreadable corpus record {path!r}: {exc}")
    if not isinstance(sealed, dict) or not _check_seal(sealed):
        raise CorpusError(f"corpus record {path!r} fails its CRC seal")
    if sealed.get("v") != CORPUS_VERSION:
        raise CorpusError(
            f"corpus record {path!r} has version {sealed.get('v')!r}, "
            f"expected {CORPUS_VERSION}"
        )
    try:
        cell, outcome, drive_fp = _decode(sealed["payload"])
    except Exception as exc:
        raise CorpusError(f"corpus record {path!r} payload undecodable: {exc}")
    return CorpusRecord(
        fingerprint=sealed["fingerprint"],
        invariant=sealed["invariant"],
        origin=sealed["origin"],
        label=sealed["label"],
        cell=cell,
        outcome=outcome,
        drive_fingerprint=tuple(drive_fp),
        reduction_ratio=float(sealed["reduction_ratio"]),
    )


@dataclass
class CorpusState:
    """Everything a corpus sweep recovered from disk."""

    directory: str
    records: List[CorpusRecord] = field(default_factory=list)
    #: Paths quarantined this load (renamed to ``*.corrupt``).
    quarantined: List[str] = field(default_factory=list)

    @property
    def fingerprints(self) -> Tuple[str, ...]:
        return tuple(r.fingerprint for r in self.records)


def load_corpus(directory: str, quarantine: bool = True) -> CorpusState:
    """Load every record in *directory*, quarantining corrupt files.

    Records come back sorted by fingerprint (filename order), so a sweep
    is deterministic regardless of directory iteration order.
    """
    state = CorpusState(directory=directory)
    if not os.path.isdir(directory):
        return state
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(directory, name)
        try:
            state.records.append(load_record(path))
        except CorpusError:
            if quarantine:
                os.replace(path, path + CORRUPT_SUFFIX)
            state.quarantined.append(path)
    return state


@dataclass(frozen=True)
class ReplayReport:
    """The ``corpus_replay`` sweep verdict."""

    n_records: int
    n_pass: int
    n_quarantined: int
    #: (fingerprint, why) for every record that failed to re-violate.
    failures: Tuple[Tuple[str, str], ...]

    @property
    def n_fail(self) -> int:
        return len(self.failures)

    @property
    def pass_rate(self) -> float:
        if self.n_records == 0:
            return 1.0
        return self.n_pass / self.n_records

    @property
    def ok(self) -> bool:
        return not self.failures


def replay_corpus(directory: str, quarantine: bool = True) -> ReplayReport:
    """Re-execute every corpus record and verify it still reproduces.

    A record passes when the re-run (a) violates the invariant it was
    filed under and (b) matches the stored drive fingerprint exactly.
    """
    from ..fleetops.cells import CellSpec, run_cell

    state = load_corpus(directory, quarantine=quarantine)
    failures: List[Tuple[str, str]] = []
    n_pass = 0
    for record in state.records:
        try:
            result = run_cell(
                CellSpec(kind="triage", index=0, cell=record.cell)
            )
        except Exception as exc:
            failures.append(
                (record.fingerprint, f"replay raised {type(exc).__name__}: {exc}")
            )
            continue
        outcome = result.record
        if not outcome.violated:
            failures.append(
                (record.fingerprint, "minimized cell no longer violates")
            )
        elif outcome.invariant != record.invariant:
            failures.append(
                (
                    record.fingerprint,
                    f"violates {outcome.invariant!r}, filed under "
                    f"{record.invariant!r}",
                )
            )
        elif tuple(result.fingerprint) != tuple(record.drive_fingerprint):
            failures.append(
                (record.fingerprint, "drive fingerprint diverged from filing")
            )
        else:
            n_pass += 1
    return ReplayReport(
        n_records=len(state.records),
        n_pass=n_pass,
        n_quarantined=len(state.quarantined),
        failures=tuple(failures),
    )
