"""Battery model (paper Sec. III-B).

A simple state-of-charge integrator over the loads of the vehicle and the
AD payload.  Used by the closed-loop SoV simulation to account energy and
by the economics example to turn watts into lost revenue hours.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import calibration


class BatteryDepletedError(RuntimeError):
    """Raised when a drain would take the state of charge below zero."""


@dataclass
class Battery:
    """An energy reservoir with draw-tracking.

    Defaults to the paper's 6 kW·h pack.
    """

    capacity_j: float = calibration.BATTERY_CAPACITY_J
    charge_j: float = field(default=-1.0)

    def __post_init__(self) -> None:
        if self.capacity_j <= 0:
            raise ValueError("capacity must be positive")
        if self.charge_j < 0:
            self.charge_j = self.capacity_j
        if self.charge_j > self.capacity_j:
            raise ValueError("charge cannot exceed capacity")

    @property
    def state_of_charge(self) -> float:
        """Remaining fraction in [0, 1]."""
        return self.charge_j / self.capacity_j

    def drain(self, power_w: float, duration_s: float) -> float:
        """Draw *power_w* for *duration_s*; returns energy consumed (J)."""
        if power_w < 0 or duration_s < 0:
            raise ValueError("power and duration must be non-negative")
        energy = power_w * duration_s
        if energy > self.charge_j + 1e-9:
            raise BatteryDepletedError(
                f"requested {energy:.1f} J but only {self.charge_j:.1f} J remain"
            )
        self.charge_j = max(0.0, self.charge_j - energy)
        return energy

    def runtime_at_power_s(self, power_w: float) -> float:
        """How long the current charge sustains *power_w*."""
        if power_w <= 0:
            raise ValueError("power must be positive")
        return self.charge_j / power_w

    def recharge(self) -> None:
        self.charge_j = self.capacity_j
