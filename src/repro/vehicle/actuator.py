"""ECU and actuator model (paper Fig. 2, Fig. 5, Fig. 7).

Control commands reach the Engine Control Unit over the CAN bus
(~1 ms, modelled in :mod:`repro.runtime.canbus`); the ECU and actuator are
tightly integrated ("ns-level delay") but the *mechanical* components take
~19 ms to start reacting.  The ECU also implements the reactive-path
override: radar/sonar emergency signals bypass the computing system and
take priority over proactive commands (Sec. IV).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core import calibration
from .dynamics import ControlCommand


@dataclass
class EngineControlUnit:
    """The vehicle's ECU: arbitration between proactive and reactive paths.

    The ECU holds the most recent command per source.  A reactive command,
    once received, overrides proactive commands until it expires
    (``reactive_hold_s``) — the paper's "last line of defense" semantics.
    """

    reactive_hold_s: float = 0.5
    _proactive: Optional[ControlCommand] = field(default=None, init=False)
    _reactive: Optional[ControlCommand] = field(default=None, init=False)
    _log: List[ControlCommand] = field(default_factory=list, init=False)

    def receive(self, command: ControlCommand) -> None:
        """Accept a command from either path."""
        self._log.append(command)
        if command.source == "reactive":
            self._reactive = command
        else:
            self._proactive = command

    def active_command(self, now_s: float) -> Optional[ControlCommand]:
        """The command currently driving the actuator.

        Reactive commands win while fresh; otherwise the latest proactive
        command applies.
        """
        if (
            self._reactive is not None
            and now_s - self._reactive.timestamp_s <= self.reactive_hold_s
        ):
            return self._reactive
        return self._proactive

    @property
    def override_active(self) -> bool:
        return self._reactive is not None

    def clear_override(self) -> None:
        """Drop the standing reactive override (vehicle back to proactive)."""
        self._reactive = None

    @property
    def command_log(self) -> List[ControlCommand]:
        return list(self._log)


@dataclass(frozen=True)
class Actuator:
    """Mechanical actuation with the paper's ~19 ms reaction latency.

    ``ready_at(command_arrival_s)`` is when the mechanical components start
    reacting to a command that arrived at the ECU at *command_arrival_s*.
    """

    mech_latency_s: float = calibration.MECHANICAL_LATENCY_S

    def __post_init__(self) -> None:
        if self.mech_latency_s < 0:
            raise ValueError("mechanical latency must be non-negative")

    def ready_at(self, command_arrival_s: float) -> float:
        return command_arrival_s + self.mech_latency_s
