"""Vehicle substrate: dynamics, actuation, battery, and configurations."""

from .actuator import Actuator, EngineControlUnit
from .battery import Battery, BatteryDepletedError
from .configs import VehicleConfig, eight_seater_shuttle, lidar_variant, two_seater_pod
from .dynamics import (
    BicycleModel,
    ControlCommand,
    VehicleState,
    simulate_straight_line_stop,
)

__all__ = [
    "Actuator",
    "Battery",
    "BatteryDepletedError",
    "BicycleModel",
    "ControlCommand",
    "EngineControlUnit",
    "VehicleConfig",
    "VehicleState",
    "eight_seater_shuttle",
    "lidar_variant",
    "simulate_straight_line_stop",
    "two_seater_pod",
]
