"""Kinematic vehicle dynamics substrate.

The paper's vehicles are low-speed (20 mph cap) pods/shuttles that maneuver
at lane granularity.  A kinematic bicycle model is the standard substrate
for that regime and is what both our MPC planner and the closed-loop SoV
simulation drive.  Braking follows the constant-deceleration model of
Eq. 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from ..core import calibration


@dataclass(frozen=True)
class VehicleState:
    """Pose and speed of the vehicle in the world frame."""

    x_m: float = 0.0
    y_m: float = 0.0
    heading_rad: float = 0.0
    speed_mps: float = 0.0
    time_s: float = 0.0

    @property
    def position(self) -> Tuple[float, float]:
        return (self.x_m, self.y_m)

    def distance_to(self, point: Tuple[float, float]) -> float:
        return math.hypot(self.x_m - point[0], self.y_m - point[1])


@dataclass(frozen=True)
class ControlCommand:
    """One actuation command: steer / brake / accelerate (Fig. 5 output)."""

    steer_rad: float = 0.0
    accel_mps2: float = 0.0
    timestamp_s: float = 0.0
    #: "proactive" or "reactive" (Sec. IV); "degradation" marks commands
    #: issued by the graceful-degradation supervisor when the proactive
    #: pipeline is unavailable (repro.robustness.degradation).
    source: str = "proactive"

    def __post_init__(self) -> None:
        if self.source not in ("proactive", "reactive", "degradation"):
            raise ValueError(f"unknown command source {self.source!r}")


@dataclass(frozen=True)
class BicycleModel:
    """Kinematic bicycle model with actuation limits.

    Defaults match the paper's 2-seater pod: 20 mph top speed, 4 m/s^2
    brake deceleration.
    """

    wheelbase_m: float = 1.8
    max_speed_mps: float = calibration.VEHICLE_TOP_SPEED_MPS
    max_decel_mps2: float = calibration.BRAKE_DECEL_MPS2
    max_accel_mps2: float = 2.0
    max_steer_rad: float = 0.5

    def __post_init__(self) -> None:
        if self.wheelbase_m <= 0:
            raise ValueError("wheelbase must be positive")
        if self.max_speed_mps <= 0 or self.max_decel_mps2 <= 0:
            raise ValueError("limits must be positive")

    def clamp(self, command: ControlCommand) -> ControlCommand:
        """Clamp a command to the vehicle's actuation limits."""
        steer = max(-self.max_steer_rad, min(self.max_steer_rad, command.steer_rad))
        accel = max(-self.max_decel_mps2, min(self.max_accel_mps2, command.accel_mps2))
        return replace(command, steer_rad=steer, accel_mps2=accel)

    def step(
        self, state: VehicleState, command: ControlCommand, dt_s: float
    ) -> VehicleState:
        """Advance the state by *dt_s* under *command*.

        Uses the standard rear-axle kinematic bicycle update.  Speed is
        clamped to [0, max_speed]; the vehicle never reverses.
        """
        if dt_s < 0:
            raise ValueError("dt must be non-negative")
        command = self.clamp(command)
        speed = state.speed_mps + command.accel_mps2 * dt_s
        speed = max(0.0, min(self.max_speed_mps, speed))
        # Integrate with the mean of old/new speed for second-order accuracy.
        avg_speed = 0.5 * (state.speed_mps + speed)
        heading = state.heading_rad + (
            avg_speed / self.wheelbase_m * math.tan(command.steer_rad) * dt_s
        )
        x = state.x_m + avg_speed * math.cos(state.heading_rad) * dt_s
        y = state.y_m + avg_speed * math.sin(state.heading_rad) * dt_s
        return VehicleState(
            x_m=x,
            y_m=y,
            heading_rad=_wrap_angle(heading),
            speed_mps=speed,
            time_s=state.time_s + dt_s,
        )

    def brake_to_stop(
        self, state: VehicleState, dt_s: float = 0.01
    ) -> List[VehicleState]:
        """Full-braking trajectory from *state* to standstill.

        Returns the sequence of states (including the initial one).  Total
        distance covered converges to ``v^2 / 2a`` as ``dt -> 0``, matching
        :meth:`repro.core.latency_model.LatencyModel.braking_distance_m`.
        """
        states = [state]
        brake = ControlCommand(accel_mps2=-self.max_decel_mps2)
        while states[-1].speed_mps > 0:
            states.append(self.step(states[-1], brake, dt_s))
        return states

    def stopping_distance_m(self, speed_mps: float) -> float:
        """Closed-form braking distance from *speed_mps* (Eq. 1 term)."""
        if speed_mps < 0:
            raise ValueError("speed must be non-negative")
        return speed_mps ** 2 / (2.0 * self.max_decel_mps2)


def _wrap_angle(angle_rad: float) -> float:
    """Wrap an angle to (-pi, pi]."""
    wrapped = math.fmod(angle_rad + math.pi, 2.0 * math.pi)
    if wrapped <= 0.0:
        wrapped += 2.0 * math.pi
    return wrapped - math.pi


def simulate_straight_line_stop(
    initial_speed_mps: float,
    computing_latency_s: float,
    model: Optional[BicycleModel] = None,
    data_latency_s: float = calibration.CAN_BUS_LATENCY_S,
    mech_latency_s: float = calibration.MECHANICAL_LATENCY_S,
    dt_s: float = 0.001,
) -> float:
    """Numerically reproduce Eq. 1: distance from event to standstill.

    The vehicle cruises at *initial_speed_mps* during the computing, CAN,
    and mechanical latencies, then brakes at full deceleration.  Returns the
    total distance covered — the quantity that must not exceed the obstacle
    distance ``D``.
    """
    model = model or BicycleModel()
    state = VehicleState(speed_mps=initial_speed_mps)
    cruise = ControlCommand(accel_mps2=0.0)
    reaction_time = computing_latency_s + data_latency_s + mech_latency_s
    elapsed = 0.0
    while elapsed < reaction_time:
        step = min(dt_s, reaction_time - elapsed)
        state = model.step(state, cruise, step)
        elapsed += step
    final = model.brake_to_stop(state, dt_s)[-1]
    return final.x_m
