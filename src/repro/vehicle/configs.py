"""Complete vehicle configurations (paper Sec. II-A, Tables I & II).

Bundles the dynamics, power inventory, and sensor bill-of-materials into
named configurations: the paper's 2-seater pod and 8-seater shuttle, plus
the hypothetical LiDAR variant used in the Fig. 3b / Table II comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import calibration
from ..core.cost_model import (
    BillOfMaterials,
    camera_vehicle_sensors,
    lidar_vehicle_sensors,
)
from ..core.energy_model import (
    EnergyModel,
    PowerComponent,
    PowerInventory,
    paper_ad_inventory,
    waymo_lidar_bank,
)
from .dynamics import BicycleModel


@dataclass(frozen=True)
class VehicleConfig:
    """A named, fully-specified vehicle design."""

    name: str
    seats: int
    dynamics: BicycleModel
    ad_power: PowerInventory
    sensor_bom: BillOfMaterials
    retail_price_usd: float
    battery_capacity_j: float = calibration.BATTERY_CAPACITY_J
    vehicle_power_w: float = calibration.VEHICLE_POWER_W

    def energy_model(self) -> EnergyModel:
        """Eq. 2 model parameterized by this configuration."""
        return EnergyModel(
            battery_capacity_j=self.battery_capacity_j,
            vehicle_power_w=self.vehicle_power_w,
            ad_power_w=self.ad_power.total_power_w,
        )


def two_seater_pod() -> VehicleConfig:
    """The paper's 2-seater pod for private transportation."""
    return VehicleConfig(
        name="two_seater_pod",
        seats=2,
        dynamics=BicycleModel(wheelbase_m=1.8),
        ad_power=paper_ad_inventory(),
        sensor_bom=camera_vehicle_sensors(),
        retail_price_usd=calibration.COST_VEHICLE_RETAIL_USD,
    )


def eight_seater_shuttle() -> VehicleConfig:
    """The paper's 8-seater shuttle for public services.

    Same compute/sensor stack; longer wheelbase and a higher base load from
    the heavier body (passenger weight is a non-trivial fraction of the
    2-seater's weight, Sec. III-B footnote).
    """
    return VehicleConfig(
        name="eight_seater_shuttle",
        seats=8,
        dynamics=BicycleModel(wheelbase_m=3.2),
        ad_power=paper_ad_inventory(),
        sensor_bom=camera_vehicle_sensors(),
        retail_price_usd=calibration.COST_VEHICLE_RETAIL_USD,
        vehicle_power_w=calibration.VEHICLE_POWER_W * 1.5,
    )


def lidar_variant() -> VehicleConfig:
    """The hypothetical LiDAR-equipped variant (Sec. III-D comparison).

    Swaps the camera bank for a Waymo-style LiDAR bank in both the power
    inventory and the BOM.
    """
    power = paper_ad_inventory()
    for component in waymo_lidar_bank().components:
        power = power.with_component(component)
    bom = camera_vehicle_sensors()
    for item in lidar_vehicle_sensors().items:
        bom = bom.with_item(item)
    return VehicleConfig(
        name="lidar_variant",
        seats=2,
        dynamics=BicycleModel(wheelbase_m=1.8),
        ad_power=power,
        sensor_bom=bom,
        retail_price_usd=calibration.COST_LIDAR_VEHICLE_RETAIL_USD,
    )
