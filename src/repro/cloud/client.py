"""Vehicle-side resilient uplink client (paper Sec. II-B).

The delivery half of the telemetry pipeline: condensed operational logs
and metrics snapshots leave the vehicle through this client, which must
get every realtime log to the cloud across the lossy cellular channel of
:mod:`repro.cloud.network`.  The design is the standard resilient-client
stack, each piece seeded and deterministic:

* **wire envelopes** — every payload ships framed with a CRC32 and an
  idempotency key (``vehicle/class/sequence``), so the ingestion service
  can reject corruption and dedup retries;
* **a bounded queue with class-aware shedding** — under backpressure the
  oldest *non-realtime* entries are shed first; the realtime ops-log
  class is always admissible and never shed (Sec. II-B: the hourly log
  is the one thing that must ship);
* **timeout + seeded-jitter exponential backoff** — retries decorrelate
  across a fleet because each client jitters its backoff from its own
  seeded stream;
* **a circuit breaker** — consecutive failures trip the client into
  store-and-forward: envelopes spool to the on-vehicle SSD
  (:class:`~repro.cloud.uplink.OnboardStorage`) instead of hammering a
  dead link, and the spool drains when a probe succeeds after cooldown.

The client never loses a realtime envelope: it is either in the queue,
in flight awaiting an ack, or spooled on the SSD.  Non-realtime classes
have bounded retries and may be shed or abandoned — the same
best-effort/guaranteed split the paper applies to raw data vs logs.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .network import LossyLink, payload_checksum
from .uplink import OnboardStorage

#: Delivery classes, strongest guarantee first.
REALTIME_OPS = "realtime_ops"
METRICS = "metrics"
BULK = "bulk"
LOG_CLASSES = (REALTIME_OPS, METRICS, BULK)

#: Wire framing: 4-byte big-endian CRC32 of everything after it, then a
#: JSON header line, then the raw payload bytes.
_CRC = struct.Struct(">I")


class WireDecodeError(ValueError):
    """The blob failed its checksum or its header did not parse."""


@dataclass(frozen=True)
class UplinkEnvelope:
    """One payload framed for the wire."""

    vehicle_id: str
    sequence: int
    log_class: str
    payload: bytes
    created_s: float

    def __post_init__(self) -> None:
        if self.log_class not in LOG_CLASSES:
            raise ValueError(
                f"unknown log class {self.log_class!r}; known: {LOG_CLASSES}"
            )
        if self.sequence < 0:
            raise ValueError("sequence must be non-negative")

    @property
    def idempotency_key(self) -> str:
        """The dedup identity: stable across retries and duplicates."""
        return f"{self.vehicle_id}/{self.log_class}/{self.sequence}"

    @property
    def realtime(self) -> bool:
        return self.log_class == REALTIME_OPS

    def to_wire(self) -> bytes:
        header = json.dumps(
            {
                "v": self.vehicle_id,
                "seq": self.sequence,
                "cls": self.log_class,
                "t": self.created_s,
            },
            sort_keys=True,
        ).encode("utf-8")
        body = header + b"\n" + self.payload
        return _CRC.pack(payload_checksum(body)) + body

    @staticmethod
    def from_wire(blob: bytes) -> "UplinkEnvelope":
        """Decode a wire blob, raising :class:`WireDecodeError` on any
        checksum mismatch or mangled framing (the dead-letter path)."""
        if len(blob) < _CRC.size + 1:
            raise WireDecodeError("blob too short to carry a checksum")
        (expected,) = _CRC.unpack_from(blob)
        body = blob[_CRC.size:]
        if payload_checksum(body) != expected:
            raise WireDecodeError("checksum mismatch")
        try:
            header_bytes, payload = body.split(b"\n", 1)
            header = json.loads(header_bytes.decode("utf-8"))
            return UplinkEnvelope(
                vehicle_id=header["v"],
                sequence=int(header["seq"]),
                log_class=header["cls"],
                payload=payload,
                created_s=float(header["t"]),
            )
        except WireDecodeError:
            raise
        except Exception as exc:  # mangled header that passed CRC: still junk
            raise WireDecodeError(f"undecodable header: {exc}") from exc


# ---------------------------------------------------------------------------
# Bounded queue with class-aware shedding
# ---------------------------------------------------------------------------


class UplinkQueue:
    """A bounded FIFO that sheds oldest-first, never touching realtime.

    Admission policy under a full queue:

    * a **realtime** envelope sheds the oldest non-realtime entry to make
      room; if every slot holds realtime, the queue grows past its bound
      (realtime is always admissible — the few-KB hourly logs cannot
      meaningfully outgrow the vehicle's memory);
    * a **non-realtime** envelope sheds the oldest non-realtime entry;
      if none exists, the *arriving* envelope is rejected.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ValueError("queue capacity must be positive")
        self.capacity = capacity
        self._entries: List[UplinkEnvelope] = []
        self.shed_by_class: Dict[str, int] = {}
        self.enqueued_by_class: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def total_shed(self) -> int:
        return sum(self.shed_by_class.values())

    def _shed_oldest_non_realtime(self) -> bool:
        for i, entry in enumerate(self._entries):
            if not entry.realtime:
                shed = self._entries.pop(i)
                self.shed_by_class[shed.log_class] = (
                    self.shed_by_class.get(shed.log_class, 0) + 1
                )
                return True
        return False

    def push(self, envelope: UplinkEnvelope) -> bool:
        """Admit *envelope*; returns False when it was rejected."""
        if len(self._entries) >= self.capacity:
            made_room = self._shed_oldest_non_realtime()
            if not made_room and not envelope.realtime:
                self.shed_by_class[envelope.log_class] = (
                    self.shed_by_class.get(envelope.log_class, 0) + 1
                )
                return False
        self._entries.append(envelope)
        self.enqueued_by_class[envelope.log_class] = (
            self.enqueued_by_class.get(envelope.log_class, 0) + 1
        )
        return True

    def pop(self) -> Optional[UplinkEnvelope]:
        if not self._entries:
            return None
        return self._entries.pop(0)

    def push_front(self, envelope: UplinkEnvelope) -> None:
        """Return an envelope to the head (retry keeps its turn)."""
        self._entries.insert(0, envelope)

    def peek_all(self) -> Tuple[UplinkEnvelope, ...]:
        return tuple(self._entries)


# ---------------------------------------------------------------------------
# Retry policy and circuit breaker
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout + capped exponential backoff with seeded jitter."""

    timeout_s: float = 4.0
    base_backoff_s: float = 2.0
    backoff_factor: float = 2.0
    max_backoff_s: float = 60.0
    #: Backoff multiplies by a seeded uniform draw from
    #: ``[1 - jitter_frac, 1 + jitter_frac]`` so fleet retries decorrelate.
    jitter_frac: float = 0.25
    #: Attempts before a *non-realtime* envelope is abandoned; realtime
    #: envelopes retry without bound (at-least-once).
    max_attempts_non_realtime: int = 8

    def __post_init__(self) -> None:
        if self.timeout_s <= 0:
            raise ValueError("timeout must be positive")
        if self.base_backoff_s <= 0 or self.max_backoff_s <= 0:
            raise ValueError("backoff bounds must be positive")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if not 0.0 <= self.jitter_frac < 1.0:
            raise ValueError("jitter fraction must be in [0, 1)")
        if self.max_attempts_non_realtime < 1:
            raise ValueError("need at least one attempt")

    def backoff_s(self, attempt: int, rng: np.random.Generator) -> float:
        """Delay before retry *attempt* (1-based), jittered from *rng*."""
        if attempt < 1:
            raise ValueError("attempts are 1-based")
        raw = min(
            self.base_backoff_s * self.backoff_factor ** (attempt - 1),
            self.max_backoff_s,
        )
        if self.jitter_frac == 0.0:
            return raw
        lo, hi = 1.0 - self.jitter_frac, 1.0 + self.jitter_frac
        return raw * float(lo + (hi - lo) * rng.random())


#: Circuit-breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Trips OPEN after consecutive failures; probes after a cooldown.

    OPEN is the store-and-forward signal: the client stops burning
    attempts on a dead link and spools to the SSD instead.  After
    ``cooldown_s`` the breaker admits a single HALF_OPEN probe; success
    closes it (and the client drains its spool), failure re-opens it for
    another cooldown.
    """

    def __init__(
        self, failure_threshold: int = 3, cooldown_s: float = 30.0
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure threshold must be >= 1")
        if cooldown_s <= 0:
            raise ValueError("cooldown must be positive")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at_s: Optional[float] = None
        self.trips = 0

    def allow(self, now_s: float) -> bool:
        """Whether an attempt may go out at *now_s*."""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            # Same expression as retry_at_s(): a probe scheduled for the
            # returned instant must be admitted at that exact float.
            if now_s >= self.opened_at_s + self.cooldown_s:
                self.state = HALF_OPEN
                return True
            return False
        return True  # HALF_OPEN: the probe is in flight

    def record_success(self) -> None:
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at_s = None

    def record_failure(self, now_s: float) -> None:
        self.consecutive_failures += 1
        if self.state == HALF_OPEN or (
            self.state == CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            if self.state != OPEN:
                self.trips += 1
            self.state = OPEN
            self.opened_at_s = now_s

    def retry_at_s(self, now_s: float) -> float:
        """Earliest instant the breaker will admit a probe."""
        if self.state != OPEN:
            return now_s
        return self.opened_at_s + self.cooldown_s


# ---------------------------------------------------------------------------
# The resilient client
# ---------------------------------------------------------------------------


@dataclass
class ClientReport:
    """Delivery accounting for one client session."""

    submitted_by_class: Dict[str, int] = field(default_factory=dict)
    acked_by_class: Dict[str, int] = field(default_factory=dict)
    abandoned_by_class: Dict[str, int] = field(default_factory=dict)
    shed_by_class: Dict[str, int] = field(default_factory=dict)
    attempts: int = 0
    timeouts: int = 0
    breaker_trips: int = 0
    spooled: int = 0
    spool_drained: int = 0
    #: Envelopes still undelivered when the session ended, by class.
    #: Realtime entries here are *preserved* (queue or SSD spool), never
    #: lost — the store-and-forward half of the paper's upload policy.
    pending_by_class: Dict[str, int] = field(default_factory=dict)
    #: Exact idempotency keys, for the campaign's loss accounting: every
    #: submitted realtime key must be stored by the service or appear in
    #: the pending set.
    submitted_realtime_keys: Tuple[str, ...] = ()
    pending_realtime_keys: Tuple[str, ...] = ()

    def as_dict(self) -> Dict[str, float]:
        out: Dict[str, float] = {
            "attempts": float(self.attempts),
            "timeouts": float(self.timeouts),
            "breaker_trips": float(self.breaker_trips),
            "spooled": float(self.spooled),
            "spool_drained": float(self.spool_drained),
        }
        for label, tally in (
            ("submitted", self.submitted_by_class),
            ("acked", self.acked_by_class),
            ("abandoned", self.abandoned_by_class),
            ("shed", self.shed_by_class),
            ("pending", self.pending_by_class),
        ):
            for cls in sorted(tally):
                out[f"{label}_{cls}"] = float(tally[cls])
        return out


@dataclass
class _InFlight:
    """One attempt awaiting its ack."""

    envelope: UplinkEnvelope
    attempt: int
    sent_s: float
    deadline_s: float


class ResilientUplinkClient:
    """The vehicle's end of the telemetry pipeline.

    Deterministic per ``(seed, vehicle_id)``: the backoff jitter stream
    is private, so two clients with different seeds decorrelate their
    retry storms while the same seed replays bit-identically.

    The client is driven by the discrete-event session loop in
    :mod:`repro.cloud.ingestion`; its own methods only manage queue,
    spool, breaker, and retry state.
    """

    def __init__(
        self,
        vehicle_id: str,
        seed: int = 0,
        queue_capacity: int = 64,
        policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        storage: Optional[OnboardStorage] = None,
    ) -> None:
        self.vehicle_id = vehicle_id
        self.policy = policy or RetryPolicy()
        self.breaker = breaker or CircuitBreaker()
        self.storage = storage or OnboardStorage()
        self.queue = UplinkQueue(capacity=queue_capacity)
        name_digest = sum(ord(c) * (i + 1) for i, c in enumerate(vehicle_id))
        self._rng = np.random.default_rng([seed, name_digest % (2**31)])
        self._sequence = 0
        self._spool: List[UplinkEnvelope] = []
        self.report = ClientReport()

    # -- submission ------------------------------------------------------------

    def submit(
        self, payload: bytes, log_class: str, now_s: float
    ) -> UplinkEnvelope:
        """Frame *payload* and enqueue it for delivery."""
        envelope = UplinkEnvelope(
            vehicle_id=self.vehicle_id,
            sequence=self._sequence,
            log_class=log_class,
            payload=bytes(payload),
            created_s=now_s,
        )
        self._sequence += 1
        tally = self.report.submitted_by_class
        tally[log_class] = tally.get(log_class, 0) + 1
        if envelope.realtime:
            self.report.submitted_realtime_keys = (
                self.report.submitted_realtime_keys
                + (envelope.idempotency_key,)
            )
        self.queue.push(envelope)
        self.report.shed_by_class = dict(self.queue.shed_by_class)
        return envelope

    def submit_condensed_log(self, ops, latency, hour_index: int, now_s: float):
        """Condense one hour of telemetry and submit it as realtime ops."""
        from .compression import condense_log

        log = condense_log(
            ops, latency, vehicle_id=self.vehicle_id, hour_index=hour_index
        )
        return self.submit(log.payload, REALTIME_OPS, now_s)

    # -- retry bookkeeping -----------------------------------------------------

    def backoff_s(self, attempt: int) -> float:
        return self.policy.backoff_s(attempt, self._rng)

    def give_up(self, envelope: UplinkEnvelope, attempt: int) -> bool:
        """Whether this envelope's retries are exhausted (never realtime)."""
        if envelope.realtime:
            return False
        return attempt >= self.policy.max_attempts_non_realtime

    def abandon(self, envelope: UplinkEnvelope) -> None:
        tally = self.report.abandoned_by_class
        tally[envelope.log_class] = tally.get(envelope.log_class, 0) + 1

    def acked(self, envelope: UplinkEnvelope) -> None:
        tally = self.report.acked_by_class
        tally[envelope.log_class] = tally.get(envelope.log_class, 0) + 1
        self.breaker.record_success()

    # -- store-and-forward -----------------------------------------------------

    def spool(self, envelope: UplinkEnvelope) -> None:
        """Park an envelope on the SSD while the breaker is OPEN."""
        self.storage.record(
            len(envelope.to_wire()), realtime=envelope.realtime
        )
        self._spool.append(envelope)
        self.report.spooled += 1

    @property
    def spooled_envelopes(self) -> Tuple[UplinkEnvelope, ...]:
        return tuple(self._spool)

    def pop_spooled(self) -> Optional[UplinkEnvelope]:
        """Take the oldest spooled envelope (the breaker's probe send)."""
        if not self._spool:
            return None
        return self._spool.pop(0)

    def drain_spool(self) -> int:
        """Move every spooled envelope back into the send queue."""
        drained = 0
        while self._spool:
            envelope = self._spool.pop(0)
            self.queue.push(envelope)
            drained += 1
        self.report.spool_drained += drained
        return drained

    # -- session-end accounting ------------------------------------------------

    def finalize(self) -> ClientReport:
        """Close out the report (pending = queue + spool, never lost)."""
        pending: Dict[str, int] = {}
        pending_realtime: List[str] = []
        for envelope in list(self.queue.peek_all()) + self._spool:
            pending[envelope.log_class] = pending.get(envelope.log_class, 0) + 1
            if envelope.realtime:
                pending_realtime.append(envelope.idempotency_key)
        self.report.pending_by_class = pending
        self.report.pending_realtime_keys = tuple(pending_realtime)
        self.report.breaker_trips = self.breaker.trips
        self.report.shed_by_class = dict(self.queue.shed_by_class)
        return self.report
