"""Cloud map generation and maintenance (paper Sec. II-B, Fig. 1).

"Our cloud workloads include map generation ... we use OpenStreetMap and
frequently annotate OSM with semantic information of the environment."
Vehicles upload condensed drive observations; the map service aggregates
them into lane-graph updates (new semantic annotations, changed speed
limits) which are pushed back to the fleet.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..scene.lanes import LaneMap, LaneSegment


@dataclass(frozen=True)
class DriveObservation:
    """One condensed observation from a vehicle's operational log."""

    segment_id: str
    kind: str  # e.g. "crosswalk", "slow_zone", "construction"
    position_s_m: float
    vehicle_id: str = "vehicle-0"


@dataclass(frozen=True)
class MapUpdate:
    """One confirmed semantic annotation to push to the fleet."""

    segment_id: str
    annotation: str
    confirmations: int


class MapGenerationService:
    """Aggregates fleet observations into confirmed map updates.

    An annotation becomes confirmed once ``min_confirmations`` distinct
    vehicles report the same (segment, kind, ~position) observation —
    crowd-sourced map maintenance, the Tesla-style fleet-data loop the
    paper references.
    """

    def __init__(
        self, base_map: LaneMap, min_confirmations: int = 2, position_bin_m: float = 5.0
    ) -> None:
        if min_confirmations < 1:
            raise ValueError("need at least one confirmation")
        self.base_map = base_map
        self.min_confirmations = min_confirmations
        self.position_bin_m = position_bin_m
        self._observations: Dict[Tuple[str, str, int], set] = defaultdict(set)
        self._published: set = set()

    def ingest(self, observation: DriveObservation) -> Optional[MapUpdate]:
        """Ingest one observation; returns an update when confirmed."""
        if observation.segment_id not in self.base_map.segment_ids:
            raise KeyError(f"unknown segment {observation.segment_id!r}")
        key = (
            observation.segment_id,
            observation.kind,
            int(observation.position_s_m // self.position_bin_m),
        )
        self._observations[key].add(observation.vehicle_id)
        if (
            len(self._observations[key]) >= self.min_confirmations
            and key not in self._published
        ):
            self._published.add(key)
            annotation = (
                f"{observation.kind}@"
                f"{key[2] * self.position_bin_m:.0f}m"
            )
            self.base_map.annotate(observation.segment_id, annotation)
            return MapUpdate(
                segment_id=observation.segment_id,
                annotation=annotation,
                confirmations=len(self._observations[key]),
            )
        return None

    def ingest_batch(
        self, observations: Sequence[DriveObservation]
    ) -> List[MapUpdate]:
        updates = []
        for observation in observations:
            update = self.ingest(observation)
            if update is not None:
                updates.append(update)
        return updates

    @property
    def pending_count(self) -> int:
        """Observation groups seen but not yet confirmed."""
        return sum(
            1
            for key, vehicles in self._observations.items()
            if key not in self._published
            and len(vehicles) < self.min_confirmations
        )
