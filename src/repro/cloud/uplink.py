"""Vehicle-to-cloud data transport model (paper Sec. II-B).

"Due to the limitation of communication bandwidth, the only data we upload
to the cloud in real-time is the condensed operational log (once an hour),
which is very small in size (a few KB).  The raw training data (e.g.,
images) is enormous even after compression (as high as 1 TB per day) and,
thus, the raw data is stored in the on-vehicle SSD and manually uploaded
to the cloud at the end of each operational day."

The model justifies this policy quantitatively: given a cellular link and
a depot link, it computes whether each data class can ship in real time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core import calibration
from ..core.units import GB, KB, MB, TB


@dataclass(frozen=True)
class DataClass:
    """One category of data the vehicle produces."""

    name: str
    bytes_per_day: float
    realtime_required: bool


def paper_data_classes() -> List[DataClass]:
    daily_ops_hours = calibration.DAILY_OPERATION_HOURS
    logs_per_day = daily_ops_hours  # one condensed log per hour
    return [
        DataClass(
            name="condensed_operational_log",
            bytes_per_day=logs_per_day * calibration.LOG_UPLOAD_SIZE_BYTES,
            realtime_required=True,
        ),
        DataClass(
            name="raw_training_data",
            bytes_per_day=calibration.RAW_DATA_PER_DAY_BYTES,
            realtime_required=False,
        ),
    ]


@dataclass(frozen=True)
class Link:
    """A transport channel."""

    name: str
    bandwidth_bps: float
    available_hours_per_day: float

    @property
    def capacity_per_day_bytes(self) -> float:
        return self.bandwidth_bps * self.available_hours_per_day * 3_600.0


def cellular_link(bandwidth_mbit: float = 10.0) -> Link:
    """An LTE-class link available during the 10-hour operating day."""
    return Link(
        name="cellular",
        bandwidth_bps=bandwidth_mbit * 1e6 / 8.0,
        available_hours_per_day=calibration.DAILY_OPERATION_HOURS,
    )


def depot_link(bandwidth_gbit: float = 1.0, hours: float = 10.0) -> Link:
    """The end-of-day depot connection (wired/SSD swap)."""
    return Link(
        name="depot",
        bandwidth_bps=bandwidth_gbit * 1e9 / 8.0,
        available_hours_per_day=hours,
    )


@dataclass(frozen=True)
class UplinkDecision:
    """Where one data class should go."""

    data_class: str
    transport: str  # "realtime" | "store_and_forward"
    fits: bool
    fraction_of_link: float


def plan_uplink(
    data_classes: Optional[List[DataClass]] = None,
    realtime: Optional[Link] = None,
    bulk: Optional[Link] = None,
) -> List[UplinkDecision]:
    """Assign each data class to a transport, checking capacity.

    Real-time-required classes must fit the cellular link; everything else
    goes store-and-forward via the depot link — reproducing the paper's
    policy as the *only* feasible assignment under realistic bandwidths.
    """
    data_classes = data_classes or paper_data_classes()
    realtime = realtime or cellular_link()
    bulk = bulk or depot_link()
    decisions = []
    for dc in data_classes:
        if dc.realtime_required:
            link = realtime
            transport = "realtime"
        else:
            # Try real-time first; fall back to the depot when it can't fit.
            if dc.bytes_per_day <= 0.5 * realtime.capacity_per_day_bytes:
                link, transport = realtime, "realtime"
            else:
                link, transport = bulk, "store_and_forward"
        if link.capacity_per_day_bytes > 0:
            fraction = dc.bytes_per_day / link.capacity_per_day_bytes
        else:
            # A link with zero available hours has no capacity: nothing
            # fits (but an empty data class trivially does).
            fraction = 0.0 if dc.bytes_per_day == 0 else float("inf")
        decisions.append(
            UplinkDecision(
                data_class=dc.name,
                transport=transport,
                fits=fraction <= 1.0,
                fraction_of_link=fraction,
            )
        )
    return decisions


@dataclass
class OnboardStorage:
    """The on-vehicle SSD buffering raw data between depot visits.

    Filling up mid-drive is a *degradation*, not a crash: raw capture
    halts (``capture_halted``), further bulk bytes are counted as
    dropped, and the vehicle keeps driving.  The realtime log class is
    always admissible — the few-KB hourly logs (and the uplink client's
    store-and-forward spool) must never be refused, so realtime writes
    are admitted even at the capacity line.
    """

    capacity_bytes: float = 2 * TB
    used_bytes: float = 0.0
    #: Set when a bulk write first overflowed; cleared by offload().
    capture_halted: bool = False
    #: Bulk bytes refused since capture halted.
    dropped_bytes: float = 0.0

    def record(self, n_bytes: float, realtime: bool = False) -> bool:
        """Buffer *n_bytes*; returns False when the write was dropped.

        Bulk writes that would overflow halt raw capture and count the
        refused bytes instead of raising; realtime writes always land.
        """
        if n_bytes < 0:
            raise ValueError("bytes must be non-negative")
        if realtime:
            self.used_bytes += n_bytes
            return True
        if self.capture_halted or (
            self.used_bytes + n_bytes > self.capacity_bytes
        ):
            self.capture_halted = True
            self.dropped_bytes += n_bytes
            return False
        self.used_bytes += n_bytes
        return True

    def offload(self) -> float:
        """End-of-day depot offload; returns bytes shipped.

        An emptied SSD resumes raw capture (the halt flag clears); the
        dropped-byte tally survives as the day's accounting.
        """
        shipped = self.used_bytes
        self.used_bytes = 0.0
        self.capture_halted = False
        return shipped

    @property
    def fill_fraction(self) -> float:
        return self.used_bytes / self.capacity_bytes

    def days_until_full(self, bytes_per_day: float) -> float:
        if bytes_per_day <= 0:
            return float("inf")
        return (self.capacity_bytes - self.used_bytes) / bytes_per_day
