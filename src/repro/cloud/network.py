"""Simulated lossy vehicle-to-cloud transport (paper Sec. II-B).

The paper's operational model ships one condensed ``OperationsLog`` per
vehicle per hour over a constrained cellular link.  ``repro.cloud.uplink``
answers the *capacity* question — what can ship in real time — but a
deployed fleet also has to survive the link's *failures*: packets drop,
duplicate, arrive corrupted, stall behind congestion, or vanish entirely
while the vehicle rides through a coverage hole.  This module gives the
telemetry pipeline that adversary, built from the same seeded declarative
idiom as :mod:`repro.robustness.faults`:

* **link faults** — frozen dataclasses scheduled by a
  :class:`~repro.robustness.faults.FaultWindow`: Bernoulli packet drop,
  packet duplication, payload corruption (checksum-detectable bit flips),
  latency spikes, and full partitions with a configurable dwell;
* **:class:`LinkFaultProfile`** — a named, reproducible bundle of link
  faults (the network analogue of ``FaultScenario``);
* **:class:`NetworkFaultSpace`** — a seeded distribution over profiles
  with the same intensity dial as the chaos engine's ``FaultSpace``, so
  campaigns can sweep network-fault pressure exactly like sensor/compute
  fault pressure;
* **:class:`LossyLink`** — the runtime transport: every transmit rolls
  the active faults on a private RNG stream and yields zero, one, or two
  deliveries with arrival timestamps, so the same seed always produces
  the same loss/duplication/corruption pattern.

:func:`sample_cell_faults` draws a vehicle-fault scenario *and* a network
profile from one campaign cell seed, which is how chaos campaigns compose
network faults alongside sensor/compute faults.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..robustness.faults import FaultScenario, FaultWindow

# ---------------------------------------------------------------------------
# Link fault vocabulary
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PacketDropFault:
    """Each uplink attempt is lost with ``drop_prob`` while active."""

    drop_prob: float
    window: FaultWindow

    kind = "net_drop"

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_prob <= 1.0:
            raise ValueError("drop probability must be in [0, 1]")


@dataclass(frozen=True)
class PacketDuplicateFault:
    """Each delivered packet spawns a duplicate with ``dup_prob``.

    Cellular retransmission at a layer below ours: the sender's radio
    retries after a missed link-layer ack, and both copies arrive.  The
    ingestion service must dedup these by idempotency key.
    """

    dup_prob: float
    window: FaultWindow

    kind = "net_duplicate"

    def __post_init__(self) -> None:
        if not 0.0 <= self.dup_prob <= 1.0:
            raise ValueError("duplication probability must be in [0, 1]")


@dataclass(frozen=True)
class PayloadCorruptFault:
    """Each delivered packet's payload is bit-flipped with ``corrupt_prob``.

    The flip is checksum-detectable: the wire envelope carries a CRC32,
    so the ingestion service rejects the blob into its dead-letter queue
    instead of storing garbage — and withholds the ack, which is what
    drives the client's retry.
    """

    corrupt_prob: float
    window: FaultWindow

    kind = "net_corrupt"

    def __post_init__(self) -> None:
        if not 0.0 <= self.corrupt_prob <= 1.0:
            raise ValueError("corruption probability must be in [0, 1]")


@dataclass(frozen=True)
class LinkLatencyFault:
    """Deliveries gain ``spike_s`` extra latency with ``spike_prob``."""

    spike_s: float
    spike_prob: float
    window: FaultWindow

    kind = "net_latency"

    def __post_init__(self) -> None:
        if self.spike_s < 0:
            raise ValueError("spike must be non-negative")
        if not 0.0 <= self.spike_prob <= 1.0:
            raise ValueError("spike probability must be in [0, 1]")


@dataclass(frozen=True)
class LinkPartitionFault:
    """The link is fully down while active (a coverage hole).

    The window *is* the dwell: nothing crosses in either direction until
    it ends, which is what trips the uplink client's circuit breaker into
    store-and-forward.
    """

    window: FaultWindow

    kind = "net_partition"


LinkFault = Union[
    PacketDropFault,
    PacketDuplicateFault,
    PayloadCorruptFault,
    LinkLatencyFault,
    LinkPartitionFault,
]

#: Every link-fault kind this module understands.
LINK_FAULT_KINDS = (
    "net_drop",
    "net_duplicate",
    "net_corrupt",
    "net_latency",
    "net_partition",
)


@dataclass(frozen=True)
class LinkFaultProfile:
    """A named, declarative schedule of link faults for one session."""

    name: str
    faults: Tuple[LinkFault, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("profile needs a name")
        object.__setattr__(self, "faults", tuple(self.faults))

    def of_kind(self, kind: str) -> List[LinkFault]:
        return [f for f in self.faults if f.kind == kind]

    def active(self, kind: str, now_s: float) -> List[LinkFault]:
        return [f for f in self.of_kind(kind) if f.window.active(now_s)]

    @property
    def kinds(self) -> List[str]:
        return sorted({f.kind for f in self.faults})

    @property
    def last_window_end_s(self) -> float:
        """When the last scheduled fault ends (0 for an empty profile).

        Campaigns size their drain margin off this: a session that runs
        past every window's end gives the client room to recover from
        the final partition and flush its store-and-forward spool.
        """
        return max((f.window.end_s for f in self.faults), default=0.0)


#: The profile a link gets when none is supplied: a clean channel.
CLEAN_PROFILE = LinkFaultProfile(name="clean", faults=())


# ---------------------------------------------------------------------------
# NetworkFaultSpace: the seeded profile distribution
# ---------------------------------------------------------------------------

#: Default sampling weights over the link-fault vocabulary.
DEFAULT_LINK_KIND_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("net_drop", 1.0),
    ("net_duplicate", 0.7),
    ("net_corrupt", 0.7),
    ("net_latency", 0.8),
    ("net_partition", 0.6),
)


def _uniform(rng: np.random.Generator, lo: float, hi: float) -> float:
    return float(lo + (hi - lo) * rng.random())


@dataclass(frozen=True)
class NetworkFaultSpace:
    """A distribution over link-fault profiles, with an intensity dial.

    The network sibling of :class:`repro.robustness.chaos.FaultSpace`:
    ``intensity`` scales fault probabilities and dwell times; 1.0 is the
    nominal cellular operating point the telemetry pipeline must survive
    with zero realtime-log loss.  Profiles are sampled deterministically
    from a caller-supplied RNG, so a campaign cell's profile is a pure
    function of its ``(seed, vehicle)`` pair.
    """

    intensity: float = 1.0
    kind_weights: Tuple[Tuple[str, float], ...] = DEFAULT_LINK_KIND_WEIGHTS
    #: How many faults one profile carries (inclusive bounds).
    faults_per_profile: Tuple[int, int] = (1, 3)
    #: Fault onsets fall uniformly inside this window.
    onset_window_s: Tuple[float, float] = (0.0, 240.0)
    #: Base dwell range for non-partition faults; scaled by intensity.
    duration_range_s: Tuple[float, float] = (20.0, 120.0)
    #: Partition dwell range; scaled by intensity (a coverage hole grows
    #: with the fault pressure, it does not become more probable).
    partition_dwell_s: Tuple[float, float] = (10.0, 45.0)
    drop_prob_range: Tuple[float, float] = (0.1, 0.4)
    dup_prob_range: Tuple[float, float] = (0.05, 0.25)
    corrupt_prob_range: Tuple[float, float] = (0.05, 0.25)
    spike_range_s: Tuple[float, float] = (0.5, 2.0)
    spike_prob_range: Tuple[float, float] = (0.1, 0.4)

    def __post_init__(self) -> None:
        if self.intensity <= 0:
            raise ValueError("intensity must be positive")
        if not self.kind_weights:
            raise ValueError("network fault space needs at least one kind")
        unknown = {k for k, _ in self.kind_weights} - set(LINK_FAULT_KINDS)
        if unknown:
            raise ValueError(f"unknown link fault kinds {sorted(unknown)}")
        lo, hi = self.faults_per_profile
        if not 0 <= lo <= hi:
            raise ValueError("faults_per_profile must be 0 <= lo <= hi")

    def with_intensity(self, intensity: float) -> "NetworkFaultSpace":
        return replace(self, intensity=intensity)

    # -- sampling --------------------------------------------------------------

    def _pick_kind(self, rng: np.random.Generator) -> str:
        kinds = [k for k, _ in self.kind_weights]
        probs = np.array([w for _, w in self.kind_weights], dtype=float)
        probs /= probs.sum()
        return str(rng.choice(kinds, p=probs))

    def _window(
        self, rng: np.random.Generator, dwell_range: Tuple[float, float]
    ) -> FaultWindow:
        onset = _uniform(rng, *self.onset_window_s)
        dwell = _uniform(rng, *dwell_range) * self.intensity
        return FaultWindow(onset, onset + dwell)

    def _clamped(self, rng: np.random.Generator, lo: float, hi: float) -> float:
        return min(1.0, _uniform(rng, lo, hi) * self.intensity)

    def _build(self, rng: np.random.Generator, kind: str) -> LinkFault:
        if kind == "net_partition":
            return LinkPartitionFault(
                window=self._window(rng, self.partition_dwell_s)
            )
        window = self._window(rng, self.duration_range_s)
        if kind == "net_drop":
            return PacketDropFault(
                drop_prob=self._clamped(rng, *self.drop_prob_range),
                window=window,
            )
        if kind == "net_duplicate":
            return PacketDuplicateFault(
                dup_prob=self._clamped(rng, *self.dup_prob_range),
                window=window,
            )
        if kind == "net_corrupt":
            return PayloadCorruptFault(
                corrupt_prob=self._clamped(rng, *self.corrupt_prob_range),
                window=window,
            )
        if kind == "net_latency":
            return LinkLatencyFault(
                spike_s=_uniform(rng, *self.spike_range_s) * self.intensity,
                spike_prob=self._clamped(rng, *self.spike_prob_range),
                window=window,
            )
        raise ValueError(f"unknown link fault kind {kind!r}")  # pragma: no cover

    def sample_profile(
        self, rng: np.random.Generator, name: str
    ) -> LinkFaultProfile:
        """Draw one profile: 1-3 scheduled link faults (kinds may repeat:
        two drop bursts at different times are a realistic day)."""
        lo, hi = self.faults_per_profile
        n_faults = int(rng.integers(lo, hi + 1))
        kinds = [self._pick_kind(rng) for _ in range(n_faults)]
        faults = tuple(self._build(rng, kind) for kind in kinds)
        return LinkFaultProfile(
            name=name,
            faults=faults,
            description=f"net-sampled: {' + '.join(kinds) or 'clean'}",
        )


def sample_cell_faults(
    campaign_seed: int,
    index: int,
    vehicle_space=None,
    net_space: Optional[NetworkFaultSpace] = None,
) -> Tuple[FaultScenario, LinkFaultProfile]:
    """Draw one campaign cell's vehicle faults *and* network faults.

    The composition point between the chaos engine and the telemetry
    pipeline: both draws derive from independent substreams of the same
    ``(campaign_seed, index)`` pair, so a fleet campaign can subject each
    cell to sensor/compute faults (``FaultSpace``) and link faults
    (``NetworkFaultSpace``) without either sampler perturbing the other —
    adding network faults to an existing chaos campaign leaves the
    sampled drive scenarios bit-identical.
    """
    from ..robustness.chaos import FaultSpace, scenario_for_drive

    vehicle_space = vehicle_space or FaultSpace()
    net_space = net_space or NetworkFaultSpace()
    scenario = scenario_for_drive(vehicle_space, campaign_seed, index)
    rng = np.random.default_rng(
        np.random.SeedSequence((campaign_seed, index, 0x4E7F))
    )
    profile = net_space.sample_profile(
        rng, name=f"net-{campaign_seed}-{index}"
    )
    return scenario, profile


# ---------------------------------------------------------------------------
# LossyLink: the runtime transport
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Delivery:
    """One copy of a payload arriving at the far end."""

    arrival_s: float
    payload: bytes
    #: Whether the link flipped bits in this copy (the receiver must
    #: discover this itself via the envelope checksum; this flag exists
    #: for accounting and tests only).
    corrupted: bool = False
    #: True for the spurious second copy of a duplicated packet.
    duplicate: bool = False


@dataclass(frozen=True)
class TransmitResult:
    """Everything one uplink attempt produced."""

    sent_s: float
    deliveries: Tuple[Delivery, ...]
    #: Why nothing was delivered ("partition" | "dropped"), else None.
    lost_reason: Optional[str] = None

    @property
    def delivered(self) -> bool:
        return bool(self.deliveries)


class LossyLink:
    """A seeded, fault-injected transport channel.

    The single point the uplink client pushes bytes through: every
    :meth:`transmit` rolls the profile's active faults on a private RNG
    stream (derived from ``(seed, profile.name)``, same idiom as
    :class:`~repro.robustness.faults.FaultHarness`) and returns the
    resulting deliveries.  Acks cross the same channel via
    :meth:`transmit_ack`, so a partition severs both directions and a
    lost ack forces the client to retry — the duplicate-generating path
    the ingestion service's dedup exists for.
    """

    def __init__(
        self,
        profile: Optional[LinkFaultProfile] = None,
        seed: int = 0,
        base_latency_s: float = 0.08,
        jitter_s: float = 0.04,
    ) -> None:
        if base_latency_s < 0 or jitter_s < 0:
            raise ValueError("latency parameters must be non-negative")
        self.profile = profile or CLEAN_PROFILE
        self.base_latency_s = base_latency_s
        self.jitter_s = jitter_s
        name_digest = sum(
            ord(c) * (i + 1) for i, c in enumerate(self.profile.name)
        )
        self._rng = np.random.default_rng([seed, name_digest % (2**31)])
        self.counters: Dict[str, int] = {}

    # -- bookkeeping -----------------------------------------------------------

    def _count(self, event: str) -> None:
        self.counters[event] = self.counters.get(event, 0) + 1

    def partitioned(self, now_s: float) -> bool:
        """Whether a partition window covers *now_s* (consumes no RNG)."""
        return bool(self.profile.active("net_partition", now_s))

    def next_partition_end_s(self, now_s: float) -> Optional[float]:
        """End of the partition covering *now_s*, if any."""
        active = self.profile.active("net_partition", now_s)
        if not active:
            return None
        return max(f.window.end_s for f in active)

    # -- the channel -----------------------------------------------------------

    def _latency(self, now_s: float) -> float:
        latency = self.base_latency_s + _uniform(self._rng, 0.0, self.jitter_s)
        for fault in self.profile.active("net_latency", now_s):
            if self._rng.random() < fault.spike_prob:
                latency += fault.spike_s
                self._count("latency_spikes")
        return latency

    def _corrupt(self, payload: bytes) -> bytes:
        """Flip one byte at a seeded position (checksum-detectable)."""
        if not payload:
            return payload
        position = int(self._rng.integers(0, len(payload)))
        flip = int(self._rng.integers(1, 256))
        mutated = bytearray(payload)
        mutated[position] ^= flip
        return bytes(mutated)

    def _one_delivery(
        self, payload: bytes, now_s: float, duplicate: bool
    ) -> Delivery:
        arrival = now_s + self._latency(now_s)
        corrupted = False
        for fault in self.profile.active("net_corrupt", now_s):
            if self._rng.random() < fault.corrupt_prob:
                corrupted = True
        if corrupted:
            payload = self._corrupt(payload)
            self._count("corrupted")
        return Delivery(
            arrival_s=arrival,
            payload=payload,
            corrupted=corrupted,
            duplicate=duplicate,
        )

    def transmit(self, payload: bytes, now_s: float) -> TransmitResult:
        """Push one payload through the channel at *now_s*."""
        if not isinstance(payload, (bytes, bytearray)):
            raise TypeError("payload must be bytes")
        self._count("attempts")
        if self.partitioned(now_s):
            self._count("partition_blocked")
            return TransmitResult(now_s, (), lost_reason="partition")
        for fault in self.profile.active("net_drop", now_s):
            if self._rng.random() < fault.drop_prob:
                self._count("dropped")
                return TransmitResult(now_s, (), lost_reason="dropped")
        deliveries = [self._one_delivery(bytes(payload), now_s, False)]
        for fault in self.profile.active("net_duplicate", now_s):
            if self._rng.random() < fault.dup_prob:
                deliveries.append(
                    self._one_delivery(bytes(payload), now_s, True)
                )
                self._count("duplicated")
                break
        self._count("delivered")
        return TransmitResult(now_s, tuple(deliveries))

    def transmit_ack(self, now_s: float) -> Optional[float]:
        """Send one ack back to the vehicle; returns its arrival time.

        Acks are tiny and share the channel's fate: partitions block
        them and drop bursts lose them (None), in which case the client
        times out and retries an already-ingested envelope — the
        at-least-once duplicate the service's dedup absorbs.
        """
        self._count("ack_attempts")
        if self.partitioned(now_s):
            self._count("ack_blocked")
            return None
        for fault in self.profile.active("net_drop", now_s):
            if self._rng.random() < fault.drop_prob:
                self._count("ack_dropped")
                return None
        return now_s + self._latency(now_s)


def payload_checksum(payload: bytes) -> int:
    """The CRC32 the wire envelope carries (shared by client and server)."""
    return zlib.crc32(payload) & 0xFFFFFFFF
