"""Frame compression and operational-log condensation (paper Sec. II-B).

Two concrete data products the paper describes:

* raw camera frames, "enormous even after compression (as high as 1 TB per
  day)" — a from-scratch lossless codec (delta + run-length + varint)
  shows realistic ~2-4x ratios on structured frames, which is exactly why
  raw data cannot ship over cellular;
* the "condensed operational log (once an hour), which is very small in
  size (a few KB)" — a serializer that turns a drive's telemetry into the
  few-KB summary that *can* ship in real time.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core import calibration
from ..runtime.telemetry import LatencyStats, OperationsLog

# ---------------------------------------------------------------------------
# Frame codec: horizontal delta + (value, run) RLE + varint coding
# ---------------------------------------------------------------------------


def _varint_encode(values: List[int]) -> bytearray:
    """Unsigned LEB128 varints."""
    out = bytearray()
    for value in values:
        if value < 0:
            raise ValueError("varint values must be non-negative")
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
    return out


def _varint_decode(data: bytes) -> List[int]:
    values = []
    shift = 0
    current = 0
    for byte in data:
        current |= (byte & 0x7F) << shift
        if byte & 0x80:
            shift += 7
        else:
            values.append(current)
            current = 0
            shift = 0
    return values


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 31)


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def compress_frame(frame: np.ndarray) -> bytes:
    """Lossless compression of an 8-bit grayscale frame.

    Horizontal deltas concentrate the signal near zero; equal-delta runs
    are RLE-coded as (zigzag value, run) varint pairs.  The header stores
    the shape.
    """
    if frame.ndim != 2:
        raise ValueError("frame must be 2-D")
    pixels = np.clip(np.asarray(frame), 0, 255).astype(np.int32)
    deltas = pixels.copy()
    deltas[:, 1:] = pixels[:, 1:] - pixels[:, :-1]
    flat = deltas.ravel()
    # (zigzag(value), run) pairs: smooth regions produce long runs of the
    # same delta, which is where the compression comes from.
    symbols: List[int] = []
    i = 0
    n = flat.size
    while i < n:
        value = int(flat[i])
        run = 1
        while i + run < n and flat[i + run] == value and run < 0x3FFF:
            run += 1
        symbols.append(_zigzag(value))
        symbols.append(run)
        i += run
    header = _varint_encode([frame.shape[0], frame.shape[1]])
    return bytes(header + _varint_encode(symbols))


def decompress_frame(blob: bytes) -> np.ndarray:
    """Inverse of :func:`compress_frame`."""
    values = _varint_decode(blob)
    rows, cols = values[0], values[1]
    symbols = values[2:]
    flat: List[int] = []
    i = 0
    while i < len(symbols):
        value = _unzigzag(symbols[i])
        flat.extend([value] * symbols[i + 1])
        i += 2
    deltas = np.array(flat, dtype=np.int32).reshape(rows, cols)
    pixels = deltas.copy()
    for c in range(1, cols):
        pixels[:, c] += pixels[:, c - 1]
    return pixels.astype(np.uint8)


def compression_ratio(frame: np.ndarray) -> float:
    """Raw bytes over compressed bytes."""
    raw = frame.size  # one byte per pixel
    return raw / max(len(compress_frame(frame)), 1)


def daily_raw_volume_bytes(
    frame_shape: Tuple[int, int] = (1080, 1920),
    cameras: int = 4,
    fps: float = calibration.CAMERA_RATE_HZ,
    hours: float = calibration.DAILY_OPERATION_HOURS,
    compression: float = 3.0,
) -> float:
    """A day of compressed camera data — the paper's "as high as 1 TB"."""
    frames = cameras * fps * hours * 3_600.0
    bytes_per_frame = frame_shape[0] * frame_shape[1] / compression
    return frames * bytes_per_frame


# ---------------------------------------------------------------------------
# Condensed operational log
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CondensedLog:
    """The hourly few-KB operational summary."""

    payload: bytes

    @property
    def size_bytes(self) -> int:
        return len(self.payload)

    def to_dict(self) -> Dict:
        return json.loads(zlib.decompress(self.payload).decode("utf-8"))


def condense_log(
    ops: OperationsLog,
    latency: LatencyStats,
    vehicle_id: str = "vehicle-0",
    hour_index: int = 0,
) -> CondensedLog:
    """Summarize an hour of operation into a compressed JSON blob.

    Keeps aggregate statistics only — counts, means, percentiles — never
    raw samples, which is what keeps it to a few KB.
    """
    summary = {
        "vehicle_id": vehicle_id,
        "hour": hour_index,
        "control_ticks": ops.control_ticks,
        "reactive_overrides": ops.reactive_overrides,
        "proactive_fraction": round(ops.proactive_fraction, 4),
        "distance_m": round(ops.distance_m, 1),
        "energy_j": round(ops.energy_j, 1),
        "collisions": ops.collisions,
    }
    if latency.count:
        summary["latency"] = {
            "count": latency.count,
            "best_ms": round(latency.best_s * 1e3, 2),
            "mean_ms": round(latency.mean_s * 1e3, 2),
            "p99_ms": round(latency.percentile_s(99.0) * 1e3, 2),
            "worst_ms": round(latency.worst_s * 1e3, 2),
            "stage_means_ms": {
                stage: round(latency.stage_mean_s(stage) * 1e3, 2)
                for stage in latency.stages_s
            },
        }
    payload = zlib.compress(json.dumps(summary).encode("utf-8"), level=9)
    return CondensedLog(payload=payload)
