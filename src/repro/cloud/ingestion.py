"""Cloud-side telemetry ingestion: at-least-once, exactly-once after dedup.

The third layer of the telemetry pipeline (paper Sec. II-B): the cloud
orchestrator that accepts every vehicle's condensed operational logs and
metrics snapshots after they crossed the lossy link.  The delivery
contract, end to end:

* **at least once** — the client retries until acked and spools to the
  SSD across partitions, so every realtime log reaches
  :meth:`IngestionService.ingest` one or more times;
* **exactly once after dedup** — the service keys every envelope by its
  idempotency key (``vehicle/class/sequence``) and stores the first copy
  only; retries and link-level duplicates are acked again but counted as
  duplicates, never stored twice;
* **corruption never lands** — the wire CRC32 is verified before
  anything else; mismatching blobs go to the dead-letter queue and are
  *not* acked, which is exactly what drives the client to retransmit a
  clean copy;
* **acks are batched** — acks flush when the batch fills or the flush
  interval elapses, and cross the same lossy channel back (a lost ack
  is the canonical duplicate generator).

:class:`TelemetrySession` co-simulates one client against the service
over one :class:`~repro.cloud.network.LossyLink` in virtual time — a
seeded discrete-event loop, so a campaign's every retry, duplicate, and
dead letter replays bit-identically.  :func:`run_ingest_campaign` sweeps
a fleet of such sessions and folds the result into one
:class:`IngestReport` per fleet (delivered/duplicated/corrupted/
dead-lettered counts plus P² ingest-latency percentiles).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..observability.metrics import StreamingHistogram
from .client import (
    METRICS,
    OPEN,
    REALTIME_OPS,
    ClientReport,
    ResilientUplinkClient,
    UplinkEnvelope,
    WireDecodeError,
)
from .network import LossyLink, NetworkFaultSpace

# ---------------------------------------------------------------------------
# The ingestion service
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StoredLog:
    """One accepted, deduplicated log in the retention store."""

    key: str
    vehicle_id: str
    log_class: str
    size_bytes: int
    created_s: float
    stored_s: float


@dataclass(frozen=True)
class DeadLetter:
    """One rejected blob, kept for forensics instead of being dropped."""

    blob: bytes
    received_s: float
    reason: str


@dataclass(frozen=True)
class Ack:
    """One idempotency key the service confirmed back to a vehicle."""

    key: str
    received_s: float


@dataclass(frozen=True)
class RetentionPolicy:
    """How much ingested telemetry the service keeps per vehicle."""

    max_logs_per_vehicle: int = 10_000
    max_age_s: float = 7 * 24 * 3_600.0

    def __post_init__(self) -> None:
        if self.max_logs_per_vehicle < 1:
            raise ValueError("retention must keep at least one log")
        if self.max_age_s <= 0:
            raise ValueError("retention age must be positive")


@dataclass(frozen=True)
class IngestReport:
    """Per-fleet delivery accounting, the billable/debuggable record.

    Bit-identical for a repeated seed: every count is an integer fold of
    the seeded event stream and the latency percentiles come from the
    deterministic P² estimator fed in event order.
    """

    delivered: int
    duplicated: int
    corrupted: int
    dead_lettered: int
    retention_evicted: int
    acks_flushed: int
    ack_batches: int
    delivered_by_class: Dict[str, int]
    ingest_p50_s: float
    ingest_p99_s: float
    ingest_mean_s: float

    def as_dict(self) -> Dict[str, float]:
        """A flat, order-stable numeric view (determinism comparisons)."""
        out: Dict[str, float] = {
            "delivered": float(self.delivered),
            "duplicated": float(self.duplicated),
            "corrupted": float(self.corrupted),
            "dead_lettered": float(self.dead_lettered),
            "retention_evicted": float(self.retention_evicted),
            "acks_flushed": float(self.acks_flushed),
            "ack_batches": float(self.ack_batches),
            "ingest_p50_s": self.ingest_p50_s,
            "ingest_p99_s": self.ingest_p99_s,
            "ingest_mean_s": self.ingest_mean_s,
        }
        for cls in sorted(self.delivered_by_class):
            out[f"delivered_{cls}"] = float(self.delivered_by_class[cls])
        return out


class IngestionService:
    """The at-least-once telemetry sink with idempotency-key dedup."""

    def __init__(
        self,
        ack_batch: int = 8,
        ack_interval_s: float = 1.0,
        retention: Optional[RetentionPolicy] = None,
    ) -> None:
        if ack_batch < 1:
            raise ValueError("ack batch must be >= 1")
        if ack_interval_s <= 0:
            raise ValueError("ack interval must be positive")
        self.ack_batch = ack_batch
        self.ack_interval_s = ack_interval_s
        self.retention = retention or RetentionPolicy()
        self._seen: Dict[str, float] = {}
        self._store: Dict[str, List[StoredLog]] = {}
        self.dead_letters: List[DeadLetter] = []
        self._pending_acks: List[Ack] = []
        self._latency = StreamingHistogram(
            "ingest_latency_s",
            "end-to-end submit-to-ingest latency",
            quantiles=(0.5, 0.9, 0.99),
        )
        self.delivered = 0
        self.duplicated = 0
        self.corrupted = 0
        self.retention_evicted = 0
        self.acks_flushed = 0
        self.ack_batches = 0
        self.delivered_by_class: Dict[str, int] = {}

    # -- ingest ----------------------------------------------------------------

    def ingest(self, blob: bytes, now_s: float) -> Optional[str]:
        """Accept one wire blob; returns its idempotency key if acked.

        Checksum failures dead-letter the blob and return None — no ack,
        so the sender retries.  Duplicates are acked again (the first ack
        may have been lost) but never stored twice.
        """
        try:
            envelope = UplinkEnvelope.from_wire(blob)
        except WireDecodeError as exc:
            self.corrupted += 1
            self.dead_letters.append(
                DeadLetter(blob=bytes(blob), received_s=now_s, reason=str(exc))
            )
            return None
        key = envelope.idempotency_key
        if key in self._seen:
            self.duplicated += 1
        else:
            self._seen[key] = now_s
            self.delivered += 1
            self.delivered_by_class[envelope.log_class] = (
                self.delivered_by_class.get(envelope.log_class, 0) + 1
            )
            self._latency.observe(max(0.0, now_s - envelope.created_s))
            self._retain(envelope, now_s)
        self._pending_acks.append(Ack(key=key, received_s=now_s))
        return key

    def _retain(self, envelope: UplinkEnvelope, now_s: float) -> None:
        logs = self._store.setdefault(envelope.vehicle_id, [])
        logs.append(
            StoredLog(
                key=envelope.idempotency_key,
                vehicle_id=envelope.vehicle_id,
                log_class=envelope.log_class,
                size_bytes=len(envelope.payload),
                created_s=envelope.created_s,
                stored_s=now_s,
            )
        )
        # Age first, then count: both policies evict oldest-first.
        while logs and now_s - logs[0].stored_s > self.retention.max_age_s:
            logs.pop(0)
            self.retention_evicted += 1
        while len(logs) > self.retention.max_logs_per_vehicle:
            logs.pop(0)
            self.retention_evicted += 1

    # -- acks ------------------------------------------------------------------

    @property
    def pending_ack_count(self) -> int:
        return len(self._pending_acks)

    def ack_due(self, now_s: float) -> bool:
        """Whether the batch should flush at *now_s*."""
        if not self._pending_acks:
            return False
        if len(self._pending_acks) >= self.ack_batch:
            return True
        return now_s - self._pending_acks[0].received_s >= self.ack_interval_s

    def flush_acks(self, now_s: float, force: bool = False) -> List[Ack]:
        """Release the pending batch (everything pending, FIFO)."""
        if not force and not self.ack_due(now_s):
            return []
        flushed, self._pending_acks = self._pending_acks, []
        if flushed:
            self.acks_flushed += len(flushed)
            self.ack_batches += 1
        return flushed

    # -- queries ---------------------------------------------------------------

    def stored_logs(self, vehicle_id: str) -> Tuple[StoredLog, ...]:
        return tuple(self._store.get(vehicle_id, []))

    def stored_keys(self, log_class: Optional[str] = None) -> Tuple[str, ...]:
        keys = []
        for vehicle in sorted(self._store):
            for log in self._store[vehicle]:
                if log_class is None or log.log_class == log_class:
                    keys.append(log.key)
        return tuple(keys)

    def report(self) -> IngestReport:
        if self._latency.count:
            p50 = self._latency.quantile(0.5)
            p99 = self._latency.quantile(0.99)
            mean = self._latency.mean
        else:
            p50 = p99 = mean = 0.0
        return IngestReport(
            delivered=self.delivered,
            duplicated=self.duplicated,
            corrupted=self.corrupted,
            dead_lettered=len(self.dead_letters),
            retention_evicted=self.retention_evicted,
            acks_flushed=self.acks_flushed,
            ack_batches=self.ack_batches,
            delivered_by_class=dict(self.delivered_by_class),
            ingest_p50_s=p50,
            ingest_p99_s=p99,
            ingest_mean_s=mean,
        )


# ---------------------------------------------------------------------------
# TelemetrySession: seeded discrete-event co-simulation
# ---------------------------------------------------------------------------

#: Event kinds; same-instant events resolve in insertion order (the
#: explicit monotone counter makes the heap ordering total).
_SUBMIT = "submit"
_ATTEMPT = "attempt"
_DELIVERY = "delivery"
_ACK_FLUSH = "ack_flush"
_ACK = "ack"
_TIMEOUT = "timeout"
_PROBE = "probe"


class TelemetrySession:
    """One vehicle's uplink client vs the ingestion service, in virtual time.

    Drives the full loop: queued envelopes go out one at a time (the
    cellular modem is serial), cross the :class:`LossyLink`, land in the
    service, and their batched acks cross back; timeouts trigger
    seeded-jitter backoff retries, consecutive failures trip the circuit
    breaker into SSD store-and-forward, and a successful probe after the
    cooldown drains the spool.  Everything is a deterministic function of
    the client/link seeds and the submission schedule.
    """

    def __init__(
        self,
        client: ResilientUplinkClient,
        link: LossyLink,
        service: IngestionService,
    ) -> None:
        self.client = client
        self.link = link
        self.service = service
        self._events: List[Tuple[float, int, str, object]] = []
        self._tick = 0
        #: key -> attempt number of the live send (or pending retry).
        self._in_flight: Dict[str, int] = {}
        #: key -> envelope, for every send not yet acked/abandoned/spooled.
        self._envelopes: Dict[str, UplinkEnvelope] = {}
        #: Keys the client has seen acked (stale-retry suppression).
        self._acked: set = set()
        self._sending: Optional[str] = None
        self._ack_flush_scheduled = False
        self._probe_scheduled = False
        self.now_s = 0.0

    # -- scheduling ------------------------------------------------------------

    def _push(self, at_s: float, kind: str, data: object = None) -> None:
        self._tick += 1
        heapq.heappush(self._events, (at_s, self._tick, kind, data))

    def schedule_submission(
        self, payload: bytes, log_class: str, at_s: float
    ) -> None:
        self._push(at_s, _SUBMIT, (bytes(payload), log_class))

    # -- the loop --------------------------------------------------------------

    def run(self, until_s: float) -> ClientReport:
        """Process events until the deadline or the session drains."""
        while self._events:
            at_s, _, kind, data = heapq.heappop(self._events)
            if at_s > until_s:
                break
            self.now_s = at_s
            self._dispatch(kind, data, at_s)
        # Session end: flush any straggler acks so a shared service
        # starts the next vehicle's session clean.  These acks are not
        # delivered (the session is over) — their envelopes stay pending
        # client-side, preserved in queue or spool, never lost.
        self.service.flush_acks(self.now_s, force=True)
        # Un-acked in-flight envelopes return to the queue: the session
        # deadline interrupted their retry loop, it did not lose them.
        for key in sorted(self._envelopes):
            if key not in self._acked:
                self.client.queue.push_front(self._envelopes[key])
        self._envelopes.clear()
        self._in_flight.clear()
        return self.client.finalize()

    def _dispatch(self, kind: str, data: object, now_s: float) -> None:
        if kind == _SUBMIT:
            payload, log_class = data
            self.client.submit(payload, log_class, now_s)
            self._pump(now_s)
        elif kind == _ATTEMPT:
            envelope, attempt = data
            self._attempt(envelope, attempt, now_s)
        elif kind == _DELIVERY:
            self.service.ingest(data, now_s)
            self._maybe_flush_acks(now_s)
        elif kind == _ACK_FLUSH:
            self._ack_flush_scheduled = False
            self._release_acks(self.service.flush_acks(now_s), now_s)
        elif kind == _ACK:
            self._on_ack(data, now_s)
        elif kind == _TIMEOUT:
            key, attempt = data
            self._on_timeout(key, attempt, now_s)
        elif kind == _PROBE:
            self._on_probe(now_s)
        else:  # pragma: no cover
            raise ValueError(f"unknown event kind {kind!r}")

    # -- client side -----------------------------------------------------------

    def _schedule_probe(self, at_s: float) -> None:
        if not self._probe_scheduled:
            self._probe_scheduled = True
            self._push(at_s, _PROBE)

    def _pump(self, now_s: float) -> None:
        """Start the next send if the modem is idle and the breaker allows."""
        if self._sending is not None or len(self.client.queue) == 0:
            return
        breaker = self.client.breaker
        if not breaker.allow(now_s):
            # OPEN: park the whole queue on the SSD and wait for the
            # cooldown probe instead of hammering a dead link.
            while True:
                envelope = self.client.queue.pop()
                if envelope is None:
                    break
                self.client.spool(envelope)
            self._schedule_probe(breaker.retry_at_s(now_s))
            return
        envelope = self.client.queue.pop()
        if envelope is not None:
            self._push(now_s, _ATTEMPT, (envelope, 1))

    def _attempt(
        self, envelope: UplinkEnvelope, attempt: int, now_s: float
    ) -> None:
        key = envelope.idempotency_key
        if key in self._acked:
            # A late ack landed while this retry waited out its backoff.
            self._in_flight.pop(key, None)
            self._envelopes.pop(key, None)
            if self._sending == key:
                self._sending = None
            self._pump(now_s)
            return
        self._sending = key
        self._in_flight[key] = attempt
        self._envelopes[key] = envelope
        self.client.report.attempts += 1
        result = self.link.transmit(envelope.to_wire(), now_s)
        for delivery in result.deliveries:
            self._push(delivery.arrival_s, _DELIVERY, delivery.payload)
        self._push(
            now_s + self.client.policy.timeout_s, _TIMEOUT, (key, attempt)
        )

    def _on_ack(self, key: str, now_s: float) -> None:
        attempt = self._in_flight.pop(key, None)
        if attempt is None or key in self._acked:
            return  # duplicate ack, or ack for an abandoned/spooled send
        envelope = self._envelopes.pop(key)
        self._acked.add(key)
        self.client.acked(envelope)
        if self._sending == key:
            self._sending = None
        # Recovery: a success while spooled envelopes wait means the
        # link is back — drain the SSD into the queue and keep going.
        if self.client.spooled_envelopes:
            self.client.drain_spool()
        self._pump(now_s)

    def _on_timeout(self, key: str, attempt: int, now_s: float) -> None:
        if self._in_flight.get(key) != attempt or key in self._acked:
            return  # acked or superseded in the meantime
        envelope = self._envelopes[key]
        self.client.report.timeouts += 1
        breaker = self.client.breaker
        breaker.record_failure(now_s)
        if self.client.give_up(envelope, attempt):
            del self._in_flight[key]
            del self._envelopes[key]
            if self._sending == key:
                self._sending = None
            self.client.abandon(envelope)
        elif breaker.state == OPEN:
            del self._in_flight[key]
            del self._envelopes[key]
            if self._sending == key:
                self._sending = None
            self.client.spool(envelope)
            self._schedule_probe(breaker.retry_at_s(now_s))
        else:
            # The modem stays claimed by the retry; _in_flight keeps the
            # old attempt number until _attempt re-arms it, so a late
            # ack in the backoff window still cancels the retry.
            retry_at = now_s + self.client.backoff_s(attempt)
            self._push(retry_at, _ATTEMPT, (envelope, attempt + 1))
            return
        self._pump(now_s)

    def _on_probe(self, now_s: float) -> None:
        """After the breaker cooldown, try one spooled envelope."""
        self._probe_scheduled = False
        if self._sending is not None:
            return  # a live send is already probing the link for us
        breaker = self.client.breaker
        if not breaker.allow(now_s):
            self._schedule_probe(breaker.retry_at_s(now_s))
            return
        envelope = self.client.pop_spooled()
        if envelope is not None:
            self._push(now_s, _ATTEMPT, (envelope, 1))
        else:
            self._pump(now_s)

    # -- service side ----------------------------------------------------------

    def _maybe_flush_acks(self, now_s: float) -> None:
        if self.service.ack_due(now_s):
            self._release_acks(self.service.flush_acks(now_s), now_s)
        elif self.service.pending_ack_count and not self._ack_flush_scheduled:
            # Arm the interval flush for the batch's oldest ack.
            self._ack_flush_scheduled = True
            self._push(now_s + self.service.ack_interval_s, _ACK_FLUSH)

    def _release_acks(self, acks: Sequence[Ack], now_s: float) -> None:
        for ack in acks:
            arrival_s = self.link.transmit_ack(now_s)
            if arrival_s is not None:
                self._push(arrival_s, _ACK, ack.key)


# ---------------------------------------------------------------------------
# Fleet campaign
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IngestCampaignConfig:
    """One seeded fleet-delivery campaign under a network fault mix."""

    n_vehicles: int = 6
    #: Hourly realtime ops logs per vehicle (the guaranteed class).
    logs_per_vehicle: int = 10
    #: Best-effort metrics snapshots per vehicle.
    metrics_per_vehicle: int = 10
    seed: int = 0
    space: NetworkFaultSpace = field(default_factory=NetworkFaultSpace)
    #: Submissions spread over this window (seconds of virtual time).
    submit_window_s: float = 300.0
    #: Extra virtual time past the last submission *and* the last fault
    #: window, so partitions end and the spool drains before the session
    #: deadline.
    drain_margin_s: float = 900.0

    def __post_init__(self) -> None:
        if self.n_vehicles < 1:
            raise ValueError("campaign needs at least one vehicle")
        if self.logs_per_vehicle < 1:
            raise ValueError("campaign needs at least one log per vehicle")
        if self.metrics_per_vehicle < 0:
            raise ValueError("metrics count cannot be negative")

    def with_intensity(self, intensity: float) -> "IngestCampaignConfig":
        from dataclasses import replace

        return replace(self, space=self.space.with_intensity(intensity))


def vehicle_seed(campaign_seed: int, index: int) -> int:
    """Vehicle *index*'s client/link seed (stable across processes)."""
    return int(
        np.random.SeedSequence(
            (campaign_seed, index, 0x1E1E)
        ).generate_state(1)[0]
    )


def _synthetic_log_payload(rng: np.random.Generator, hour: int) -> bytes:
    """A realistic condensed-log payload (compressed JSON, a few KB)."""
    from ..runtime.telemetry import LatencyStats, OperationsLog
    from .compression import condense_log

    ops = OperationsLog(
        control_ticks=int(rng.integers(30_000, 40_000)),
        reactive_overrides=int(rng.integers(0, 300)),
        distance_m=float(rng.uniform(10_000, 30_000)),
        energy_j=float(rng.uniform(1e6, 4e6)),
    )
    latency = LatencyStats()
    for _ in range(24):
        latency.record(float(rng.uniform(0.12, 0.2)), {"sensing": 0.074})
    return condense_log(ops, latency, hour_index=hour).payload


@dataclass(frozen=True)
class VehicleSessionRecord:
    """One vehicle's session outcome."""

    index: int
    vehicle_id: str
    profile_kinds: Tuple[str, ...]
    client: ClientReport
    link_counters: Dict[str, int]


@dataclass
class IngestCampaignResult:
    """The whole fleet's sessions plus the service-side report."""

    config: IngestCampaignConfig
    report: IngestReport
    vehicles: List[VehicleSessionRecord]
    #: Simulated makespan (the latest session deadline actually reached).
    sim_span_s: float
    #: Every idempotency key the service holds, in storage order.
    stored_keys: Tuple[str, ...] = ()

    def _submitted_realtime_keys(self) -> frozenset:
        return frozenset(
            key
            for r in self.vehicles
            for key in r.client.submitted_realtime_keys
        )

    def _pending_realtime_keys(self) -> frozenset:
        return frozenset(
            key
            for r in self.vehicles
            for key in r.client.pending_realtime_keys
        )

    def _stored_realtime_keys(self) -> frozenset:
        return frozenset(
            key
            for key in self.stored_keys
            if key.split("/")[1] == REALTIME_OPS
        )

    @property
    def realtime_submitted(self) -> int:
        return len(self._submitted_realtime_keys())

    @property
    def realtime_delivered(self) -> int:
        """Unique realtime logs the service stored (post-dedup)."""
        return len(self._stored_realtime_keys())

    @property
    def realtime_preserved(self) -> int:
        """Realtime logs still held client-side (queue/spool) at the end."""
        return len(self._pending_realtime_keys())

    @property
    def realtime_lost(self) -> int:
        """Realtime logs neither delivered nor preserved: must be zero.

        Key-exact: a log whose ack was lost is both stored *and* pending,
        so set subtraction (not arithmetic) keeps the invariant honest.
        """
        return len(
            self._submitted_realtime_keys()
            - self._stored_realtime_keys()
            - self._pending_realtime_keys()
        )

    @property
    def realtime_delivery_rate(self) -> float:
        if self.realtime_submitted == 0:
            return 1.0
        return self.realtime_delivered / self.realtime_submitted

    @property
    def post_dedup_duplicates(self) -> int:
        """Stored keys that appear more than once: dedup must keep this 0."""
        return len(self.stored_keys) - len(set(self.stored_keys))

    @property
    def throughput_logs_per_s(self) -> float:
        """Unique logs landed per second of simulated fleet time."""
        if self.sim_span_s <= 0:
            return 0.0
        return self.report.delivered / self.sim_span_s


def run_ingest_campaign(
    config: Optional[IngestCampaignConfig] = None,
    service: Optional[IngestionService] = None,
) -> IngestCampaignResult:
    """Run every vehicle's session against one shared service."""
    config = config or IngestCampaignConfig()
    service = service or IngestionService()
    vehicles: List[VehicleSessionRecord] = []
    sim_span_s = 0.0
    for index in range(config.n_vehicles):
        seed = vehicle_seed(config.seed, index)
        profile_rng = np.random.default_rng(
            np.random.SeedSequence((config.seed, index, 0x4E7F))
        )
        profile = config.space.sample_profile(
            profile_rng, name=f"net-{config.seed}-{index}"
        )
        link = LossyLink(profile, seed=seed)
        client = ResilientUplinkClient(f"vehicle-{index}", seed=seed)
        session = TelemetrySession(client, link, service)
        sched_rng = np.random.default_rng(
            np.random.SeedSequence((config.seed, index, 0x5CED))
        )
        submit_times = np.sort(
            sched_rng.uniform(
                0.0,
                config.submit_window_s,
                config.logs_per_vehicle + config.metrics_per_vehicle,
            )
        )
        for i, at_s in enumerate(submit_times):
            if i < config.logs_per_vehicle:
                payload = _synthetic_log_payload(sched_rng, hour=i)
                session.schedule_submission(payload, REALTIME_OPS, float(at_s))
            else:
                payload = bytes(
                    sched_rng.integers(0, 256, 256, dtype=np.uint8)
                )
                session.schedule_submission(payload, METRICS, float(at_s))
        until_s = (
            max(config.submit_window_s, profile.last_window_end_s)
            + config.drain_margin_s
        )
        report = session.run(until_s)
        sim_span_s = max(sim_span_s, session.now_s)
        vehicles.append(
            VehicleSessionRecord(
                index=index,
                vehicle_id=client.vehicle_id,
                profile_kinds=tuple(profile.kinds),
                client=report,
                link_counters=dict(link.counters),
            )
        )
    return IngestCampaignResult(
        config=config,
        report=service.report(),
        vehicles=vehicles,
        sim_span_s=sim_span_s,
        stored_keys=service.stored_keys(),
    )


@dataclass(frozen=True)
class IngestSweepPoint:
    """One fault-intensity step of the delivery-curve sweep."""

    intensity: float
    realtime_submitted: int
    realtime_delivered: int
    realtime_preserved: int
    realtime_lost: int
    delivery_rate: float
    duplicates_pre_dedup: int
    post_dedup_duplicates: int
    corrupted_detected: int
    dead_lettered: int
    ingest_p99_s: float


def intensity_sweep(
    intensities: Sequence[float] = (0.5, 1.0, 1.5, 2.0, 3.0),
    config: Optional[IngestCampaignConfig] = None,
) -> List[IngestSweepPoint]:
    """Sweep network fault intensity; the delivery/dup/loss curves.

    Every point re-runs the same seeded fleet with the dial raised:
    duplicates and dead letters climb with intensity while realtime loss
    must stay exactly zero — at-least-once does not erode under pressure,
    it just pays more retries.
    """
    base = config or IngestCampaignConfig()
    points: List[IngestSweepPoint] = []
    for intensity in intensities:
        result = run_ingest_campaign(base.with_intensity(intensity))
        points.append(
            IngestSweepPoint(
                intensity=intensity,
                realtime_submitted=result.realtime_submitted,
                realtime_delivered=result.realtime_delivered,
                realtime_preserved=result.realtime_preserved,
                realtime_lost=result.realtime_lost,
                delivery_rate=result.realtime_delivery_rate,
                duplicates_pre_dedup=result.report.duplicated,
                post_dedup_duplicates=result.post_dedup_duplicates,
                corrupted_detected=result.report.corrupted,
                dead_lettered=result.report.dead_lettered,
                ingest_p99_s=result.report.ingest_p99_s,
            )
        )
    return points
