"""Cloud model training and fleet model management (paper Sec. II-B, IV).

"The DNN models are trained regularly using our field data.  As the
deployment environment can vary significantly, different models are
specialized/trained using the deployment environment-specific training
data."  This module reproduces that loop for our detector: per-deployment
training sets, versioned model registry, retraining triggers, and model
pushes back to vehicles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


from ..perception.detection import (
    LogisticModel,
    SlidingWindowDetector,
    build_training_set,
    evaluate_detector,
)


@dataclass(frozen=True)
class ModelVersion:
    """One trained detector version for one deployment."""

    deployment: str
    version: int
    detector: SlidingWindowDetector
    precision: float
    recall: float
    n_training_scenes: int

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


#: Deployment sites from Sec. II-A with distinct synthetic data seeds —
#: the "environment-specific training data" the paper specializes on.
PAPER_DEPLOYMENTS: Dict[str, int] = {
    "fishers_indiana": 100,
    "nara_japan": 200,
    "fukuoka_japan": 300,
    "shenzhen_china": 400,
    "fribourg_switzerland": 500,
}


class ModelTrainingService:
    """Per-deployment detector training with a versioned registry."""

    def __init__(self, eval_scenes: int = 6) -> None:
        self.eval_scenes = eval_scenes
        self._registry: Dict[str, List[ModelVersion]] = {}

    def train(
        self, deployment: str, n_scenes: int = 30, seed: Optional[int] = None
    ) -> ModelVersion:
        """Train (or retrain) the deployment's detector from field data."""
        if seed is None:
            seed = PAPER_DEPLOYMENTS.get(deployment, abs(hash(deployment)) % 10_000)
        versions = self._registry.setdefault(deployment, [])
        features, labels = build_training_set(
            n_scenes=n_scenes, seed=seed + len(versions)
        )
        model = LogisticModel.train(features, labels, seed=seed)
        detector = SlidingWindowDetector(model=model)
        precision, recall = evaluate_detector(
            detector, n_scenes=self.eval_scenes, seed=seed + 10_000
        )
        version = ModelVersion(
            deployment=deployment,
            version=len(versions) + 1,
            detector=detector,
            precision=precision,
            recall=recall,
            n_training_scenes=n_scenes,
        )
        versions.append(version)
        return version

    def latest(self, deployment: str) -> ModelVersion:
        versions = self._registry.get(deployment)
        if not versions:
            raise KeyError(f"no model trained for {deployment!r}")
        return versions[-1]

    def should_retrain(
        self, deployment: str, field_precision: float, field_recall: float,
        threshold: float = 0.85,
    ) -> bool:
        """Retraining trigger: field metrics dropped below threshold."""
        return min(field_precision, field_recall) < threshold

    def deployments(self) -> List[str]:
        return list(self._registry)

    def history(self, deployment: str) -> List[ModelVersion]:
        return list(self._registry.get(deployment, []))
