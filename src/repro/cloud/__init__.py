"""Offline cloud services: maps, model training, data uplink (Fig. 1)."""

from .compression import (
    CondensedLog,
    compress_frame,
    compression_ratio,
    condense_log,
    daily_raw_volume_bytes,
    decompress_frame,
)
from .maps import DriveObservation, MapGenerationService, MapUpdate
from .training import (
    PAPER_DEPLOYMENTS,
    ModelTrainingService,
    ModelVersion,
)
from .uplink import (
    DataClass,
    Link,
    OnboardStorage,
    UplinkDecision,
    cellular_link,
    depot_link,
    paper_data_classes,
    plan_uplink,
)

__all__ = [
    "CondensedLog",
    "DataClass",
    "DriveObservation",
    "Link",
    "MapGenerationService",
    "MapUpdate",
    "ModelTrainingService",
    "ModelVersion",
    "OnboardStorage",
    "PAPER_DEPLOYMENTS",
    "UplinkDecision",
    "cellular_link",
    "compress_frame",
    "compression_ratio",
    "condense_log",
    "daily_raw_volume_bytes",
    "decompress_frame",
    "depot_link",
    "paper_data_classes",
    "plan_uplink",
]
