"""Offline cloud services: maps, model training, data uplink (Fig. 1).

The telemetry delivery pipeline (PR 6) lives in three layers here:
:mod:`.network` (seeded lossy transport), :mod:`.client` (the vehicle's
resilient uplink client), and :mod:`.ingestion` (the cloud-side
at-least-once service plus the fleet campaign driving both ends).
"""

from .client import (
    CircuitBreaker,
    ClientReport,
    ResilientUplinkClient,
    RetryPolicy,
    UplinkEnvelope,
    UplinkQueue,
    WireDecodeError,
)
from .compression import (
    CondensedLog,
    compress_frame,
    compression_ratio,
    condense_log,
    daily_raw_volume_bytes,
    decompress_frame,
)
from .ingestion import (
    IngestCampaignConfig,
    IngestCampaignResult,
    IngestionService,
    IngestReport,
    TelemetrySession,
    intensity_sweep,
    run_ingest_campaign,
)
from .maps import DriveObservation, MapGenerationService, MapUpdate
from .network import (
    LinkFaultProfile,
    LossyLink,
    NetworkFaultSpace,
    payload_checksum,
    sample_cell_faults,
)
from .training import (
    PAPER_DEPLOYMENTS,
    ModelTrainingService,
    ModelVersion,
)
from .uplink import (
    DataClass,
    Link,
    OnboardStorage,
    UplinkDecision,
    cellular_link,
    depot_link,
    paper_data_classes,
    plan_uplink,
)

__all__ = [
    "CircuitBreaker",
    "ClientReport",
    "CondensedLog",
    "DataClass",
    "DriveObservation",
    "IngestCampaignConfig",
    "IngestCampaignResult",
    "IngestReport",
    "IngestionService",
    "Link",
    "LinkFaultProfile",
    "LossyLink",
    "MapGenerationService",
    "MapUpdate",
    "ModelTrainingService",
    "ModelVersion",
    "NetworkFaultSpace",
    "OnboardStorage",
    "PAPER_DEPLOYMENTS",
    "ResilientUplinkClient",
    "RetryPolicy",
    "TelemetrySession",
    "UplinkDecision",
    "UplinkEnvelope",
    "UplinkQueue",
    "WireDecodeError",
    "cellular_link",
    "compress_frame",
    "compression_ratio",
    "condense_log",
    "daily_raw_volume_bytes",
    "decompress_frame",
    "depot_link",
    "intensity_sweep",
    "paper_data_classes",
    "payload_checksum",
    "plan_uplink",
    "run_ingest_campaign",
    "sample_cell_faults",
]
