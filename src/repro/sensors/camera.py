"""Camera sensor model (paper Sec. V-B1, Sec. VI-A).

Each vehicle carries two stereo pairs (4 cameras).  The model produces
feature observations (projected world landmarks) rather than rendered
pixels — that is what VIO and the sync study consume — and carries the
exposure/readout delay model of Fig. 12b: the instant a frame reaches the
sensor interface is the trigger time plus *constant* exposure and
transmission delays (compensatable in software), while the ISP and kernel
stages add *variable* delays (not compensatable; modelled in
:mod:`repro.sync.delays`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple


from ..scene.kitti_like import (
    CameraIntrinsics,
    FeatureObservation,
    landmark_forward_distance,
    project_landmark,
)
from ..scene.trajectory import Trajectory
from ..scene.world import World
from .base import Sensor, SensorClock


@dataclass(frozen=True)
class CameraTimingModel:
    """Constant delays between trigger and arrival at the sensor interface.

    Sec. VI-A2: "the moment that a frame reaches the sensor interface is
    delayed by the camera exposure time and the image transmission time.
    Critically, these delays are constant and could be easily derived from
    the camera sensor specification."
    """

    exposure_s: float = 0.005
    readout_s: float = 0.008  # analog-buffer readout + MIPI/CSI-2 transfer

    @property
    def constant_delay_s(self) -> float:
        return self.exposure_s + self.readout_s


@dataclass(frozen=True)
class CameraFrame:
    """Payload of one camera sample: feature observations."""

    observations: Tuple[FeatureObservation, ...]
    position: Tuple[float, float]
    heading_rad: float


class Camera(Sensor):
    """A forward-looking pinhole camera on a moving vehicle.

    The camera pose is the vehicle pose (from a ground-truth trajectory)
    plus a lateral mount offset — giving the two cameras of a stereo pair
    their baseline separation.
    """

    def __init__(
        self,
        name: str,
        trajectory: Trajectory,
        world: World,
        intrinsics: Optional[CameraIntrinsics] = None,
        lateral_offset_m: float = 0.0,
        rate_hz: float = 30.0,
        pixel_noise_px: float = 0.3,
        depth_noise_frac: float = 0.02,
        timing: Optional[CameraTimingModel] = None,
        clock: Optional[SensorClock] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(name, rate_hz, clock, seed)
        self.trajectory = trajectory
        self.world = world
        self.intrinsics = intrinsics or CameraIntrinsics()
        self.lateral_offset_m = lateral_offset_m
        self.pixel_noise_px = pixel_noise_px
        #: Stereo-derived per-feature depth noise (fraction of range); the
        #: paired camera provides the disparity (Sec. V-B1).
        self.depth_noise_frac = depth_noise_frac
        self.timing = timing or CameraTimingModel()

    def mount_position(self, true_time_s: float) -> Tuple[float, float, float]:
        """World position and heading of the camera at an instant."""
        sample = self.trajectory.sample(true_time_s)
        x, y = sample.position
        h = sample.heading_rad
        # Offset perpendicular to heading (positive = left).
        x += -math.sin(h) * self.lateral_offset_m
        y += math.cos(h) * self.lateral_offset_m
        return (x, y, h)

    def measure(self, true_time_s: float) -> CameraFrame:
        x, y, h = self.mount_position(true_time_s)
        observations: List[FeatureObservation] = []
        for lm in self.world.landmarks:
            uv = project_landmark(self.intrinsics, (x, y), h, lm)
            if uv is None:
                continue
            depth = landmark_forward_distance((x, y), h, lm)
            depth *= 1.0 + self._rng.normal(0.0, self.depth_noise_frac)
            observations.append(
                FeatureObservation(
                    lm.landmark_id,
                    uv[0] + self._rng.normal(0.0, self.pixel_noise_px),
                    uv[1] + self._rng.normal(0.0, self.pixel_noise_px),
                    depth_m=depth,
                )
            )
        return CameraFrame(tuple(observations), position=(x, y), heading_rad=h)

    def interface_arrival_time_s(self, trigger_time_s: float) -> float:
        """When the frame reaches the SoC's sensor interface (Fig. 12b)."""
        return trigger_time_s + self.timing.constant_delay_s


@dataclass(frozen=True)
class StereoRigGeometry:
    """Geometry of one stereo pair."""

    baseline_m: float = 0.12
    focal_px: float = 320.0

    def depth_from_disparity(self, disparity_px: float) -> float:
        if disparity_px <= 0:
            return float("inf")
        return self.focal_px * self.baseline_m / disparity_px

    def disparity_from_depth(self, depth_m: float) -> float:
        if depth_m <= 0:
            raise ValueError("depth must be positive")
        return self.focal_px * self.baseline_m / depth_m


def make_stereo_pair_cameras(
    trajectory: Trajectory,
    world: World,
    geometry: Optional[StereoRigGeometry] = None,
    name_prefix: str = "front",
    rate_hz: float = 30.0,
    clock: Optional[SensorClock] = None,
    seed: int = 0,
) -> Tuple[Camera, Camera]:
    """Build the left/right cameras of one stereo pair.

    By default both cameras share one clock — the hardware-triggered
    arrangement.  Pass per-camera clocks (by constructing cameras directly)
    to model free-running stereo (the Fig. 11a pathology).
    """
    geometry = geometry or StereoRigGeometry()
    half = geometry.baseline_m / 2.0
    shared_clock = clock or SensorClock()
    left = Camera(
        f"{name_prefix}_left",
        trajectory,
        world,
        lateral_offset_m=half,
        rate_hz=rate_hz,
        clock=shared_clock,
        seed=seed,
    )
    right = Camera(
        f"{name_prefix}_right",
        trajectory,
        world,
        lateral_offset_m=-half,
        rate_hz=rate_hz,
        clock=shared_clock,
        seed=seed + 1,
    )
    return left, right
