"""Sensor abstractions: clocks, samples, and the sensor base class.

The paper's central sensing insight (Sec. VI-A) is that each sensor
"operates under their own timer, which might not be synchronized with each
other" — so clocks are first-class here.  A :class:`SensorClock` has a
frequency error (drift) and an initial phase offset; sensors triggered from
their own clocks therefore fire at slightly different instants, which is
precisely the failure mode the hardware synchronizer removes by triggering
everything from a single GPS-initialized timer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

import numpy as np


@dataclass
class SensorClock:
    """A local oscillator with drift and offset.

    ``local_time = (true_time + offset) * (1 + drift_ppm * 1e-6)``

    Consumer-grade oscillators drift by tens of ppm; the paper's fix is not
    to improve the oscillators but to derive all triggers from one source.
    """

    offset_s: float = 0.0
    drift_ppm: float = 0.0

    def local_from_true(self, true_time_s: float) -> float:
        return (true_time_s + self.offset_s) * (1.0 + self.drift_ppm * 1e-6)

    def true_from_local(self, local_time_s: float) -> float:
        return local_time_s / (1.0 + self.drift_ppm * 1e-6) - self.offset_s

    def sync_to(self, reference_true_time_s: float) -> None:
        """Zero the offset at a reference instant (GPS time initialization).

        Drift is a hardware property and persists; only the phase is reset.
        """
        self.offset_s = 0.0


@dataclass(frozen=True)
class SensorSample:
    """One sensor sample with its true capture time and recorded timestamp.

    ``trigger_time_s`` is ground truth — when the physical event was
    captured.  ``timestamp_s`` is what the processing pipeline *believes*;
    the gap between them is exactly what the synchronization study
    (Sec. VI-A) quantifies.
    """

    sensor_name: str
    trigger_time_s: float
    timestamp_s: float
    payload: Any = None

    @property
    def timestamp_error_s(self) -> float:
        return self.timestamp_s - self.trigger_time_s


class Sensor:
    """Base class for all sensors: rate, clock, and trigger bookkeeping."""

    def __init__(
        self,
        name: str,
        rate_hz: float,
        clock: Optional[SensorClock] = None,
        seed: int = 0,
    ) -> None:
        if rate_hz <= 0:
            raise ValueError(f"{name}: rate must be positive")
        self.name = name
        self.rate_hz = rate_hz
        self.clock = clock or SensorClock()
        self._rng = np.random.default_rng(seed)

    @property
    def period_s(self) -> float:
        return 1.0 / self.rate_hz

    def self_trigger_times(self, duration_s: float) -> List[float]:
        """True-time instants at which this sensor fires from its own clock.

        The sensor fires when its *local* clock crosses multiples of the
        period; expressed in true time that is
        ``true_from_local(k * period)``.
        """
        n = int(duration_s * self.rate_hz) + 1
        times = [self.clock.true_from_local(k * self.period_s) for k in range(n)]
        return [t for t in times if 0.0 <= t <= duration_s]

    def capture(self, true_time_s: float) -> SensorSample:
        """Capture a sample at a true-time instant.

        Subclasses override :meth:`measure` to produce the payload; the
        recorded timestamp defaults to the sensor's own local clock reading
        (to be replaced by hardware-synchronized timestamps when a
        synchronizer is in charge).
        """
        return SensorSample(
            sensor_name=self.name,
            trigger_time_s=true_time_s,
            timestamp_s=self.clock.local_from_true(true_time_s),
            payload=self.measure(true_time_s),
        )

    def measure(self, true_time_s: float) -> Any:
        """Produce the sensor payload at a true-time instant."""
        raise NotImplementedError
