"""Radar sensor model (paper Sec. IV, Sec. VI-B).

Radar serves two purposes in the paper's design:

1. The *reactive path*: the distance to the nearest object ahead goes
   straight to the ECU, bypassing the computing system (Sec. IV).
2. *Tracking*: radar "directly measures the relative radial velocity of an
   object and combines consecutive observations of the same target into a
   trajectory", replacing compute-intensive visual tracking (Sec. VI-B).

The model returns per-target detections (range, bearing, radial velocity)
for entities in the field of view, with per-detection noise and a dropout
probability — the "unstable radar signal" case where the KCF fallback
kicks in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple


from ..scene.trajectory import Trajectory
from ..scene.world import Agent, World
from .base import Sensor, SensorClock


@dataclass(frozen=True)
class RadarDetection:
    """One radar return, in the radar's polar frame."""

    range_m: float
    bearing_rad: float
    radial_velocity_mps: float
    target_id: int  # ground-truth identity (hidden from consumers)

    def to_cartesian(self) -> Tuple[float, float]:
        """Position in the radar frame (x forward, y left)."""
        return (
            self.range_m * math.cos(self.bearing_rad),
            self.range_m * math.sin(self.bearing_rad),
        )


class Radar(Sensor):
    """A forward automotive radar mounted at a yaw offset on the vehicle.

    The six radars of the paper's rig differ only in ``mount_yaw_rad``.
    """

    def __init__(
        self,
        trajectory: Trajectory,
        world: World,
        mount_yaw_rad: float = 0.0,
        rate_hz: float = 20.0,
        max_range_m: float = 60.0,
        fov_rad: float = math.radians(90.0),
        range_noise_m: float = 0.15,
        velocity_noise_mps: float = 0.1,
        dropout_prob: float = 0.0,
        clock: Optional[SensorClock] = None,
        seed: int = 0,
        name: str = "radar",
    ) -> None:
        super().__init__(name, rate_hz, clock, seed)
        self.trajectory = trajectory
        self.world = world
        self.mount_yaw_rad = mount_yaw_rad
        self.max_range_m = max_range_m
        self.fov_rad = fov_rad
        self.range_noise_m = range_noise_m
        self.velocity_noise_mps = velocity_noise_mps
        self.dropout_prob = dropout_prob

    def measure(self, true_time_s: float) -> List[RadarDetection]:
        sample = self.trajectory.sample(true_time_s)
        ex, ey = sample.position
        evx, evy = sample.velocity
        boresight = sample.heading_rad + self.mount_yaw_rad
        detections: List[RadarDetection] = []
        for entity in [*self.world.obstacles, *self.world.agents]:
            dx, dy = entity.x_m - ex, entity.y_m - ey
            rng = math.hypot(dx, dy)
            if rng > self.max_range_m or rng < 1e-6:
                continue
            bearing = _wrap(math.atan2(dy, dx) - boresight)
            if abs(bearing) > self.fov_rad / 2.0:
                continue
            if self._rng.random() < self.dropout_prob:
                continue
            if isinstance(entity, Agent):
                tvx, tvy = entity.vx_mps, entity.vy_mps
                target_id = entity.agent_id
            else:
                tvx = tvy = 0.0
                target_id = -1 - entity.obstacle_id  # obstacles negative
            # Radial velocity: relative velocity projected on the ray.
            rvx, rvy = tvx - evx, tvy - evy
            radial = (rvx * dx + rvy * dy) / rng
            detections.append(
                RadarDetection(
                    range_m=rng + self._rng.normal(0.0, self.range_noise_m),
                    bearing_rad=bearing
                    + self._rng.normal(0.0, math.radians(0.5)),
                    radial_velocity_mps=radial
                    + self._rng.normal(0.0, self.velocity_noise_mps),
                    target_id=target_id,
                )
            )
        return detections

    def nearest_ahead_m(self, true_time_s: float) -> Optional[float]:
        """Range of the closest detection — the reactive path's input."""
        detections = self.measure(true_time_s)
        if not detections:
            return None
        return min(d.range_m for d in detections)


def _wrap(angle_rad: float) -> float:
    wrapped = math.fmod(angle_rad + math.pi, 2.0 * math.pi)
    if wrapped <= 0:
        wrapped += 2.0 * math.pi
    return wrapped - math.pi
