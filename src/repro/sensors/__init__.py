"""Sensor substrate: clocks, cameras, IMU, GPS, radar, sonar, and the rig."""

from .base import Sensor, SensorClock, SensorSample
from .camera import (
    Camera,
    CameraFrame,
    CameraTimingModel,
    StereoRigGeometry,
    make_stereo_pair_cameras,
)
from .gps import GnssFix, Gps, OutageWindow
from .imu import Imu, ImuReading
from .radar import Radar, RadarDetection
from .rig import SensorRig, build_rig
from .sonar import Sonar, SonarPing

__all__ = [
    "Camera",
    "CameraFrame",
    "CameraTimingModel",
    "GnssFix",
    "Gps",
    "Imu",
    "ImuReading",
    "OutageWindow",
    "Radar",
    "RadarDetection",
    "Sensor",
    "SensorClock",
    "SensorRig",
    "SensorSample",
    "Sonar",
    "SonarPing",
    "StereoRigGeometry",
    "build_rig",
    "make_stereo_pair_cameras",
]
