"""GPS/GNSS sensor model (paper Sec. VI-B, Fig. 12c).

The GPS plays two roles in the paper's design:

1. Its atomic time initializes the hardware synchronizer's common timer
   (Sec. VI-A2).
2. Its position fixes anchor the GPS-VIO fusion (Sec. VI-B), with two
   failure modes the paper names: signal outage (underground tunnels) and
   multipath (reflections near structures).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..scene.trajectory import Trajectory
from .base import Sensor, SensorClock


@dataclass(frozen=True)
class GnssFix:
    """One GNSS position fix."""

    position: Tuple[float, float]
    valid: bool
    multipath: bool = False


@dataclass(frozen=True)
class OutageWindow:
    """An interval during which GNSS is unavailable (e.g. a tunnel)."""

    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if self.end_s < self.start_s:
            raise ValueError("outage must end after it starts")

    def contains(self, t_s: float) -> bool:
        return self.start_s <= t_s <= self.end_s


class Gps(Sensor):
    """A GNSS receiver with noise, outages, and multipath excursions.

    * Nominal fixes: position + Gaussian noise (``noise_m``).
    * During an :class:`OutageWindow`: ``valid=False`` fixes.
    * Multipath: with probability ``multipath_prob`` per fix, the position
      error jumps by ``multipath_error_m`` in a random direction.
    """

    def __init__(
        self,
        trajectory: Trajectory,
        rate_hz: float = 10.0,
        noise_m: float = 0.5,
        outages: Optional[List[OutageWindow]] = None,
        multipath_prob: float = 0.0,
        multipath_error_m: float = 8.0,
        clock: Optional[SensorClock] = None,
        seed: int = 0,
        name: str = "gps",
    ) -> None:
        super().__init__(name, rate_hz, clock, seed)
        self.trajectory = trajectory
        self.noise_m = noise_m
        self.outages = outages or []
        self.multipath_prob = multipath_prob
        self.multipath_error_m = multipath_error_m

    def in_outage(self, true_time_s: float) -> bool:
        return any(w.contains(true_time_s) for w in self.outages)

    def measure(self, true_time_s: float) -> GnssFix:
        if self.in_outage(true_time_s):
            return GnssFix(position=(float("nan"), float("nan")), valid=False)
        x, y = self.trajectory.position_at(true_time_s)
        x += self._rng.normal(0.0, self.noise_m)
        y += self._rng.normal(0.0, self.noise_m)
        multipath = bool(self._rng.random() < self.multipath_prob)
        if multipath:
            angle = self._rng.uniform(0.0, 2.0 * np.pi)
            x += self.multipath_error_m * np.cos(angle)
            y += self.multipath_error_m * np.sin(angle)
        return GnssFix(position=(x, y), valid=True, multipath=multipath)

    def atomic_time(self, true_time_s: float) -> float:
        """Satellite atomic time — the synchronizer's reference (exact)."""
        return true_time_s
