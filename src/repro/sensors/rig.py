"""The full sensor rig of the paper's vehicle (Fig. 7 left column).

Two stereo camera pairs (front/back, 4 cameras), one IMU, one GPS, six
radars, and eight sonars.  The rig can be built in two timing modes:

* ``independent_clocks=True`` — every sensor free-runs on its own drifting
  oscillator: the pre-synchronizer world of Fig. 12a.
* ``independent_clocks=False`` — cameras and IMU share one clock, the
  hardware-synchronized arrangement of Fig. 12c.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core import calibration
from ..scene.trajectory import Trajectory
from ..scene.world import World, make_urban_block
from .base import Sensor, SensorClock
from .camera import Camera, StereoRigGeometry, make_stereo_pair_cameras
from .gps import Gps
from .imu import Imu
from .radar import Radar
from .sonar import Sonar


@dataclass
class SensorRig:
    """All sensors on one vehicle."""

    cameras: List[Camera]
    imu: Imu
    gps: Gps
    radars: List[Radar]
    sonars: List[Sonar]

    @property
    def all_sensors(self) -> List[Sensor]:
        return [*self.cameras, self.imu, self.gps, *self.radars, *self.sonars]

    def sensor_by_name(self, name: str) -> Sensor:
        for sensor in self.all_sensors:
            if sensor.name == name:
                return sensor
        raise KeyError(f"no sensor named {name!r}")

    def front_stereo(self) -> List[Camera]:
        return [c for c in self.cameras if c.name.startswith("front")]

    def forward_radar(self) -> Radar:
        """The boresight radar used by the reactive path."""
        return min(self.radars, key=lambda r: abs(r.mount_yaw_rad))


def build_rig(
    trajectory: Trajectory,
    world: Optional[World] = None,
    independent_clocks: bool = True,
    clock_offset_spread_s: float = 0.05,
    clock_drift_spread_ppm: float = 30.0,
    seed: int = 0,
) -> SensorRig:
    """Assemble the paper's sensor configuration.

    With ``independent_clocks`` each sensor gets a random offset (uniform
    in ±``clock_offset_spread_s``) and drift (±``clock_drift_spread_ppm``)
    — consumer oscillators that were never told a common epoch.
    """
    world = world or make_urban_block(seed=seed)
    rng = np.random.default_rng(seed)

    def new_clock() -> SensorClock:
        if not independent_clocks:
            return SensorClock()
        return SensorClock(
            offset_s=float(rng.uniform(-clock_offset_spread_s, clock_offset_spread_s)),
            drift_ppm=float(
                rng.uniform(-clock_drift_spread_ppm, clock_drift_spread_ppm)
            ),
        )

    shared = SensorClock()
    geometry = StereoRigGeometry()
    cameras: List[Camera] = []
    for prefix, heading in (("front", 0.0), ("back", math.pi)):
        left, right = make_stereo_pair_cameras(
            trajectory,
            world,
            geometry=geometry,
            name_prefix=prefix,
            rate_hz=calibration.CAMERA_RATE_HZ,
            clock=shared if not independent_clocks else new_clock(),
            seed=seed + (0 if prefix == "front" else 10),
        )
        if independent_clocks:
            # Free-running stereo: the right camera gets its own clock too.
            right.clock = new_clock()
        cameras.extend([left, right])

    imu = Imu(
        trajectory,
        rate_hz=calibration.IMU_RATE_HZ,
        clock=shared if not independent_clocks else new_clock(),
        seed=seed + 20,
    )
    gps = Gps(trajectory, clock=SensorClock(), seed=seed + 30)

    radars = [
        Radar(
            trajectory,
            world,
            mount_yaw_rad=math.radians(yaw_deg),
            clock=new_clock(),
            seed=seed + 40 + i,
            name=f"radar_{i}",
        )
        for i, yaw_deg in enumerate((0.0, 60.0, 120.0, 180.0, 240.0, 300.0))
    ]
    sonars = [
        Sonar(
            trajectory,
            world,
            mount_yaw_rad=2.0 * math.pi * i / calibration.NUM_SONARS,
            clock=new_clock(),
            seed=seed + 60 + i,
            name=f"sonar_{i}",
        )
        for i in range(calibration.NUM_SONARS)
    ]
    return SensorRig(cameras=cameras, imu=imu, gps=gps, radars=radars, sonars=sonars)
