"""Sonar sensor model (paper Table I, Sec. IV).

Eight short-range ultrasonic sensors ring the vehicle.  Each reports a
single distance to the nearest surface within its cone — the second input
to the reactive path ("Radar (and Sonar when available)").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..scene.trajectory import Trajectory
from ..scene.world import World
from .base import Sensor, SensorClock


@dataclass(frozen=True)
class SonarPing:
    """One sonar reading; ``distance_m`` is None when nothing is in range."""

    distance_m: Optional[float]


class Sonar(Sensor):
    """A single ultrasonic ranger mounted at a yaw offset."""

    def __init__(
        self,
        trajectory: Trajectory,
        world: World,
        mount_yaw_rad: float = 0.0,
        rate_hz: float = 20.0,
        max_range_m: float = 5.0,
        fov_rad: float = math.radians(30.0),
        noise_m: float = 0.02,
        clock: Optional[SensorClock] = None,
        seed: int = 0,
        name: str = "sonar",
    ) -> None:
        super().__init__(name, rate_hz, clock, seed)
        self.trajectory = trajectory
        self.world = world
        self.mount_yaw_rad = mount_yaw_rad
        self.max_range_m = max_range_m
        self.fov_rad = fov_rad
        self.noise_m = noise_m

    def measure(self, true_time_s: float) -> SonarPing:
        sample = self.trajectory.sample(true_time_s)
        x, y = sample.position
        boresight = sample.heading_rad + self.mount_yaw_rad
        hit = self.world.nearest_obstruction(x, y, boresight, self.fov_rad)
        if hit is None:
            return SonarPing(distance_m=None)
        distance, _entity = hit
        if distance > self.max_range_m:
            return SonarPing(distance_m=None)
        noisy = max(0.0, distance + self._rng.normal(0.0, self.noise_m))
        return SonarPing(distance_m=noisy)
