"""IMU sensor model (paper Table III, Sec. VI-A).

A 240 Hz accelerometer + gyroscope with the standard consumer-IMU error
model: white noise plus a slowly-walking bias.  The bias random walk is
what makes pure inertial integration drift — the reason VIO needs camera
corrections and the GPS-VIO fusion of Sec. VI-B needs GNSS anchoring.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..scene.trajectory import Trajectory
from .base import Sensor, SensorClock


@dataclass(frozen=True)
class ImuReading:
    """Body-frame specific force and yaw rate."""

    accel_body: Tuple[float, float]  # (forward, lateral) m/s^2
    yaw_rate_rps: float


class Imu(Sensor):
    """Accelerometer + gyroscope on the vehicle body.

    Noise parameters are representative of an automotive MEMS part; each
    IMU sample is 20 bytes (Sec. VI-A2), cheap enough to timestamp in the
    hardware synchronizer.
    """

    SAMPLE_BYTES = 20

    def __init__(
        self,
        trajectory: Trajectory,
        rate_hz: float = 240.0,
        accel_noise_mps2: float = 0.02,
        gyro_noise_rps: float = 0.002,
        accel_bias_walk: float = 0.0005,
        gyro_bias_walk: float = 0.00005,
        clock: Optional[SensorClock] = None,
        seed: int = 0,
        name: str = "imu",
    ) -> None:
        super().__init__(name, rate_hz, clock, seed)
        self.trajectory = trajectory
        self.accel_noise_mps2 = accel_noise_mps2
        self.gyro_noise_rps = gyro_noise_rps
        self.accel_bias_walk = accel_bias_walk
        self.gyro_bias_walk = gyro_bias_walk
        self._accel_bias = np.zeros(2)
        self._gyro_bias = 0.0

    def measure(self, true_time_s: float) -> ImuReading:
        sample = self.trajectory.sample(true_time_s)
        ax, ay = sample.acceleration
        c, s = math.cos(sample.heading_rad), math.sin(sample.heading_rad)
        a_fwd = ax * c + ay * s
        a_lat = -ax * s + ay * c
        # Bias random walk (per-sample step) + white noise.
        self._accel_bias += self._rng.normal(0.0, self.accel_bias_walk, size=2)
        self._gyro_bias += self._rng.normal(0.0, self.gyro_bias_walk)
        noise_a = self._rng.normal(0.0, self.accel_noise_mps2, size=2)
        noise_g = self._rng.normal(0.0, self.gyro_noise_rps)
        return ImuReading(
            accel_body=(
                a_fwd + self._accel_bias[0] + noise_a[0],
                a_lat + self._accel_bias[1] + noise_a[1],
            ),
            yaw_rate_rps=sample.yaw_rate_rps + self._gyro_bias + noise_g,
        )

    @property
    def bias_state(self) -> Tuple[Tuple[float, float], float]:
        """Current (accel bias, gyro bias) — useful for tests."""
        return ((float(self._accel_bias[0]), float(self._accel_bias[1])), self._gyro_bias)
