"""Point-cloud container and synthetic LiDAR scans (paper Sec. III-D).

The paper's LiDAR case study rests on one structural fact: "LiDAR generates
irregular point clouds, which consist of sparse points arbitrarily spread
across the 3D space."  We reproduce that structure by simulating a spinning
LiDAR: rays cast at fixed angular increments against a scene of ground
plane, walls, and objects produce clouds whose spatial density falls off
with range and clusters on surfaces — the irregularity that defeats
conventional memory optimizations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class PointCloud:
    """An N x 3 array of points with convenience operations."""

    points: np.ndarray

    def __post_init__(self) -> None:
        self.points = np.asarray(self.points, dtype=np.float64)
        if self.points.ndim != 2 or self.points.shape[1] != 3:
            raise ValueError(f"points must be Nx3, got {self.points.shape}")

    def __len__(self) -> int:
        return self.points.shape[0]

    @property
    def centroid(self) -> np.ndarray:
        if len(self) == 0:
            raise ValueError("empty cloud has no centroid")
        return self.points.mean(axis=0)

    def transformed(self, rotation: np.ndarray, translation: np.ndarray) -> "PointCloud":
        """Apply a rigid transform: ``p' = R p + t``."""
        rotation = np.asarray(rotation, dtype=np.float64)
        translation = np.asarray(translation, dtype=np.float64)
        if rotation.shape != (3, 3) or translation.shape != (3,):
            raise ValueError("rotation must be 3x3 and translation length-3")
        return PointCloud(self.points @ rotation.T + translation)

    def downsampled(self, voxel_m: float) -> "PointCloud":
        """Voxel-grid downsampling: one centroid per occupied voxel."""
        if voxel_m <= 0:
            raise ValueError("voxel size must be positive")
        if len(self) == 0:
            return PointCloud(self.points.copy())
        keys = np.floor(self.points / voxel_m).astype(np.int64)
        _, inverse = np.unique(keys, axis=0, return_inverse=True)
        n_voxels = inverse.max() + 1
        sums = np.zeros((n_voxels, 3))
        counts = np.zeros(n_voxels)
        np.add.at(sums, inverse, self.points)
        np.add.at(counts, inverse, 1.0)
        return PointCloud(sums / counts[:, None])

    def with_noise(self, sigma_m: float, seed: int = 0) -> "PointCloud":
        rng = np.random.default_rng(seed)
        return PointCloud(self.points + rng.normal(0.0, sigma_m, self.points.shape))


def rotation_z(angle_rad: float) -> np.ndarray:
    """Rotation matrix about the z axis."""
    c, s = math.cos(angle_rad), math.sin(angle_rad)
    return np.array([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])


@dataclass(frozen=True)
class Box:
    """An axis-aligned box obstacle for the ray-cast scene."""

    center: Tuple[float, float, float]
    size: Tuple[float, float, float]


def _ray_box_distance(
    origin: np.ndarray, direction: np.ndarray, box: Box
) -> Optional[float]:
    """Slab-method ray/AABB intersection; returns hit distance or None."""
    lo = np.array(box.center) - np.array(box.size) / 2.0
    hi = np.array(box.center) + np.array(box.size) / 2.0
    t_near, t_far = 0.0, float("inf")
    for axis in range(3):
        if abs(direction[axis]) < 1e-12:
            if origin[axis] < lo[axis] or origin[axis] > hi[axis]:
                return None
            continue
        t1 = (lo[axis] - origin[axis]) / direction[axis]
        t2 = (hi[axis] - origin[axis]) / direction[axis]
        t1, t2 = min(t1, t2), max(t1, t2)
        t_near, t_far = max(t_near, t1), min(t_far, t2)
        if t_near > t_far:
            return None
    return t_near if t_near > 1e-9 else None


def simulate_lidar_scan(
    sensor_height_m: float = 1.8,
    n_beams: int = 16,
    n_azimuth: int = 360,
    max_range_m: float = 60.0,
    boxes: Optional[Sequence[Box]] = None,
    wall_distance_m: float = 25.0,
    noise_m: float = 0.01,
    seed: int = 0,
) -> PointCloud:
    """Simulate one spinning-LiDAR sweep.

    Beams span elevations from -15 to +5 degrees (a Puck-like pattern).
    Each ray hits the nearest of: a box obstacle, the surrounding square
    wall, or the ground plane.  Misses are dropped, which is what makes the
    clouds *sparse and irregular*.
    """
    rng = np.random.default_rng(seed)
    boxes = list(boxes) if boxes is not None else _default_boxes(seed)
    elevations = np.deg2rad(np.linspace(-15.0, 5.0, n_beams))
    azimuths = np.linspace(0.0, 2.0 * math.pi, n_azimuth, endpoint=False)
    origin = np.array([0.0, 0.0, sensor_height_m])
    points: List[np.ndarray] = []
    for elev in elevations:
        ce, se = math.cos(elev), math.sin(elev)
        for az in azimuths:
            direction = np.array([ce * math.cos(az), ce * math.sin(az), se])
            best: Optional[float] = None
            for box in boxes:
                t = _ray_box_distance(origin, direction, box)
                if t is not None and (best is None or t < best):
                    best = t
            # Ground plane z=0.
            if direction[2] < -1e-9:
                t_ground = -origin[2] / direction[2]
                if best is None or t_ground < best:
                    best = t_ground
            # Square wall at +-wall_distance in x and y.
            for axis in (0, 1):
                if abs(direction[axis]) > 1e-9:
                    for sign in (-1.0, 1.0):
                        t_wall = (sign * wall_distance_m - origin[axis]) / direction[
                            axis
                        ]
                        if t_wall > 1e-9 and (best is None or t_wall < best):
                            # Check the hit is within the square extent.
                            other = 1 - axis
                            coord = origin[other] + t_wall * direction[other]
                            if abs(coord) <= wall_distance_m:
                                best = t_wall
            if best is None or best > max_range_m:
                continue
            hit = origin + best * direction
            hit = hit + rng.normal(0.0, noise_m, 3)
            points.append(hit)
    if not points:
        return PointCloud(np.zeros((0, 3)))
    return PointCloud(np.array(points))


def _default_boxes(seed: int) -> List[Box]:
    rng = np.random.default_rng(seed + 100)
    boxes = []
    for _ in range(6):
        cx = float(rng.uniform(-18.0, 18.0))
        cy = float(rng.uniform(-18.0, 18.0))
        if math.hypot(cx, cy) < 3.0:
            cx += 5.0
        boxes.append(
            Box(
                center=(cx, cy, float(rng.uniform(0.5, 1.5))),
                size=(
                    float(rng.uniform(0.5, 3.0)),
                    float(rng.uniform(0.5, 3.0)),
                    float(rng.uniform(1.0, 3.0)),
                ),
            )
        )
    return boxes
