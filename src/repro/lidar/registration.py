"""Point-to-point ICP registration — LiDAR localization (paper Sec. III-D).

The paper's Fig. 4a traces come from "running a LiDAR localization
algorithm"; scan-to-map/scan-to-scan registration via iterative closest
point is the canonical such algorithm.  Every nearest-neighbor lookup runs
through our traced kd-tree, so the full memory-access behaviour of LiDAR
localization is observable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from .kdtree import AccessTrace, KdTree
from .pointcloud import PointCloud


@dataclass
class IcpResult:
    """Outcome of an ICP run."""

    rotation: np.ndarray
    translation: np.ndarray
    rmse_m: float
    iterations: int
    converged: bool
    trace: Optional[AccessTrace] = None

    def apply(self, cloud: PointCloud) -> PointCloud:
        return cloud.transformed(self.rotation, self.translation)


def _best_rigid_transform(
    source: np.ndarray, target: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Least-squares rigid transform via the Kabsch/SVD algorithm."""
    src_c = source.mean(axis=0)
    tgt_c = target.mean(axis=0)
    h = (source - src_c).T @ (target - tgt_c)
    u, _s, vt = np.linalg.svd(h)
    d = np.sign(np.linalg.det(vt.T @ u.T))
    correction = np.diag([1.0, 1.0, d])
    rotation = vt.T @ correction @ u.T
    translation = tgt_c - rotation @ src_c
    return rotation, translation


def icp(
    source: PointCloud,
    target: PointCloud,
    max_iterations: int = 30,
    tolerance_m: float = 1e-5,
    max_correspondence_m: float = 5.0,
    record_trace: bool = False,
) -> IcpResult:
    """Align *source* onto *target* with point-to-point ICP.

    Returns the cumulative rigid transform and, when ``record_trace``, the
    full kd-tree access trace across all iterations — the Fig. 4a workload.
    """
    if len(source) == 0 or len(target) == 0:
        raise ValueError("clouds must be non-empty")
    tree = KdTree(target.points)
    trace = AccessTrace() if record_trace else None
    current = source.points.copy()
    total_r = np.eye(3)
    total_t = np.zeros(3)
    prev_rmse = float("inf")
    iterations = 0
    converged = False
    for iterations in range(1, max_iterations + 1):
        matched_src = []
        matched_tgt = []
        errors = []
        for p in current:
            idx, dist = tree.nearest(p, trace=trace)
            if dist > max_correspondence_m:
                continue
            matched_src.append(p)
            matched_tgt.append(target.points[idx])
            errors.append(dist)
        if len(matched_src) < 3:
            break
        rmse = float(np.sqrt(np.mean(np.square(errors))))
        rotation, translation = _best_rigid_transform(
            np.array(matched_src), np.array(matched_tgt)
        )
        current = current @ rotation.T + translation
        total_r = rotation @ total_r
        total_t = rotation @ total_t + translation
        if abs(prev_rmse - rmse) < tolerance_m:
            converged = True
            prev_rmse = rmse
            break
        prev_rmse = rmse
    return IcpResult(
        rotation=total_r,
        translation=total_t,
        rmse_m=prev_rmse if math.isfinite(prev_rmse) else float("inf"),
        iterations=iterations,
        converged=converged,
        trace=trace,
    )
