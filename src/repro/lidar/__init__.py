"""LiDAR case-study substrate: clouds, kd-tree, ICP, kernels, reuse."""

from .kdtree import AccessTrace, KdTree
from .kernels import (
    ALL_KERNELS,
    KernelResult,
    localization_kernel,
    recognition_kernel,
    reconstruction_kernel,
    run_kernel,
    segmentation_kernel,
)
from .pointcloud import Box, PointCloud, rotation_z, simulate_lidar_scan
from .registration import IcpResult, icp
from .reuse import ReuseHistogram, distribution_divergence, reuse_histogram

__all__ = [
    "ALL_KERNELS",
    "AccessTrace",
    "Box",
    "IcpResult",
    "KdTree",
    "KernelResult",
    "PointCloud",
    "ReuseHistogram",
    "distribution_divergence",
    "icp",
    "localization_kernel",
    "recognition_kernel",
    "reconstruction_kernel",
    "reuse_histogram",
    "rotation_z",
    "run_kernel",
    "segmentation_kernel",
    "simulate_lidar_scan",
]
