"""A kd-tree built from scratch, with memory-access tracing.

The paper attributes LiDAR processing inefficiency to "irregular kernels
(e.g., neighbor search)" whose memory behaviour defeats caches (Fig. 4).
To *measure* that, this kd-tree records every point it touches during a
query into an optional :class:`AccessTrace` — the trace feeds both the
reuse-frequency histogram (Fig. 4a) and the cache simulator (Fig. 4b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class AccessTrace:
    """A flat record of point indices touched, in order."""

    indices: List[int] = field(default_factory=list)

    def record(self, index: int) -> None:
        self.indices.append(index)

    def __len__(self) -> int:
        return len(self.indices)

    def reuse_counts(self, n_points: int) -> np.ndarray:
        """Per-point access counts over the whole trace."""
        counts = np.zeros(n_points, dtype=np.int64)
        for i in self.indices:
            counts[i] += 1
        return counts

    def byte_addresses(self, point_bytes: int = 16) -> np.ndarray:
        """Trace as byte addresses (points stored contiguously).

        A LiDAR point with intensity is typically 16 bytes (x, y, z,
        intensity as float32).
        """
        return np.asarray(self.indices, dtype=np.int64) * point_bytes


@dataclass
class _Node:
    index: int  # index of the splitting point
    axis: int
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None


class KdTree:
    """3-D kd-tree over an Nx3 array with nearest/radius queries."""

    def __init__(self, points: np.ndarray) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError("points must be Nx3")
        self.points = points
        indices = list(range(len(points)))
        self._root = self._build(indices, depth=0)

    def _build(self, indices: List[int], depth: int) -> Optional[_Node]:
        if not indices:
            return None
        axis = depth % 3
        indices.sort(key=lambda i: self.points[i, axis])
        mid = len(indices) // 2
        node = _Node(index=indices[mid], axis=axis)
        node.left = self._build(indices[:mid], depth + 1)
        node.right = self._build(indices[mid + 1 :], depth + 1)
        return node

    # -- queries ---------------------------------------------------------

    def nearest(
        self, query: Sequence[float], trace: Optional[AccessTrace] = None
    ) -> Tuple[int, float]:
        """Index and distance of the nearest point to *query*."""
        if self._root is None:
            raise ValueError("empty tree")
        q = np.asarray(query, dtype=np.float64)
        best: List = [-1, float("inf")]
        self._nearest(self._root, q, best, trace)
        return best[0], best[1]

    def _nearest(
        self,
        node: Optional[_Node],
        q: np.ndarray,
        best: List,
        trace: Optional[AccessTrace],
    ) -> None:
        if node is None:
            return
        if trace is not None:
            trace.record(node.index)
        p = self.points[node.index]
        d = float(np.linalg.norm(p - q))
        if d < best[1]:
            best[0], best[1] = node.index, d
        diff = q[node.axis] - p[node.axis]
        near, far = (node.left, node.right) if diff < 0 else (node.right, node.left)
        self._nearest(near, q, best, trace)
        if abs(diff) < best[1]:
            self._nearest(far, q, best, trace)

    def radius_search(
        self,
        query: Sequence[float],
        radius_m: float,
        trace: Optional[AccessTrace] = None,
    ) -> List[int]:
        """Indices of all points within *radius_m* of *query*."""
        if radius_m <= 0:
            raise ValueError("radius must be positive")
        q = np.asarray(query, dtype=np.float64)
        out: List[int] = []
        self._radius(self._root, q, radius_m, out, trace)
        return out

    def _radius(
        self,
        node: Optional[_Node],
        q: np.ndarray,
        radius: float,
        out: List[int],
        trace: Optional[AccessTrace],
    ) -> None:
        if node is None:
            return
        if trace is not None:
            trace.record(node.index)
        p = self.points[node.index]
        if float(np.linalg.norm(p - q)) <= radius:
            out.append(node.index)
        diff = q[node.axis] - p[node.axis]
        near, far = (node.left, node.right) if diff < 0 else (node.right, node.left)
        self._radius(near, q, radius, out, trace)
        if abs(diff) <= radius:
            self._radius(far, q, radius, out, trace)

    def k_nearest(
        self,
        query: Sequence[float],
        k: int,
        trace: Optional[AccessTrace] = None,
    ) -> List[Tuple[int, float]]:
        """The *k* nearest points as (index, distance), closest first.

        Simple bounded-list implementation; adequate for the small k used
        by normal estimation.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        q = np.asarray(query, dtype=np.float64)
        heap: List[Tuple[float, int]] = []
        self._k_nearest(self._root, q, k, heap, trace)
        heap.sort()
        return [(i, d) for d, i in heap]

    def _k_nearest(
        self,
        node: Optional[_Node],
        q: np.ndarray,
        k: int,
        heap: List[Tuple[float, int]],
        trace: Optional[AccessTrace],
    ) -> None:
        if node is None:
            return
        if trace is not None:
            trace.record(node.index)
        p = self.points[node.index]
        d = float(np.linalg.norm(p - q))
        heap.append((d, node.index))
        heap.sort()
        if len(heap) > k:
            heap.pop()
        diff = q[node.axis] - p[node.axis]
        near, far = (node.left, node.right) if diff < 0 else (node.right, node.left)
        self._k_nearest(near, q, k, heap, trace)
        worst = heap[-1][0] if len(heap) == k else float("inf")
        if abs(diff) < worst:
            self._k_nearest(far, q, k, heap, trace)
