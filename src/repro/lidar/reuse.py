"""Data-reuse frequency analysis (paper Fig. 4a).

Fig. 4a histograms "the number of points (y) that is reused certain times
(x)" while running LiDAR localization on two different scenes.  The paper's
conclusions, which our analysis must reproduce:

* reuse opportunity is abundant (most points are touched many times), but
* reuse counts vary wildly across points within a cloud, and
* the distribution shifts between clouds of different scenes —
  so "conventional memory optimizations are likely ineffective".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .kdtree import AccessTrace


@dataclass(frozen=True)
class ReuseHistogram:
    """Histogram of per-point access counts."""

    bin_edges: np.ndarray  # len B+1
    counts: np.ndarray  # len B, number of points per reuse-frequency bin
    per_point_counts: np.ndarray

    @property
    def total_points(self) -> int:
        return int(self.per_point_counts.size)

    @property
    def mean_reuse(self) -> float:
        return float(self.per_point_counts.mean())

    @property
    def std_reuse(self) -> float:
        return float(self.per_point_counts.std())

    @property
    def coefficient_of_variation(self) -> float:
        """Reuse irregularity: std / mean of per-point access counts."""
        mean = self.mean_reuse
        return float("inf") if mean == 0 else self.std_reuse / mean

    def as_points(self) -> List[Tuple[float, int]]:
        """Fig. 4a-style <x, y> points: (reuse frequency, number of points)."""
        centers = 0.5 * (self.bin_edges[:-1] + self.bin_edges[1:])
        return [(float(c), int(n)) for c, n in zip(centers, self.counts)]


def reuse_histogram(
    trace: AccessTrace, n_points: int, n_bins: int = 20
) -> ReuseHistogram:
    """Build the Fig. 4a histogram from an access trace."""
    if n_points <= 0:
        raise ValueError("n_points must be positive")
    per_point = trace.reuse_counts(n_points)
    hi = max(1, int(per_point.max()))
    counts, edges = np.histogram(per_point, bins=n_bins, range=(0, hi))
    return ReuseHistogram(
        bin_edges=edges, counts=counts, per_point_counts=per_point
    )


def distribution_divergence(a: ReuseHistogram, b: ReuseHistogram) -> float:
    """Total-variation distance between two reuse distributions in [0, 1].

    Quantifies the paper's "the number of reuses varies significantly ...
    across two point clouds": near 0 means the scenes stress memory the
    same way (a fixed prefetch/pinning policy could work), near 1 means
    they differ completely.

    Both histograms are re-binned onto a common support before comparing.
    """
    hi = max(
        int(a.per_point_counts.max()), int(b.per_point_counts.max()), 1
    )
    bins = np.linspace(0, hi, 21)
    pa, _ = np.histogram(a.per_point_counts, bins=bins)
    pb, _ = np.histogram(b.per_point_counts, bins=bins)
    pa = pa / max(pa.sum(), 1)
    pb = pb / max(pb.sum(), 1)
    return float(0.5 * np.abs(pa - pb).sum())
