"""The four point-cloud kernels of Fig. 4b.

The paper measures off-chip memory traffic of "four common point cloud
algorithms implemented in the well-tuned Point Cloud Library":
localization, recognition, reconstruction, and segmentation.  We implement
functional equivalents of each on top of the traced kd-tree, so every
kernel yields both its algorithmic result *and* the memory-access trace
that the cache simulator turns into traffic numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .kdtree import AccessTrace, KdTree
from .pointcloud import PointCloud, rotation_z
from .registration import IcpResult, icp


@dataclass
class KernelResult:
    """Common wrapper: the kernel's output plus its access trace."""

    name: str
    output: object
    trace: AccessTrace
    n_points: int


def localization_kernel(
    scan: PointCloud, reference: PointCloud, max_iterations: int = 10
) -> KernelResult:
    """Scan-to-map registration (ICP) — LiDAR localization."""
    result = icp(
        scan, reference, max_iterations=max_iterations, record_trace=True
    )
    assert result.trace is not None
    return KernelResult(
        name="localization",
        output=result,
        trace=result.trace,
        n_points=len(reference),
    )


def _estimate_normal(points: np.ndarray) -> np.ndarray:
    """Normal of a neighborhood via the smallest covariance eigenvector."""
    centered = points - points.mean(axis=0)
    cov = centered.T @ centered
    _w, v = np.linalg.eigh(cov)
    return v[:, 0]


def recognition_kernel(
    cloud: PointCloud, k_neighbors: int = 8, n_bins: int = 12
) -> KernelResult:
    """Per-point normal-orientation descriptor — object recognition.

    A simplified FPFH: for every point, find its k nearest neighbors,
    estimate the local normal, and histogram the normal orientations.
    This reproduces recognition's access pattern: a k-NN query per point
    with no locality between consecutive queries after the cloud is
    shuffled by the sensor's azimuthal sweep.
    """
    if len(cloud) < k_neighbors + 1:
        raise ValueError("cloud too small for the neighborhood size")
    tree = KdTree(cloud.points)
    trace = AccessTrace()
    histogram = np.zeros(n_bins)
    normals = np.zeros_like(cloud.points)
    for i, p in enumerate(cloud.points):
        neighbors = tree.k_nearest(p, k_neighbors, trace=trace)
        pts = cloud.points[[idx for idx, _ in neighbors]]
        normal = _estimate_normal(pts)
        normals[i] = normal
        angle = math.acos(min(1.0, abs(float(normal[2]))))
        bin_idx = min(n_bins - 1, int(angle / (math.pi / 2) * n_bins))
        histogram[bin_idx] += 1
    return KernelResult(
        name="recognition",
        output={"histogram": histogram, "normals": normals},
        trace=trace,
        n_points=len(cloud),
    )


def reconstruction_kernel(
    cloud: PointCloud, k_neighbors: int = 6
) -> KernelResult:
    """Surface reconstruction: normals + neighbor connectivity graph.

    A greedy-projection-style precursor: estimate per-point normals and
    collect the k-NN edges that a meshing step would triangulate.
    """
    if len(cloud) < k_neighbors + 1:
        raise ValueError("cloud too small for the neighborhood size")
    tree = KdTree(cloud.points)
    trace = AccessTrace()
    edges: List[Tuple[int, int]] = []
    normals = np.zeros_like(cloud.points)
    for i, p in enumerate(cloud.points):
        neighbors = tree.k_nearest(p, k_neighbors, trace=trace)
        pts = cloud.points[[idx for idx, _ in neighbors]]
        normals[i] = _estimate_normal(pts)
        for idx, _d in neighbors:
            if idx != i:
                edges.append((min(i, idx), max(i, idx)))
    unique_edges = sorted(set(edges))
    return KernelResult(
        name="reconstruction",
        output={"normals": normals, "edges": unique_edges},
        trace=trace,
        n_points=len(cloud),
    )


def segmentation_kernel(
    cloud: PointCloud, cluster_radius_m: float = 1.0, min_cluster_size: int = 5
) -> KernelResult:
    """Euclidean cluster extraction — segmentation.

    Breadth-first flood fill through radius queries, PCL's
    ``EuclideanClusterExtraction``.  Access pattern: data-dependent BFS
    frontier — the most irregular of the four.
    """
    tree = KdTree(cloud.points)
    trace = AccessTrace()
    unvisited = set(range(len(cloud)))
    clusters: List[List[int]] = []
    while unvisited:
        seed = unvisited.pop()
        cluster = [seed]
        frontier = [seed]
        while frontier:
            current = frontier.pop()
            for idx in tree.radius_search(
                cloud.points[current], cluster_radius_m, trace=trace
            ):
                if idx in unvisited:
                    unvisited.remove(idx)
                    cluster.append(idx)
                    frontier.append(idx)
        if len(cluster) >= min_cluster_size:
            clusters.append(sorted(cluster))
    return KernelResult(
        name="segmentation",
        output=clusters,
        trace=trace,
        n_points=len(cloud),
    )


ALL_KERNELS = ("localization", "recognition", "reconstruction", "segmentation")


def run_kernel(
    name: str,
    cloud: PointCloud,
    reference: Optional[PointCloud] = None,
) -> KernelResult:
    """Dispatch a Fig. 4b kernel by name."""
    if name == "localization":
        if reference is None:
            # Self-registration against a slightly transformed copy.
            reference = cloud.transformed(
                rotation_z(0.02), np.array([0.3, 0.1, 0.0])
            )
        return localization_kernel(cloud, reference)
    if name == "recognition":
        return recognition_kernel(cloud)
    if name == "reconstruction":
        return reconstruction_kernel(cloud)
    if name == "segmentation":
        return segmentation_kernel(cloud)
    raise ValueError(f"unknown kernel {name!r}; choose from {ALL_KERNELS}")
