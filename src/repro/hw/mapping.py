"""Algorithm-to-hardware mapping exploration (paper Sec. V-B2, Fig. 8).

Perception splits into two independent task groups:

* *scene understanding* — depth estimation in parallel with the serialized
  detection -> tracking chain; its latency is
  ``max(depth, detection + tracking)``;
* *localization* — the VIO pipeline.

Since the groups run in parallel, perception latency is the max of the two.
This module enumerates mappings of the groups onto {gpu, fpga, tx2},
applies the contention model when both land on the same device, and
reproduces every bar of Fig. 8 plus the derived claims (1.6x perception
speedup, ~23% end-to-end reduction).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..core import calibration
from ..core.calibration import task_profile
from .contention import ContentionModel, gpu_contention_model

TASK_GROUPS = ("scene_understanding", "localization")
MAPPABLE_PLATFORMS = ("gpu", "fpga", "tx2")


def scene_understanding_alone_s(platform: str) -> float:
    """Scene-understanding latency on *platform*, no contention.

    ``max(depth, detection + tracking)`` — depth runs in parallel with the
    serialized detection->tracking chain (Sec. IV).
    """
    depth = task_profile("depth", platform).latency_s
    detection = task_profile("detection", platform).latency_s
    tracking = task_profile("tracking", platform).latency_s
    return max(depth, detection + tracking)


def localization_alone_s(platform: str) -> float:
    return task_profile("localization", platform).latency_s


_ALONE_LATENCY = {
    "scene_understanding": scene_understanding_alone_s,
    "localization": localization_alone_s,
}


@dataclass(frozen=True)
class MappingResult:
    """One Fig. 8 configuration."""

    assignment: Tuple[Tuple[str, str], ...]  # ((group, platform), ...)
    group_latencies_s: Tuple[Tuple[str, float], ...]
    perception_latency_s: float

    @property
    def label(self) -> str:
        return " + ".join(f"{g}@{p}" for g, p in self.assignment)

    def latency_of(self, group: str) -> float:
        for name, latency in self.group_latencies_s:
            if name == group:
                return latency
        raise KeyError(group)


def evaluate_mapping(
    assignment: Dict[str, str],
    contention: Optional[ContentionModel] = None,
) -> MappingResult:
    """Perception latency under a group->platform assignment."""
    contention = contention or gpu_contention_model()
    unknown = set(assignment) - set(TASK_GROUPS)
    if unknown:
        raise ValueError(f"unknown task groups {sorted(unknown)}")
    if set(assignment) != set(TASK_GROUPS):
        raise ValueError(f"assignment must cover all of {TASK_GROUPS}")
    for platform in assignment.values():
        if platform not in MAPPABLE_PLATFORMS:
            raise ValueError(f"unknown platform {platform!r}")
    latencies = []
    for group, platform in assignment.items():
        alone = _ALONE_LATENCY[group](platform)
        co_residents = [
            g for g, p in assignment.items() if p == platform and g != group
        ]
        latencies.append(
            (group, contention.shared_latency_s(group, alone, co_residents))
        )
    return MappingResult(
        assignment=tuple(sorted(assignment.items())),
        group_latencies_s=tuple(latencies),
        perception_latency_s=max(latency for _, latency in latencies),
    )


def enumerate_mappings(
    platforms: Iterable[str] = MAPPABLE_PLATFORMS,
    contention: Optional[ContentionModel] = None,
) -> List[MappingResult]:
    """Every (scene_understanding, localization) placement — Fig. 8's bars."""
    platforms = list(platforms)
    results = []
    for su_platform, loc_platform in itertools.product(platforms, repeat=2):
        results.append(
            evaluate_mapping(
                {
                    "scene_understanding": su_platform,
                    "localization": loc_platform,
                },
                contention,
            )
        )
    return results


def best_mapping(
    platforms: Iterable[str] = MAPPABLE_PLATFORMS,
    contention: Optional[ContentionModel] = None,
) -> MappingResult:
    """The latency-optimal placement (the paper's: SU on GPU, loc on FPGA)."""
    return min(
        enumerate_mappings(platforms, contention),
        key=lambda r: r.perception_latency_s,
    )


@dataclass(frozen=True)
class OffloadImpact:
    """The paper's derived claims about offloading localization to FPGA."""

    shared_perception_s: float
    offloaded_perception_s: float
    perception_speedup: float
    end_to_end_reduction: float


def fpga_offload_impact(
    sensing_s: float = calibration.SENSING_MEAN_LATENCY_S,
    planning_s: float = calibration.PLANNING_MEAN_LATENCY_S,
) -> OffloadImpact:
    """Quantify Sec. V-B2: 120 ms -> 77 ms perception, 1.6x, ~23% e2e."""
    shared = evaluate_mapping(
        {"scene_understanding": "gpu", "localization": "gpu"}
    ).perception_latency_s
    offloaded = evaluate_mapping(
        {"scene_understanding": "gpu", "localization": "fpga"}
    ).perception_latency_s
    before = sensing_s + shared + planning_s
    after = sensing_s + offloaded + planning_s
    return OffloadImpact(
        shared_perception_s=shared,
        offloaded_perception_s=offloaded,
        perception_speedup=shared / offloaded,
        end_to_end_reduction=(before - after) / before,
    )
