"""Set-associative cache simulator (paper Fig. 4b substrate).

Fig. 4b measures "off-chip memory traffic normalized to the optimal
communication case, where all the data are reused on-chip" for point-cloud
kernels on a CPU with a 9 MB LLC.  We reproduce the measurement with a
classic set-associative, LRU, write-back cache simulator fed by the byte
address traces our kernels emit.

The *optimal* traffic for a trace is one transfer per distinct cache line
touched (compulsory misses only); the normalized traffic is
``actual_misses / compulsory_misses``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple



@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int
    line_bytes: int = 64
    associativity: int = 8

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.associativity <= 0:
            raise ValueError("all cache parameters must be positive")
        if self.size_bytes % (self.line_bytes * self.associativity) != 0:
            raise ValueError(
                "size must be a multiple of line_bytes * associativity"
            )

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)


def coffee_lake_llc() -> CacheConfig:
    """The paper's measurement platform: 9 MB LLC (Sec. III-D)."""
    return CacheConfig(size_bytes=9 * 1024 * 1024, line_bytes=64, associativity=12)


def small_llc(size_kb: int = 32) -> CacheConfig:
    """A small cache for stress experiments and fast tests."""
    return CacheConfig(size_bytes=size_kb * 1024, line_bytes=64, associativity=4)


@dataclass
class CacheStats:
    """Aggregate statistics of one simulation run."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    compulsory_misses: int = 0

    @property
    def hit_rate(self) -> float:
        return 0.0 if self.accesses == 0 else self.hits / self.accesses

    @property
    def miss_rate(self) -> float:
        return 0.0 if self.accesses == 0 else self.misses / self.accesses

    @property
    def normalized_traffic(self) -> float:
        """Actual off-chip transfers over the optimal (compulsory) count.

        1.0 means every line was fetched exactly once — the "all data
        reused on-chip" ideal of Fig. 4b.
        """
        if self.compulsory_misses == 0:
            return 1.0
        return self.misses / self.compulsory_misses


class CacheSimulator:
    """LRU set-associative cache over a byte-address stream."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        # One OrderedDict per set: tag -> None, ordered by recency.
        self._sets: List[OrderedDict] = [
            OrderedDict() for _ in range(config.n_sets)
        ]
        self._seen_lines: set = set()
        self.stats = CacheStats()

    def access(self, address: int) -> bool:
        """Access one byte address; returns True on hit."""
        line = address // self.config.line_bytes
        set_idx = line % self.config.n_sets
        tag = line // self.config.n_sets
        way = self._sets[set_idx]
        self.stats.accesses += 1
        if tag in way:
            way.move_to_end(tag)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if line not in self._seen_lines:
            self._seen_lines.add(line)
            self.stats.compulsory_misses += 1
        way[tag] = None
        if len(way) > self.config.associativity:
            way.popitem(last=False)
        return False

    def run_trace(self, addresses: Iterable[int]) -> CacheStats:
        """Process a whole trace; returns the cumulative stats."""
        for address in addresses:
            self.access(int(address))
        return self.stats

    def reset(self) -> None:
        self._sets = [OrderedDict() for _ in range(self.config.n_sets)]
        self._seen_lines = set()
        self.stats = CacheStats()


def normalized_memory_traffic(
    addresses: Sequence[int], config: Optional[CacheConfig] = None
) -> float:
    """One-call Fig. 4b metric for a trace."""
    sim = CacheSimulator(config or coffee_lake_llc())
    return sim.run_trace(addresses).normalized_traffic
