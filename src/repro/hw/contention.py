"""Resource-contention model for shared accelerators (paper Fig. 8).

"When both scene understanding and localization execute on the GPU, they
compete for resources and slow down each other."  The measured interference
is asymmetric — scene understanding suffers 120/77 = 1.56x while
localization suffers only 31/28 = 1.11x (it is lighter and latency-
critical, so the runtime prioritizes it).  We capture this with calibrated
pairwise interference coefficients: the slowdown task *i* experiences when
co-resident with task *j*.  Coefficients compose multiplicatively for more
than two co-residents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Tuple

from ..core import calibration

#: Measured slowdowns on the shared GPU (Fig. 8): (victim, aggressor) ->
#: multiplicative latency factor.  Localization alone on the GPU is the
#: calibrated 28 ms profile; shared it is the paper's 31 ms.
_GPU_INTERFERENCE: Dict[Tuple[str, str], float] = {
    ("scene_understanding", "localization"): (
        calibration.GPU_SHARED_SCENE_UNDERSTANDING_S
        / calibration.GPU_ALONE_SCENE_UNDERSTANDING_S
    ),
    ("localization", "scene_understanding"): (
        calibration.GPU_SHARED_LOCALIZATION_S
        / calibration.task_profile("localization", "gpu").latency_s
    ),
}


@dataclass(frozen=True)
class ContentionModel:
    """Pairwise interference coefficients for one shared device.

    ``interference[(victim, aggressor)]`` is the latency multiplier the
    victim suffers when the aggressor shares the device.  Unlisted pairs
    default to ``default_factor`` (mild interference).
    """

    interference: Mapping[Tuple[str, str], float] = field(
        default_factory=lambda: dict(_GPU_INTERFERENCE)
    )
    default_factor: float = 1.10

    def slowdown(self, victim: str, co_residents: Iterable[str]) -> float:
        """Multiplicative slowdown of *victim* given its co-residents."""
        factor = 1.0
        for aggressor in co_residents:
            if aggressor == victim:
                continue
            factor *= self.interference.get(
                (victim, aggressor), self.default_factor
            )
        return factor

    def shared_latency_s(
        self,
        victim: str,
        alone_latency_s: float,
        co_residents: Iterable[str],
    ) -> float:
        if alone_latency_s < 0:
            raise ValueError("latency must be non-negative")
        return alone_latency_s * self.slowdown(victim, co_residents)


def gpu_contention_model() -> ContentionModel:
    """The calibrated GPU interference model of Fig. 8."""
    return ContentionModel()
