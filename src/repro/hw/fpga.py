"""FPGA resource accounting (paper Sec. V-B2, V-B3, VI-A3).

The Zynq hosts several blocks simultaneously — the localization
accelerator (200K LUTs, 120K FFs, 600 BRAMs, 800 DSPs), the hardware
synchronizer (1,443 LUTs, 1,587 FFs), and the RPR engine (~400 LUTs/FFs) —
so a resource accountant verifies placements fit the device and sums
power.  Runtime partial reconfiguration additionally lets two bitstreams
*time-share* one region, which the accountant models as a reconfigurable
slot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..core import calibration

RESOURCE_KINDS = ("luts", "registers", "brams", "dsps")


@dataclass(frozen=True)
class ResourceVector:
    """A bundle of FPGA resources."""

    luts: int = 0
    registers: int = 0
    brams: int = 0
    dsps: int = 0

    def __post_init__(self) -> None:
        for kind in RESOURCE_KINDS:
            if getattr(self, kind) < 0:
                raise ValueError(f"{kind} must be non-negative")

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            **{k: getattr(self, k) + getattr(other, k) for k in RESOURCE_KINDS}
        )

    def fits_within(self, budget: "ResourceVector") -> bool:
        return all(
            getattr(self, k) <= getattr(budget, k) for k in RESOURCE_KINDS
        )

    def utilization(self, budget: "ResourceVector") -> Dict[str, float]:
        out = {}
        for kind in RESOURCE_KINDS:
            cap = getattr(budget, kind)
            out[kind] = 0.0 if cap == 0 else getattr(self, kind) / cap
        return out

    @classmethod
    def from_dict(cls, values: Mapping[str, int]) -> "ResourceVector":
        return cls(**{k: int(values.get(k, 0)) for k in RESOURCE_KINDS})


@dataclass(frozen=True)
class AcceleratorBlock:
    """One placed accelerator."""

    name: str
    resources: ResourceVector
    power_w: float
    reconfigurable: bool = False

    def __post_init__(self) -> None:
        if self.power_w < 0:
            raise ValueError("power must be non-negative")


def localization_accelerator() -> AcceleratorBlock:
    """Sec. V-B2: ~200K LUTs, 120K registers, 600 BRAMs, 800 DSPs, <6 W."""
    return AcceleratorBlock(
        name="localization",
        resources=ResourceVector.from_dict(calibration.LOCALIZATION_ACCEL_RESOURCES),
        power_w=calibration.LOCALIZATION_ACCEL_POWER_W,
    )


def hardware_synchronizer_block() -> AcceleratorBlock:
    """Sec. VI-A3: 1,443 LUTs, 1,587 registers, 5 mW."""
    return AcceleratorBlock(
        name="synchronizer",
        resources=ResourceVector.from_dict(calibration.SYNCHRONIZER_RESOURCES),
        power_w=calibration.SYNCHRONIZER_POWER_W,
    )


def rpr_engine_block() -> AcceleratorBlock:
    """Sec. V-B3: ~400 FFs and ~400 LUTs."""
    return AcceleratorBlock(
        name="rpr_engine",
        resources=ResourceVector.from_dict(calibration.RPR_ENGINE_RESOURCES),
        power_w=0.05,
    )


class FpgaDevice:
    """A device with a budget and a set of placed blocks."""

    def __init__(self, budget: Optional[ResourceVector] = None) -> None:
        self.budget = budget or ResourceVector.from_dict(
            calibration.ZYNQ_RESOURCE_BUDGET
        )
        self._blocks: Dict[str, AcceleratorBlock] = {}

    def place(self, block: AcceleratorBlock) -> None:
        """Place a block; raises when it does not fit."""
        if block.name in self._blocks:
            raise ValueError(f"block {block.name!r} already placed")
        used = self.used_resources + block.resources
        if not used.fits_within(self.budget):
            raise ValueError(
                f"placing {block.name!r} exceeds the device budget: "
                f"{used} > {self.budget}"
            )
        self._blocks[block.name] = block

    def remove(self, name: str) -> AcceleratorBlock:
        try:
            return self._blocks.pop(name)
        except KeyError:
            raise KeyError(f"no block named {name!r}") from None

    @property
    def blocks(self) -> List[AcceleratorBlock]:
        return list(self._blocks.values())

    @property
    def used_resources(self) -> ResourceVector:
        total = ResourceVector()
        for block in self._blocks.values():
            total = total + block.resources
        return total

    @property
    def total_power_w(self) -> float:
        return sum(block.power_w for block in self._blocks.values())

    def utilization(self) -> Dict[str, float]:
        return self.used_resources.utilization(self.budget)


def paper_fpga_floorplan() -> FpgaDevice:
    """The deployed Zynq contents: localization accel + synchronizer + RPR."""
    device = FpgaDevice()
    device.place(localization_accelerator())
    device.place(hardware_synchronizer_block())
    device.place(rpr_engine_block())
    return device


def spatial_sharing_cost(
    blocks: List[AcceleratorBlock],
) -> Tuple[ResourceVector, float]:
    """Area and power of hosting all blocks *simultaneously*.

    The alternative the paper rejects (Sec. V-B3): "Spatially sharing the
    FPGA is not only area-inefficient, but also power-inefficient as the
    unused portion of the FPGA consumes non-trivial static power."
    """
    area = ResourceVector()
    power = 0.0
    for block in blocks:
        area = area + block.resources
        power += block.power_w
    return area, power
