"""Runtime partial reconfiguration (RPR) engine simulator (paper Fig. 9).

The paper's engine decouples *receiving* a bitstream from DRAM from
*transmitting* it to the ICAP: a lightweight Tx DMA streams the whole file
into a small FIFO "through one handshake", and an Rx drains the FIFO into
the ICAP at the ICAP's word rate.  Three mechanisms are simulated for
comparison:

* :class:`RprEngine` — the paper's design: one handshake per *file*, then
  continuous streaming; throughput is ICAP-bound (~400 MB/s ceiling,
  >=350 MB/s sustained).
* :func:`conventional_dma_reconfiguration` — a per-burst-handshake DMA,
  "inefficient since ... frequent interactions with the memory controller".
* :func:`cpu_driven_reconfiguration` — the Xilinx software path (300 KB/s).

Note on calibration: the paper quotes <10 MB bitstream files, <3 ms
reconfiguration delay, and >350 MB/s throughput.  These are mutually
consistent only for ~1 MB *partial* bitstreams (350 MB/s x 3 ms ~ 1 MB),
so the per-variant partial bitstreams default to 1 MB
(``calibration.RPR_TYPICAL_BITSTREAM_BYTES``); see DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core import calibration
from ..core.units import KB, MB


@dataclass(frozen=True)
class RprEvent:
    """One completed reconfiguration."""

    bitstream_bytes: int
    delay_s: float
    energy_j: float
    mechanism: str

    @property
    def throughput_bps(self) -> float:
        return self.bitstream_bytes / self.delay_s


@dataclass(frozen=True)
class RprEngineConfig:
    """Hardware parameters of the decoupled Tx/FIFO/Rx engine.

    Defaults model the paper's design: a 128-byte FIFO, an ICAP accepting
    4 bytes per cycle at 100 MHz (400 MB/s ceiling), a DDR-side Tx that
    sustains 8 bytes per cycle after a single per-file handshake.
    """

    fifo_bytes: int = calibration.RPR_FIFO_BYTES
    icap_width_bytes: int = 4
    icap_clock_hz: float = 100e6
    tx_bytes_per_cycle: int = 8
    file_handshake_cycles: int = 32
    active_power_w: float = 0.8

    def __post_init__(self) -> None:
        if self.fifo_bytes <= 0 or self.icap_width_bytes <= 0:
            raise ValueError("FIFO and ICAP width must be positive")
        if self.tx_bytes_per_cycle <= 0:
            raise ValueError("Tx rate must be positive")


class RprEngine:
    """Cycle-approximate simulation of the decoupled Tx/FIFO/Rx engine."""

    def __init__(self, config: Optional[RprEngineConfig] = None) -> None:
        self.config = config or RprEngineConfig()
        self.history: List[RprEvent] = []

    def reconfigure(self, bitstream_bytes: int) -> RprEvent:
        """Stream a bitstream through Tx -> FIFO -> Rx -> ICAP.

        After the single file handshake, every cycle the Tx pushes up to
        ``tx_bytes_per_cycle`` into FIFO space and the Rx feeds the ICAP
        one word.  Because the Tx rate exceeds the ICAP rate, the FIFO
        stays non-empty and throughput converges to the ICAP ceiling.
        """
        if bitstream_bytes <= 0:
            raise ValueError("bitstream must be non-empty")
        cfg = self.config
        cycle = cfg.file_handshake_cycles  # one handshake per file
        fifo_level = 0
        remaining_to_fetch = bitstream_bytes
        written_to_icap = 0
        while written_to_icap < bitstream_bytes:
            if remaining_to_fetch > 0:
                push = min(
                    cfg.tx_bytes_per_cycle,
                    cfg.fifo_bytes - fifo_level,
                    remaining_to_fetch,
                )
                fifo_level += push
                remaining_to_fetch -= push
            drained = min(cfg.icap_width_bytes, fifo_level)
            if drained > 0 and (
                drained == cfg.icap_width_bytes or remaining_to_fetch == 0
            ):
                fifo_level -= drained
                written_to_icap += drained
            cycle += 1
        delay_s = cycle / cfg.icap_clock_hz
        event = RprEvent(
            bitstream_bytes=bitstream_bytes,
            delay_s=delay_s,
            energy_j=delay_s * cfg.active_power_w,
            mechanism="rpr_engine",
        )
        self.history.append(event)
        return event

    def throughput_bps(self, bitstream_bytes: int = MB) -> float:
        """Sustained reconfiguration throughput for a given bitstream."""
        return self.reconfigure(bitstream_bytes).throughput_bps


def conventional_dma_reconfiguration(
    bitstream_bytes: int,
    burst_bytes: int = 64,
    handshake_cycles: int = 24,
    clock_hz: float = 100e6,
    power_w: float = 1.2,
) -> RprEvent:
    """A conventional DMA: one memory-controller handshake *per burst*.

    The per-burst handshake dominates; with 64-byte bursts and a 24-cycle
    handshake the effective rate is ~2.3 B/cycle — well under the ICAP
    ceiling, which is the paper's argument against reusing a stock DMA.
    """
    if bitstream_bytes <= 0:
        raise ValueError("bitstream must be non-empty")
    n_bursts = -(-bitstream_bytes // burst_bytes)  # ceil division
    transfer_cycles_per_burst = burst_bytes // 4  # 4 B/cycle into ICAP
    cycles = n_bursts * (handshake_cycles + transfer_cycles_per_burst)
    delay = cycles / clock_hz
    return RprEvent(
        bitstream_bytes=bitstream_bytes,
        delay_s=delay,
        energy_j=delay * power_w,
        mechanism="conventional_dma",
    )


def cpu_driven_reconfiguration(bitstream_bytes: int) -> RprEvent:
    """The Xilinx software path the paper rejects: 300 KB/s via the CPU."""
    if bitstream_bytes <= 0:
        raise ValueError("bitstream must be non-empty")
    delay = bitstream_bytes / calibration.RPR_CPU_THROUGHPUT_BPS
    # The CPU path burns CPU-class power while it spins.
    return RprEvent(
        bitstream_bytes=bitstream_bytes,
        delay_s=delay,
        energy_j=delay * 10.0,
        mechanism="cpu",
    )


@dataclass
class Bitstream:
    """A stored partial bitstream for one accelerator variant."""

    name: str
    size_bytes: int
    task_latency_s: float

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.task_latency_s <= 0:
            raise ValueError("size and latency must be positive")


@dataclass
class RprManager:
    """Time-sharing one reconfigurable slot across accelerator variants.

    The paper's example: localization's *feature extraction* (key frames)
    vs *feature tracking* (non-key frames; 10 ms, 50% faster).  The manager
    swaps in whichever variant the next frame needs and accounts for the
    swap delay and energy.
    """

    engine: RprEngine = field(default_factory=RprEngine)
    bitstreams: Dict[str, Bitstream] = field(default_factory=dict)
    loaded: Optional[str] = None
    total_reconfig_delay_s: float = 0.0
    total_reconfig_energy_j: float = 0.0
    n_reconfigs: int = 0

    def register(self, bitstream: Bitstream) -> None:
        self.bitstreams[bitstream.name] = bitstream

    def execute(self, variant: str) -> float:
        """Run one frame with *variant*, swapping it in if needed.

        Returns the frame's total latency (swap + task).
        """
        if variant not in self.bitstreams:
            raise KeyError(f"unknown bitstream {variant!r}")
        swap_delay = 0.0
        if self.loaded != variant:
            event = self.engine.reconfigure(self.bitstreams[variant].size_bytes)
            swap_delay = event.delay_s
            self.total_reconfig_delay_s += event.delay_s
            self.total_reconfig_energy_j += event.energy_j
            self.n_reconfigs += 1
            self.loaded = variant
        return swap_delay + self.bitstreams[variant].task_latency_s

    def run_frame_schedule(self, keyframe_period: int, n_frames: int) -> float:
        """Run a keyframe/non-keyframe schedule; returns mean frame latency.

        Frame 0, k, 2k, ... are keyframes (feature extraction); the rest
        use feature tracking — the paper's localization access pattern.
        """
        if keyframe_period <= 0 or n_frames <= 0:
            raise ValueError("period and frame count must be positive")
        total = 0.0
        for i in range(n_frames):
            variant = (
                "feature_extraction"
                if i % keyframe_period == 0
                else "feature_tracking"
            )
            total += self.execute(variant)
        return total / n_frames


def paper_localization_variants() -> Tuple[Bitstream, Bitstream]:
    """The Sec. V-B3 pair: feature extraction vs feature tracking."""
    size = calibration.RPR_TYPICAL_BITSTREAM_BYTES
    return (
        Bitstream(
            name="feature_extraction",
            size_bytes=size,
            task_latency_s=calibration.FEATURE_EXTRACTION_LATENCY_S,
        ),
        Bitstream(
            name="feature_tracking",
            size_bytes=size,
            task_latency_s=calibration.FEATURE_TRACKING_LATENCY_S,
        ),
    )


def hourly_task_swap_overhead(
    operating_hours: float = 10.0,
    task_bitstream_bytes: int = calibration.RPR_TYPICAL_BITSTREAM_BYTES,
    engine: Optional[RprEngine] = None,
) -> Dict[str, float]:
    """Cost of swapping in an infrequent task once per hour (Sec. VII).

    The conclusion proposes RPR "to support non-essential tasks that [are]
    used only infrequently.  For instance, sensor samples captured in the
    field could be compressed and upload[ed] to the cloud; this task in our
    deployment happens only once per hour, and thus could be swapped in
    only when needed."  Each use costs two reconfigurations (task in,
    resident accelerator back); the alternative is paying the task's area
    and static power permanently.

    Returns the day's totals: swap delay, swap energy, and the equivalent
    always-resident static energy a spatial implementation would burn.
    """
    if operating_hours <= 0:
        raise ValueError("operating hours must be positive")
    engine = engine or RprEngine()
    swaps_per_use = 2  # task in, resident accelerator restored
    uses = int(operating_hours)  # once per hour
    delay_total = 0.0
    energy_total = 0.0
    for _ in range(uses * swaps_per_use):
        event = engine.reconfigure(task_bitstream_bytes)
        delay_total += event.delay_s
        energy_total += event.energy_j
    # A permanently-resident block of similar size burns static power all
    # day (Sec. V-B3: "the unused portion of the FPGA consumes non-trivial
    # static power").  0.2 W static for an accelerator-sized region.
    resident_static_energy = 0.2 * operating_hours * 3_600.0
    return {
        "uses": float(uses),
        "total_swap_delay_s": delay_total,
        "total_swap_energy_j": energy_total,
        "resident_static_energy_j": resident_static_energy,
        "energy_saving_ratio": resident_static_energy / max(energy_total, 1e-12),
    }
