"""Computing-platform performance and power models (paper Fig. 6).

The paper compares four platforms — a Coffee Lake CPU, a GTX-1060-class
GPU, a Jetson TX2 mobile SoC, and a Zynq embedded FPGA — on three
perception tasks.  We model each platform by its calibrated per-task
latency/power profile plus structural properties (data-copy overheads of
mobile SoCs, sensor-interface availability, and so on) the paper uses to
argue the design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..core import calibration
from ..core.calibration import TaskPlatformProfile, task_profile

PLATFORMS = ("cpu", "gpu", "tx2", "fpga")
PERCEPTION_TASKS = ("depth", "detection", "localization")


@dataclass(frozen=True)
class Platform:
    """One computing platform with structural attributes.

    ``copy_overhead_s``/``copy_overhead_w`` model the mobile-SoC data-copy
    problem (Sec. V-A): "the CPU has to explicitly copy images from sensor
    interface to DSP through the entire memory hierarchy ... an extra 1 W
    power overhead and up to 3 ms performance overhead."
    """

    name: str
    unit_cost_usd: float
    idle_power_w: float
    has_sensor_interface: bool = False
    has_hw_sync_support: bool = False
    automotive_grade: bool = False
    copy_overhead_s: float = 0.0
    copy_overhead_w: float = 0.0

    def task_latency_s(self, task: str) -> float:
        """Latency of *task*, including any structural copy overhead."""
        return task_profile(task, self.name).latency_s + self.copy_overhead_s

    def task_energy_j(self, task: str) -> float:
        profile = task_profile(task, self.name)
        energy = profile.energy_j
        if self.copy_overhead_s > 0:
            energy += self.copy_overhead_s * (profile.power_w + self.copy_overhead_w)
        return energy

    def perception_total_latency_s(
        self, tasks: Iterable[str] = PERCEPTION_TASKS
    ) -> float:
        """Cumulative (serialized) latency across tasks — Sec. V-A's
        "cumulative latency of 844.2 ms for perception alone" metric."""
        return sum(self.task_latency_s(t) for t in tasks)


def cpu_platform() -> Platform:
    """Intel Coffee Lake CPU (3.0 GHz, 9 MB LLC)."""
    return Platform(name="cpu", unit_cost_usd=400.0, idle_power_w=15.0)


def gpu_platform() -> Platform:
    """Nvidia GTX 1060 discrete GPU (with its host)."""
    return Platform(name="gpu", unit_cost_usd=300.0, idle_power_w=10.0)


def tx2_platform() -> Platform:
    """Nvidia TX2 mobile SoC — $600 (Sec. V-A), with the mobile-SoC
    data-copy overheads and no precise sensor synchronization."""
    return Platform(
        name="tx2",
        unit_cost_usd=600.0,
        idle_power_w=5.0,
        has_sensor_interface=True,
        has_hw_sync_support=False,
        copy_overhead_s=0.003,
        copy_overhead_w=1.0,
    )


def fpga_platform() -> Platform:
    """Automotive-grade Zynq UltraScale+ embedded FPGA (Sec. III-C,
    Sec. V-B1): rich sensor interfaces, hardware sync, MIPI/ISP blocks."""
    return Platform(
        name="fpga",
        unit_cost_usd=800.0,
        idle_power_w=2.0,
        has_sensor_interface=True,
        has_hw_sync_support=True,
        automotive_grade=True,
    )


def automotive_asic_platform() -> Platform:
    """An Nvidia-PX2-class automotive platform: fast but >$10,000 and no
    sensor-sync support (Sec. V-A)."""
    return Platform(
        name="gpu",  # borrows GPU-class task profiles
        unit_cost_usd=10_000.0,
        idle_power_w=20.0,
        has_sensor_interface=False,
        has_hw_sync_support=False,
        automotive_grade=True,
    )


def all_platforms() -> Dict[str, Platform]:
    return {
        "cpu": cpu_platform(),
        "gpu": gpu_platform(),
        "tx2": tx2_platform(),
        "fpga": fpga_platform(),
    }


@dataclass(frozen=True)
class ComparisonRow:
    """One Fig. 6 bar: task x platform."""

    task: str
    platform: str
    latency_s: float
    energy_j: float


def fig6_comparison() -> List[ComparisonRow]:
    """All Fig. 6 bars (3 tasks x 4 platforms)."""
    rows = []
    platforms = all_platforms()
    for task in PERCEPTION_TASKS:
        for name, platform in platforms.items():
            rows.append(
                ComparisonRow(
                    task=task,
                    platform=name,
                    latency_s=platform.task_latency_s(task),
                    energy_j=platform.task_energy_j(task),
                )
            )
    return rows


@dataclass(frozen=True)
class SuitabilityVerdict:
    """Why a platform is or is not usable as the SoV sensor hub."""

    platform: str
    suitable: bool
    reasons: Tuple[str, ...]


def evaluate_sensor_hub(platform: Platform) -> SuitabilityVerdict:
    """Apply the paper's Sec. V-A / V-B1 criteria for the sensor hub role."""
    reasons = []
    if not platform.has_sensor_interface:
        reasons.append("no mature sensor interfaces (MIPI/CSI, ISP)")
    if not platform.has_hw_sync_support:
        reasons.append("no precise hardware sensor-synchronization support")
    if not platform.automotive_grade:
        reasons.append("not automotive-grade (safety requirement, Sec. III-C)")
    if platform.copy_overhead_s > 0:
        reasons.append(
            "redundant CPU-coordinated data copies between compute units"
        )
    return SuitabilityVerdict(
        platform=platform.name, suitable=not reasons, reasons=tuple(reasons)
    )
