"""Roofline models of the candidate platforms (paper Sec. VII, [92]).

The conclusion cites Gables — "a roofline model for mobile SoCs" — as the
style of analysis needed to reason about accelerator-level parallelism.
This module provides a classic roofline: each platform has a peak compute
rate and a memory bandwidth; each workload an arithmetic intensity
(flops/byte); attainable performance is
``min(peak_flops, intensity * bandwidth)``.

Two paper-relevant uses:

* classify the Table III workloads as compute- vs memory-bound per
  platform — vision kernels (stencils, GEMM-heavy DNNs) are compute-bound
  where point-cloud kernels (pointer-chasing kd-trees) are bandwidth-bound,
  the architectural root of Sec. III-D's "LiDAR processing ... does not
  have mature acceleration solutions";
* sanity-check the calibrated Fig. 6 latencies against first principles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Roofline:
    """One platform's roofline."""

    name: str
    peak_gflops: float
    bandwidth_gbps: float  # GB/s

    def __post_init__(self) -> None:
        if self.peak_gflops <= 0 or self.bandwidth_gbps <= 0:
            raise ValueError("peak and bandwidth must be positive")

    @property
    def ridge_intensity(self) -> float:
        """Flops/byte where the machine turns compute-bound."""
        return self.peak_gflops / self.bandwidth_gbps

    def attainable_gflops(self, intensity: float) -> float:
        if intensity <= 0:
            raise ValueError("intensity must be positive")
        return min(self.peak_gflops, intensity * self.bandwidth_gbps)

    def bound(self, intensity: float) -> str:
        """"memory" or "compute" — which wall the workload hits."""
        return "memory" if intensity < self.ridge_intensity else "compute"

    def runtime_s(self, gflop: float, intensity: float) -> float:
        """Ideal runtime of a *gflop*-sized kernel at *intensity*."""
        if gflop <= 0:
            raise ValueError("work must be positive")
        return gflop / self.attainable_gflops(intensity)


@dataclass(frozen=True)
class Workload:
    """One kernel characterized by work and arithmetic intensity."""

    name: str
    gflop_per_frame: float
    intensity_flops_per_byte: float


def paper_rooflines() -> Dict[str, Roofline]:
    """Representative rooflines of the Sec. V-A candidates.

    Numbers are public-spec scale: GTX-1060-class GPU ~4 TFLOPS / 192 GB/s,
    Coffee-Lake-class CPU ~200 GFLOPS / 40 GB/s, TX2 ~0.8 TFLOPS (FP16) /
    58 GB/s, Zynq-class FPGA fabric ~0.5 TFLOPS DSP / 20 GB/s DDR.
    """
    return {
        "cpu": Roofline("cpu", peak_gflops=200.0, bandwidth_gbps=40.0),
        "gpu": Roofline("gpu", peak_gflops=4_000.0, bandwidth_gbps=192.0),
        "tx2": Roofline("tx2", peak_gflops=800.0, bandwidth_gbps=58.0),
        "fpga": Roofline("fpga", peak_gflops=500.0, bandwidth_gbps=20.0),
    }


def paper_workloads() -> Dict[str, Workload]:
    """The Table III / Sec. III-D kernels in roofline terms.

    Intensities are the structural values: dense stencils and DNN GEMMs
    reuse operands heavily (tens of flops/byte); ELAS-style block matching
    sits mid-range; kd-tree point-cloud traversal does a few flops per
    pointer-chased byte.
    """
    return {
        "detection_dnn": Workload("detection_dnn", 20.0, 40.0),
        "depth_elas": Workload("depth_elas", 2.0, 8.0),
        "localization_vio": Workload("localization_vio", 0.5, 6.0),
        "pointcloud_kdtree": Workload("pointcloud_kdtree", 0.8, 0.25),
    }


@dataclass(frozen=True)
class RooflinePoint:
    """One (workload, platform) roofline evaluation."""

    workload: str
    platform: str
    attainable_gflops: float
    bound: str
    ideal_runtime_s: float


def roofline_analysis(
    rooflines: Optional[Dict[str, Roofline]] = None,
    workloads: Optional[Dict[str, Workload]] = None,
) -> List[RooflinePoint]:
    """Evaluate every workload on every platform."""
    rooflines = rooflines or paper_rooflines()
    workloads = workloads or paper_workloads()
    points = []
    for workload in workloads.values():
        for roofline in rooflines.values():
            points.append(
                RooflinePoint(
                    workload=workload.name,
                    platform=roofline.name,
                    attainable_gflops=roofline.attainable_gflops(
                        workload.intensity_flops_per_byte
                    ),
                    bound=roofline.bound(workload.intensity_flops_per_byte),
                    ideal_runtime_s=roofline.runtime_s(
                        workload.gflop_per_frame,
                        workload.intensity_flops_per_byte,
                    ),
                )
            )
    return points


def lidar_acceleration_gap() -> float:
    """How much less a GPU helps point clouds than DNNs (vs the CPU).

    The Sec. III-D asymmetry, quantified: the GPU's speedup over the CPU
    for the DNN divided by its speedup for the kd-tree kernel.  Dense
    kernels ride the compute roof (20x more FLOPS); sparse kernels only
    get the bandwidth ratio (~5x).
    """
    rooflines = paper_rooflines()
    workloads = paper_workloads()
    def speedup(workload: Workload) -> float:
        cpu = rooflines["cpu"].runtime_s(
            workload.gflop_per_frame, workload.intensity_flops_per_byte
        )
        gpu = rooflines["gpu"].runtime_s(
            workload.gflop_per_frame, workload.intensity_flops_per_byte
        )
        return cpu / gpu

    return speedup(workloads["detection_dnn"]) / speedup(
        workloads["pointcloud_kdtree"]
    )
