"""Edge/cloud task-offload model (paper Sec. VII, "Horizontal,
Cross-Accelerator Optimization").

"Soon on-vehicle processing tasks might be offloaded to edge servers or
even the cloud.  Efforts that exploit ALP while taking into account
constraints arising in different contexts would significantly improve
on-vehicle processing."

The model asks the end-to-end question Eq. 1 forces: does offloading a
task reduce the *vehicle's* computing latency once network transport is
accounted?  An :class:`OffloadTarget` has compute speedup and a network
round-trip distribution; the planner decides per-task whether offloading
helps, and the safety analysis checks what a network-tail frame does to
the avoidance range.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..core import calibration
from ..core.latency_model import LatencyModel


@dataclass(frozen=True)
class OffloadTarget:
    """An edge or cloud execution venue."""

    name: str
    compute_speedup: float  # task runs this much faster than on-vehicle
    rtt_mean_s: float
    rtt_jitter_s: float  # uniform band above the mean
    availability: float = 1.0  # probability the link is usable at all

    def __post_init__(self) -> None:
        if self.compute_speedup <= 0:
            raise ValueError("speedup must be positive")
        if self.rtt_mean_s < 0 or self.rtt_jitter_s < 0:
            raise ValueError("RTT must be non-negative")
        if not 0.0 <= self.availability <= 1.0:
            raise ValueError("availability must be in [0, 1]")

    def sample_rtt_s(self, rng: np.random.Generator) -> float:
        return self.rtt_mean_s + float(rng.uniform(0.0, self.rtt_jitter_s))


def edge_server(rtt_mean_s: float = 0.010, jitter_s: float = 0.020) -> OffloadTarget:
    """A roadside edge server: big GPU, LAN-ish latency."""
    return OffloadTarget(
        name="edge", compute_speedup=4.0, rtt_mean_s=rtt_mean_s,
        rtt_jitter_s=jitter_s, availability=0.98,
    )


def cloud_datacenter(
    rtt_mean_s: float = 0.060, jitter_s: float = 0.120
) -> OffloadTarget:
    """A regional cloud: huge compute, WAN latency and jitter."""
    return OffloadTarget(
        name="cloud", compute_speedup=10.0, rtt_mean_s=rtt_mean_s,
        rtt_jitter_s=jitter_s, availability=0.95,
    )


@dataclass(frozen=True)
class OffloadDecision:
    """Whether offloading one task helps, and by how much."""

    task: str
    target: str
    local_latency_s: float
    offloaded_mean_s: float
    offloaded_p99_s: float
    worthwhile: bool

    @property
    def mean_speedup(self) -> float:
        return self.local_latency_s / self.offloaded_mean_s


def evaluate_offload(
    task: str,
    local_latency_s: float,
    target: OffloadTarget,
    n_samples: int = 4_000,
    seed: int = 0,
    tail_percentile: float = 99.0,
) -> OffloadDecision:
    """Monte-Carlo the offloaded latency: RTT + remote compute.

    A frame that finds the link unavailable falls back to local execution
    (it still must be processed — safety does not wait for the network).
    ``worthwhile`` requires both the mean *and* the tail to beat local
    execution: Eq. 1 is a worst-case constraint, so a fat network tail
    disqualifies an otherwise-faster venue.
    """
    if local_latency_s <= 0:
        raise ValueError("local latency must be positive")
    rng = np.random.default_rng(seed)
    remote_compute = local_latency_s / target.compute_speedup
    samples = np.empty(n_samples)
    for i in range(n_samples):
        if rng.random() > target.availability:
            samples[i] = local_latency_s  # fallback
        else:
            samples[i] = remote_compute + target.sample_rtt_s(rng)
    mean = float(samples.mean())
    p99 = float(np.percentile(samples, tail_percentile))
    return OffloadDecision(
        task=task,
        target=target.name,
        local_latency_s=local_latency_s,
        offloaded_mean_s=mean,
        offloaded_p99_s=p99,
        worthwhile=mean < local_latency_s and p99 < local_latency_s * 1.05,
    )


def offload_plan(
    task_latencies_s: Optional[Dict[str, float]] = None,
    targets: Optional[Iterable[OffloadTarget]] = None,
    seed: int = 0,
) -> List[OffloadDecision]:
    """Best venue per task (possibly 'stay local')."""
    task_latencies_s = task_latencies_s or dict(
        calibration.FIG10B_TASK_LATENCIES_S
    )
    targets = list(targets) if targets is not None else [
        edge_server(),
        cloud_datacenter(),
    ]
    decisions = []
    for task, local in sorted(task_latencies_s.items()):
        best: Optional[OffloadDecision] = None
        for target in targets:
            decision = evaluate_offload(task, local, target, seed=seed)
            if decision.worthwhile and (
                best is None or decision.offloaded_mean_s < best.offloaded_mean_s
            ):
                best = decision
        if best is None:
            best = OffloadDecision(
                task=task,
                target="local",
                local_latency_s=local,
                offloaded_mean_s=local,
                offloaded_p99_s=local,
                worthwhile=False,
            )
        decisions.append(best)
    return decisions


def avoidance_range_with_offload(
    decision: OffloadDecision,
    other_stages_s: float,
    latency_model: Optional[LatencyModel] = None,
) -> Tuple[float, float]:
    """(mean, tail) avoidance ranges when this task is on the offload path.

    ``other_stages_s`` is the rest of the computing latency.  The tail
    matters: Eq. 1 must hold for the *slow* frames too.
    """
    model = latency_model or LatencyModel()
    mean_reach = model.min_avoidable_distance_m(
        other_stages_s + decision.offloaded_mean_s
    )
    tail_reach = model.min_avoidable_distance_m(
        other_stages_s + decision.offloaded_p99_s
    )
    return mean_reach, tail_reach
