"""Tracking-path arbitration: radar first, KCF fallback (paper Sec. IV).

"Tracking is mostly done by a Radar ..., but we use the Kernelized
Correlation Filter (KCF) as the baseline tracking algorithm when Radar
signals are unstable."  This manager implements that policy: it monitors
radar detection continuity per target and hands individual targets to KCF
trackers while their radar track is unhealthy, handing them back once the
radar recovers — accounting the compute cost of each mode as it goes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import calibration
from ..sensors.radar import RadarDetection
from .detection import Detection
from .kcf import BoundingBox, KcfTracker
from .radar_tracking import (
    CameraProjection,
    RadarTracker,
    SpatialMatch,
    spatial_synchronization,
)


@dataclass(frozen=True)
class TrackedTarget:
    """The manager's per-frame output for one target."""

    target_key: int
    box: BoundingBox
    velocity: Optional[Tuple[float, float]]
    mode: str  # "radar" | "kcf"


@dataclass
class TrackingModeStats:
    """Compute accounting across modes."""

    radar_frames: int = 0
    kcf_frames: int = 0

    @property
    def radar_fraction(self) -> float:
        total = self.radar_frames + self.kcf_frames
        return 1.0 if total == 0 else self.radar_frames / total

    def estimated_compute_s(
        self,
        spatial_sync_s: float = calibration.SPATIAL_SYNC_LATENCY_S,
        kcf_s: float = calibration.SPATIAL_SYNC_LATENCY_S
        * calibration.PAPER_KCF_OVER_SPATIAL_SYNC,
    ) -> float:
        """Total tracking compute under the calibrated per-mode costs."""
        return self.radar_frames * spatial_sync_s + self.kcf_frames * kcf_s


class TrackingManager:
    """Radar-first multi-target tracking with per-target KCF fallback."""

    def __init__(
        self,
        camera: Optional[CameraProjection] = None,
        unstable_after_misses: int = 2,
        recover_after_hits: int = 2,
    ) -> None:
        if unstable_after_misses < 1 or recover_after_hits < 1:
            raise ValueError("thresholds must be >= 1")
        self.camera = camera or CameraProjection()
        self.radar_tracker = RadarTracker(max_missed=unstable_after_misses + 3)
        self.unstable_after_misses = unstable_after_misses
        self.recover_after_hits = recover_after_hits
        self.stats = TrackingModeStats()
        self._kcf: Dict[int, KcfTracker] = {}
        self._recovery_streak: Dict[int, int] = {}

    def step(
        self,
        frame: np.ndarray,
        detections: Sequence[Detection],
        radar_detections: Sequence[RadarDetection],
        dt_s: float,
    ) -> List[TrackedTarget]:
        """Process one synchronized camera frame + radar sweep."""
        self.radar_tracker.step(radar_detections, dt_s)
        matches = spatial_synchronization(
            detections, self.radar_tracker.tracks, self.camera
        )
        matched_by_track = {m.track_id: m for m in matches}
        outputs: List[TrackedTarget] = []
        for track in self.radar_tracker.tracks:
            healthy = track.missed < self.unstable_after_misses
            match = matched_by_track.get(track.track_id)
            if healthy and match is not None:
                outputs.append(
                    self._radar_mode(track.track_id, match, detections, frame)
                )
            elif track.track_id in self._kcf or match is not None:
                outputs.append(
                    self._kcf_mode(track.track_id, match, detections, frame)
                )
            if healthy:
                self._recovery_streak[track.track_id] = (
                    self._recovery_streak.get(track.track_id, 0) + 1
                )
                if (
                    self._recovery_streak[track.track_id]
                    >= self.recover_after_hits
                ):
                    # Radar recovered: drop the KCF fallback for this target.
                    self._kcf.pop(track.track_id, None)
            else:
                self._recovery_streak[track.track_id] = 0
        return outputs

    # -- modes --------------------------------------------------------------

    def _radar_mode(
        self,
        track_id: int,
        match: SpatialMatch,
        detections: Sequence[Detection],
        frame: np.ndarray,
    ) -> TrackedTarget:
        self.stats.radar_frames += 1
        box = detections[match.detection_index].box
        # Keep a warm KCF template so a fallback starts from a fresh box.
        tracker = self._kcf.get(track_id)
        if tracker is None:
            tracker = KcfTracker()
            tracker.init(frame, box)
            self._kcf[track_id] = tracker
        return TrackedTarget(
            target_key=track_id,
            box=box,
            velocity=match.track_velocity,
            mode="radar",
        )

    def _kcf_mode(
        self,
        track_id: int,
        match: Optional[SpatialMatch],
        detections: Sequence[Detection],
        frame: np.ndarray,
    ) -> TrackedTarget:
        self.stats.kcf_frames += 1
        tracker = self._kcf.get(track_id)
        if tracker is None:
            # No warm template: bootstrap from the vision detection.
            assert match is not None
            tracker = KcfTracker()
            tracker.init(frame, detections[match.detection_index].box)
            self._kcf[track_id] = tracker
            box = tracker.box
        else:
            box = tracker.update(frame)
        return TrackedTarget(
            target_key=track_id, box=box, velocity=None, mode="kcf"
        )

    @property
    def active_fallbacks(self) -> int:
        """Targets currently carrying a KCF tracker."""
        return len(self._kcf)
