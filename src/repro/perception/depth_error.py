"""Stereo synchronization-error -> depth-error model (paper Fig. 11a).

When the two cameras of a stereo pair expose at instants ``dt`` apart, any
lateral relative motion between vehicle and scene shifts the second image
by ``f * v_lat * dt / Z`` pixels — indistinguishable from disparity.  The
corrupted disparity maps to a wrong depth::

    d        = f * B / Z
    d_err    = f * v_lat * dt / Z
    Z_meas   = f * B / (d + d_err)
    error(dt) = |Z - Z_meas|

Defaults are calibrated to the paper's anchors: a 25 m object and 1 m/s
lateral relative motion give ~5 m error at 30 ms and ~13 m at 150 ms —
the endpoints of the Fig. 11a curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple



@dataclass(frozen=True)
class StereoSyncErrorModel:
    """Closed-form Fig. 11a curve."""

    focal_px: float = 320.0
    baseline_m: float = 0.12
    object_depth_m: float = 25.0
    lateral_speed_mps: float = 1.0

    def __post_init__(self) -> None:
        if min(self.focal_px, self.baseline_m, self.object_depth_m) <= 0:
            raise ValueError("geometry parameters must be positive")
        if self.lateral_speed_mps < 0:
            raise ValueError("speed must be non-negative")

    @property
    def true_disparity_px(self) -> float:
        return self.focal_px * self.baseline_m / self.object_depth_m

    def disparity_error_px(self, sync_error_s: float) -> float:
        """Apparent-motion pixels induced by the temporal offset."""
        if sync_error_s < 0:
            raise ValueError("sync error must be non-negative")
        return (
            self.focal_px
            * self.lateral_speed_mps
            * sync_error_s
            / self.object_depth_m
        )

    def measured_depth_m(self, sync_error_s: float) -> float:
        corrupted = self.true_disparity_px + self.disparity_error_px(sync_error_s)
        return self.focal_px * self.baseline_m / corrupted

    def depth_error_m(self, sync_error_s: float) -> float:
        """The Fig. 11a y-axis: absolute depth error at one sync offset."""
        return abs(self.object_depth_m - self.measured_depth_m(sync_error_s))

    def curve(
        self, sync_errors_s: Iterable[float]
    ) -> List[Tuple[float, float]]:
        """(sync error s, depth error m) points across the Fig. 11a range."""
        return [(dt, self.depth_error_m(dt)) for dt in sync_errors_s]


def fig11a_curve(
    model: StereoSyncErrorModel | None = None,
    sync_errors_ms: Iterable[float] = (30, 50, 70, 90, 110, 130, 150),
) -> List[Tuple[float, float]]:
    """The paper's Fig. 11a sweep: 30-150 ms offsets."""
    model = model or StereoSyncErrorModel()
    return [(ms, model.depth_error_m(ms / 1_000.0)) for ms in sync_errors_ms]
