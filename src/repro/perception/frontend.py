"""The localization image front-end: keyframes vs tracked frames
(paper Sec. V-B3).

"Our localization algorithm relies on salient features; features in key
frames are extracted by a feature extraction algorithm [ORB-style],
whereas features in non-key frames are tracked from previous frames
[LK-style]; the latter executes in 10 ms, 50% faster than the former."

The front-end decides per frame which variant runs — a new keyframe when
too few features survive tracking or a maximum gap is reached — and, when
given an :class:`repro.hw.rpr.RprManager`, charges the FPGA swap cost of
switching accelerator variants, closing the loop with the RPR study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..hw.rpr import RprManager, paper_localization_variants
from .features import ImageFeature, extract_features, track_features


@dataclass(frozen=True)
class FrontEndFrame:
    """Per-frame front-end output."""

    frame_index: int
    is_keyframe: bool
    features: Tuple[ImageFeature, ...]
    tracked_fraction: float
    latency_s: float


class LocalizationFrontEnd:
    """Keyframe-extraction / feature-tracking arbitration."""

    def __init__(
        self,
        min_features: int = 20,
        max_keyframe_gap: int = 10,
        max_features: int = 60,
        rpr_manager: Optional[RprManager] = None,
    ) -> None:
        if min_features < 1 or max_keyframe_gap < 1:
            raise ValueError("thresholds must be >= 1")
        self.min_features = min_features
        self.max_keyframe_gap = max_keyframe_gap
        self.max_features = max_features
        if rpr_manager is None:
            rpr_manager = RprManager()
            for bitstream in paper_localization_variants():
                rpr_manager.register(bitstream)
        self.rpr = rpr_manager
        self._features: List[ImageFeature] = []
        self._prev_image: Optional[np.ndarray] = None
        self._frames_since_keyframe = 0
        self._frame_index = 0
        self.keyframes = 0
        self.tracked_frames = 0

    def process(self, image: np.ndarray) -> FrontEndFrame:
        """Run one frame through the front-end."""
        needs_keyframe = (
            self._prev_image is None
            or len(self._features) < self.min_features
            or self._frames_since_keyframe >= self.max_keyframe_gap
        )
        if needs_keyframe:
            result = self._extract(image)
        else:
            result = self._track(image)
            # Tracking collapse triggers an immediate re-extraction.
            if len(result.features) < self.min_features:
                result = self._extract(image)
        self._prev_image = image
        self._frame_index += 1
        return result

    # -- variants -----------------------------------------------------------

    def _extract(self, image: np.ndarray) -> FrontEndFrame:
        latency = self.rpr.execute("feature_extraction")
        self._features = extract_features(
            image, max_features=self.max_features
        )
        self._frames_since_keyframe = 0
        self.keyframes += 1
        return FrontEndFrame(
            frame_index=self._frame_index,
            is_keyframe=True,
            features=tuple(self._features),
            tracked_fraction=1.0,
            latency_s=latency,
        )

    def _track(self, image: np.ndarray) -> FrontEndFrame:
        latency = self.rpr.execute("feature_tracking")
        assert self._prev_image is not None
        results = track_features(self._prev_image, image, self._features)
        survivors: List[ImageFeature] = []
        for feature, result in zip(self._features, results):
            if result is None or not result.converged:
                continue
            survivors.append(
                ImageFeature(
                    u_px=result.u_px,
                    v_px=result.v_px,
                    response=feature.response,
                )
            )
        tracked_fraction = (
            len(survivors) / len(self._features) if self._features else 0.0
        )
        self._features = survivors
        self._frames_since_keyframe += 1
        self.tracked_frames += 1
        return FrontEndFrame(
            frame_index=self._frame_index,
            is_keyframe=False,
            features=tuple(survivors),
            tracked_fraction=tracked_fraction,
            latency_s=latency,
        )

    @property
    def keyframe_fraction(self) -> float:
        total = self.keyframes + self.tracked_frames
        return 1.0 if total == 0 else self.keyframes / total
