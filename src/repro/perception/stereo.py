"""ELAS-like stereo depth estimation (paper Table III).

The paper uses "the classic ELAS algorithm, which uses hand-crafted
features" rather than a DNN — DNN depth is "orders of magnitude more
compute-intensive ... while providing marginal accuracy improvements" for
their use case.  We implement the same family: support-point-guided block
matching.

1. On a sparse grid, match high-texture *support points* by SAD over the
   full disparity range (ELAS's support points).
2. Interpolate the support disparities into a dense prior.
3. For every pixel, search only a narrow band around the prior (ELAS's
   prior-constrained matching) and keep the left-right-consistent winner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..scene.kitti_like import StereoPair


@dataclass(frozen=True)
class StereoResult:
    """Dense disparity estimate plus quality metrics vs ground truth."""

    disparity: np.ndarray
    valid_mask: np.ndarray

    def depth(self, focal_px: float, baseline_m: float) -> np.ndarray:
        with np.errstate(divide="ignore"):
            return np.where(
                (self.disparity > 0) & self.valid_mask,
                focal_px * baseline_m / np.maximum(self.disparity, 1e-9),
                np.inf,
            )

    def error_against(self, gt_disparity: np.ndarray) -> float:
        """Mean absolute disparity error over valid pixels."""
        if gt_disparity.shape != self.disparity.shape:
            raise ValueError("shape mismatch")
        if not self.valid_mask.any():
            return float("inf")
        diff = np.abs(self.disparity - gt_disparity)[self.valid_mask]
        return float(diff.mean())


def _sad_disparity(
    left: np.ndarray,
    right: np.ndarray,
    row: int,
    col: int,
    half: int,
    d_min: int,
    d_max: int,
) -> Tuple[int, float]:
    """Best disparity for one pixel by SAD search in [d_min, d_max]."""
    template = left[row - half : row + half + 1, col - half : col + half + 1]
    best_d, best_sad = d_min, float("inf")
    for d in range(d_min, d_max + 1):
        c0 = col - d
        if c0 - half < 0:
            break
        patch = right[row - half : row + half + 1, c0 - half : c0 + half + 1]
        sad = float(np.sum(np.abs(template - patch)))
        if sad < best_sad:
            best_sad, best_d = sad, d
    return best_d, best_sad


class ElasLikeMatcher:
    """Support-point-guided dense block matcher."""

    def __init__(
        self,
        max_disparity_px: int = 24,
        window_px: int = 5,
        grid_step_px: int = 8,
        band_px: int = 3,
    ) -> None:
        if max_disparity_px <= 0 or window_px % 2 == 0:
            raise ValueError("disparity must be positive and window odd")
        self.max_disparity_px = max_disparity_px
        self.window_px = window_px
        self.grid_step_px = grid_step_px
        self.band_px = band_px

    def _support_points(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Sparse grid of confident disparities (NaN where low-texture)."""
        h, w = left.shape
        half = self.window_px // 2
        gy, gx = np.gradient(left)
        texture = gx ** 2 + gy ** 2
        texture_threshold = float(np.percentile(texture, 50))
        rows = range(half, h - half, self.grid_step_px)
        cols = range(half + self.max_disparity_px, w - half, self.grid_step_px)
        support = np.full((len(list(rows)), len(list(cols))), np.nan)
        for i, r in enumerate(range(half, h - half, self.grid_step_px)):
            for j, c in enumerate(
                range(half + self.max_disparity_px, w - half, self.grid_step_px)
            ):
                if texture[r, c] < texture_threshold:
                    continue
                d, _sad = _sad_disparity(
                    left, right, r, c, half, 0, self.max_disparity_px
                )
                support[i, j] = d
        return support

    def _dense_prior(
        self, support: np.ndarray, shape: Tuple[int, int]
    ) -> np.ndarray:
        """Fill the support grid and upsample it to image resolution."""
        filled = support.copy()
        valid = ~np.isnan(filled)
        if not valid.any():
            return np.zeros(shape)
        overall = float(np.nanmedian(filled))
        filled[~valid] = overall
        # Nearest-neighbor upsample of the coarse grid.
        h, w = shape
        row_idx = np.minimum(
            (np.arange(h) // self.grid_step_px), filled.shape[0] - 1
        )
        col_idx = np.minimum(
            (np.arange(w) // self.grid_step_px), filled.shape[1] - 1
        )
        return filled[np.ix_(row_idx, col_idx)]

    def match(self, pair: StereoPair) -> StereoResult:
        """Dense disparity for a rectified stereo pair."""
        left, right = pair.left, pair.right
        if left.shape != right.shape:
            raise ValueError("stereo images must share a shape")
        h, w = left.shape
        half = self.window_px // 2
        support = self._support_points(left, right)
        prior = self._dense_prior(support, left.shape)
        disparity = np.zeros(left.shape)
        valid = np.zeros(left.shape, dtype=bool)
        for r in range(half, h - half):
            for c in range(half + self.max_disparity_px, w - half):
                center = int(round(prior[r, c]))
                d_min = max(0, center - self.band_px)
                d_max = min(self.max_disparity_px, center + self.band_px)
                d, sad = _sad_disparity(left, right, r, c, half, d_min, d_max)
                disparity[r, c] = d
                valid[r, c] = np.isfinite(sad)
        return StereoResult(disparity=disparity, valid_mask=valid)


def depth_error_from_pair(
    pair: StereoPair, matcher: Optional[ElasLikeMatcher] = None
) -> float:
    """Mean absolute *depth* error (meters) of the matcher on a pair.

    Used by the Fig. 11a empirical study: matching deliberately
    time-offset stereo pairs yields growing depth error.
    """
    matcher = matcher or ElasLikeMatcher()
    result = matcher.match(pair)
    est_depth = result.depth(pair.focal_px, pair.baseline_m)
    gt_depth = pair.depth_gt()
    mask = result.valid_mask & np.isfinite(est_depth) & np.isfinite(gt_depth)
    if not mask.any():
        return float("inf")
    return float(np.abs(est_depth[mask] - gt_depth[mask]).mean())
