"""ELAS-like stereo depth estimation (paper Table III).

The paper uses "the classic ELAS algorithm, which uses hand-crafted
features" rather than a DNN — DNN depth is "orders of magnitude more
compute-intensive ... while providing marginal accuracy improvements" for
their use case.  We implement the same family: support-point-guided block
matching.

1. On a sparse grid, match high-texture *support points* by SAD over the
   full disparity range (ELAS's support points).
2. Interpolate the support disparities into a dense prior.
3. For every pixel, search only a narrow band around the prior (ELAS's
   prior-constrained matching) and keep the left-right-consistent winner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..scene.kitti_like import StereoPair


@dataclass(frozen=True)
class StereoResult:
    """Dense disparity estimate plus quality metrics vs ground truth."""

    disparity: np.ndarray
    valid_mask: np.ndarray

    def depth(self, focal_px: float, baseline_m: float) -> np.ndarray:
        with np.errstate(divide="ignore"):
            return np.where(
                (self.disparity > 0) & self.valid_mask,
                focal_px * baseline_m / np.maximum(self.disparity, 1e-9),
                np.inf,
            )

    def error_against(self, gt_disparity: np.ndarray) -> float:
        """Mean absolute disparity error over valid pixels."""
        if gt_disparity.shape != self.disparity.shape:
            raise ValueError("shape mismatch")
        if not self.valid_mask.any():
            return float("inf")
        diff = np.abs(self.disparity - gt_disparity)[self.valid_mask]
        return float(diff.mean())


def _sad_disparity(
    left: np.ndarray,
    right: np.ndarray,
    row: int,
    col: int,
    half: int,
    d_min: int,
    d_max: int,
) -> Tuple[int, float]:
    """Best disparity for one pixel by SAD search in [d_min, d_max].

    The SAD reduction runs in **logical C order** (row-major over the
    window) regardless of the images' memory layout — ``np.sum`` on a
    bare view would follow the *buffer* order, making the result depend
    on whether the caller handed in C- or F-ordered images.  Pinning
    the order keeps this scalar reference bit-identical to the
    vectorized row kernel (:func:`_sad_disparity_row`).
    """
    template = left[row - half : row + half + 1, col - half : col + half + 1]
    best_d, best_sad = d_min, float("inf")
    for d in range(d_min, d_max + 1):
        c0 = col - d
        if c0 - half < 0:
            break
        patch = right[row - half : row + half + 1, c0 - half : c0 + half + 1]
        sad = float(np.sum(np.ascontiguousarray(np.abs(template - patch))))
        if sad < best_sad:
            best_sad, best_d = sad, d
    return best_d, best_sad


def _sad_disparity_row(
    left: np.ndarray,
    right: np.ndarray,
    row: int,
    cols: np.ndarray,
    half: int,
    d_min: np.ndarray,
    d_max: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`_sad_disparity` for many pixels of one image row.

    *cols* are the candidate column centers; *d_min*/*d_max* the
    per-column search bands.  Returns ``(best_d, best_sad)`` arrays
    bit-identical to calling the scalar search per column: each
    candidate window is gathered as a contiguous ``(w, w)`` block and
    summed in the same element order, and the ascending-d loop with a
    strict ``<`` keeps the same lowest-disparity tie-break.
    """
    from numpy.lib.stride_tricks import sliding_window_view

    window = 2 * half + 1
    width = left.shape[1]
    left_rows = left[row - half : row + half + 1, :]
    right_rows = right[row - half : row + half + 1, :]
    best_sad = np.full(cols.shape[0], np.inf)
    best_d = d_min.astype(np.int64).copy()
    for d in range(int(d_min.min()), int(d_max.max()) + 1):
        # The scalar loop breaks when the right window would cross the
        # image edge (c - d - half < 0); the mask drops the same pairs.
        active = (d >= d_min) & (d <= d_max) & (cols - d - half >= 0)
        if not active.any():
            continue
        # diff[:, j] = |left[:, j + d] - right[:, j]|; the window for
        # column center c starts at diff column (c - half - d).
        diff = np.abs(left_rows[:, d:] - right_rows[:, : width - d])
        if diff.shape[1] < window:
            continue
        windows = sliding_window_view(diff, (window, window))[0]
        gathered = windows[cols[active] - half - d].reshape(-1, window * window)
        sad = np.sum(gathered, axis=1)
        improved = sad < best_sad[active]
        active_idx = np.nonzero(active)[0][improved]
        best_sad[active_idx] = sad[improved]
        best_d[active_idx] = d
    return best_d, best_sad


class ElasLikeMatcher:
    """Support-point-guided dense block matcher."""

    def __init__(
        self,
        max_disparity_px: int = 24,
        window_px: int = 5,
        grid_step_px: int = 8,
        band_px: int = 3,
    ) -> None:
        if max_disparity_px <= 0 or window_px % 2 == 0:
            raise ValueError("disparity must be positive and window odd")
        self.max_disparity_px = max_disparity_px
        self.window_px = window_px
        self.grid_step_px = grid_step_px
        self.band_px = band_px

    def _support_points(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Sparse grid of confident disparities (NaN where low-texture)."""
        h, w = left.shape
        half = self.window_px // 2
        gy, gx = np.gradient(left)
        texture = gx ** 2 + gy ** 2
        texture_threshold = float(np.percentile(texture, 50))
        rows = range(half, h - half, self.grid_step_px)
        cols = range(half + self.max_disparity_px, w - half, self.grid_step_px)
        col_list = np.array(list(cols), dtype=np.int64)
        support = np.full((len(list(rows)), col_list.shape[0]), np.nan)
        for i, r in enumerate(range(half, h - half, self.grid_step_px)):
            textured = texture[r, col_list] >= texture_threshold
            if not textured.any():
                continue
            active_cols = col_list[textured]
            d, _sad = _sad_disparity_row(
                left,
                right,
                r,
                active_cols,
                half,
                np.zeros(active_cols.shape[0], dtype=np.int64),
                np.full(
                    active_cols.shape[0], self.max_disparity_px, dtype=np.int64
                ),
            )
            support[i, textured] = d
        return support

    def _dense_prior(
        self, support: np.ndarray, shape: Tuple[int, int]
    ) -> np.ndarray:
        """Fill the support grid and upsample it to image resolution."""
        filled = support.copy()
        valid = ~np.isnan(filled)
        if not valid.any():
            return np.zeros(shape)
        overall = float(np.nanmedian(filled))
        filled[~valid] = overall
        # Nearest-neighbor upsample of the coarse grid.
        h, w = shape
        row_idx = np.minimum(
            (np.arange(h) // self.grid_step_px), filled.shape[0] - 1
        )
        col_idx = np.minimum(
            (np.arange(w) // self.grid_step_px), filled.shape[1] - 1
        )
        return filled[np.ix_(row_idx, col_idx)]

    def match(self, pair: StereoPair) -> StereoResult:
        """Dense disparity for a rectified stereo pair."""
        left, right = pair.left, pair.right
        if left.shape != right.shape:
            raise ValueError("stereo images must share a shape")
        h, w = left.shape
        half = self.window_px // 2
        support = self._support_points(left, right)
        prior = self._dense_prior(support, left.shape)
        disparity = np.zeros(left.shape)
        valid = np.zeros(left.shape, dtype=bool)
        cols = np.arange(half + self.max_disparity_px, w - half, dtype=np.int64)
        if cols.shape[0] == 0:
            return StereoResult(disparity=disparity, valid_mask=valid)
        for r in range(half, h - half):
            center = np.rint(prior[r, cols]).astype(np.int64)
            d_min = np.maximum(0, center - self.band_px)
            d_max = np.minimum(self.max_disparity_px, center + self.band_px)
            d, sad = _sad_disparity_row(
                left, right, r, cols, half, d_min, d_max
            )
            disparity[r, cols] = d
            valid[r, cols] = np.isfinite(sad)
        return StereoResult(disparity=disparity, valid_mask=valid)


def depth_error_from_pair(
    pair: StereoPair, matcher: Optional[ElasLikeMatcher] = None
) -> float:
    """Mean absolute *depth* error (meters) of the matcher on a pair.

    Used by the Fig. 11a empirical study: matching deliberately
    time-offset stereo pairs yields growing depth error.
    """
    matcher = matcher or ElasLikeMatcher()
    result = matcher.match(pair)
    est_depth = result.depth(pair.focal_px, pair.baseline_m)
    gt_depth = pair.depth_gt()
    mask = result.valid_mask & np.isfinite(est_depth) & np.isfinite(gt_depth)
    if not mask.any():
        return float("inf")
    return float(np.abs(est_depth[mask] - gt_depth[mask]).mean())
