"""Visual-Inertial Odometry (paper Table III, Sec. VI-A/VI-B).

A loosely-coupled planar VIO in the spirit of [41]: the gyroscope
integrates heading between camera frames, while stereo-aided frame-to-
frame visual odometry measures the body-frame translation (from matched
features with per-feature stereo depth, solved by a 2-D Kabsch fit).  The
translation is rotated into the world by the IMU heading at the frame's
*timestamp* and composed into the trajectory.

This structure makes VIO's two paper-relevant failure modes emerge
naturally rather than by injection:

* **Cumulative drift** (Sec. VI-B): feature noise and gyro bias integrate
  — "the longer distance the vehicle travels, the more inaccurate the
  position estimation is" — motivating GPS-VIO fusion.
* **Timestamp sensitivity** (Fig. 11b): when camera frames are captured
  ``dt`` late but stamped nominally, each visual translation is expressed
  in the body frame of ``t + dt`` yet rotated by the heading at ``t``; the
  per-frame direction error is ``omega * dt``, accumulating along the path
  as ``distance * omega * dt`` — ~10 m after a few laps at 40 ms offset.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..scene.kitti_like import DriveSequence, Frame, ImuSample


@dataclass(frozen=True)
class VioEstimate:
    """The filter's pose estimate at one frame timestamp."""

    time_s: float
    x_m: float
    y_m: float
    heading_rad: float

    @property
    def position(self) -> Tuple[float, float]:
        return (self.x_m, self.y_m)


@dataclass(frozen=True)
class RelativeMotion:
    """Frame-to-frame motion measured by visual odometry (body frame)."""

    forward_m: float
    lateral_m: float
    dtheta_rad: float
    n_matches: int


def _body_frame_positions(frame: Frame) -> Dict[int, Tuple[float, float]]:
    """Per-landmark (forward, lateral) positions from bearing + depth.

    Vectorized over the frame's observations; the elementwise
    ``-(u - cx) * Z / f`` is the same IEEE operation sequence as the
    scalar expression, so each entry is bit-identical to the
    per-observation loop this replaces.
    """
    usable = [
        obs
        for obs in frame.observations
        if obs.depth_m is not None and obs.depth_m > 0
    ]
    if not usable:
        return {}
    n = len(usable)
    # u = cx + f * (-lateral) / forward  =>  lateral = -(u - cx) * Z / f
    forward = np.fromiter(
        (obs.depth_m for obs in usable), dtype=np.float64, count=n
    )
    u_px = np.fromiter(
        (obs.u_px for obs in usable), dtype=np.float64, count=n
    )
    lateral = -(u_px - 160.0) * forward / 320.0
    return {
        obs.landmark_id: (float(fwd), float(lat))
        for obs, fwd, lat in zip(usable, forward, lateral)
    }


def estimate_relative_motion(
    prev_frame: Frame,
    cur_frame: Frame,
    min_matches: int = 4,
    camera: Optional[object] = None,
) -> Optional[RelativeMotion]:
    """2-D Kabsch fit between the common features of two frames.

    Finds the rigid transform that maps the current frame's body-frame
    feature positions onto the previous frame's; its translation is the
    vehicle's motion in the previous body frame and its rotation the
    heading change.  Returns None with too few common features.
    """
    prev_pts = _body_frame_positions(prev_frame)
    cur_pts = _body_frame_positions(cur_frame)
    common = sorted(set(prev_pts) & set(cur_pts))
    if len(common) < min_matches:
        return None
    a = np.array([cur_pts[i] for i in common])  # current body frame
    b = np.array([prev_pts[i] for i in common])  # previous body frame
    ca, cb = a.mean(axis=0), b.mean(axis=0)
    h = (a - ca).T @ (b - cb)
    u, _s, vt = np.linalg.svd(h)
    d = np.sign(np.linalg.det(vt.T @ u.T))
    rotation = vt.T @ np.diag([1.0, d]) @ u.T
    # Landmarks at body position p0 before the move satisfy
    # p0 = R(dtheta) p1 + T, where T is the vehicle's translation in the
    # previous body frame and dtheta its heading change — so the fitted
    # rotation/translation ARE the vehicle motion.
    dtheta = math.atan2(rotation[1, 0], rotation[0, 0])
    translation = cb - rotation @ ca
    return RelativeMotion(
        forward_m=float(translation[0]),
        lateral_m=float(translation[1]),
        dtheta_rad=dtheta,
        n_matches=len(common),
    )


class VisualInertialOdometry:
    """The full VIO pipeline over a :class:`DriveSequence`.

    Heading comes from integrating gyro yaw-rate between frame timestamps;
    translation comes from visual odometry, rotated by the heading at the
    frame's timestamp.
    """

    def __init__(
        self,
        initial_x_m: float = 0.0,
        initial_y_m: float = 0.0,
        initial_heading_rad: float = 0.0,
        gyro_weight: float = 0.98,
    ) -> None:
        if not 0.0 <= gyro_weight <= 1.0:
            raise ValueError("gyro weight must be in [0, 1]")
        self.x_m = initial_x_m
        self.y_m = initial_y_m
        self.heading_rad = initial_heading_rad
        #: Complementary blend between gyro-integrated and visual heading
        #: increments (gyro dominates; vision limits long-term drift).
        self.gyro_weight = gyro_weight
        self.estimates: List[VioEstimate] = []
        self.frames_processed = 0
        self.frames_dropped = 0

    def run(self, sequence: DriveSequence) -> List[VioEstimate]:
        """Process a complete sequence; returns per-frame pose estimates."""
        frames = sequence.frames
        if not frames:
            return []
        imu = sorted(sequence.imu, key=lambda s: s.trigger_time_s)
        imu_times = np.array([s.trigger_time_s for s in imu])
        # Anchor at the first frame's ground truth (odometry is relative).
        self.x_m, self.y_m = frames[0].position
        self.heading_rad = frames[0].heading_rad
        self.estimates = [
            VioEstimate(
                frames[0].trigger_time_s, self.x_m, self.y_m, self.heading_rad
            )
        ]
        for prev_frame, cur_frame in zip(frames, frames[1:]):
            self.frames_processed += 1
            t0 = prev_frame.trigger_time_s
            t1 = cur_frame.trigger_time_s
            gyro_dtheta = self._integrate_gyro(imu, imu_times, t0, t1)
            motion = estimate_relative_motion(prev_frame, cur_frame)
            if motion is None:
                # Vision dropout: dead-reckon heading only.
                self.frames_dropped += 1
                self.heading_rad += gyro_dtheta
                self.estimates.append(
                    VioEstimate(t1, self.x_m, self.y_m, self.heading_rad)
                )
                continue
            dtheta = (
                self.gyro_weight * gyro_dtheta
                + (1.0 - self.gyro_weight) * motion.dtheta_rad
            )
            # The Kabsch translation is expressed in the *previous* body
            # frame, so compose at the previous heading estimate — the
            # step a camera/IMU timestamp error corrupts.
            c, s = math.cos(self.heading_rad), math.sin(self.heading_rad)
            self.x_m += c * motion.forward_m - s * motion.lateral_m
            self.y_m += s * motion.forward_m + c * motion.lateral_m
            self.heading_rad += dtheta
            self.estimates.append(
                VioEstimate(t1, self.x_m, self.y_m, self.heading_rad)
            )
        return self.estimates

    @staticmethod
    def _integrate_gyro(
        imu: Sequence[ImuSample],
        imu_times: np.ndarray,
        t0: float,
        t1: float,
    ) -> float:
        """Trapezoid-free yaw integration of IMU samples in (t0, t1]."""
        i0 = int(np.searchsorted(imu_times, t0, side="right"))
        i1 = int(np.searchsorted(imu_times, t1, side="right"))
        if i1 <= i0:
            return 0.0
        dt = 0.0 if len(imu) < 2 else imu[1].trigger_time_s - imu[0].trigger_time_s
        return float(sum(s.yaw_rate_rps for s in imu[i0:i1]) * dt)


@dataclass(frozen=True)
class CameraImuSyncErrorModel:
    """First-order camera/IMU time-offset drift model (Fig. 11b magnitude).

    In a tightly-coupled 3-D VIO, a camera/IMU time offset ``t_d`` couples
    into the gravity/attitude estimate and the position estimate drifts at
    a rate of approximately ``|v| * |omega| * t_d`` (the first-order model
    underlying online temporal calibration, e.g. VINS-Mono's td state).
    Our planar substrate cannot host the gravity channel (see DESIGN.md
    substitution table), so the Fig. 11b *magnitudes* come from this model
    while the *shape* (error grows with offset) is demonstrated on the real
    :class:`VisualInertialOdometry` implementation.

    Defaults describe the paper-scale deployment drive: 5.6 m/s around a
    15 m-radius circuit for 120 s, giving ~10 m of drift at a 40 ms offset
    and ~5 m at 20 ms — the two unsynced trajectories of Fig. 11b.
    """

    speed_mps: float = 5.6
    turn_radius_m: float = 15.0
    duration_s: float = 120.0

    def __post_init__(self) -> None:
        if min(self.speed_mps, self.turn_radius_m, self.duration_s) <= 0:
            raise ValueError("all parameters must be positive")

    @property
    def yaw_rate_rps(self) -> float:
        return self.speed_mps / self.turn_radius_m

    def drift_rate_mps(self, offset_s: float) -> float:
        """Position drift rate: ``|v| * |omega| * t_d``."""
        if offset_s < 0:
            raise ValueError("offset must be non-negative")
        return self.speed_mps * self.yaw_rate_rps * offset_s

    def localization_error_m(self, offset_s: float) -> float:
        """Accumulated drift after the full drive."""
        return self.drift_rate_mps(offset_s) * self.duration_s

    def curve(self, offsets_s: Sequence[float]) -> List[Tuple[float, float]]:
        return [(o, self.localization_error_m(o)) for o in offsets_s]


def trajectory_error_m(
    estimates: Sequence[VioEstimate], sequence: DriveSequence
) -> Tuple[float, float]:
    """(mean, max) position error of estimates against ground truth.

    Ground truth is the *actual* capture position of each frame — so for
    out-of-sync sequences this measures exactly the Fig. 11b divergence.
    """
    if len(estimates) != len(sequence.frames):
        raise ValueError("one estimate per frame required")
    errors = [
        math.hypot(e.x_m - f.position[0], e.y_m - f.position[1])
        for e, f in zip(estimates, sequence.frames)
    ]
    return (float(np.mean(errors)), float(np.max(errors)))
