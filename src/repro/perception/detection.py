"""Object detection (paper Table III).

The paper detects objects with DNNs (YOLO / Mask R-CNN) — "the only task
in our current pipeline where the accuracy provided by deep learning
justifies the overhead" — and retrains models per deployment environment
from field data.  As the substitution note in DESIGN.md records, we stand
in a from-scratch sliding-window detector — a logistic-regression head
over normalized patch features (a learned matched filter), trained on
synthetic field data, with HOG features available as an alternative.  It
preserves what the paper uses detection for: a trainable, retrainable,
compute-dominant perception stage that emits boxes for tracking.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .kcf import BoundingBox


@dataclass(frozen=True)
class Detection:
    """One detected object."""

    box: BoundingBox
    score: float
    label: str = "object"


# ---------------------------------------------------------------------------
# Synthetic scenes with objects
# ---------------------------------------------------------------------------


def make_scene(
    shape: Tuple[int, int] = (96, 128),
    n_objects: int = 2,
    object_size: int = 16,
    seed: int = 0,
) -> Tuple[np.ndarray, List[BoundingBox]]:
    """A textured background with high-contrast checkered objects.

    Returns the image and ground-truth boxes.  The object pattern (a fine
    checkerboard) has a distinctive gradient signature the detector learns.
    """
    rng = np.random.default_rng(seed)
    h, w = shape
    image = rng.uniform(0.0, 0.35, shape)
    # Mild background structure.
    image += 0.1 * np.sin(np.linspace(0, 6 * math.pi, w))[None, :]
    boxes = []
    for _ in range(n_objects):
        for _attempt in range(50):
            top = int(rng.integers(0, h - object_size))
            left = int(rng.integers(0, w - object_size))
            candidate = BoundingBox(left, top, object_size, object_size)
            if all(candidate.iou(b) == 0.0 for b in boxes):
                break
        checker = np.indices((object_size, object_size)).sum(axis=0) % 8 < 4
        patch = np.where(checker, 0.95, 0.05)
        image[top : top + object_size, left : left + object_size] = patch
        boxes.append(candidate)
    return image, boxes


# ---------------------------------------------------------------------------
# HOG-like features + logistic regression
# ---------------------------------------------------------------------------


def hog_features(patch: np.ndarray, n_bins: int = 8, cells: int = 2) -> np.ndarray:
    """Gradient-orientation histogram features over a cell grid."""
    if patch.ndim != 2:
        raise ValueError("patch must be 2-D")
    gy, gx = np.gradient(patch.astype(np.float64))
    magnitude = np.hypot(gx, gy)
    orientation = np.arctan2(gy, gx) % math.pi
    h, w = patch.shape
    ch, cw = h // cells, w // cells
    features = []
    for i in range(cells):
        for j in range(cells):
            mag = magnitude[i * ch : (i + 1) * ch, j * cw : (j + 1) * cw]
            ori = orientation[i * ch : (i + 1) * ch, j * cw : (j + 1) * cw]
            hist, _ = np.histogram(
                ori, bins=n_bins, range=(0.0, math.pi), weights=mag
            )
            features.append(hist)
    vector = np.concatenate(features)
    norm = np.linalg.norm(vector)
    return vector / norm if norm > 0 else vector


def patch_features(patch: np.ndarray) -> np.ndarray:
    """Zero-mean, unit-norm flattened patch.

    A linear classifier over these features is a learned matched filter
    (template correlator) — the detector's feature of choice: unlike
    orientation histograms it is phase-sensitive, so windows that straddle
    an object score low instead of aliasing into positives.
    """
    if patch.ndim != 2:
        raise ValueError("patch must be 2-D")
    vector = patch.astype(np.float64).ravel()
    vector = vector - vector.mean()
    norm = np.linalg.norm(vector)
    return vector / norm if norm > 0 else vector


@dataclass
class LogisticModel:
    """A from-scratch logistic-regression classifier."""

    weights: np.ndarray
    bias: float

    @classmethod
    def train(
        cls,
        features: np.ndarray,
        labels: np.ndarray,
        epochs: int = 200,
        learning_rate: float = 0.5,
        l2: float = 1e-3,
        seed: int = 0,
    ) -> "LogisticModel":
        if features.ndim != 2 or len(features) != len(labels):
            raise ValueError("features must be NxD with matching labels")
        rng = np.random.default_rng(seed)
        weights = rng.normal(0.0, 0.01, features.shape[1])
        bias = 0.0
        y = labels.astype(np.float64)
        for _ in range(epochs):
            logits = features @ weights + bias
            probs = 1.0 / (1.0 + np.exp(-logits))
            grad_w = features.T @ (probs - y) / len(y) + l2 * weights
            grad_b = float(np.mean(probs - y))
            weights -= learning_rate * grad_w
            bias -= learning_rate * grad_b
        return cls(weights=weights, bias=bias)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        logits = np.atleast_2d(features) @ self.weights + self.bias
        return 1.0 / (1.0 + np.exp(-logits))


def non_max_suppression(
    detections: Sequence[Detection], iou_threshold: float = 0.3
) -> List[Detection]:
    """Greedy NMS, highest score first."""
    remaining = sorted(detections, key=lambda d: d.score, reverse=True)
    kept: List[Detection] = []
    while remaining:
        best = remaining.pop(0)
        kept.append(best)
        remaining = [
            d for d in remaining if d.box.iou(best.box) < iou_threshold
        ]
    return kept


@dataclass
class SlidingWindowDetector:
    """The trained detector: slide a window, score, NMS."""

    model: LogisticModel
    window_size: int = 16
    stride: int = 1
    score_threshold: float = 0.62

    def detect(self, image: np.ndarray) -> List[Detection]:
        if image.ndim != 2:
            raise ValueError("image must be 2-D grayscale")
        h, w = image.shape
        s = self.window_size
        candidates = []
        for top in range(0, h - s + 1, self.stride):
            for left in range(0, w - s + 1, self.stride):
                feats = patch_features(image[top : top + s, left : left + s])
                score = float(self.model.predict_proba(feats)[0])
                if score >= self.score_threshold:
                    candidates.append(
                        Detection(box=BoundingBox(left, top, s, s), score=score)
                    )
        return non_max_suppression(candidates)


def build_training_set(
    n_scenes: int = 30,
    object_size: int = 16,
    negatives_per_scene: int = 6,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate (features, labels) from synthetic field scenes."""
    rng = np.random.default_rng(seed)
    features = []
    labels = []
    for i in range(n_scenes):
        image, boxes = make_scene(object_size=object_size, seed=seed + i)
        for box in boxes:
            patch = image[box.y : box.y + box.height, box.x : box.x + box.width]
            features.append(patch_features(patch))
            labels.append(1)
        h, w = image.shape
        for _ in range(negatives_per_scene):
            for _attempt in range(50):
                top = int(rng.integers(0, h - object_size))
                left = int(rng.integers(0, w - object_size))
                candidate = BoundingBox(left, top, object_size, object_size)
                if all(candidate.iou(b) < 0.1 for b in boxes):
                    break
            patch = image[top : top + object_size, left : left + object_size]
            features.append(patch_features(patch))
            labels.append(0)
        # Hard negatives: windows partially overlapping an object.  Without
        # these, off-center windows score high and survive NMS as false
        # positives (the classic sliding-window failure mode).
        for box in boxes:
            for du, dv in ((10, 0), (-10, 0), (0, 10), (10, 10)):
                top = min(max(0, box.y + dv), h - object_size)
                left = min(max(0, box.x + du), w - object_size)
                candidate = BoundingBox(left, top, object_size, object_size)
                if candidate.iou(box) >= 0.4:
                    continue
                patch = image[top : top + object_size, left : left + object_size]
                features.append(patch_features(patch))
                labels.append(0)
    return np.array(features), np.array(labels)


def train_detector(
    n_scenes: int = 30, object_size: int = 16, seed: int = 0
) -> SlidingWindowDetector:
    """Train the full detector on synthetic field data."""
    features, labels = build_training_set(
        n_scenes=n_scenes, object_size=object_size, seed=seed
    )
    model = LogisticModel.train(features, labels, seed=seed)
    return SlidingWindowDetector(model=model, window_size=object_size)


def evaluate_detector(
    detector: SlidingWindowDetector,
    n_scenes: int = 10,
    seed: int = 1_000,
    iou_threshold: float = 0.4,
) -> Tuple[float, float]:
    """(precision, recall) over held-out synthetic scenes."""
    tp = fp = fn = 0
    for i in range(n_scenes):
        image, gt_boxes = make_scene(
            object_size=detector.window_size, seed=seed + i
        )
        detections = detector.detect(image)
        matched = set()
        for det in detections:
            hit = None
            for k, gt in enumerate(gt_boxes):
                if k not in matched and det.box.iou(gt) >= iou_threshold:
                    hit = k
                    break
            if hit is None:
                fp += 1
            else:
                matched.add(hit)
                tp += 1
        fn += len(gt_boxes) - len(matched)
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    return precision, recall
