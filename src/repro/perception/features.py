"""Feature extraction and tracking on images (paper Sec. V-B3, Table III).

The localization pipeline has two image-front-end variants that the RPR
engine time-shares on the FPGA: *feature extraction* on key frames
(ORB-style corner detection [67]) and *feature tracking* on non-key frames
(Lucas-Kanade-style patch tracking [68]).  Both are implemented here on
plain numpy images.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class ImageFeature:
    """One detected corner."""

    u_px: float
    v_px: float
    response: float


def _gradients(image: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    gy, gx = np.gradient(image.astype(np.float64))
    return gx, gy


def _box_blur(image: np.ndarray, size: int = 3) -> np.ndarray:
    kernel = np.ones(size) / size
    out = np.apply_along_axis(
        lambda row: np.convolve(row, kernel, mode="same"), 1, image
    )
    return np.apply_along_axis(
        lambda col: np.convolve(col, kernel, mode="same"), 0, out
    )


def extract_features(
    image: np.ndarray,
    max_features: int = 100,
    min_distance_px: int = 8,
    quality_level: float = 0.05,
) -> List[ImageFeature]:
    """Shi-Tomasi/Harris-style corner extraction.

    Computes the minimum eigenvalue of the structure tensor per pixel and
    greedily keeps the strongest corners with non-maximum suppression —
    the keyframe front end.
    """
    if image.ndim != 2:
        raise ValueError("image must be 2-D grayscale")
    gx, gy = _gradients(image)
    ixx = _box_blur(gx * gx)
    iyy = _box_blur(gy * gy)
    ixy = _box_blur(gx * gy)
    # Minimum eigenvalue of [[ixx, ixy], [ixy, iyy]].
    trace_half = (ixx + iyy) / 2.0
    det = ixx * iyy - ixy * ixy
    discriminant = np.maximum(trace_half ** 2 - det, 0.0)
    response = trace_half - np.sqrt(discriminant)
    threshold = quality_level * response.max() if response.max() > 0 else 0.0
    # Border suppression: gradients at edges are artifacts.
    response[:2, :] = response[-2:, :] = 0.0
    response[:, :2] = response[:, -2:] = 0.0
    candidates = np.argwhere(response > threshold)
    order = np.argsort(response[candidates[:, 0], candidates[:, 1]])[::-1]
    features: List[ImageFeature] = []
    occupied = np.zeros_like(response, dtype=bool)
    for idx in order:
        r, c = candidates[idx]
        if occupied[r, c]:
            continue
        features.append(
            ImageFeature(u_px=float(c), v_px=float(r), response=float(response[r, c]))
        )
        if len(features) >= max_features:
            break
        r0, r1 = max(0, r - min_distance_px), r + min_distance_px + 1
        c0, c1 = max(0, c - min_distance_px), c + min_distance_px + 1
        occupied[r0:r1, c0:c1] = True
    return features


@dataclass(frozen=True)
class TrackResult:
    """Outcome of tracking one feature into the next frame."""

    u_px: float
    v_px: float
    residual: float
    converged: bool


def track_feature(
    prev_image: np.ndarray,
    next_image: np.ndarray,
    feature: ImageFeature,
    window_px: int = 7,
    search_radius_px: int = 10,
) -> Optional[TrackResult]:
    """Translational patch tracking by exhaustive SSD search.

    The non-keyframe front end: find the displacement minimizing the sum of
    squared differences of the patch around the feature.  Returns None when
    the patch leaves the image.
    """
    if prev_image.shape != next_image.shape:
        raise ValueError("images must have the same shape")
    h, w = prev_image.shape
    r, c = int(round(feature.v_px)), int(round(feature.u_px))
    half = window_px // 2
    if not (half <= r < h - half and half <= c < w - half):
        return None
    template = prev_image[r - half : r + half + 1, c - half : c + half + 1]
    best_ssd = float("inf")
    best_dr = best_dc = 0
    for dr in range(-search_radius_px, search_radius_px + 1):
        rr = r + dr
        if not (half <= rr < h - half):
            continue
        for dc in range(-search_radius_px, search_radius_px + 1):
            cc = c + dc
            if not (half <= cc < w - half):
                continue
            patch = next_image[rr - half : rr + half + 1, cc - half : cc + half + 1]
            ssd = float(np.sum((patch - template) ** 2))
            if ssd < best_ssd:
                best_ssd, best_dr, best_dc = ssd, dr, dc
    if not math.isfinite(best_ssd):
        return None
    template_energy = float(np.sum(template ** 2)) or 1.0
    residual = best_ssd / template_energy
    # The exhaustive search picks the best of ~(2R+1)^2 candidates, so
    # even unrelated scenes land near residual ~0.4 by selection bias;
    # genuine matches score well under 0.1.
    return TrackResult(
        u_px=float(c + best_dc),
        v_px=float(r + best_dr),
        residual=residual,
        converged=residual < 0.2,
    )


def track_features(
    prev_image: np.ndarray,
    next_image: np.ndarray,
    features: Sequence[ImageFeature],
    **kwargs,
) -> List[Optional[TrackResult]]:
    """Track many features; entries are None where tracking failed."""
    return [track_feature(prev_image, next_image, f, **kwargs) for f in features]
