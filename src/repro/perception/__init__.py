"""Perception algorithms: stereo depth, detection, tracking, VIO, fusion."""

from .depth_error import StereoSyncErrorModel, fig11a_curve
from .detection import (
    Detection,
    LogisticModel,
    SlidingWindowDetector,
    build_training_set,
    evaluate_detector,
    hog_features,
    patch_features,
    make_scene,
    non_max_suppression,
    train_detector,
)
from .features import (
    ImageFeature,
    TrackResult,
    extract_features,
    track_feature,
    track_features,
)
from .fusion import FusedEstimate, GpsVioFusion, run_fusion
from .kcf import BoundingBox, KcfTracker
from .radar_tracking import (
    CameraProjection,
    RadarTrack,
    RadarTracker,
    SpatialMatch,
    spatial_synchronization,
)
from .frontend import FrontEndFrame, LocalizationFrontEnd
from .tracking_manager import TrackedTarget, TrackingManager, TrackingModeStats
from .stereo import ElasLikeMatcher, StereoResult, depth_error_from_pair
from .vio import (
    CameraImuSyncErrorModel,
    RelativeMotion,
    VioEstimate,
    VisualInertialOdometry,
    estimate_relative_motion,
    trajectory_error_m,
)

__all__ = [
    "BoundingBox",
    "CameraImuSyncErrorModel",
    "CameraProjection",
    "Detection",
    "ElasLikeMatcher",
    "FrontEndFrame",
    "FusedEstimate",
    "GpsVioFusion",
    "ImageFeature",
    "KcfTracker",
    "LocalizationFrontEnd",
    "LogisticModel",
    "RadarTrack",
    "RadarTracker",
    "RelativeMotion",
    "SlidingWindowDetector",
    "SpatialMatch",
    "StereoResult",
    "StereoSyncErrorModel",
    "TrackedTarget",
    "TrackingManager",
    "TrackingModeStats",
    "TrackResult",
    "VioEstimate",
    "VisualInertialOdometry",
    "build_training_set",
    "depth_error_from_pair",
    "estimate_relative_motion",
    "evaluate_detector",
    "extract_features",
    "fig11a_curve",
    "hog_features",
    "patch_features",
    "make_scene",
    "non_max_suppression",
    "run_fusion",
    "spatial_synchronization",
    "track_feature",
    "track_features",
    "trajectory_error_m",
    "train_detector",
]
