"""Kernelized Correlation Filter tracker (paper Table III, [46]).

The baseline visual tracker the vehicle falls back to "when Radar signals
are unstable".  This is a faithful single-scale KCF: Gaussian-kernel ridge
regression trained in the Fourier domain, with a cosine (Hann) window and
exponential model adaptation — the algorithm of Henriques et al., minus
multi-scale search and HOG channels (raw-pixel channel, as in the original
CSK variant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned box: top-left corner + size (pixels)."""

    x: int
    y: int
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("box must have positive size")

    @property
    def center(self) -> Tuple[float, float]:
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)

    def iou(self, other: "BoundingBox") -> float:
        x0 = max(self.x, other.x)
        y0 = max(self.y, other.y)
        x1 = min(self.x + self.width, other.x + other.width)
        y1 = min(self.y + self.height, other.y + other.height)
        inter = max(0, x1 - x0) * max(0, y1 - y0)
        union = self.width * self.height + other.width * other.height - inter
        return 0.0 if union == 0 else inter / union


def _hann2d(shape: Tuple[int, int]) -> np.ndarray:
    wy = np.hanning(shape[0])
    wx = np.hanning(shape[1])
    return np.outer(wy, wx)


def _gaussian_response(shape: Tuple[int, int], sigma: float) -> np.ndarray:
    """Desired response: a Gaussian peak at the patch center, fftshifted."""
    h, w = shape
    ys = np.arange(h) - h // 2
    xs = np.arange(w) - w // 2
    yy, xx = np.meshgrid(ys, xs, indexing="ij")
    response = np.exp(-(xx ** 2 + yy ** 2) / (2.0 * sigma ** 2))
    return np.fft.ifftshift(response)


def _gaussian_correlation(
    xf: np.ndarray, yf: np.ndarray, sigma: float
) -> np.ndarray:
    """Gaussian kernel correlation of two patches given their FFTs."""
    n = xf.size
    xx = float(np.sum(np.abs(xf) ** 2)) / n
    yy = float(np.sum(np.abs(yf) ** 2)) / n
    xy = np.real(np.fft.ifft2(xf * np.conj(yf)))
    dist = np.maximum(xx + yy - 2.0 * xy, 0.0)
    return np.exp(-dist / (sigma ** 2 * n))


class KcfTracker:
    """Single-object KCF tracker over grayscale frames."""

    def __init__(
        self,
        padding: float = 1.5,
        kernel_sigma: float = 0.5,
        output_sigma_factor: float = 0.1,
        regularization: float = 1e-4,
        learning_rate: float = 0.075,
    ) -> None:
        self.padding = padding
        self.kernel_sigma = kernel_sigma
        self.output_sigma_factor = output_sigma_factor
        self.regularization = regularization
        self.learning_rate = learning_rate
        self._window: Optional[np.ndarray] = None
        self._alphaf: Optional[np.ndarray] = None
        self._template_f: Optional[np.ndarray] = None
        self._box: Optional[BoundingBox] = None
        self._patch_shape: Optional[Tuple[int, int]] = None

    @property
    def initialized(self) -> bool:
        return self._box is not None

    @property
    def box(self) -> BoundingBox:
        if self._box is None:
            raise RuntimeError("tracker not initialized")
        return self._box

    def _patch_geometry(self, box: BoundingBox) -> Tuple[int, int, int, int]:
        ph = int(box.height * (1 + self.padding))
        pw = int(box.width * (1 + self.padding))
        cx, cy = box.center
        return int(cy - ph / 2), int(cx - pw / 2), ph, pw

    def _extract_patch(self, frame: np.ndarray, box: BoundingBox) -> np.ndarray:
        top, left, ph, pw = self._patch_geometry(box)
        h, w = frame.shape
        rows = np.clip(np.arange(top, top + ph), 0, h - 1)
        cols = np.clip(np.arange(left, left + pw), 0, w - 1)
        patch = frame[np.ix_(rows, cols)].astype(np.float64)
        patch = (patch - patch.mean()) / (patch.std() + 1e-9)
        return patch

    def init(self, frame: np.ndarray, box: BoundingBox) -> None:
        """Initialize on the first frame with the target's box."""
        if frame.ndim != 2:
            raise ValueError("frame must be 2-D grayscale")
        self._box = box
        patch = self._extract_patch(frame, box)
        self._patch_shape = patch.shape
        self._window = _hann2d(patch.shape)
        output_sigma = (
            np.sqrt(box.width * box.height) * self.output_sigma_factor
        )
        self._yf = np.fft.fft2(_gaussian_response(patch.shape, output_sigma))
        self._train(patch, learning_rate=1.0)

    def _train(self, patch: np.ndarray, learning_rate: float) -> None:
        xf = np.fft.fft2(patch * self._window)
        kf = np.fft.fft2(_gaussian_correlation(xf, xf, self.kernel_sigma))
        alphaf = self._yf / (kf + self.regularization)
        if learning_rate >= 1.0 or self._alphaf is None:
            self._alphaf = alphaf
            self._template_f = xf
        else:
            self._alphaf = (
                1 - learning_rate
            ) * self._alphaf + learning_rate * alphaf
            self._template_f = (
                1 - learning_rate
            ) * self._template_f + learning_rate * xf

    def update(self, frame: np.ndarray) -> BoundingBox:
        """Track the target into a new frame; returns the new box."""
        if not self.initialized:
            raise RuntimeError("call init() first")
        patch = self._extract_patch(frame, self._box)
        if patch.shape != self._patch_shape:
            raise ValueError("frame size changed under the tracker")
        zf = np.fft.fft2(patch * self._window)
        kf = np.fft.fft2(
            _gaussian_correlation(zf, self._template_f, self.kernel_sigma)
        )
        response = np.real(np.fft.ifft2(self._alphaf * kf))
        self._last_peak = float(response.max())
        peak = np.unravel_index(int(np.argmax(response)), response.shape)
        dy, dx = peak[0], peak[1]
        # Displacements beyond half the patch wrap around (circular shift).
        if dy > response.shape[0] // 2:
            dy -= response.shape[0]
        if dx > response.shape[1] // 2:
            dx -= response.shape[1]
        self._box = BoundingBox(
            x=self._box.x + int(dx),
            y=self._box.y + int(dy),
            width=self._box.width,
            height=self._box.height,
        )
        self._train(self._extract_patch(frame, self._box), self.learning_rate)
        return self._box

    @property
    def peak_response(self) -> float:
        """Confidence proxy: last response peak (for fallback decisions)."""
        return getattr(self, "_last_peak", 0.0)
