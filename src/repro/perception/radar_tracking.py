"""Radar tracking and vision-radar spatial synchronization (Sec. VI-B).

The paper replaces compute-intensive visual tracking (KCF) with radar:
"Radar ... directly measures the relative radial velocity of an object and
combines consecutive observations of the same target into a trajectory."
The catch: "Radars do not detect objects.  Therefore, we must match objects
detected by vision algorithms with objects tracked by Radars.  We call
this spatial synchronization."

Two components:

* :class:`RadarTracker` — builds tracks from raw detections with
  constant-velocity Kalman filters and gated nearest-neighbor association
  (Hungarian assignment).
* :func:`spatial_synchronization` — projects radar tracks into the camera
  frame and optimally matches them against vision detections — the ~1 ms
  computation that replaces per-frame KCF.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment

from ..sensors.radar import RadarDetection
from .detection import Detection
from .kcf import BoundingBox


@dataclass
class RadarTrack:
    """One tracked target: constant-velocity KF in the radar frame."""

    track_id: int
    state: np.ndarray  # [x, y, vx, vy]
    covariance: np.ndarray
    age: int = 1
    missed: int = 0

    @property
    def position(self) -> Tuple[float, float]:
        return (float(self.state[0]), float(self.state[1]))

    @property
    def velocity(self) -> Tuple[float, float]:
        return (float(self.state[2]), float(self.state[3]))

    @property
    def speed_mps(self) -> float:
        return math.hypot(*self.velocity)


class RadarTracker:
    """Multi-target tracker over per-sweep radar detections."""

    def __init__(
        self,
        gate_m: float = 3.0,
        position_noise_m: float = 0.3,
        process_noise: float = 0.5,
        max_missed: int = 5,
    ) -> None:
        self.gate_m = gate_m
        self.position_noise_m = position_noise_m
        self.process_noise = process_noise
        self.max_missed = max_missed
        self.tracks: List[RadarTrack] = []
        self._next_id = 0

    def step(self, detections: Sequence[RadarDetection], dt_s: float) -> None:
        """Advance all tracks by *dt_s* and fuse one sweep of detections."""
        if dt_s < 0:
            raise ValueError("dt must be non-negative")
        self._predict(dt_s)
        points = [d.to_cartesian() for d in detections]
        assignments = self._associate(points)
        assigned_tracks = {i for i, _ in assignments}
        assigned_detections = set()
        for track_idx, det_idx in assignments:
            self._update(self.tracks[track_idx], points[det_idx])
            assigned_detections.add(det_idx)
        for idx, track in enumerate(self.tracks):
            if idx not in assigned_tracks:
                track.missed += 1
        for det_idx, point in enumerate(points):
            if det_idx not in assigned_detections:
                self._spawn(point)
        self.tracks = [t for t in self.tracks if t.missed <= self.max_missed]

    def _predict(self, dt_s: float) -> None:
        f = np.eye(4)
        f[0, 2] = f[1, 3] = dt_s
        q = np.diag([0.25 * dt_s ** 4] * 2 + [dt_s ** 2] * 2) * self.process_noise
        for track in self.tracks:
            track.state = f @ track.state
            track.covariance = f @ track.covariance @ f.T + q
            track.age += 1

    def _associate(
        self, points: Sequence[Tuple[float, float]]
    ) -> List[Tuple[int, int]]:
        """Hungarian assignment of detections to tracks with gating."""
        if not self.tracks or not points:
            return []
        cost = np.zeros((len(self.tracks), len(points)))
        for i, track in enumerate(self.tracks):
            tx, ty = track.position
            for j, (px, py) in enumerate(points):
                cost[i, j] = math.hypot(tx - px, ty - py)
        rows, cols = linear_sum_assignment(cost)
        return [
            (int(r), int(c))
            for r, c in zip(rows, cols)
            if cost[r, c] <= self.gate_m
        ]

    def _update(self, track: RadarTrack, point: Tuple[float, float]) -> None:
        h = np.zeros((2, 4))
        h[0, 0] = h[1, 1] = 1.0
        r = np.eye(2) * self.position_noise_m ** 2
        z = np.array(point)
        innovation = z - h @ track.state
        s = h @ track.covariance @ h.T + r
        gain = track.covariance @ h.T @ np.linalg.inv(s)
        track.state = track.state + gain @ innovation
        track.covariance = (np.eye(4) - gain @ h) @ track.covariance
        track.missed = 0

    def _spawn(self, point: Tuple[float, float]) -> None:
        state = np.array([point[0], point[1], 0.0, 0.0])
        covariance = np.diag([1.0, 1.0, 4.0, 4.0])
        self.tracks.append(
            RadarTrack(
                track_id=self._next_id, state=state, covariance=covariance
            )
        )
        self._next_id += 1


# ---------------------------------------------------------------------------
# Spatial synchronization: radar tracks <-> vision detections
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CameraProjection:
    """Minimal camera model for projecting radar-frame points to pixels."""

    focal_px: float = 320.0
    cx_px: float = 160.0
    image_width_px: int = 320

    def project(self, forward_m: float, lateral_m: float) -> Optional[float]:
        """Horizontal pixel of a radar-frame point; None when behind."""
        if forward_m <= 0:
            return None
        return self.cx_px + self.focal_px * (-lateral_m) / forward_m


@dataclass(frozen=True)
class SpatialMatch:
    """One vision-detection <-> radar-track association."""

    detection_index: int
    track_id: int
    pixel_distance: float
    track_velocity: Tuple[float, float]


def spatial_synchronization(
    detections: Sequence[Detection],
    tracks: Sequence[RadarTrack],
    camera: Optional[CameraProjection] = None,
    gate_px: float = 40.0,
) -> List[SpatialMatch]:
    """Project radar tracks into the image and match vision detections.

    "Our spatial synchronization finishes on the CPU in 1 ms, 100x more
    lightweight than KCF" — the computation is just a projection, a small
    cost matrix, and a Hungarian assignment.
    """
    camera = camera or CameraProjection()
    if not detections or not tracks:
        return []
    projections: List[Optional[float]] = [
        camera.project(t.position[0], t.position[1]) for t in tracks
    ]
    big = 1e9
    cost = np.full((len(detections), len(tracks)), big)
    for i, det in enumerate(detections):
        det_u = det.box.center[0]
        for j, u in enumerate(projections):
            if u is None:
                continue
            cost[i, j] = abs(det_u - u)
    rows, cols = linear_sum_assignment(cost)
    matches = []
    for r, c in zip(rows, cols):
        if cost[r, c] <= gate_px:
            matches.append(
                SpatialMatch(
                    detection_index=int(r),
                    track_id=tracks[c].track_id,
                    pixel_distance=float(cost[r, c]),
                    track_velocity=tracks[c].velocity,
                )
            )
    return matches
