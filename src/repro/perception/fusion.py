"""GPS-VIO fusion via an Extended Kalman Filter (paper Sec. VI-B).

"To alleviate the VIO cumulative errors with little overhead, we propose a
GPS-VIO hybrid approach": GNSS fixes anchor the global position; between
fixes (and through outages or multipath episodes) the corrected VIO deltas
carry the state.  The EKF executes in ~1 ms — "much more lightweight than
the VIO localization algorithm (24 ms)" — the paper's point that sensing
can replace computing.

State: [x, y].  Prediction: VIO relative displacement (with process noise
proportional to distance — VIO drift grows with distance traveled).
Update: GNSS position fix, chi-square gated to reject multipath jumps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..sensors.gps import GnssFix


@dataclass(frozen=True)
class FusedEstimate:
    """One fused position estimate."""

    time_s: float
    x_m: float
    y_m: float
    used_gnss: bool

    @property
    def position(self) -> Tuple[float, float]:
        return (self.x_m, self.y_m)


class GpsVioFusion:
    """The Sec. VI-B Extended Kalman Filter.

    Parameters
    ----------
    vio_noise_per_meter:
        VIO drift per meter traveled (process noise scale) — the
        "cumulative error" being corrected.
    gnss_noise_m:
        GNSS fix standard deviation.
    gate_chi2:
        Mahalanobis-distance^2 gate; fixes beyond it (multipath jumps) are
        rejected and the filter coasts on VIO.
    """

    def __init__(
        self,
        initial_position: Tuple[float, float] = (0.0, 0.0),
        initial_sigma_m: float = 1.0,
        vio_noise_per_meter: float = 0.03,
        gnss_noise_m: float = 0.5,
        gate_chi2: float = 9.21,  # chi-square 99% for 2 dof
    ) -> None:
        self.state = np.array(initial_position, dtype=np.float64)
        self.covariance = np.eye(2) * initial_sigma_m ** 2
        self.vio_noise_per_meter = vio_noise_per_meter
        self.gnss_noise_m = gnss_noise_m
        self.gate_chi2 = gate_chi2
        self.history: List[FusedEstimate] = []
        self.rejected_fixes = 0

    @property
    def position(self) -> Tuple[float, float]:
        return (float(self.state[0]), float(self.state[1]))

    @property
    def position_sigma_m(self) -> float:
        """1-sigma position uncertainty (average of the two axes)."""
        return float(np.sqrt(np.trace(self.covariance) / 2.0))

    def predict_with_vio(self, dx_m: float, dy_m: float, time_s: float) -> None:
        """Propagate with a VIO relative displacement."""
        self.state += np.array([dx_m, dy_m])
        distance = math.hypot(dx_m, dy_m)
        q = (self.vio_noise_per_meter * max(distance, 1e-6)) ** 2
        self.covariance += np.eye(2) * q
        self.history.append(
            FusedEstimate(time_s, *self.position, used_gnss=False)
        )

    def update_with_gnss(self, fix: GnssFix, time_s: float) -> bool:
        """Fuse one GNSS fix; returns True when accepted.

        Invalid fixes (outage) are ignored; fixes failing the chi-square
        gate (multipath) are rejected — "if later the GPS reception is
        unstable ... the corrected VIO results could be used".
        """
        if not fix.valid:
            return False
        z = np.array(fix.position)
        innovation = z - self.state
        s = self.covariance + np.eye(2) * self.gnss_noise_m ** 2
        mahalanobis2 = float(innovation @ np.linalg.solve(s, innovation))
        if mahalanobis2 > self.gate_chi2:
            self.rejected_fixes += 1
            return False
        gain = self.covariance @ np.linalg.inv(s)
        self.state = self.state + gain @ innovation
        self.covariance = (np.eye(2) - gain) @ self.covariance
        self.history.append(
            FusedEstimate(time_s, *self.position, used_gnss=True)
        )
        return True


def run_fusion(
    vio_deltas: Sequence[Tuple[float, float, float]],
    gnss_fixes: Sequence[Tuple[float, GnssFix]],
    initial_position: Tuple[float, float] = (0.0, 0.0),
    **kwargs,
) -> GpsVioFusion:
    """Replay interleaved VIO deltas and GNSS fixes in time order.

    ``vio_deltas`` are (time_s, dx, dy); ``gnss_fixes`` are (time_s, fix).
    """
    fusion = GpsVioFusion(initial_position=initial_position, **kwargs)
    events: List[Tuple[float, str, object]] = []
    for t, dx, dy in vio_deltas:
        events.append((t, "vio", (dx, dy)))
    for t, fix in gnss_fixes:
        events.append((t, "gnss", fix))
    # Stable sort keeps VIO-before-GNSS order at equal timestamps.
    events.sort(key=lambda e: (e[0], 0 if e[1] == "vio" else 1))
    for t, kind, payload in events:
        if kind == "vio":
            dx, dy = payload
            fusion.predict_with_vio(dx, dy, t)
        else:
            fusion.update_with_gnss(payload, t)
    return fusion
