"""repro — reproduction of "Building the Computing System for Autonomous
Micromobility Vehicles: Design Constraints and Architectural Optimizations"
(MICRO 2020).

The library is organized as the paper is:

* :mod:`repro.core` — the Sec. III analytical models (latency Eq. 1,
  energy Eq. 2, cost Table II, constraint checking) and every calibration
  constant the paper reports.
* :mod:`repro.vehicle` — vehicle substrate: dynamics, ECU/actuator,
  battery, named configurations.
* :mod:`repro.scene` — world simulation: lane maps, obstacles/agents,
  trajectories, KITTI-like synthetic datasets.
* :mod:`repro.sensors` — cameras, IMU, GPS, radar, sonar, with per-sensor
  clocks (drift/offset) and the full rig.
* :mod:`repro.sync` — Sec. VI-A: software-only vs hardware sensor
  synchronization.
* :mod:`repro.lidar` — Sec. III-D: point clouds, kd-tree with access
  tracing, ICP, the four Fig. 4b kernels, reuse analysis.
* :mod:`repro.hw` — Sec. V: cache simulator, platform models, GPU
  contention, task mapping, FPGA resources, the RPR engine.
* :mod:`repro.perception` — Table III algorithms: ELAS-like stereo, the
  detector, KCF, VIO, GPS-VIO fusion, radar tracking + spatial sync.
* :mod:`repro.planning` — lane-level MPC, the Apollo-EM-style baseline,
  collision checking, prediction, the reactive path.
* :mod:`repro.runtime` — the SoV: dataflow graph, pipelined scheduler,
  CAN bus, closed-loop drive simulation.
* :mod:`repro.robustness` — Sec. III-C safety machinery: declarative
  fault injection, heartbeat/watchdog health monitoring with an MTTR
  restart model, and the graceful-degradation supervisor.
* :mod:`repro.cloud` — Fig. 1 offline services: maps, training, uplink.
* :mod:`repro.fleetops` — the fleet-scale campaign engine: a supervised
  multi-process worker pool (heartbeats, retries, straggler speculation,
  serial degradation) with a crash-consistent checkpoint journal,
  executing chaos/invariant/drill cells bit-identically to the serial
  paths.
* :mod:`repro.observability` — per-frame span tracing (Perfetto export),
  a metrics registry with streaming percentiles, Eq. 1 deadline-miss
  attribution, and the ``bench-gate`` perf-regression gate over the
  closed-loop, chaos-campaign, and scheduler workloads.
* :mod:`repro.testing` — the property-based safety-invariant harness
  sweeping the corridor scenario suite (:mod:`repro.scene.corridors`).

Quickstart::

    from repro.core import LatencyModel
    from repro.runtime import obstacle_ahead_scenario

    print(LatencyModel().latency_requirement_s(5.0))   # ~0.164 s
    result = obstacle_ahead_scenario(5.9, 0.164).drive(4.0)
    print(result.stopped, result.collided)
"""

__version__ = "1.0.0"

from . import (
    cloud,
    core,
    fleetops,
    hw,
    lidar,
    observability,
    perception,
    planning,
    robustness,
    runtime,
    scene,
    sensors,
    sync,
    testing,
    vehicle,
)

__all__ = [
    "cloud",
    "core",
    "fleetops",
    "hw",
    "lidar",
    "observability",
    "perception",
    "planning",
    "robustness",
    "runtime",
    "scene",
    "sensors",
    "sync",
    "testing",
    "vehicle",
    "__version__",
]
