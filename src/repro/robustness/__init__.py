"""Fault injection, health monitoring, and graceful degradation.

The safety subsystem of the repro: declarative fault scenarios
(:mod:`repro.robustness.faults`), heartbeat/watchdog health monitoring
with an MTTR restart model (:mod:`repro.robustness.health`), and the
NOMINAL → DEGRADED → REACTIVE_ONLY → SAFE_STOP supervisor
(:mod:`repro.robustness.degradation`) that the closed-loop SoV consults
every control tick.

:mod:`repro.robustness.chaos` builds on all three: a seeded chaos
campaign engine that samples fault scenarios from a configurable
fault-space distribution and sweeps them through the closed-loop SoV,
aggregating a collision-free envelope report.  It is deliberately *not*
re-exported here — chaos imports the runtime (which imports this
package), so pull it in directly via ``import repro.robustness.chaos``.
"""

from .degradation import (
    DegradationMode,
    DegradationPolicy,
    DegradationStateMachine,
    HealthInputs,
    ModeTransition,
)
from .faults import (
    CameraFrameDropFault,
    CanBusFault,
    EMPTY_SCENARIO,
    FaultHarness,
    FaultScenario,
    FaultWindow,
    GpsDenialFault,
    LatencySpikeFault,
    PerceptionCrashFault,
    PerceptionStallFault,
    SensorDropoutFault,
    SensorFreezeFault,
    SensorStuckValueFault,
    SteeringBiasFault,
)
from .health import HealthMonitor, HealthReport, ModuleHealth

__all__ = [
    "CameraFrameDropFault",
    "CanBusFault",
    "DegradationMode",
    "DegradationPolicy",
    "DegradationStateMachine",
    "EMPTY_SCENARIO",
    "FaultHarness",
    "FaultScenario",
    "FaultWindow",
    "GpsDenialFault",
    "HealthInputs",
    "HealthMonitor",
    "HealthReport",
    "LatencySpikeFault",
    "ModeTransition",
    "ModuleHealth",
    "PerceptionCrashFault",
    "PerceptionStallFault",
    "SensorDropoutFault",
    "SensorFreezeFault",
    "SensorStuckValueFault",
    "SteeringBiasFault",
]
