"""Chaos campaign engine: seeded randomized fault sweeps (Sec. III-C, IV).

PR 1 made the paper's safety argument testable for five hand-written
scenarios; this module generalizes it to *campaigns*: a seeded generator
samples :class:`~repro.robustness.faults.FaultScenario`s from a
configurable fault-space distribution — which modules, fault kinds, onset
windows, durations, severities, and co-occurring fault pairs — and sweeps
hundreds of closed-loop drives through
:class:`~repro.runtime.sov.SystemsOnAVehicle`, with and without the
safety net.  The aggregate is a **collision-free envelope report**:
collision rate, SAFE_STOP rate, mode-residency histograms, MTTR
percentiles, restart counts per module, shed-task counts, and the
fault-intensity frontier at which the reactive path alone can no longer
guarantee safety.

Everything is deterministic per ``(campaign seed, drive index)``: the
scenario sampler, the drive's simulation seed, and the fault harness all
derive from :class:`numpy.random.SeedSequence` spawns of that pair, so
any sampled drive — in particular any *failing* drive — can be replayed
bit-identically with :func:`replay_drive` and pinned as a standalone
regression test.

The fault-space distribution encodes the paper's design point.  At
nominal intensity (1.0) it only emits faults the Sec. III-C architecture
is designed to survive: any single failure, and co-occurring pairs that
leave at least one forward-sensing path truthful.  Raising ``intensity``
scales severities and durations and — past ``double_blind_intensity`` —
admits *double-blind* pairs (vision dark while the radar lies or is
silent), which no amount of graceful degradation can see through.  The
frontier sweep makes that boundary measurable instead of asserted.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..observability.attribution import (
    AttributionTable,
    merge_attribution_tables,
)
from .faults import (
    CameraFrameDropFault,
    CanBusFault,
    Fault,
    FaultScenario,
    FaultWindow,
    GpsDenialFault,
    LatencySpikeFault,
    PerceptionCrashFault,
    PerceptionStallFault,
    SensorDropoutFault,
    SensorFreezeFault,
    SensorStuckValueFault,
    SteeringBiasFault,
)

#: Fault kinds that leave the vision pipeline dark.
VISION_BLINDING = frozenset({"camera_dropout"})
#: Fault kinds that silence or corrupt the reactive Radar/Sonar path.
REACTIVE_KILLING = frozenset({"radar_dropout", "radar_freeze", "radar_stuck"})

#: Default sampling weights over the fault vocabulary.
DEFAULT_KIND_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("camera_dropout", 1.0),
    ("radar_dropout", 0.8),
    ("radar_freeze", 0.5),
    ("radar_stuck", 0.5),
    ("gps_denial", 1.0),
    ("can_burst", 1.0),
    ("perception_crash", 1.0),
    ("perception_stall", 0.8),
    ("latency_spike", 0.8),
    ("camera_frame_drop", 0.4),
    ("steering_bias", 0.6),
)


#: Seed-stream domain tag for composed triage fault schedules (distinct
#: from the per-drive chaos scenario stream, 0xC4A05).
_STREAM_SCHEDULE = 0x5C8ED


def _uniform(rng: np.random.Generator, lo: float, hi: float) -> float:
    return float(lo + (hi - lo) * rng.random())


@dataclass(frozen=True)
class FaultSpace:
    """A distribution over fault scenarios, with an intensity dial.

    ``intensity`` scales severities (loss/drop/spike probabilities, stall
    magnitudes, extra delays) and fault durations; 1.0 is the
    paper-nominal operating point the architecture must survive with
    zero collisions.  ``double_blind_intensity`` is the admission
    threshold for co-occurring pairs that blind *both* forward-sensing
    paths at once — the fault family that defines the safety frontier.
    """

    intensity: float = 1.0
    kind_weights: Tuple[Tuple[str, float], ...] = DEFAULT_KIND_WEIGHTS
    #: Probability (scaled by intensity, capped at 1) that a scenario
    #: carries a second, co-occurring fault.
    co_occurrence_prob: float = 0.3
    #: Faults start uniformly inside this window.
    onset_window_s: Tuple[float, float] = (0.0, 2.5)
    #: Base duration range; multiplied by intensity.
    duration_range_s: Tuple[float, float] = (1.0, 3.0)
    #: Below this intensity, vision-blinding faults never co-occur with
    #: reactive-killing ones (the unsurvivable double-blind family).
    double_blind_intensity: float = 1.75
    can_loss_range: Tuple[float, float] = (0.25, 0.7)
    can_delay_max_s: float = 0.008
    stall_range_s: Tuple[float, float] = (0.25, 0.9)
    spike_range_s: Tuple[float, float] = (0.1, 0.5)
    spike_prob_range: Tuple[float, float] = (0.1, 0.4)
    frame_drop_range: Tuple[float, float] = (0.2, 0.8)
    stuck_value_range_m: Tuple[float, float] = (8.0, 30.0)
    #: Lateral-fault magnitude (radians of steering bias at the
    #: actuator); sign is drawn uniformly.
    steering_bias_range_rad: Tuple[float, float] = (0.03, 0.15)

    def __post_init__(self) -> None:
        if self.intensity <= 0:
            raise ValueError("intensity must be positive")
        if not self.kind_weights:
            raise ValueError("fault space needs at least one kind")
        known = {kind for kind, _ in DEFAULT_KIND_WEIGHTS}
        unknown = {kind for kind, _ in self.kind_weights} - known
        if unknown:
            raise ValueError(f"unknown fault kinds {sorted(unknown)}")
        if not 0.0 <= self.co_occurrence_prob <= 1.0:
            raise ValueError("co-occurrence probability must be in [0, 1]")

    def with_intensity(self, intensity: float) -> "FaultSpace":
        return replace(self, intensity=intensity)

    # -- sampling --------------------------------------------------------------

    def _admissible_partners(self, first: str) -> List[str]:
        """Kinds that may co-occur with *first* at the current intensity."""
        partners = []
        for kind, _ in self.kind_weights:
            if kind == first:
                continue
            blinding_pair = (
                first in VISION_BLINDING and kind in REACTIVE_KILLING
            ) or (first in REACTIVE_KILLING and kind in VISION_BLINDING)
            if blinding_pair and self.intensity < self.double_blind_intensity:
                continue
            partners.append(kind)
        return partners

    def _pick_kind(
        self, rng: np.random.Generator, candidates: Sequence[str]
    ) -> str:
        weights = dict(self.kind_weights)
        probs = np.array([weights[k] for k in candidates], dtype=float)
        probs /= probs.sum()
        return str(rng.choice(list(candidates), p=probs))

    def _window(self, rng: np.random.Generator) -> FaultWindow:
        onset = _uniform(rng, *self.onset_window_s)
        duration = _uniform(rng, *self.duration_range_s) * self.intensity
        return FaultWindow(onset, onset + duration)

    def _build(self, rng: np.random.Generator, kind: str) -> Fault:
        window = self._window(rng)
        i = self.intensity
        if kind == "camera_dropout":
            return SensorDropoutFault("camera", window)
        if kind == "radar_dropout":
            return SensorDropoutFault("radar", window)
        if kind == "radar_freeze":
            return SensorFreezeFault("radar", window)
        if kind == "radar_stuck":
            return SensorStuckValueFault(
                "radar", _uniform(rng, *self.stuck_value_range_m), window
            )
        if kind == "gps_denial":
            return GpsDenialFault(window)
        if kind == "can_burst":
            return CanBusFault(
                window=window,
                loss_prob=min(1.0, _uniform(rng, *self.can_loss_range) * i),
                extra_delay_s=_uniform(rng, 0.0, self.can_delay_max_s) * i,
            )
        if kind == "perception_crash":
            return PerceptionCrashFault(window)
        if kind == "perception_stall":
            return PerceptionStallFault(
                extra_latency_s=_uniform(rng, *self.stall_range_s) * i,
                window=window,
            )
        if kind == "latency_spike":
            return LatencySpikeFault(
                spike_s=_uniform(rng, *self.spike_range_s) * i,
                spike_prob=min(
                    1.0, _uniform(rng, *self.spike_prob_range) * i
                ),
                window=window,
            )
        if kind == "camera_frame_drop":
            return CameraFrameDropFault(
                drop_prob=min(
                    1.0, _uniform(rng, *self.frame_drop_range) * i
                ),
                window=window,
            )
        if kind == "steering_bias":
            magnitude = _uniform(rng, *self.steering_bias_range_rad) * i
            sign = 1.0 if rng.random() < 0.5 else -1.0
            return SteeringBiasFault(bias_rad=sign * magnitude, window=window)
        raise ValueError(f"unknown fault kind {kind!r}")  # pragma: no cover

    def sample_scenario(
        self, rng: np.random.Generator, name: str
    ) -> FaultScenario:
        """Draw one scenario: 1 fault, or a co-occurring admissible pair."""
        kinds = [kind for kind, _ in self.kind_weights]
        first = self._pick_kind(rng, kinds)
        chosen = [first]
        pair_roll = rng.random()  # always drawn: stable stream shape
        if pair_roll < min(1.0, self.co_occurrence_prob * self.intensity):
            partners = self._admissible_partners(first)
            if partners:
                chosen.append(self._pick_kind(rng, partners))
        faults = tuple(self._build(rng, kind) for kind in chosen)
        return FaultScenario(
            name=name,
            faults=faults,
            description=f"chaos-sampled: {' + '.join(chosen)}",
        )

    def sample_schedule(
        self,
        campaign_seed: int,
        index: int,
        n_draws: int,
        stream: int = _STREAM_SCHEDULE,
    ) -> Tuple["Fault", ...]:
        """Compose *n_draws* independent scenario draws into one flat
        fault schedule — the haystack the failure-triage shrinker
        subsets.

        Each draw gets its own :class:`numpy.random.SeedSequence` keyed
        by ``(campaign_seed, index, draw, stream)``, so the schedule is
        bit-identical per coordinate and any *subset* of it is exactly
        re-runnable (delta debugging removes draws; it never re-rolls
        them).  Unlike :meth:`sample_scenario`, composition across draws
        is not double-blind gated — composed schedules are the
        *injection* vocabulary, deliberately harsher than the admission-
        gated campaign distribution.
        """
        if n_draws < 0:
            raise ValueError("n_draws must be non-negative")
        faults: List[Fault] = []
        for draw in range(n_draws):
            rng = np.random.default_rng(
                np.random.SeedSequence((campaign_seed, index, draw, stream))
            )
            scenario = self.sample_scenario(
                rng, name=f"schedule-{campaign_seed}-{index}-{draw}"
            )
            faults.extend(scenario.faults)
        return tuple(faults)


# -- campaign configuration ----------------------------------------------------


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos campaign: N seeded drives down the drill corridor.

    ``corridor`` retargets the campaign at any registered scene instead
    of the default single-obstacle drill lane — a bare corridor name
    (``"slalom"``), a qualified one (``"corridor:slalom"``), or a
    generated scene family (``"procgen:crossroads"``); see
    :mod:`repro.scene.providers`.  Each drive regenerates the scene
    from its own drive seed (so geometry jitters per drive, like a real
    campaign route) and the chaos-sampled faults are layered on top of
    any fault schedule the scene carries built in.
    """

    n_drives: int = 200
    seed: int = 0
    space: FaultSpace = field(default_factory=FaultSpace)
    duration_s: float = 10.0
    obstacle_distance_m: float = 25.0
    initial_speed_mps: float = 5.6
    safety_net: bool = True
    #: Registered scene to drive (None: single-obstacle drill).  Bare
    #: names resolve through the default ``corridor`` provider.
    corridor: Optional[str] = None

    def __post_init__(self) -> None:
        if self.n_drives <= 0:
            raise ValueError("campaign needs at least one drive")
        if self.corridor is not None:
            from ..scene.providers import is_known_scene, scene_names

            if not is_known_scene(self.corridor):
                raise ValueError(
                    f"unknown scene {self.corridor!r}; "
                    f"known: {scene_names()}"
                )


def drive_seed(campaign_seed: int, index: int) -> int:
    """The simulation seed of drive *index* (stable across processes)."""
    return int(
        np.random.SeedSequence((campaign_seed, index)).generate_state(1)[0]
    )


def scenario_for_drive(
    space: FaultSpace, campaign_seed: int, index: int
) -> FaultScenario:
    """Deterministically sample drive *index*'s fault scenario."""
    rng = np.random.default_rng(
        np.random.SeedSequence((campaign_seed, index, 0xC4A05))
    )
    return space.sample_scenario(rng, name=f"chaos-{campaign_seed}-{index}")


@dataclass(frozen=True)
class ChaosDriveRecord:
    """The envelope-relevant outcome of one sampled drive."""

    index: int
    seed: int
    scenario_name: str
    fault_kinds: Tuple[str, ...]
    collided: bool
    stopped: bool
    entered_safe_stop: bool
    final_mode: str
    min_clearance_m: float
    reactive_interventions: int
    restarts_by_module: Dict[str, int]
    mttr_s: Optional[float]
    mode_residency: Dict[str, float]
    sheds_by_mode: Dict[str, int]
    #: Eq. 1 deadline misses this drive, and the full per-stage/per-fault
    #: attribution (see :mod:`repro.observability.attribution`).
    deadline_misses: int = 0
    attribution: Optional[AttributionTable] = None


def build_chaos_drive(config: ChaosConfig, index: int):
    """Construct drive *index* without driving it.

    Returns ``(scenario, sov, duration_s)`` — the configured vehicle
    ready for either ``sov.drive(duration_s)`` (the serial path) or the
    batched stepper (:mod:`repro.runtime.batched`), which advances many
    such vehicles in lockstep.  Splitting construction from execution is
    what lets a fleet campaign swap the engine without touching the
    per-drive seeding contract: the sov built here is bit-identical
    either way.
    """
    from ..runtime.sov import SovConfig, SystemsOnAVehicle
    from ..scene.lanes import straight_corridor
    from ..scene.world import Obstacle, World
    from ..vehicle.dynamics import VehicleState

    scenario = scenario_for_drive(config.space, config.seed, index)
    duration_s = config.duration_s
    if config.corridor is not None:
        # Campaign drives down a registered multi-obstacle scene: the
        # world regenerates per drive seed, chaos faults stack on any
        # schedule the scene variant carries built in.
        from ..scene.corridors import make_corridor_sov
        from ..scene.providers import resolve_scene

        corridor = resolve_scene(
            config.corridor, drive_seed(config.seed, index)
        )
        sov = make_corridor_sov(
            corridor,
            safety_net=config.safety_net,
            extra_faults=scenario.faults,
        )
        scenario = sov.config.scenario or scenario
        duration_s = corridor.duration_s
    else:
        world = World(
            obstacles=[
                Obstacle(config.obstacle_distance_m, 0.0, radius_m=0.4)
            ]
        )
        sov = SystemsOnAVehicle(
            world=world,
            lane_map=straight_corridor(length_m=300.0, n_lanes=1),
            initial_state=VehicleState(speed_mps=config.initial_speed_mps),
            config=SovConfig(
                reactive_enabled=config.safety_net,
                degradation_enabled=config.safety_net,
                scenario=scenario,
                seed=drive_seed(config.seed, index),
            ),
        )
    # Attribution is RNG-free bookkeeping: enabling it for every chaos
    # drive leaves the drive itself bit-identical to an unobserved run.
    sov.enable_attribution()
    return scenario, sov, duration_s


def chaos_drive_record(
    config: ChaosConfig, index: int, scenario, result
) -> ChaosDriveRecord:
    """Summarize a completed drive into its campaign record."""
    health = result.health
    record = ChaosDriveRecord(
        index=index,
        seed=drive_seed(config.seed, index),
        scenario_name=scenario.name,
        fault_kinds=tuple(scenario.kinds),
        collided=result.collided,
        stopped=result.stopped,
        entered_safe_stop=result.entered_safe_stop,
        final_mode=result.final_mode,
        min_clearance_m=result.min_obstacle_clearance_m,
        reactive_interventions=result.ops.reactive_overrides,
        restarts_by_module=(
            {} if health is None else dict(health.restarts_by_module)
        ),
        mttr_s=None if health is None else health.mean_time_to_repair_s,
        mode_residency=dict(result.mode_residency),
        sheds_by_mode=dict(result.ops.sheds_by_mode),
        deadline_misses=(
            0
            if result.attribution is None
            else result.attribution.total_misses
        ),
        attribution=result.attribution,
    )
    return record


def run_chaos_drive(config: ChaosConfig, index: int):
    """Run drive *index* of the campaign; returns (record, DriveResult)."""
    scenario, sov, duration_s = build_chaos_drive(config, index)
    result = sov.drive(duration_s)
    return chaos_drive_record(config, index, scenario, result), result


def replay_drive(campaign_seed: int, index: int, safety_net: bool = True,
                 space: Optional[FaultSpace] = None,
                 **config_overrides):
    """Reproduce one sampled drive bit-identically.

    The per-seed replay hook: given the campaign seed and a drive index
    (say, one the envelope report lists as failing), this re-derives the
    same scenario and simulation seed and reruns the drive — the basis
    for pinning any chaos finding as a standalone regression test.
    Returns ``(scenario, DriveResult)``.
    """
    config = ChaosConfig(
        n_drives=index + 1,
        seed=campaign_seed,
        space=space or FaultSpace(),
        safety_net=safety_net,
        **config_overrides,
    )
    scenario = scenario_for_drive(config.space, campaign_seed, index)
    _record, result = run_chaos_drive(config, index)
    return scenario, result


# -- the envelope --------------------------------------------------------------


@dataclass(frozen=True)
class EnvelopeReport:
    """Aggregate safety envelope of one campaign arm."""

    n_drives: int
    seed: int
    intensity: float
    safety_net: bool
    collisions: int
    collision_rate: float
    safe_stop_rate: float
    stop_rate: float
    mean_reactive_interventions: float
    mode_residency_mean: Dict[str, float]
    mttr_p50_s: float
    mttr_p90_s: float
    mttr_p99_s: float
    restarts_by_module: Dict[str, int]
    sheds_by_mode: Dict[str, int]
    failing_indices: Tuple[int, ...]
    #: Campaign-wide Eq. 1 deadline misses and their merged attribution
    #: table (None when no drive carried an attribution table).
    deadline_misses: int = 0
    attribution: Optional[AttributionTable] = None

    def as_dict(self) -> Dict[str, float]:
        """A flat, order-stable numeric view (determinism comparisons)."""
        out: Dict[str, float] = {
            "n_drives": float(self.n_drives),
            "collisions": float(self.collisions),
            "collision_rate": self.collision_rate,
            "safe_stop_rate": self.safe_stop_rate,
            "stop_rate": self.stop_rate,
            "mean_reactive_interventions": self.mean_reactive_interventions,
            "mttr_p50_s": self.mttr_p50_s,
            "mttr_p90_s": self.mttr_p90_s,
            "mttr_p99_s": self.mttr_p99_s,
        }
        for name in sorted(self.mode_residency_mean):
            out[f"residency_{name}"] = self.mode_residency_mean[name]
        for name in sorted(self.restarts_by_module):
            out[f"restarts_{name}"] = float(self.restarts_by_module[name])
        for name in sorted(self.sheds_by_mode):
            out[f"sheds_{name}"] = float(self.sheds_by_mode[name])
        out["deadline_misses"] = float(self.deadline_misses)
        if self.attribution is not None:
            for key, value in self.attribution.as_dict().items():
                out[f"attr_{key}"] = value
        return out


def aggregate_envelope(
    config: ChaosConfig, records: Sequence[ChaosDriveRecord]
) -> EnvelopeReport:
    """Fold per-drive records into the collision-free envelope report."""
    n = len(records)
    if n == 0:
        raise ValueError("cannot aggregate an empty campaign")
    collisions = sum(r.collided for r in records)
    residency_sum: Dict[str, float] = {}
    restarts: Dict[str, int] = {}
    sheds: Dict[str, int] = {}
    mttrs: List[float] = []
    for record in records:
        for mode, frac in record.mode_residency.items():
            residency_sum[mode] = residency_sum.get(mode, 0.0) + frac
        for module, count in record.restarts_by_module.items():
            restarts[module] = restarts.get(module, 0) + count
        for mode, count in record.sheds_by_mode.items():
            sheds[mode] = sheds.get(mode, 0) + count
        if record.mttr_s is not None:
            mttrs.append(record.mttr_s)
    percentiles = (
        np.percentile(mttrs, [50.0, 90.0, 99.0]) if mttrs else (0.0, 0.0, 0.0)
    )
    tables = [r.attribution for r in records if r.attribution is not None]
    attribution = merge_attribution_tables(tables) if tables else None
    if attribution is not None:
        attribution.check_consistency()
    return EnvelopeReport(
        n_drives=n,
        seed=config.seed,
        intensity=config.space.intensity,
        safety_net=config.safety_net,
        collisions=collisions,
        collision_rate=collisions / n,
        safe_stop_rate=sum(r.entered_safe_stop for r in records) / n,
        stop_rate=sum(r.stopped for r in records) / n,
        mean_reactive_interventions=(
            sum(r.reactive_interventions for r in records) / n
        ),
        mode_residency_mean={
            mode: total / n for mode, total in residency_sum.items()
        },
        mttr_p50_s=float(percentiles[0]),
        mttr_p90_s=float(percentiles[1]),
        mttr_p99_s=float(percentiles[2]),
        restarts_by_module=restarts,
        sheds_by_mode=sheds,
        failing_indices=tuple(r.index for r in records if r.collided),
        deadline_misses=sum(r.deadline_misses for r in records),
        attribution=attribution,
    )


@dataclass
class ChaosCampaignResult:
    """All per-drive records of one campaign arm plus the envelope."""

    config: ChaosConfig
    records: List[ChaosDriveRecord]
    envelope: EnvelopeReport


def iter_cells(config: Optional[ChaosConfig] = None, start: int = 0):
    """Lazily yield the campaign's cells in drive order.

    Each yielded :class:`~repro.fleetops.cells.CellSpec` is small,
    hashable, and picklable, and executes through the same
    :func:`~repro.fleetops.cells.run_cell` entry point the serial
    campaign uses — hand them to a
    :class:`~repro.fleetops.supervisor.FleetSupervisor` and the fleet
    result is bit-identical to the serial one.  Nothing is materialized:
    enumerating a million-drive campaign costs a generator, not a list.
    """
    from ..fleetops.cells import chaos_cells

    return chaos_cells(config or ChaosConfig(), start=start)


def run_chaos_campaign(config: Optional[ChaosConfig] = None) -> ChaosCampaignResult:
    """Sweep ``config.n_drives`` sampled scenarios through the SoV.

    Serial reference path: executes :func:`iter_cells` one cell at a
    time through :func:`~repro.fleetops.cells.run_cell` — the identical
    code path the fleet engine's workers run, which is what makes fleet
    campaigns bit-identical to this function by construction.
    """
    from ..fleetops.cells import run_cell

    config = config or ChaosConfig()
    records = [run_cell(spec).record for spec in iter_cells(config)]
    return ChaosCampaignResult(
        config=config,
        records=records,
        envelope=aggregate_envelope(config, records),
    )


# -- the fault-intensity frontier ----------------------------------------------


@dataclass(frozen=True)
class FrontierPoint:
    """One intensity step of the frontier sweep (safety net engaged)."""

    intensity: float
    n_drives: int
    collisions: int
    collision_rate: float
    safe_stop_rate: float


def intensity_frontier(
    intensities: Sequence[float] = (1.0, 1.5, 2.0, 2.5, 3.0),
    n_drives: int = 48,
    seed: int = 0,
    space: Optional[FaultSpace] = None,
) -> Tuple[List[FrontierPoint], Optional[float]]:
    """Sweep fault intensity and find where the safety net breaks.

    Every point drives *n_drives* sampled scenarios with the full safety
    net engaged; the frontier is the lowest swept intensity with a
    nonzero collision rate — the boundary past which the reactive path
    alone can no longer guarantee safety (None if the net holds across
    the whole sweep).
    """
    base = space or FaultSpace()
    points: List[FrontierPoint] = []
    frontier: Optional[float] = None
    for intensity in intensities:
        point = _frontier_point(base, intensity, n_drives, seed)
        points.append(point)
        if frontier is None and point.collisions > 0:
            frontier = intensity
    return points, frontier


def _frontier_point(
    base: FaultSpace, intensity: float, n_drives: int, seed: int
) -> FrontierPoint:
    """Evaluate one intensity with the safety net engaged.

    Deterministic per ``(seed, intensity)``: the fixed-grid and adaptive
    sweeps produce identical points wherever they evaluate the same
    intensity.
    """
    config = ChaosConfig(
        n_drives=n_drives,
        seed=seed,
        space=base.with_intensity(intensity),
        safety_net=True,
    )
    envelope = run_chaos_campaign(config).envelope
    return FrontierPoint(
        intensity=intensity,
        n_drives=n_drives,
        collisions=envelope.collisions,
        collision_rate=envelope.collision_rate,
        safe_stop_rate=envelope.safe_stop_rate,
    )


def adaptive_intensity_frontier(
    lo: float = 1.0,
    hi: float = 3.0,
    resolution: float = 0.125,
    n_drives: int = 48,
    seed: int = 0,
    space: Optional[FaultSpace] = None,
) -> Tuple[List[FrontierPoint], Optional[float]]:
    """Locate the safety frontier by bisection instead of a fixed grid.

    Evaluates the bracket ends first: a collision already at *lo* makes
    *lo* the frontier; a clean sweep at *hi* means the net holds over the
    whole bracket (frontier None).  Otherwise bisection maintains the
    invariant "*lo* collision-free, *hi* collides" and narrows the
    bracket to *resolution*; the returned frontier is the colliding end
    of the final bracket — an upper bound within *resolution* of the true
    boundary.

    Each probe costs *n_drives* drives, so the sweep needs
    ``2 + ceil(log2((hi - lo) / resolution))`` probes where the fixed
    grid pays one per grid point regardless of where the boundary lies.
    The search path is a pure function of the probe outcomes, which are
    deterministic per ``(seed, intensity)`` — same seed, same frontier,
    every run.  Returned points are sorted by intensity.
    """
    if not lo < hi:
        raise ValueError("need lo < hi")
    if resolution <= 0:
        raise ValueError("resolution must be positive")
    base = space or FaultSpace()
    points: Dict[float, FrontierPoint] = {}

    def probe(intensity: float) -> FrontierPoint:
        point = _frontier_point(base, intensity, n_drives, seed)
        points[intensity] = point
        return point

    if probe(lo).collisions > 0:
        return [points[lo]], lo
    if probe(hi).collisions == 0:
        return [points[i] for i in sorted(points)], None
    while hi - lo > resolution:
        mid = 0.5 * (lo + hi)
        if probe(mid).collisions > 0:
            hi = mid
        else:
            lo = mid
    return [points[i] for i in sorted(points)], hi
