"""Composable, seeded fault models for the SoV loop (paper Sec. III-C).

The paper's safety argument assumes the proactive pipeline *will* fail —
sensors drop out, vision misses objects, software stalls — and the vehicle
stays safe because the reactive Radar/Sonar→ECU path and fallback policies
catch those failures.  This module provides the failure vocabulary:

* **sensor faults** — dropout (no data), freeze (stale data), stuck value;
* **camera frame drops** — per-frame Bernoulli loss in the FPGA sensor hub;
* **CAN faults** — frame loss and delay bursts on the command path;
* **perception faults** — task crashes and latency spikes/stalls layered
  onto the sampled dataflow distributions;
* **GPS denial** — loss of the localization anchor;
* **actuator faults** — a silent steering bias (the lateral stressor:
  nothing crashes, nothing heartbeats wrong, the vehicle just veers).

Faults are declarative, frozen dataclasses scheduled by a
:class:`FaultWindow`; a :class:`FaultScenario` bundles them into a named,
reproducible experiment.  The runtime side — the :class:`FaultHarness` —
owns a dedicated RNG stream derived from ``(seed, scenario)`` so that
injection never perturbs the nominal simulation's random sequence: a SoV
with an empty scenario behaves bit-identically to one with no scenario.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

#: Sensors the dropout/freeze/stuck faults understand.
SENSOR_NAMES = ("radar", "camera", "gps")


@dataclass(frozen=True)
class FaultWindow:
    """A half-open activity interval ``[start_s, end_s)``."""

    start_s: float
    end_s: float = math.inf

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ValueError("fault window cannot start before t=0")
        if self.end_s <= self.start_s:
            raise ValueError("fault window must end after it starts")

    def active(self, now_s: float) -> bool:
        return self.start_s <= now_s < self.end_s

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass(frozen=True)
class SensorDropoutFault:
    """A sensor produces no data while active.

    A radar dropout blinds the reactive path; a camera dropout blinds the
    vision pipeline (the paper's scenario 2, made total); a GPS dropout is
    equivalent to :class:`GpsDenialFault`.
    """

    sensor: str
    window: FaultWindow

    kind = "sensor_dropout"

    def __post_init__(self) -> None:
        if self.sensor not in SENSOR_NAMES:
            raise ValueError(f"unknown sensor {self.sensor!r}")


@dataclass(frozen=True)
class SensorFreezeFault:
    """A sensor repeats its last pre-fault reading (a frozen driver)."""

    sensor: str
    window: FaultWindow

    kind = "sensor_freeze"

    def __post_init__(self) -> None:
        if self.sensor not in SENSOR_NAMES:
            raise ValueError(f"unknown sensor {self.sensor!r}")


@dataclass(frozen=True)
class SensorStuckValueFault:
    """A sensor reports one constant value (a shorted rangefinder)."""

    sensor: str
    value: float
    window: FaultWindow

    kind = "sensor_stuck"

    def __post_init__(self) -> None:
        if self.sensor not in SENSOR_NAMES:
            raise ValueError(f"unknown sensor {self.sensor!r}")


@dataclass(frozen=True)
class CameraFrameDropFault:
    """Bernoulli frame loss at the FPGA sensor hub's camera interface."""

    drop_prob: float
    window: FaultWindow

    kind = "camera_frame_drop"

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_prob <= 1.0:
            raise ValueError("drop probability must be in [0, 1]")


@dataclass(frozen=True)
class CanBusFault:
    """Frame loss and/or extra delay on the CAN command path.

    ``loss_prob`` is the per-frame corruption probability (the frame still
    occupies the wire — it is dropped after losing arbitration to an error
    frame); ``extra_delay_s`` models a congested/babbling bus.
    """

    window: FaultWindow
    loss_prob: float = 0.0
    extra_delay_s: float = 0.0

    kind = "can_bus"

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_prob <= 1.0:
            raise ValueError("loss probability must be in [0, 1]")
        if self.extra_delay_s < 0:
            raise ValueError("extra delay must be non-negative")


@dataclass(frozen=True)
class PerceptionCrashFault:
    """The perception task dies while active: no plans are produced.

    The health monitor's watchdog notices the missing heartbeats and keeps
    restarting the module (MTTR-sampled); restarts only stick once the
    fault window has passed.
    """

    window: FaultWindow

    kind = "perception_crash"


@dataclass(frozen=True)
class PerceptionStallFault:
    """The perception task stalls: every iteration gains latency.

    ``extra_latency_s`` is added on top of the sampled dataflow latency;
    a stall longer than the watchdog timeout also costs the module its
    heartbeat (the stall *is* the missed deadline).
    """

    extra_latency_s: float
    window: FaultWindow

    kind = "perception_stall"

    def __post_init__(self) -> None:
        if self.extra_latency_s < 0:
            raise ValueError("extra latency must be non-negative")


@dataclass(frozen=True)
class LatencySpikeFault:
    """Random latency spikes: each iteration gains ``spike_s`` with
    probability ``spike_prob`` (a noisy co-tenant, paper Sec. V-B3)."""

    spike_s: float
    spike_prob: float
    window: FaultWindow

    kind = "latency_spike"

    def __post_init__(self) -> None:
        if self.spike_s < 0:
            raise ValueError("spike must be non-negative")
        if not 0.0 <= self.spike_prob <= 1.0:
            raise ValueError("spike probability must be in [0, 1]")


@dataclass(frozen=True)
class GpsDenialFault:
    """GPS fix lost (urban canyon, jamming): localization degrades."""

    window: FaultWindow

    kind = "gps_denial"


@dataclass(frozen=True)
class SteeringBiasFault:
    """The steering actuator applies a constant lateral bias (a bent
    linkage, a miscalibrated steering offset).

    Unlike the longitudinal faults, this one stresses the *lateral*
    control problem: every command reaching the actuator is executed
    with ``bias_rad`` added to its steer angle, silently — no heartbeat
    is lost and no sensor reads wrong, so the supervisor cannot see it
    and the vehicle simply tracks a curved path.  The reactive path
    still guards the forward cone.
    """

    bias_rad: float
    window: FaultWindow

    kind = "steering_bias"

    def __post_init__(self) -> None:
        if self.bias_rad == 0.0:
            raise ValueError("a zero bias is not a fault")


Fault = Union[
    SensorDropoutFault,
    SensorFreezeFault,
    SensorStuckValueFault,
    CameraFrameDropFault,
    CanBusFault,
    PerceptionCrashFault,
    PerceptionStallFault,
    LatencySpikeFault,
    GpsDenialFault,
    SteeringBiasFault,
]


@dataclass(frozen=True)
class FaultScenario:
    """A named, declarative schedule of faults for one drive."""

    name: str
    faults: Tuple[Fault, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario needs a name")
        object.__setattr__(self, "faults", tuple(self.faults))

    def of_kind(self, kind: str) -> List[Fault]:
        return [f for f in self.faults if f.kind == kind]

    def active(self, kind: str, now_s: float) -> List[Fault]:
        return [f for f in self.of_kind(kind) if f.window.active(now_s)]

    @property
    def kinds(self) -> List[str]:
        return sorted({f.kind for f in self.faults})

    def subset(self, indices: "Sequence[int]") -> "FaultScenario":
        """The schedule restricted to the fault positions in *indices*.

        The delta-debugging edit hook: triage shrinks a schedule by
        dropping draws, never by re-rolling them, so any subset replays
        the surviving faults bit-identically.  Order is preserved and
        indices are de-duplicated; out-of-range indices raise.
        """
        keep = sorted(set(indices))
        for i in keep:
            if not 0 <= i < len(self.faults):
                raise IndexError(
                    f"fault index {i} out of range for "
                    f"{len(self.faults)}-fault schedule"
                )
        return FaultScenario(
            name=f"{self.name}-subset",
            faults=tuple(self.faults[i] for i in keep),
            description=self.description,
        )


#: The scenario a harness gets when none is supplied: injects nothing.
EMPTY_SCENARIO = FaultScenario(name="nominal", faults=())


class FaultHarness:
    """Runtime fault injection for one drive.

    The harness is the single point the SoV loop consults: it answers
    "what does the radar read right now?", "is vision blind?", "how much
    extra latency does perception pay this tick?", and "which CAN fault is
    active?".  All stochastic choices come from a private RNG stream
    seeded by ``(seed, scenario.name)`` so runs are reproducible and the
    nominal simulation's RNG is untouched.
    """

    def __init__(self, scenario: Optional[FaultScenario] = None, seed: int = 0):
        self.scenario = scenario or EMPTY_SCENARIO
        # Stable per-(seed, scenario) stream, independent of the sim RNG.
        name_digest = sum(ord(c) * (i + 1) for i, c in enumerate(self.scenario.name))
        self._rng = np.random.default_rng([seed, name_digest % (2**31)])
        self._last_radar_m: Optional[float] = None
        self.injections: Dict[str, int] = {}

    # -- bookkeeping -----------------------------------------------------------

    def _count(self, kind: str) -> None:
        self.injections[kind] = self.injections.get(kind, 0) + 1

    @property
    def total_injections(self) -> int:
        return sum(self.injections.values())

    # -- sensor faults ---------------------------------------------------------

    def sensor_faulted(self, sensor: str, now_s: float) -> bool:
        """Whether *any* fault currently afflicts the named sensor."""
        for kind in ("sensor_dropout", "sensor_freeze", "sensor_stuck"):
            if any(
                f.sensor == sensor for f in self.scenario.active(kind, now_s)
            ):
                return True
        if sensor == "gps" and self.scenario.active("gps_denial", now_s):
            return True
        return False

    def radar_reading(
        self, true_distance_m: Optional[float], now_s: float
    ) -> Optional[float]:
        """Filter the radar/sonar range through the active radar faults."""
        for fault in self.scenario.active("sensor_stuck", now_s):
            if fault.sensor == "radar":
                self._count("sensor_stuck")
                return fault.value
        for fault in self.scenario.active("sensor_freeze", now_s):
            if fault.sensor == "radar":
                self._count("sensor_freeze")
                return self._last_radar_m
        if any(
            f.sensor == "radar"
            for f in self.scenario.active("sensor_dropout", now_s)
        ):
            self._count("sensor_dropout")
            return None
        self._last_radar_m = true_distance_m
        return true_distance_m

    def vision_blinded(self, now_s: float) -> bool:
        """Whether the camera/vision input is entirely dark.

        Deliberately *silent*: the perception task keeps running (and
        heartbeating) on an empty frame — the paper's scenario 2, where
        only the reactive path can save the vehicle.
        """
        blinded = any(
            f.sensor == "camera"
            for f in self.scenario.active("sensor_dropout", now_s)
        )
        if blinded:
            self._count("camera_dropout")
        return blinded

    def gps_denied(self, now_s: float) -> bool:
        denied = bool(self.scenario.active("gps_denial", now_s)) or any(
            f.sensor == "gps"
            for f in self.scenario.active("sensor_dropout", now_s)
        )
        if denied:
            self._count("gps_denial")
        return denied

    # -- perception faults -----------------------------------------------------

    def perception_crashed(self, now_s: float) -> bool:
        crashed = bool(self.scenario.active("perception_crash", now_s))
        if crashed:
            self._count("perception_crash")
        return crashed

    def perception_overhead_s(self, now_s: float) -> float:
        """Extra latency injected into this perception iteration."""
        extra = 0.0
        for fault in self.scenario.active("perception_stall", now_s):
            extra += fault.extra_latency_s
            self._count("perception_stall")
        for fault in self.scenario.active("latency_spike", now_s):
            if self._rng.random() < fault.spike_prob:
                extra += fault.spike_s
                self._count("latency_spike")
        return extra

    # -- actuation faults ------------------------------------------------------

    def steering_bias_rad(self, now_s: float) -> float:
        """Lateral steering bias applied at the actuator right now.

        Sums every active :class:`SteeringBiasFault` (two bent linkages
        compound).  Consumes no randomness.
        """
        bias = 0.0
        for fault in self.scenario.active("steering_bias", now_s):
            bias += fault.bias_rad
            self._count("steering_bias")
        return bias

    # -- attribution support ---------------------------------------------------

    def active_kinds(self, now_s: float) -> Tuple[str, ...]:
        """Fault kinds whose windows cover *now_s* (sorted, no counting).

        Used by deadline-miss attribution to tag a miss with the faults
        in force; unlike the injection accessors this never increments
        the injection tallies.
        """
        return tuple(
            sorted(
                {
                    f.kind
                    for f in self.scenario.faults
                    if f.window.active(now_s)
                }
            )
        )

    # -- transport faults ------------------------------------------------------

    def can_fault(self, now_s: float) -> Optional[CanBusFault]:
        """The currently active CAN fault (the most lossy one wins)."""
        active = self.scenario.active("can_bus", now_s)
        if not active:
            return None
        return max(active, key=lambda f: (f.loss_prob, f.extra_delay_s))

    def can_rng(self) -> np.random.Generator:
        return self._rng

    # -- sensor-hub faults -----------------------------------------------------

    def frame_dropped(self, trigger_s: float) -> bool:
        """Whether the camera frame triggered at *trigger_s* is lost."""
        for fault in self.scenario.active("camera_frame_drop", trigger_s):
            if self._rng.random() < fault.drop_prob:
                self._count("camera_frame_drop")
                return True
        return False
