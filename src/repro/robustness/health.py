"""Per-module heartbeat/watchdog health monitoring (AutonomROS-style).

Each software module on the vehicle (sensing, perception, planning, the
radar front-end) reports a heartbeat whenever it completes an iteration.
A watchdog declares a module DOWN when its heartbeat is older than the
module's timeout, then models a supervised restart: the module comes back
after a sampled mean-time-to-repair (MTTR), exponentially distributed so
repeated restarts of a persistently crashing module produce a realistic
spread.  Repeated restarts back off exponentially — a module that keeps
crashing is restarted ever more cautiously — and the backoff resets once
the module has stayed healthy for a sustained window, so one bad episode
does not penalize restarts forever.  Optional seeded jitter
(``restart_jitter_frac``) spreads backed-off restart times so modules
felled by one fault don't thunder back in lockstep.  The monitor accumulates per-module
downtime, restart counts, backoff state, and availability — the metrics
the fault-campaign and chaos studies report and assert on.

The restart RNG is a private stream: a drive where nothing fails consumes
no randomness here, so enabling health monitoring never perturbs the
nominal simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

#: Module lifecycle states.
UP = "up"
DOWN = "down"


@dataclass
class ModuleHealth:
    """Watchdog state for one module."""

    name: str
    timeout_s: float
    last_beat_s: float = 0.0
    state: str = UP
    down_since_s: Optional[float] = None
    restart_at_s: Optional[float] = None
    restarts: int = 0
    downtime_s: float = 0.0
    #: Restarts since the last sustained-healthy window: each one raises
    #: the next repair's backoff multiplier; reset by sustained health.
    consecutive_restarts: int = 0
    #: When the module last came (or started) UP; None while DOWN.
    up_since_s: Optional[float] = 0.0

    def availability(self, elapsed_s: float) -> float:
        if elapsed_s <= 0:
            return 1.0
        return max(0.0, 1.0 - self.downtime_s / elapsed_s)

    @property
    def mean_time_to_repair_s(self) -> Optional[float]:
        if self.restarts == 0:
            return None
        return self.downtime_s / self.restarts

    def backoff_multiplier(self, factor: float, cap: float) -> float:
        """The MTTR multiplier the *next* repair of this module pays."""
        return min(factor ** self.consecutive_restarts, cap)


@dataclass(frozen=True)
class HealthReport:
    """Aggregated health metrics for one drive."""

    elapsed_s: float
    modules: Dict[str, ModuleHealth]

    @property
    def total_restarts(self) -> int:
        return sum(m.restarts for m in self.modules.values())

    @property
    def total_downtime_s(self) -> float:
        return sum(m.downtime_s for m in self.modules.values())

    def availability(self, name: str) -> float:
        return self.modules[name].availability(self.elapsed_s)

    @property
    def restarts_by_module(self) -> Dict[str, int]:
        """Restart counts per module — the chaos campaign asserts these."""
        return {name: m.restarts for name, m in self.modules.items()}

    @property
    def backoff_by_module(self) -> Dict[str, int]:
        """Residual exponential-backoff level (consecutive restarts not
        yet forgiven by a sustained-healthy window) per module."""
        return {name: m.consecutive_restarts for name, m in self.modules.items()}

    @property
    def worst_availability(self) -> float:
        if not self.modules:
            return 1.0
        return min(m.availability(self.elapsed_s) for m in self.modules.values())

    @property
    def mean_time_to_repair_s(self) -> Optional[float]:
        """Fleet MTTR: total downtime over total restarts."""
        restarts = self.total_restarts
        if restarts == 0:
            return None
        return self.total_downtime_s / restarts

    def summary(self) -> Dict[str, float]:
        out: Dict[str, float] = {
            "restarts": float(self.total_restarts),
            "downtime_s": self.total_downtime_s,
            "worst_availability": self.worst_availability,
        }
        mttr = self.mean_time_to_repair_s
        if mttr is not None:
            out["mttr_s"] = mttr
        return out


class HealthMonitor:
    """Heartbeat registry + watchdog + restart model."""

    def __init__(
        self,
        default_timeout_s: float = 0.5,
        mttr_mean_s: float = 0.8,
        seed: int = 0,
        restart_backoff_factor: float = 1.5,
        restart_backoff_cap: float = 8.0,
        sustained_healthy_s: Optional[float] = None,
        restart_jitter_frac: float = 0.0,
    ) -> None:
        if default_timeout_s <= 0:
            raise ValueError("watchdog timeout must be positive")
        if mttr_mean_s <= 0:
            raise ValueError("MTTR mean must be positive")
        if restart_backoff_factor < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if restart_backoff_cap < 1.0:
            raise ValueError("backoff cap must be >= 1")
        if not 0.0 <= restart_jitter_frac < 1.0:
            raise ValueError("restart jitter fraction must be in [0, 1)")
        self.default_timeout_s = default_timeout_s
        self.mttr_mean_s = mttr_mean_s
        self.restart_backoff_factor = restart_backoff_factor
        self.restart_backoff_cap = restart_backoff_cap
        #: Seeded +/- fractional jitter on each backed-off repair time,
        #: decorrelating synchronized restarts.  The default of 0.0
        #: consumes no randomness, so existing seeded campaigns (and
        #: their committed baselines) are bit-identical with the flag off.
        self.restart_jitter_frac = restart_jitter_frac
        #: How long a module must stay UP before its backoff is forgiven
        #: (default: five watchdog timeouts).
        self.sustained_healthy_s = (
            5.0 * default_timeout_s
            if sustained_healthy_s is None
            else sustained_healthy_s
        )
        self._rng = np.random.default_rng([seed, 0x4EA17])
        self._modules: Dict[str, ModuleHealth] = {}
        self._now_s = 0.0

    # -- registry --------------------------------------------------------------

    def register(self, name: str, timeout_s: Optional[float] = None) -> None:
        if name in self._modules:
            raise ValueError(f"module {name!r} already registered")
        self._modules[name] = ModuleHealth(
            name=name, timeout_s=timeout_s or self.default_timeout_s
        )

    @property
    def module_names(self) -> List[str]:
        return list(self._modules)

    def module(self, name: str) -> ModuleHealth:
        return self._modules[name]

    # -- heartbeats & watchdog -------------------------------------------------

    def beat(self, name: str, now_s: float) -> None:
        """A module reports a completed iteration."""
        module = self._modules[name]
        module.last_beat_s = max(module.last_beat_s, now_s)

    def check(self, now_s: float) -> None:
        """Advance the watchdog to *now_s*.

        DOWN modules whose restart deadline passed come back UP (their
        heartbeat is refreshed so they get a full timeout of grace); UP
        modules with stale heartbeats go DOWN and get a restart scheduled
        ``Exp(mttr_mean_s)`` — times the module's exponential backoff
        multiplier — in the future.  A module that has stayed UP for
        ``sustained_healthy_s`` has its backoff forgiven first.
        """
        self._now_s = max(self._now_s, now_s)
        for module in self._modules.values():
            if module.state == DOWN:
                if now_s >= module.restart_at_s:
                    module.downtime_s += module.restart_at_s - module.down_since_s
                    module.state = UP
                    module.restarts += 1
                    module.consecutive_restarts += 1
                    module.down_since_s = None
                    module.restart_at_s = None
                    module.last_beat_s = now_s
                    module.up_since_s = now_s
            if (
                module.state == UP
                and module.consecutive_restarts > 0
                and module.up_since_s is not None
                and now_s - module.up_since_s >= self.sustained_healthy_s
            ):
                # Sustained health forgives the backoff; restarts stop
                # being penalized once the module proves itself again.
                module.consecutive_restarts = 0
            if module.state == UP and now_s - module.last_beat_s > module.timeout_s:
                module.state = DOWN
                module.down_since_s = now_s
                module.up_since_s = None
                # Exponential repair time, truncated at 3x the mean so a
                # single tail draw cannot dominate availability metrics;
                # repeat offenders pay the capped exponential backoff.
                repair_s = min(
                    float(self._rng.exponential(self.mttr_mean_s)),
                    3.0 * self.mttr_mean_s,
                ) * module.backoff_multiplier(
                    self.restart_backoff_factor, self.restart_backoff_cap
                )
                if self.restart_jitter_frac > 0.0:
                    # Seeded uniform jitter in [1-j, 1+j); guarded so a
                    # jitter of 0 draws nothing and legacy streams hold.
                    repair_s *= float(
                        self._rng.uniform(
                            1.0 - self.restart_jitter_frac,
                            1.0 + self.restart_jitter_frac,
                        )
                    )
                module.restart_at_s = now_s + repair_s

    def is_up(self, name: str) -> bool:
        return self._modules[name].state == UP

    def all_up(self) -> bool:
        return all(m.state == UP for m in self._modules.values())

    def down_modules(self) -> List[str]:
        return [m.name for m in self._modules.values() if m.state == DOWN]

    # -- reporting -------------------------------------------------------------

    def report(self, elapsed_s: Optional[float] = None) -> HealthReport:
        """Snapshot the health metrics (closing out any open downtime)."""
        elapsed = self._now_s if elapsed_s is None else elapsed_s
        modules: Dict[str, ModuleHealth] = {}
        for name, module in self._modules.items():
            snap = ModuleHealth(
                name=module.name,
                timeout_s=module.timeout_s,
                last_beat_s=module.last_beat_s,
                state=module.state,
                down_since_s=module.down_since_s,
                restart_at_s=module.restart_at_s,
                restarts=module.restarts,
                downtime_s=module.downtime_s,
                consecutive_restarts=module.consecutive_restarts,
                up_since_s=module.up_since_s,
            )
            if snap.state == DOWN and snap.down_since_s is not None:
                # Count the still-open outage up to the snapshot instant.
                snap.downtime_s += max(0.0, elapsed - snap.down_since_s)
            modules[name] = snap
        return HealthReport(elapsed_s=elapsed, modules=modules)
