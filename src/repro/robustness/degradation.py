"""Graceful-degradation state machine for the SoV (paper Sec. III-C, IV).

The vehicle's supervisor runs a small, auditable state machine over the
health picture each control tick:

* ``NOMINAL`` — everything healthy; the proactive pipeline drives.
* ``DEGRADED`` — a non-critical fault (GPS denial, lossy CAN, dead radar
  with vision still up): keep driving under a speed cap so the remaining
  sensing/stopping envelope still covers the worst case.
* ``REACTIVE_ONLY`` — the proactive pipeline is down but the reactive
  Radar/Sonar→ECU path still works: limp toward a crawl speed; the
  reactive path guards the way.
* ``SAFE_STOP`` — no trustworthy forward sensing at all (perception down
  *and* radar faulted): brake to a stop and hold.

Recovery is hysteretic: the machine only relaxes toward ``NOMINAL`` after
the inputs have been healthy for ``policy.recovery_hold_s``, so a flapping
module cannot oscillate the vehicle between modes every tick.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..vehicle.dynamics import ControlCommand


class DegradationMode(enum.Enum):
    """Operating modes, ordered from healthy to stopped."""

    NOMINAL = 0
    DEGRADED = 1
    REACTIVE_ONLY = 2
    SAFE_STOP = 3

    @property
    def severity(self) -> int:
        return self.value


@dataclass(frozen=True)
class DegradationPolicy:
    """Tunable caps and timing for the degradation modes."""

    degraded_speed_cap_mps: float = 2.5
    reactive_only_speed_cap_mps: float = 1.0
    recovery_hold_s: float = 1.0
    limp_decel_mps2: float = 1.5
    stop_decel_mps2: float = 4.0

    def speed_cap_mps(self, mode: DegradationMode) -> Optional[float]:
        if mode is DegradationMode.DEGRADED:
            return self.degraded_speed_cap_mps
        if mode is DegradationMode.REACTIVE_ONLY:
            return self.reactive_only_speed_cap_mps
        if mode is DegradationMode.SAFE_STOP:
            return 0.0
        return None


@dataclass(frozen=True)
class HealthInputs:
    """The supervisor's view of the system, one control tick."""

    perception_up: bool = True
    planning_up: bool = True
    radar_up: bool = True
    gps_ok: bool = True
    can_ok: bool = True

    @property
    def healthy(self) -> bool:
        return (
            self.perception_up
            and self.planning_up
            and self.radar_up
            and self.gps_ok
            and self.can_ok
        )


@dataclass(frozen=True)
class ModeTransition:
    """One recorded mode change."""

    time_s: float
    previous: DegradationMode
    mode: DegradationMode
    reason: str


class DegradationStateMachine:
    """NOMINAL → DEGRADED → REACTIVE_ONLY → SAFE_STOP supervisor."""

    def __init__(self, policy: Optional[DegradationPolicy] = None) -> None:
        self.policy = policy or DegradationPolicy()
        self.mode = DegradationMode.NOMINAL
        self.transitions: List[ModeTransition] = []
        self.mode_ticks: Dict[str, int] = {m.name: 0 for m in DegradationMode}
        #: Wall-clock residency per mode; updated lazily each tick and
        #: flushed by :meth:`finalize` when a drive ends mid-segment.
        self.mode_time_s: Dict[str, float] = {
            m.name: 0.0 for m in DegradationMode
        }
        self._healthy_since_s: Optional[float] = None
        self._residency_mark_s: Optional[float] = None

    # -- classification --------------------------------------------------------

    @staticmethod
    def target_mode(inputs: HealthInputs) -> Tuple[DegradationMode, str]:
        """The mode the inputs call for, ignoring hysteresis."""
        proactive_up = inputs.perception_up and inputs.planning_up
        if not proactive_up and not inputs.radar_up:
            return DegradationMode.SAFE_STOP, "no forward sensing left"
        if not proactive_up:
            return DegradationMode.REACTIVE_ONLY, "proactive pipeline down"
        if not inputs.radar_up:
            return DegradationMode.DEGRADED, "reactive safety net unavailable"
        if not inputs.gps_ok:
            return DegradationMode.DEGRADED, "GPS denied"
        if not inputs.can_ok:
            return DegradationMode.DEGRADED, "CAN bus lossy"
        return DegradationMode.NOMINAL, "healthy"

    # -- the tick --------------------------------------------------------------

    def update(self, now_s: float, inputs: HealthInputs) -> DegradationMode:
        """Advance one control tick; returns the (possibly new) mode.

        Escalation is immediate; relaxation requires the inputs to have
        been healthy-enough for ``recovery_hold_s``.
        """
        self._accrue_residency(now_s)
        target, reason = self.target_mode(inputs)
        if target.severity >= self.mode.severity:
            if target is not self.mode:
                self._transition(now_s, target, reason)
            self._healthy_since_s = None if target.severity else now_s
        else:
            # Wanting to relax: arm/check the hysteresis timer.
            if self._healthy_since_s is None:
                self._healthy_since_s = now_s
            elif now_s - self._healthy_since_s >= self.policy.recovery_hold_s:
                self._transition(now_s, target, f"recovered: {reason}")
                self._healthy_since_s = now_s if target.severity == 0 else None
        self.mode_ticks[self.mode.name] += 1
        return self.mode

    # -- residency accounting ----------------------------------------------------

    def _accrue_residency(self, now_s: float) -> None:
        """Attribute the time since the last mark to the mode held then."""
        if self._residency_mark_s is not None and now_s > self._residency_mark_s:
            self.mode_time_s[self.mode.name] += now_s - self._residency_mark_s
        self._residency_mark_s = (
            now_s
            if self._residency_mark_s is None
            else max(self._residency_mark_s, now_s)
        )

    def finalize(self, now_s: float) -> None:
        """Flush the open residency segment when a drive ends.

        Without this flush a drive that ends mid-transition loses its
        final segment and the residency fractions no longer sum to 1.
        Idempotent: a second call at the same instant adds nothing.
        """
        self._accrue_residency(now_s)

    def residency_fractions(self) -> Dict[str, float]:
        """Per-mode share of accounted wall-clock time (sums to 1.0).

        A machine that never ticked reports full residency in its current
        mode.

        The total is reduced by an explicit left-fold in
        :class:`DegradationMode` declaration order — not ``sum()`` over
        ``dict.values()`` — so the float result (and hence the drive
        fingerprint it feeds) cannot drift if the accumulator dict is ever
        rebuilt in a different key order.
        """
        total = 0.0
        for m in DegradationMode:
            total += self.mode_time_s[m.name]
        if total <= 0.0:
            return {
                m.name: 1.0 if m is self.mode else 0.0
                for m in DegradationMode
            }
        return {
            m.name: self.mode_time_s[m.name] / total for m in DegradationMode
        }

    def _transition(
        self, now_s: float, mode: DegradationMode, reason: str
    ) -> None:
        self.transitions.append(
            ModeTransition(
                time_s=now_s, previous=self.mode, mode=mode, reason=reason
            )
        )
        self.mode = mode

    # -- command shaping -------------------------------------------------------

    @property
    def speed_cap_mps(self) -> Optional[float]:
        return self.policy.speed_cap_mps(self.mode)

    @property
    def proactive_allowed(self) -> bool:
        """Whether planner output may drive the vehicle in this mode."""
        return self.mode in (DegradationMode.NOMINAL, DegradationMode.DEGRADED)

    def shape_command(
        self, command: ControlCommand, speed_mps: float
    ) -> ControlCommand:
        """Clamp a proactive command to the current mode's speed cap."""
        cap = self.speed_cap_mps
        if cap is None:
            return command
        if speed_mps > cap:
            accel = min(command.accel_mps2, -self.policy.limp_decel_mps2)
        else:
            # Never accelerate past the cap within the next second.
            accel = min(command.accel_mps2, max(0.0, cap - speed_mps))
        return replace(command, accel_mps2=accel)

    def fallback_command(
        self, now_s: float, speed_mps: float
    ) -> ControlCommand:
        """The supervisor's own command for REACTIVE_ONLY / SAFE_STOP."""
        if self.mode is DegradationMode.SAFE_STOP:
            return ControlCommand(
                steer_rad=0.0,
                accel_mps2=-self.policy.stop_decel_mps2,
                timestamp_s=now_s,
                source="degradation",
            )
        cap = self.policy.reactive_only_speed_cap_mps
        accel = -self.policy.limp_decel_mps2 if speed_mps > cap else 0.0
        return ControlCommand(
            steer_rad=0.0,
            accel_mps2=accel,
            timestamp_s=now_s,
            source="degradation",
        )
