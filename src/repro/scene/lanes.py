"""OSM-like lane-graph map (paper Sec. II-B).

The paper: "we use a pre-constructed map that marks lanes ... we use
OpenStreetMap and frequently annotate it with semantic information of the
environment."  The vehicle maneuvers at lane granularity (1-3 m wide lanes,
Sec. III-D), so the map substrate is a directed graph of lane segments with
centerline geometry and semantic annotations.  Built on ``networkx``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx


@dataclass(frozen=True)
class LaneSegment:
    """One directed lane segment with a polyline centerline."""

    segment_id: str
    centerline: Tuple[Tuple[float, float], ...]
    width_m: float = 2.0
    speed_limit_mps: float = 5.6
    annotations: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if len(self.centerline) < 2:
            raise ValueError("centerline needs at least two points")
        if not 0.5 <= self.width_m <= 5.0:
            raise ValueError("lane width out of plausible range")

    @property
    def length_m(self) -> float:
        return sum(
            math.hypot(b[0] - a[0], b[1] - a[1])
            for a, b in zip(self.centerline, self.centerline[1:])
        )

    @property
    def start(self) -> Tuple[float, float]:
        return self.centerline[0]

    @property
    def end(self) -> Tuple[float, float]:
        return self.centerline[-1]

    def point_at(self, s_m: float) -> Tuple[float, float]:
        """Point at arc-length *s_m* along the centerline (clamped)."""
        if s_m <= 0:
            return self.start
        remaining = s_m
        for a, b in zip(self.centerline, self.centerline[1:]):
            seg_len = math.hypot(b[0] - a[0], b[1] - a[1])
            if remaining <= seg_len and seg_len > 0:
                t = remaining / seg_len
                return (a[0] + t * (b[0] - a[0]), a[1] + t * (b[1] - a[1]))
            remaining -= seg_len
        return self.end

    def heading_at(self, s_m: float) -> float:
        """Tangent heading at arc-length *s_m*."""
        remaining = max(0.0, s_m)
        for a, b in zip(self.centerline, self.centerline[1:]):
            seg_len = math.hypot(b[0] - a[0], b[1] - a[1])
            if remaining <= seg_len:
                return math.atan2(b[1] - a[1], b[0] - a[0])
            remaining -= seg_len
        a, b = self.centerline[-2], self.centerline[-1]
        return math.atan2(b[1] - a[1], b[0] - a[0])

    def lateral_offset(self, x_m: float, y_m: float) -> float:
        """Unsigned distance from (x, y) to the centerline."""
        best = float("inf")
        for a, b in zip(self.centerline, self.centerline[1:]):
            best = min(best, _point_segment_distance((x_m, y_m), a, b))
        return best

    def contains(self, x_m: float, y_m: float) -> bool:
        """Whether (x, y) lies within the lane's half-width corridor."""
        return self.lateral_offset(x_m, y_m) <= self.width_m / 2.0


def _point_segment_distance(
    p: Tuple[float, float], a: Tuple[float, float], b: Tuple[float, float]
) -> float:
    ax, ay = a
    bx, by = b
    px, py = p
    dx, dy = bx - ax, by - ay
    norm2 = dx * dx + dy * dy
    if norm2 == 0:
        return math.hypot(px - ax, py - ay)
    t = max(0.0, min(1.0, ((px - ax) * dx + (py - ay) * dy) / norm2))
    cx, cy = ax + t * dx, ay + t * dy
    return math.hypot(px - cx, py - cy)


class LaneMap:
    """A directed graph of lane segments with routing and annotation.

    Nodes are segment ids; an edge u->v means v is drivable after u
    (successor lane or an adjacent lane reachable by a lane change).
    """

    def __init__(self) -> None:
        self._graph = nx.DiGraph()
        self._segments: Dict[str, LaneSegment] = {}

    def add_segment(self, segment: LaneSegment) -> None:
        if segment.segment_id in self._segments:
            raise ValueError(f"duplicate segment id {segment.segment_id!r}")
        self._segments[segment.segment_id] = segment
        self._graph.add_node(segment.segment_id)

    def connect(self, from_id: str, to_id: str, lane_change: bool = False) -> None:
        for sid in (from_id, to_id):
            if sid not in self._segments:
                raise KeyError(f"unknown segment {sid!r}")
        self._graph.add_edge(from_id, to_id, lane_change=lane_change)

    def segment(self, segment_id: str) -> LaneSegment:
        return self._segments[segment_id]

    @property
    def segment_ids(self) -> List[str]:
        return list(self._segments)

    def annotate(self, segment_id: str, annotation: str) -> None:
        """Add a semantic annotation (the paper annotates OSM similarly)."""
        seg = self._segments[segment_id]
        self._segments[segment_id] = LaneSegment(
            segment_id=seg.segment_id,
            centerline=seg.centerline,
            width_m=seg.width_m,
            speed_limit_mps=seg.speed_limit_mps,
            annotations=seg.annotations + (annotation,),
        )

    def route(self, from_id: str, to_id: str) -> List[str]:
        """Shortest route by driven distance; raises if unreachable."""
        try:
            return nx.shortest_path(
                self._graph,
                from_id,
                to_id,
                weight=lambda u, v, d: self._segments[v].length_m,
            )
        except nx.NetworkXNoPath:
            raise ValueError(f"no route from {from_id!r} to {to_id!r}") from None

    def locate(self, x_m: float, y_m: float) -> Optional[str]:
        """The segment whose corridor contains (x, y), nearest centerline
        first; None when off-map."""
        candidates = [
            (seg.lateral_offset(x_m, y_m), sid)
            for sid, seg in self._segments.items()
            if seg.contains(x_m, y_m)
        ]
        if not candidates:
            return None
        return min(candidates)[1]

    def route_length_m(self, route: Sequence[str]) -> float:
        return sum(self._segments[sid].length_m for sid in route)


def straight_corridor(
    length_m: float = 100.0, n_lanes: int = 2, lane_width_m: float = 2.5
) -> LaneMap:
    """A straight multi-lane corridor; lane i is offset i*width in y.

    Adjacent lanes are connected with lane-change edges in both directions,
    which is exactly the maneuver vocabulary of the paper's vehicles
    ("staying in a lane or switching lanes").
    """
    lane_map = LaneMap()
    for i in range(n_lanes):
        y = i * lane_width_m
        lane_map.add_segment(
            LaneSegment(
                segment_id=f"lane{i}",
                centerline=((0.0, y), (length_m, y)),
                width_m=lane_width_m,
            )
        )
    for i in range(n_lanes - 1):
        lane_map.connect(f"lane{i}", f"lane{i + 1}", lane_change=True)
        lane_map.connect(f"lane{i + 1}", f"lane{i}", lane_change=True)
    return lane_map


def campus_loop(radius_m: float = 40.0, n_points: int = 32) -> LaneMap:
    """A closed loop (the tourist-site circuit), split into 4 arcs."""
    lane_map = LaneMap()
    quarter = n_points // 4
    arc_ids = []
    for q in range(4):
        pts = []
        for k in range(quarter + 1):
            theta = 2.0 * math.pi * (q * quarter + k) / n_points
            pts.append((radius_m * math.cos(theta), radius_m * math.sin(theta)))
        sid = f"arc{q}"
        lane_map.add_segment(LaneSegment(segment_id=sid, centerline=tuple(pts)))
        arc_ids.append(sid)
    for q in range(4):
        lane_map.connect(arc_ids[q], arc_ids[(q + 1) % 4])
    return lane_map
