"""Ground-truth trajectory generators.

The VIO / sensor-sync experiments (Fig. 11b) need smooth vehicle
trajectories with known position, velocity, acceleration, and angular rate
at any time — that is what the IMU and camera models sample, and what
localization error is measured against.  Trajectories are continuous-time
callables, so sensors can be triggered at arbitrary (and deliberately
mis-synchronized) instants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class TrajectorySample:
    """Full kinematic state at one instant."""

    time_s: float
    position: Tuple[float, float]
    velocity: Tuple[float, float]
    acceleration: Tuple[float, float]
    heading_rad: float
    yaw_rate_rps: float


class Trajectory:
    """Base class: differentiable planar trajectory.

    Subclasses implement :meth:`position_at`; derivatives are computed by
    central differences so any smooth path works.
    """

    _EPS_S = 1e-4

    def position_at(self, t_s: float) -> Tuple[float, float]:
        raise NotImplementedError

    def velocity_at(self, t_s: float) -> Tuple[float, float]:
        (x0, y0) = self.position_at(t_s - self._EPS_S)
        (x1, y1) = self.position_at(t_s + self._EPS_S)
        return ((x1 - x0) / (2 * self._EPS_S), (y1 - y0) / (2 * self._EPS_S))

    def acceleration_at(self, t_s: float) -> Tuple[float, float]:
        (vx0, vy0) = self.velocity_at(t_s - self._EPS_S)
        (vx1, vy1) = self.velocity_at(t_s + self._EPS_S)
        return ((vx1 - vx0) / (2 * self._EPS_S), (vy1 - vy0) / (2 * self._EPS_S))

    def heading_at(self, t_s: float) -> float:
        vx, vy = self.velocity_at(t_s)
        return math.atan2(vy, vx)

    def yaw_rate_at(self, t_s: float) -> float:
        h0 = self.heading_at(t_s - self._EPS_S)
        h1 = self.heading_at(t_s + self._EPS_S)
        diff = math.fmod(h1 - h0 + math.pi, 2 * math.pi)
        if diff <= 0:
            diff += 2 * math.pi
        return (diff - math.pi) / (2 * self._EPS_S)

    def sample(self, t_s: float) -> TrajectorySample:
        return TrajectorySample(
            time_s=t_s,
            position=self.position_at(t_s),
            velocity=self.velocity_at(t_s),
            acceleration=self.acceleration_at(t_s),
            heading_rad=self.heading_at(t_s),
            yaw_rate_rps=self.yaw_rate_at(t_s),
        )

    def samples(self, times_s: Sequence[float]) -> List[TrajectorySample]:
        return [self.sample(t) for t in times_s]


class StraightTrajectory(Trajectory):
    """Constant-velocity straight line along a fixed heading."""

    def __init__(self, speed_mps: float = 5.6, heading_rad: float = 0.0) -> None:
        if speed_mps < 0:
            raise ValueError("speed must be non-negative")
        self.speed_mps = speed_mps
        self.heading_rad = heading_rad

    def position_at(self, t_s: float) -> Tuple[float, float]:
        return (
            self.speed_mps * t_s * math.cos(self.heading_rad),
            self.speed_mps * t_s * math.sin(self.heading_rad),
        )


class CircuitTrajectory(Trajectory):
    """Constant-speed circular circuit (the tourist-site loop).

    Circular motion has persistent excitation in both accelerometer and
    gyroscope — the canonical trajectory for exposing VIO timestamp errors
    (Fig. 11b plots a loop of roughly this size).
    """

    def __init__(self, radius_m: float = 40.0, speed_mps: float = 5.6) -> None:
        if radius_m <= 0 or speed_mps < 0:
            raise ValueError("radius must be positive and speed non-negative")
        self.radius_m = radius_m
        self.speed_mps = speed_mps

    @property
    def angular_rate_rps(self) -> float:
        return self.speed_mps / self.radius_m

    def position_at(self, t_s: float) -> Tuple[float, float]:
        theta = self.angular_rate_rps * t_s
        return (
            self.radius_m * math.cos(theta),
            self.radius_m * math.sin(theta),
        )


class FigureEightTrajectory(Trajectory):
    """A lemniscate — alternating turn directions stress yaw handling."""

    def __init__(self, scale_m: float = 30.0, period_s: float = 60.0) -> None:
        if scale_m <= 0 or period_s <= 0:
            raise ValueError("scale and period must be positive")
        self.scale_m = scale_m
        self.period_s = period_s

    def position_at(self, t_s: float) -> Tuple[float, float]:
        theta = 2.0 * math.pi * t_s / self.period_s
        return (
            self.scale_m * math.sin(theta),
            self.scale_m * math.sin(theta) * math.cos(theta),
        )


class WaypointTrajectory(Trajectory):
    """Constant-speed traversal of a waypoint polyline.

    Positions are piecewise-linear in time; useful for lane-following
    scenarios generated from a :class:`repro.scene.lanes.LaneMap` route.
    """

    def __init__(
        self, waypoints: Sequence[Tuple[float, float]], speed_mps: float = 5.6
    ) -> None:
        if len(waypoints) < 2:
            raise ValueError("need at least two waypoints")
        if speed_mps <= 0:
            raise ValueError("speed must be positive")
        self.waypoints = [tuple(map(float, w)) for w in waypoints]
        self.speed_mps = speed_mps
        self._cumlen = [0.0]
        for a, b in zip(self.waypoints, self.waypoints[1:]):
            self._cumlen.append(
                self._cumlen[-1] + math.hypot(b[0] - a[0], b[1] - a[1])
            )

    @property
    def total_length_m(self) -> float:
        return self._cumlen[-1]

    @property
    def duration_s(self) -> float:
        return self.total_length_m / self.speed_mps

    def position_at(self, t_s: float) -> Tuple[float, float]:
        s = max(0.0, min(self.total_length_m, self.speed_mps * t_s))
        idx = int(np.searchsorted(self._cumlen, s, side="right")) - 1
        idx = max(0, min(idx, len(self.waypoints) - 2))
        seg_len = self._cumlen[idx + 1] - self._cumlen[idx]
        t = 0.0 if seg_len == 0 else (s - self._cumlen[idx]) / seg_len
        a, b = self.waypoints[idx], self.waypoints[idx + 1]
        return (a[0] + t * (b[0] - a[0]), a[1] + t * (b[1] - a[1]))
