"""2-D world simulation substrate.

The deployment environments in the paper (tourist sites, campuses,
industrial parks) are constrained, lane-structured worlds with pedestrians
and slow vehicles.  This module models such a world: static obstacles,
moving agents with simple motion laws, and visual landmarks (the features
the VIO tracks).  Everything downstream — sensors, perception, planning,
and the closed-loop SoV — observes or acts on a :class:`World`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Obstacle:
    """A static circular obstacle (parked cart, bollard, planter)."""

    x_m: float
    y_m: float
    radius_m: float = 0.5
    obstacle_id: int = 0

    def __post_init__(self) -> None:
        if self.radius_m <= 0:
            raise ValueError("obstacle radius must be positive")

    def distance_to(self, x_m: float, y_m: float) -> float:
        """Surface distance (negative means inside the obstacle)."""
        return math.hypot(self.x_m - x_m, self.y_m - y_m) - self.radius_m


@dataclass(frozen=True)
class Agent:
    """A moving agent (pedestrian, bicycle, cart) with constant velocity.

    Constant-velocity motion is what the planning module's prediction step
    assumes (Sec. IV "Action/Traffic Prediction"), so the world uses the
    same law to make the prediction exactly right in the nominal case.
    """

    agent_id: int
    x_m: float
    y_m: float
    vx_mps: float
    vy_mps: float
    radius_m: float = 0.4
    kind: str = "pedestrian"

    def position_at(self, dt_s: float) -> Tuple[float, float]:
        return (self.x_m + self.vx_mps * dt_s, self.y_m + self.vy_mps * dt_s)

    def advanced(self, dt_s: float) -> "Agent":
        x, y = self.position_at(dt_s)
        return replace(self, x_m=x, y_m=y)

    @property
    def speed_mps(self) -> float:
        return math.hypot(self.vx_mps, self.vy_mps)


@dataclass(frozen=True)
class Landmark:
    """A 3-D visual landmark (corner of a building, sign, texture patch).

    Landmarks are what cameras observe and the VIO tracks.  ``z_m`` is
    height above the road plane.
    """

    landmark_id: int
    x_m: float
    y_m: float
    z_m: float


@dataclass
class World:
    """The complete simulated environment."""

    obstacles: List[Obstacle] = field(default_factory=list)
    agents: List[Agent] = field(default_factory=list)
    landmarks: List[Landmark] = field(default_factory=list)
    time_s: float = 0.0

    def advance(self, dt_s: float) -> None:
        """Move all agents forward by *dt_s*."""
        if dt_s < 0:
            raise ValueError("dt must be non-negative")
        self.agents = [a.advanced(dt_s) for a in self.agents]
        self.time_s += dt_s

    def nearest_obstruction(
        self, x_m: float, y_m: float, heading_rad: float, fov_rad: float = math.pi / 2
    ) -> Optional[Tuple[float, object]]:
        """Closest obstacle or agent within a forward field of view.

        Returns ``(surface_distance_m, entity)`` or ``None``.  This is the
        geometric query behind the radar/sonar models and the reactive path.
        """
        best: Optional[Tuple[float, object]] = None
        for entity in [*self.obstacles, *self.agents]:
            dx, dy = entity.x_m - x_m, entity.y_m - y_m
            distance = math.hypot(dx, dy) - entity.radius_m
            bearing = _angle_diff(math.atan2(dy, dx), heading_rad)
            if abs(bearing) > fov_rad / 2:
                continue
            if best is None or distance < best[0]:
                best = (distance, entity)
        return best

    def entities_in_range(
        self, x_m: float, y_m: float, max_range_m: float
    ) -> List[object]:
        """All obstacles and agents with centers within *max_range_m*."""
        out: List[object] = []
        for entity in [*self.obstacles, *self.agents]:
            if math.hypot(entity.x_m - x_m, entity.y_m - y_m) <= max_range_m:
                out.append(entity)
        return out


def _angle_diff(a: float, b: float) -> float:
    """Signed smallest difference a-b, wrapped to (-pi, pi]."""
    d = math.fmod(a - b + math.pi, 2.0 * math.pi)
    if d <= 0:
        d += 2.0 * math.pi
    return d - math.pi


def make_urban_block(
    seed: int = 0,
    n_obstacles: int = 6,
    n_agents: int = 4,
    n_landmarks: int = 200,
    extent_m: float = 100.0,
) -> World:
    """A reproducible synthetic deployment-site world.

    Obstacles are scattered off the x-axis corridor (the default lane);
    agents drift at pedestrian speeds; landmarks line the corridor at
    building height — the environment the sensor and perception stacks
    exercise.
    """
    rng = np.random.default_rng(seed)
    obstacles = [
        Obstacle(
            x_m=float(rng.uniform(10.0, extent_m)),
            y_m=float(rng.uniform(3.0, 10.0) * rng.choice([-1.0, 1.0])),
            radius_m=float(rng.uniform(0.3, 1.0)),
            obstacle_id=i,
        )
        for i in range(n_obstacles)
    ]
    agents = [
        Agent(
            agent_id=i,
            x_m=float(rng.uniform(5.0, extent_m)),
            y_m=float(rng.uniform(-8.0, 8.0)),
            vx_mps=float(rng.uniform(-1.5, 1.5)),
            vy_mps=float(rng.uniform(-1.5, 1.5)),
            kind=str(rng.choice(["pedestrian", "bicycle", "cart"])),
        )
        for i in range(n_agents)
    ]
    landmarks = [
        Landmark(
            landmark_id=i,
            x_m=float(rng.uniform(0.0, extent_m)),
            y_m=float(rng.uniform(4.0, 15.0) * rng.choice([-1.0, 1.0])),
            z_m=float(rng.uniform(0.5, 6.0)),
        )
        for i in range(n_landmarks)
    ]
    return World(obstacles=obstacles, agents=agents, landmarks=landmarks)
