"""KITTI-like synthetic dataset generator.

The paper notes (Sec. VI-A) that "widely-adopted benchmarks and datasets
such as KITTI manually synchronize sensors so that researchers could focus
on algorithmic developments."  We generate the equivalent synthetic data —
stereo image pairs with ground-truth disparity, feature tracks, IMU
streams, and ground-truth poses — with *controllable* synchronization, so
both the perfectly-synced and deliberately-offset cases can be produced.

Two product families:

* :func:`make_stereo_pair` — a textured synthetic stereo pair plus its
  ground-truth disparity map, consumed by the ELAS-like matcher.
* :class:`SequenceGenerator` — a full drive: poses, landmark feature
  tracks per frame, and IMU samples, consumed by VIO and the sync study.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .trajectory import Trajectory
from .world import Landmark, World, make_urban_block

# ---------------------------------------------------------------------------
# Stereo imagery with ground-truth disparity
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StereoPair:
    """A rectified stereo pair with dense ground-truth disparity."""

    left: np.ndarray
    right: np.ndarray
    disparity_gt: np.ndarray
    focal_px: float
    baseline_m: float

    def depth_gt(self) -> np.ndarray:
        """Ground-truth depth (meters); inf where disparity is zero."""
        with np.errstate(divide="ignore"):
            return np.where(
                self.disparity_gt > 0,
                self.focal_px * self.baseline_m / np.maximum(self.disparity_gt, 1e-9),
                np.inf,
            )


def _smooth_texture(rng: np.random.Generator, shape: Tuple[int, int]) -> np.ndarray:
    """Band-limited random texture: white noise box-blurred twice.

    Stereo block matching needs locally distinctive texture; pure white
    noise aliases and uniform regions are ambiguous, so smoothed noise is
    the standard synthetic middle ground.
    """
    img = rng.standard_normal(shape)
    kernel = np.ones(5) / 5.0
    for _ in range(2):
        img = np.apply_along_axis(
            lambda row: np.convolve(row, kernel, mode="same"), 1, img
        )
        img = np.apply_along_axis(
            lambda col: np.convolve(col, kernel, mode="same"), 0, img
        )
    img -= img.min()
    peak = img.max()
    if peak > 0:
        img /= peak
    return (img * 255.0).astype(np.float64)


def make_disparity_scene(
    shape: Tuple[int, int] = (96, 128),
    background_disparity_px: float = 4.0,
    objects: int = 3,
    max_object_disparity_px: float = 20.0,
    seed: int = 0,
) -> np.ndarray:
    """A ground-truth disparity map: planar background + box foregrounds."""
    rng = np.random.default_rng(seed)
    h, w = shape
    disparity = np.full(shape, background_disparity_px, dtype=np.float64)
    for _ in range(objects):
        oh = int(rng.integers(h // 8, h // 3))
        ow = int(rng.integers(w // 8, w // 3))
        top = int(rng.integers(0, h - oh))
        left = int(rng.integers(0, w - ow - int(max_object_disparity_px)))
        disparity[top : top + oh, left : left + ow] = float(
            rng.uniform(background_disparity_px + 2.0, max_object_disparity_px)
        )
    return disparity


def make_stereo_pair(
    shape: Tuple[int, int] = (96, 128),
    focal_px: float = 320.0,
    baseline_m: float = 0.12,
    seed: int = 0,
    disparity: Optional[np.ndarray] = None,
    lateral_shift_px: float = 0.0,
) -> StereoPair:
    """Synthesize a rectified stereo pair from a disparity map.

    The right image is the left image warped by the (integer) ground-truth
    disparity.  ``lateral_shift_px`` additionally shifts the *right* image,
    modeling the apparent motion of the scene between two *unsynchronized*
    exposures (the Fig. 11a experiment).
    """
    if disparity is None:
        disparity = make_disparity_scene(shape, seed=seed)
    if disparity.shape != shape:
        raise ValueError("disparity shape must match image shape")
    rng = np.random.default_rng(seed + 1)
    left = _smooth_texture(rng, shape)
    h, w = shape
    right = np.zeros_like(left)
    cols = np.arange(w)
    total_shift = np.rint(disparity + lateral_shift_px).astype(int)
    for r in range(h):
        src = cols + total_shift[r]
        valid = (src >= 0) & (src < w)
        right[r, valid] = left[r, src[valid]]
    return StereoPair(
        left=left,
        right=right,
        disparity_gt=disparity.copy(),
        focal_px=focal_px,
        baseline_m=baseline_m,
    )


# ---------------------------------------------------------------------------
# Drive sequences: poses + feature tracks + IMU
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CameraIntrinsics:
    """Pinhole intrinsics of the synthetic forward camera."""

    focal_px: float = 320.0
    cx_px: float = 160.0
    cy_px: float = 120.0
    width_px: int = 320
    height_px: int = 240

    def in_view(self, u: float, v: float) -> bool:
        return 0 <= u < self.width_px and 0 <= v < self.height_px


@dataclass(frozen=True)
class FeatureObservation:
    """One landmark seen in one frame.

    ``depth_m`` is the stereo-measured forward distance to the landmark
    (None for monocular-only observations).  The paper's rig carries stereo
    pairs precisely so perception gets per-feature depth (Sec. V-B1).
    """

    landmark_id: int
    u_px: float
    v_px: float
    depth_m: Optional[float] = None


@dataclass(frozen=True)
class Frame:
    """One camera frame: true capture time, true pose, features."""

    index: int
    trigger_time_s: float
    position: Tuple[float, float]
    heading_rad: float
    observations: Tuple[FeatureObservation, ...]


@dataclass(frozen=True)
class ImuSample:
    """One IMU sample in the body frame."""

    trigger_time_s: float
    accel_body: Tuple[float, float]
    yaw_rate_rps: float


@dataclass(frozen=True)
class DriveSequence:
    """A complete synthetic drive."""

    frames: Tuple[Frame, ...]
    imu: Tuple[ImuSample, ...]
    landmarks: Tuple[Landmark, ...]
    camera: CameraIntrinsics

    def ground_truth_positions(self) -> np.ndarray:
        return np.array([f.position for f in self.frames])


def project_landmark(
    camera: CameraIntrinsics,
    position: Tuple[float, float],
    heading_rad: float,
    landmark: Landmark,
    camera_height_m: float = 1.2,
    min_depth_m: float = 0.5,
    max_depth_m: float = 60.0,
) -> Optional[Tuple[float, float]]:
    """Project a world landmark into the forward camera; None if not visible.

    World frame: x/y ground plane, z up.  Camera frame: z forward along the
    vehicle heading, x right, y down.
    """
    dx = landmark.x_m - position[0]
    dy = landmark.y_m - position[1]
    # Rotate into the body frame (heading -> forward axis).
    forward = dx * math.cos(heading_rad) + dy * math.sin(heading_rad)
    lateral = -dx * math.sin(heading_rad) + dy * math.cos(heading_rad)
    if not (min_depth_m <= forward <= max_depth_m):
        return None
    u = camera.cx_px + camera.focal_px * (-lateral) / forward
    v = camera.cy_px + camera.focal_px * (camera_height_m - landmark.z_m) / forward
    if not camera.in_view(u, v):
        return None
    return (u, v)


def landmark_forward_distance(
    position: Tuple[float, float], heading_rad: float, landmark: Landmark
) -> float:
    """Forward (optical-axis) distance from the camera to a landmark."""
    dx = landmark.x_m - position[0]
    dy = landmark.y_m - position[1]
    return dx * math.cos(heading_rad) + dy * math.sin(heading_rad)


class SequenceGenerator:
    """Generates :class:`DriveSequence` objects from a trajectory + world.

    ``camera_time_offset_s`` delays the *camera* triggers relative to the
    IMU clock while keeping the recorded timestamps nominal — exactly the
    out-of-sync condition of Fig. 11b: the data says "t" but the image was
    really captured at "t + offset".
    """

    def __init__(
        self,
        trajectory: Trajectory,
        world: Optional[World] = None,
        camera: Optional[CameraIntrinsics] = None,
        camera_rate_hz: float = 30.0,
        imu_rate_hz: float = 240.0,
        pixel_noise_px: float = 0.3,
        depth_noise_frac: float = 0.02,
        seed: int = 0,
    ) -> None:
        if camera_rate_hz <= 0 or imu_rate_hz <= 0:
            raise ValueError("rates must be positive")
        self.trajectory = trajectory
        self.world = world or make_urban_block(seed=seed)
        self.camera = camera or CameraIntrinsics()
        self.camera_rate_hz = camera_rate_hz
        self.imu_rate_hz = imu_rate_hz
        self.pixel_noise_px = pixel_noise_px
        self.depth_noise_frac = depth_noise_frac
        self._rng = np.random.default_rng(seed)

    def generate(
        self,
        duration_s: float,
        camera_time_offset_s: float = 0.0,
        imu_noise_accel: float = 0.02,
        imu_noise_gyro: float = 0.002,
    ) -> DriveSequence:
        frames = []
        n_frames = int(duration_s * self.camera_rate_hz)
        for i in range(n_frames):
            nominal_t = i / self.camera_rate_hz
            actual_t = nominal_t + camera_time_offset_s
            sample = self.trajectory.sample(actual_t)
            observations = []
            for lm in self.world.landmarks:
                uv = project_landmark(
                    self.camera, sample.position, sample.heading_rad, lm
                )
                if uv is None:
                    continue
                u = uv[0] + self._rng.normal(0.0, self.pixel_noise_px)
                v = uv[1] + self._rng.normal(0.0, self.pixel_noise_px)
                depth = landmark_forward_distance(
                    sample.position, sample.heading_rad, lm
                )
                depth *= 1.0 + self._rng.normal(0.0, self.depth_noise_frac)
                observations.append(
                    FeatureObservation(lm.landmark_id, u, v, depth_m=depth)
                )
            frames.append(
                Frame(
                    index=i,
                    trigger_time_s=nominal_t,
                    position=sample.position,
                    heading_rad=sample.heading_rad,
                    observations=tuple(observations),
                )
            )
        imu = []
        n_imu = int(duration_s * self.imu_rate_hz)
        for j in range(n_imu):
            t = j / self.imu_rate_hz
            sample = self.trajectory.sample(t)
            ax, ay = sample.acceleration
            # World-frame acceleration into body frame.
            c, s = math.cos(sample.heading_rad), math.sin(sample.heading_rad)
            a_fwd = ax * c + ay * s + self._rng.normal(0.0, imu_noise_accel)
            a_lat = -ax * s + ay * c + self._rng.normal(0.0, imu_noise_accel)
            imu.append(
                ImuSample(
                    trigger_time_s=t,
                    accel_body=(a_fwd, a_lat),
                    yaw_rate_rps=sample.yaw_rate_rps
                    + self._rng.normal(0.0, imu_noise_gyro),
                )
            )
        return DriveSequence(
            frames=tuple(frames),
            imu=tuple(imu),
            landmarks=tuple(self.world.landmarks),
            camera=self.camera,
        )
