"""Seeded procedural scenario generation with intent-driven agents.

PR 4's corridor suite is 10 hand-named scenes; the fleet engine (PR 6)
is built to sweep thousands of cells.  This module closes that gap: an
open-ended, **seeded** scenario distribution in the spirit of the
PerceptIn deployment story (the stack is validated against situation
*families*, not a fixed scene list).

Three layers:

* :class:`ScenarioGrammar` composes road topology — straight corridors,
  T- and 4-way intersections, narrowing gaps — from independent seed
  streams, with the same spawn-clearance and traversability guarantees
  the hand-built corridors enforce
  (:func:`repro.scene.corridors.check_spawn_clearance`,
  :func:`repro.planning.collision.corridor_blocked_at`).  Intersections
  manifest as corner occluders, junction lane annotations, and crossing
  traffic on a straight ego corridor, so the lane-level planner
  semantics stay exactly those of the corridor suite.

* **Intent-driven moving agents**: oncoming carts that yield or assert,
  pedestrian platoons with a mid-drive straggler, occluded dynamic
  crossings, and crossing cyclists.  Each agent follows an
  :class:`AgentScript` of piecewise-constant-velocity phases executed by
  :class:`ScriptedWorld`; the agent's *current* phase velocity is what
  perception reports, so
  :func:`repro.planning.prediction.predict_constant_velocity`
  extrapolates the agent's current intent — and is wrong exactly when
  the intent changes, which is the situation the reactive path guards.

* **Mission-level scenarios**: every generated scene carries a
  :class:`MissionSpec` (a multi-leg route through corridors like it),
  evaluated against the paper's Eq. 2 range/energy model via
  :class:`repro.vehicle.battery.Battery` +
  :class:`repro.core.energy_model.EnergyModel` —
  :func:`mission_range_sweep` is the range-vs-AD-power sizing sweep.

:class:`ProcGenSpace` mirrors :class:`repro.robustness.chaos.FaultSpace`:
an intensity dial scales scene difficulty, and
``space.sample(generator_seed, cell_index)`` is **bit-identical per
pair** — :func:`scene_fingerprint` / :func:`scene_checksum` make that
replay contract checkable, and the ``scene_regeneration`` invariant in
:mod:`repro.testing.invariants` checks it on every fleet cell.  The
module registers the ``procgen`` scene provider, so
``ChaosConfig(corridor="procgen:crossroads")`` composes generated scenes
with chaos fault draws exactly like any hand-named corridor.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.energy_model import EnergyModel
from ..vehicle.battery import Battery, BatteryDepletedError
from .corridors import (
    EGO_RADIUS_M,
    CorridorScenario,
    SPAWN_CLEAR_RADIUS_M,
    _landmarks,
    check_spawn_clearance,
)
from .lanes import LaneMap, straight_corridor
from .providers import SceneProvider, register_scene_provider
from .world import Agent, Obstacle, World

#: The topology vocabulary of the grammar, in sweep order.
TOPOLOGIES: Tuple[str, ...] = (
    "crossroads",
    "narrowing_gap",
    "straight",
    "t_intersection",
)

#: Structural-complexity ladder, simplest first: the fallback order the
#: failure-triage shrinker walks when simplifying a violating scene.
TOPOLOGY_COMPLEXITY: Tuple[str, ...] = (
    "straight",
    "narrowing_gap",
    "t_intersection",
    "crossroads",
)

#: Generated scenes start the ego at the corridor suite's cruise speed.
INITIAL_SPEED_MPS = 5.6

#: Hard cap on any scripted agent speed; the no-teleport property bounds
#: per-tick displacement by ``max phase speed * dt`` and this caps that.
MAX_AGENT_SPEED_MPS = 5.0

#: Narrowing gaps never close below this half-width: the certificate
#: (``corridor_blocked_at``) needs ego radius + safety margin + slack.
MIN_HALF_GAP_M = 1.5

#: Seed-stream domain tags (cf. ``0xC4A05`` in :mod:`repro.robustness.chaos`):
#: topology choice, geometry, and agent scripting draw from independent
#: streams so adding a draw to one concern never shifts another.
_STREAM_TOPOLOGY = 0x70D0
_STREAM_GEOMETRY = 0x6E00
_STREAM_AGENTS = 0xA6E7


class SceneGenerationError(RuntimeError):
    """A sampled scene violated a generation guarantee (before re-roll)."""


# -- intent scripts ------------------------------------------------------------


@dataclass(frozen=True)
class ScriptPhase:
    """Constant velocity held until *until_s* of world time."""

    until_s: float
    vx_mps: float
    vy_mps: float

    @property
    def speed_mps(self) -> float:
        return math.hypot(self.vx_mps, self.vy_mps)


@dataclass(frozen=True)
class AgentScript:
    """A piecewise-constant-velocity intent script for one agent.

    The final phase holds forever (``until_s`` may be ``inf``).  Between
    phases the agent changes velocity instantaneously but never position
    — displacement integrates the phase velocities exactly, so per-tick
    motion is bounded by ``max_speed_mps * dt`` (the no-teleport
    property the hypothesis suite checks).
    """

    agent_id: int
    intent: str
    phases: Tuple[ScriptPhase, ...]

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("script needs at least one phase")
        boundaries = [p.until_s for p in self.phases]
        if any(b <= a for a, b in zip(boundaries, boundaries[1:])):
            raise ValueError(f"phase boundaries must increase: {boundaries}")
        for phase in self.phases:
            if not math.isfinite(phase.speed_mps):
                raise ValueError("phase velocities must be finite")
            if phase.speed_mps > MAX_AGENT_SPEED_MPS:
                raise ValueError(
                    f"phase speed {phase.speed_mps:.2f} m/s exceeds the "
                    f"{MAX_AGENT_SPEED_MPS} m/s script cap"
                )

    @property
    def max_speed_mps(self) -> float:
        return max(p.speed_mps for p in self.phases)

    def velocity_at(self, t_s: float) -> Tuple[float, float]:
        """The phase velocity active at world time *t_s*."""
        for phase in self.phases:
            if t_s < phase.until_s:
                return (phase.vx_mps, phase.vy_mps)
        last = self.phases[-1]
        return (last.vx_mps, last.vy_mps)

    def displacement(self, t0_s: float, t1_s: float) -> Tuple[float, float]:
        """Exact displacement over ``[t0, t1]`` (piecewise integration)."""
        if t1_s < t0_s:
            raise ValueError("time must not run backwards")
        dx = dy = 0.0
        t = t0_s
        for phase in self.phases:
            if t >= t1_s:
                break
            seg_end = min(phase.until_s, t1_s)
            if seg_end > t:
                dt = seg_end - t
                dx += phase.vx_mps * dt
                dy += phase.vy_mps * dt
                t = seg_end
        if t < t1_s:  # beyond the last boundary: the final phase holds
            last = self.phases[-1]
            dt = t1_s - t
            dx += last.vx_mps * dt
            dy += last.vy_mps * dt
        return (dx, dy)


@dataclass
class ScriptedWorld(World):
    """A :class:`World` whose agents follow :class:`AgentScript` intents.

    Unscripted agents keep the constant-velocity law.  Scripted agents
    integrate their script exactly across phase boundaries, and their
    stored velocity is the phase velocity *now* — which is what
    perception converts to a
    :class:`~repro.planning.prediction.TrackedObject`, so the planner's
    constant-velocity prediction extrapolates the current intent.
    """

    scripts: Dict[int, AgentScript] = field(default_factory=dict)

    def advance(self, dt_s: float) -> None:
        if dt_s < 0:
            raise ValueError("dt must be non-negative")
        t0 = self.time_s
        t1 = t0 + dt_s
        moved: List[Agent] = []
        for agent in self.agents:
            script = self.scripts.get(agent.agent_id)
            if script is None:
                moved.append(agent.advanced(dt_s))
            else:
                dx, dy = script.displacement(t0, t1)
                vx, vy = script.velocity_at(t1)
                moved.append(
                    replace(
                        agent,
                        x_m=agent.x_m + dx,
                        y_m=agent.y_m + dy,
                        vx_mps=vx,
                        vy_mps=vy,
                    )
                )
        self.agents = moved
        self.time_s = t1


# -- mission layer (Eq. 2) -----------------------------------------------------


@dataclass(frozen=True)
class MissionSpec:
    """A mission-level scenario: a route swept against the Eq. 2 model."""

    name: str
    route_length_m: float
    cruise_speed_mps: float = INITIAL_SPEED_MPS
    n_stops: int = 0
    stop_dwell_s: float = 0.0
    #: AD payload power; None uses the energy model's (paper: 175 W).
    ad_power_w: Optional[float] = None
    #: State-of-charge floor the mission must land above.
    reserve_frac: float = 0.1

    def __post_init__(self) -> None:
        if self.route_length_m < 0:
            raise ValueError("route length must be non-negative")
        if self.cruise_speed_mps <= 0:
            raise ValueError("cruise speed must be positive")
        if self.n_stops < 0 or self.stop_dwell_s < 0:
            raise ValueError("stops must be non-negative")
        if not 0.0 <= self.reserve_frac < 1.0:
            raise ValueError("reserve fraction must be in [0, 1)")


@dataclass(frozen=True)
class MissionOutcome:
    """One mission evaluated through the battery integrator."""

    spec: MissionSpec
    ad_power_w: float
    travel_time_s: float
    energy_j: float
    state_of_charge: float
    feasible: bool
    #: Analytic max feasible route at this spec's power point — the
    #: Eq. 2 range frontier the sweep plots.
    limit_route_length_m: float


def evaluate_mission(
    spec: MissionSpec, model: Optional[EnergyModel] = None
) -> MissionOutcome:
    """Integrate *spec* through :class:`Battery` against the Eq. 2 model.

    The vehicle draws base + AD power while moving and AD power alone
    while dwelling at stops (the payload never sleeps — the paper's
    Sec. III-B point).  A mission is feasible when the battery never
    depletes and lands at or above the reserve fraction.
    """
    model = model or EnergyModel()
    pad = model.ad_power_w if spec.ad_power_w is None else spec.ad_power_w
    if pad < 0:
        raise ValueError("AD power must be non-negative")
    drive_s = spec.route_length_m / spec.cruise_speed_mps
    dwell_s = spec.n_stops * spec.stop_dwell_s
    battery = Battery(capacity_j=model.battery_capacity_j)
    energy = 0.0
    feasible = True
    try:
        energy += battery.drain(model.vehicle_power_w + pad, drive_s)
        energy += battery.drain(pad, dwell_s)
    except BatteryDepletedError:
        feasible = False
    soc = battery.state_of_charge
    if soc < spec.reserve_frac:
        feasible = False
    usable_j = model.battery_capacity_j * (1.0 - spec.reserve_frac)
    usable_j -= pad * dwell_s
    limit_m = (
        max(0.0, usable_j)
        / (model.vehicle_power_w + pad)
        * spec.cruise_speed_mps
    )
    return MissionOutcome(
        spec=spec,
        ad_power_w=pad,
        travel_time_s=drive_s + dwell_s,
        energy_j=energy,
        state_of_charge=soc,
        feasible=feasible,
        limit_route_length_m=limit_m,
    )


def mission_range_sweep(
    route_lengths_m: Sequence[float],
    ad_powers_w: Sequence[float],
    model: Optional[EnergyModel] = None,
    cruise_speed_mps: float = INITIAL_SPEED_MPS,
) -> List[MissionOutcome]:
    """Sweep route length x AD power against Eq. 2 (the sizing sweep).

    The range lost to an AD payload follows directly from Eq. 2: the
    feasible-range reduction fraction equals the driving-time reduction
    fraction ``Pad / (Pv + Pad)`` — the experiment asserts the swept
    frontier against that closed form.
    """
    model = model or EnergyModel()
    outcomes: List[MissionOutcome] = []
    for pad in ad_powers_w:
        for length in route_lengths_m:
            spec = MissionSpec(
                name=f"mission-{pad:g}w-{length:g}m",
                route_length_m=float(length),
                cruise_speed_mps=cruise_speed_mps,
                ad_power_w=float(pad),
            )
            outcomes.append(evaluate_mission(spec, model))
    return outcomes


# -- the generated scenario ----------------------------------------------------


@dataclass(frozen=True)
class GeneratedScenario(CorridorScenario):
    """A procedurally generated corridor cell.

    Subclasses :class:`CorridorScenario`, so every consumer of the
    corridor suite (``make_corridor_sov``, the chaos campaign, the
    invariant harness) drives generated scenes unchanged.  The extra
    fields pin the replay coordinates: ``(generator_seed, cell_index)``
    regenerate this exact scene, bit for bit.
    """

    topology: str = "straight"
    intents: Tuple[str, ...] = ()
    generator_seed: int = 0
    cell_index: int = 0
    intensity: float = 1.0
    mission: Optional[MissionSpec] = None


def scene_fingerprint(scenario: CorridorScenario) -> Tuple:
    """A bit-exact structural fingerprint of a generated scene.

    Two scenes with equal fingerprints have identical geometry, agents,
    intent scripts, lane maps, and mission — floats compared exactly.
    This is the scene-side twin of
    :func:`repro.testing.invariants.drive_fingerprint`.
    """
    world = scenario.world
    scripts: Dict[int, AgentScript] = getattr(world, "scripts", {})
    lane_map = scenario.lane_map
    segments = tuple(
        (
            sid,
            lane_map.segment(sid).centerline,
            lane_map.segment(sid).width_m,
            lane_map.segment(sid).annotations,
        )
        for sid in sorted(lane_map.segment_ids)
    )
    mission = scenario_mission(scenario)
    return (
        scenario.name,
        getattr(scenario, "topology", ""),
        getattr(scenario, "intents", ()),
        scenario.seed,
        getattr(scenario, "generator_seed", scenario.seed),
        getattr(scenario, "cell_index", 0),
        getattr(scenario, "intensity", 1.0),
        scenario.n_lanes,
        scenario.corridor_length_m,
        scenario.duration_s,
        scenario.initial_speed_mps,
        scenario.blocked,
        tuple(
            (o.obstacle_id, o.x_m, o.y_m, o.radius_m)
            for o in world.obstacles
        ),
        tuple(
            (a.agent_id, a.kind, a.x_m, a.y_m, a.vx_mps, a.vy_mps, a.radius_m)
            for a in world.agents
        ),
        tuple(
            (
                scripts[aid].agent_id,
                scripts[aid].intent,
                tuple(
                    (p.until_s, p.vx_mps, p.vy_mps)
                    for p in scripts[aid].phases
                ),
            )
            for aid in sorted(scripts)
        ),
        tuple(
            (lm.landmark_id, lm.x_m, lm.y_m, lm.z_m)
            for lm in world.landmarks
        ),
        segments,
        None
        if mission is None
        else (
            mission.name,
            mission.route_length_m,
            mission.cruise_speed_mps,
            mission.n_stops,
            mission.stop_dwell_s,
            mission.ad_power_w,
            mission.reserve_frac,
        ),
    )


def scene_checksum(scenario: CorridorScenario) -> int:
    """CRC32 of the scene fingerprint — the determinism fingerprint the
    procgen bench workload gates exactly."""
    return zlib.crc32(repr(scene_fingerprint(scenario)).encode("utf-8"))


def scenario_mission(scenario: CorridorScenario) -> Optional[MissionSpec]:
    """The mission a scenario carries (None for hand-named corridors)."""
    return getattr(scenario, "mission", None)


# -- the grammar ---------------------------------------------------------------


def _uniform(rng: np.random.Generator, lo: float, hi: float) -> float:
    return float(rng.uniform(lo, hi))


class ScenarioGrammar:
    """Composes one generated scene from independent seed streams.

    Geometry (topology skeleton, clutter, gates, occluders, dead ends)
    draws only from the geometry stream; agent events (which intents,
    their kinematic scripts) draw only from the agent stream — so the
    two concerns can evolve without perturbing each other's draws, the
    same stream-isolation discipline the chaos/network samplers use.
    """

    topologies: Tuple[str, ...] = TOPOLOGIES

    # -- geometry skeletons ----------------------------------------------------

    def _skeleton(
        self, space: "ProcGenSpace", topology: str, rng: np.random.Generator
    ) -> Dict:
        intensity = space.intensity
        plan: Dict = {
            "topology": topology,
            "obstacles": [],
            "junction_x": None,
            "junction_sides": (),
            "blocked": False,
        }
        if topology in ("straight", "t_intersection", "crossroads"):
            plan["n_lanes"] = 2
            plan["length_m"] = _uniform(rng, 170.0, 240.0)
        else:  # narrowing_gap
            plan["n_lanes"] = 1
            plan["length_m"] = _uniform(rng, 140.0, 200.0)

        next_id = 0

        def add(x: float, y: float, r: float) -> None:
            nonlocal next_id
            plan["obstacles"].append(
                Obstacle(x_m=x, y_m=y, radius_m=r, obstacle_id=next_id)
            )
            next_id += 1

        # A dead end turns any straight/narrowing scene into a stop cell
        # (the cluttered_stop motif): admissible only past the intensity
        # threshold, sampled before other geometry so the wall draw
        # never shifts the clutter stream.
        dead_end = (
            topology in ("straight", "narrowing_gap")
            and intensity >= space.dead_end_min_intensity
            and float(rng.random()) < space.dead_end_prob
        )
        if dead_end:
            plan["blocked"] = True
            wall_x = 30.0 + _uniform(rng, -2.0, 2.0)
            rows = (-1.2, 1.2, 3.6) if plan["n_lanes"] == 2 else (-1.0, 0.0, 1.0)
            for y in rows:
                add(
                    wall_x + _uniform(rng, -0.5, 0.5),
                    y,
                    _uniform(rng, 0.7, 0.9),
                )
            plan["duration_s"] = 12.0
            return plan

        if topology == "straight":
            # Optional slalom motif: alternating in-lane planters.
            n_planters = int(
                rng.integers(0, min(4, 2 + int(round(intensity))) + 1)
            )
            x = 24.0 + _uniform(rng, 0.0, 4.0)
            for i in range(n_planters):
                lane_y = 0.0 if i % 2 == 0 else 2.5
                add(
                    x,
                    lane_y + _uniform(rng, -0.3, 0.3),
                    _uniform(rng, 0.45, 0.6),
                )
                x += _uniform(rng, 16.0, 20.0)
            plan["duration_s"] = _uniform(rng, 8.0, 10.0)
        elif topology == "narrowing_gap":
            # Successive gates, each narrower — but never below the
            # traversability floor.
            n_gates = 2 + int(float(rng.random()) < 0.3 * min(intensity, 2.0))
            gate_x = 26.0 + _uniform(rng, 0.0, 6.0)
            half_gap = _uniform(rng, 2.0, 2.4)
            for _ in range(n_gates):
                r = _uniform(rng, 0.4, 0.6)
                half = max(MIN_HALF_GAP_M, half_gap)
                add(gate_x, half + r, r)
                add(gate_x, -(half + r), r)
                gate_x += _uniform(rng, 20.0, 26.0)
                half_gap -= _uniform(rng, 0.15, 0.3) * min(intensity, 2.0)
            plan["duration_s"] = _uniform(rng, 8.0, 10.0)
        else:  # t_intersection / crossroads
            junction_x = _uniform(rng, 30.0, 45.0)
            plan["junction_x"] = junction_x
            if topology == "t_intersection":
                sides = (1.0 if float(rng.random()) < 0.5 else -1.0,)
            else:
                sides = (1.0, -1.0)
            plan["junction_sides"] = sides
            # Corner occluders: the cross traffic appears from behind
            # these, so the proactive path sees it late (Sec. IV).
            for side in sides:
                add(
                    junction_x - _uniform(rng, 6.0, 8.0),
                    side * _uniform(rng, 4.4, 5.4),
                    _uniform(rng, 1.0, 1.3),
                )
            plan["duration_s"] = _uniform(rng, 9.0, 11.0)

        # Off-corridor clutter (parked carts, street furniture): kept
        # beyond |y| >= 6 so lane clearance and the reactive cone are
        # untouched — density scales with the intensity dial.
        n_clutter = min(5, int(rng.poisson(space.clutter_rate * intensity)))
        for _ in range(n_clutter):
            side = 1.0 if float(rng.random()) < 0.5 else -1.0
            add(
                _uniform(rng, 16.0, max(30.0, plan["length_m"] - 30.0)),
                side * _uniform(rng, 6.0, 9.5),
                _uniform(rng, 0.4, 1.0),
            )
        return plan

    # -- agent events ----------------------------------------------------------

    def _event_menu(self, topology: str) -> Tuple[str, ...]:
        if topology == "narrowing_gap":
            return ("oncoming_yield", "oncoming_assert", "platoon")
        if topology == "straight":
            return (
                "oncoming_yield",
                "oncoming_assert",
                "platoon",
                "occluded_crossing",
            )
        return ("oncoming_yield", "platoon")  # junction extras

    def _crossing_menu(self) -> Tuple[str, ...]:
        return ("crossing_pedestrian", "crossing_cyclist")

    def _build_event(
        self,
        intent: str,
        rng: np.random.Generator,
        next_id: int,
        plan: Dict,
        intensity: float,
        side: float = 1.0,
    ) -> Tuple[List[Agent], List[AgentScript], List[Obstacle]]:
        agents: List[Agent] = []
        scripts: List[AgentScript] = []
        obstacles: List[Obstacle] = []
        speed_scale = min(max(intensity, 0.6), 1.8)

        if intent in ("oncoming_yield", "oncoming_assert"):
            x0 = _uniform(rng, 52.0, 72.0)
            speed = min(3.0, _uniform(rng, 1.2, 2.0) * speed_scale)
            y0 = _uniform(rng, -0.2, 0.2)
            if intent == "oncoming_yield":
                t_meet = x0 / (INITIAL_SPEED_MPS + speed)
                t_yield = max(0.5, t_meet - _uniform(rng, 1.0, 2.0))
                shift_s = _uniform(rng, 1.8, 2.4)
                phases = (
                    ScriptPhase(t_yield, -speed, 0.0),
                    ScriptPhase(t_yield + shift_s, -0.6 * speed, -1.1),
                    ScriptPhase(math.inf, -0.8 * speed, 0.0),
                )
            else:
                phases = (ScriptPhase(math.inf, -speed, 0.0),)
            scripts.append(
                AgentScript(agent_id=next_id, intent=intent, phases=phases)
            )
            vx, vy = scripts[-1].velocity_at(0.0)
            agents.append(
                Agent(
                    agent_id=next_id,
                    x_m=x0,
                    y_m=y0,
                    vx_mps=vx,
                    vy_mps=vy,
                    radius_m=0.5,
                    kind="cart",
                )
            )
        elif intent == "platoon":
            n = 2 + int(rng.integers(0, 2))
            straggler = int(rng.integers(0, n))
            for i in range(n):
                walk = _uniform(rng, 0.9, 1.3)
                if i == straggler:
                    t_pause = _uniform(rng, 2.0, 4.0)
                    pause_s = _uniform(rng, 1.0, 2.0)
                    phases = (
                        ScriptPhase(t_pause, walk, 0.0),
                        ScriptPhase(t_pause + pause_s, 0.0, 0.0),
                        ScriptPhase(math.inf, walk, 0.0),
                    )
                else:
                    phases = (ScriptPhase(math.inf, walk, 0.0),)
                scripts.append(
                    AgentScript(
                        agent_id=next_id + i, intent=intent, phases=phases
                    )
                )
                vx, vy = scripts[-1].velocity_at(0.0)
                agents.append(
                    Agent(
                        agent_id=next_id + i,
                        x_m=16.0 + 7.0 * i + _uniform(rng, -1.5, 1.5),
                        y_m=_uniform(rng, -0.5, 0.5),
                        vx_mps=vx,
                        vy_mps=vy,
                        radius_m=0.4,
                        kind="pedestrian",
                    )
                )
        elif intent == "occluded_crossing":
            cx = plan["junction_x"] or _uniform(rng, 26.0, 40.0)
            n_obstacles = len(plan["obstacles"])
            obstacles.append(
                Obstacle(
                    x_m=cx,
                    y_m=-3.6,
                    radius_m=_uniform(rng, 1.1, 1.3),
                    obstacle_id=n_obstacles,
                )
            )
            walk = min(
                MAX_AGENT_SPEED_MPS, _uniform(rng, 0.9, 1.4) * speed_scale
            )
            t_wait = max(0.0, cx / INITIAL_SPEED_MPS - _uniform(rng, 1.0, 2.5))
            cross_s = 9.0 / walk
            phases = (
                ScriptPhase(t_wait, 0.0, 0.0),
                ScriptPhase(t_wait + cross_s, 0.0, walk),
                ScriptPhase(math.inf, _uniform(rng, 0.2, 0.5), 0.0),
            )
            scripts.append(
                AgentScript(agent_id=next_id, intent=intent, phases=phases)
            )
            agents.append(
                Agent(
                    agent_id=next_id,
                    x_m=cx + _uniform(rng, 3.0, 5.0),
                    y_m=-5.0,
                    vx_mps=0.0,
                    vy_mps=0.0,
                    radius_m=0.4,
                    kind="pedestrian",
                )
            )
        elif intent in ("crossing_pedestrian", "crossing_cyclist"):
            junction_x = plan["junction_x"]
            if junction_x is None:
                raise SceneGenerationError(
                    f"{intent} requires a junction topology"
                )
            if intent == "crossing_cyclist":
                speed = min(
                    MAX_AGENT_SPEED_MPS, _uniform(rng, 2.5, 3.8) * speed_scale
                )
                radius, kind = 0.45, "bicycle"
                hesitates = False
            else:
                speed = min(
                    MAX_AGENT_SPEED_MPS, _uniform(rng, 1.0, 1.5) * speed_scale
                )
                radius, kind = 0.4, "pedestrian"
                hesitates = float(rng.random()) < 0.4
            start_y = side * _uniform(rng, 8.5, 12.0)
            t_start = max(
                0.0,
                junction_x / INITIAL_SPEED_MPS - _uniform(rng, 0.8, 1.8),
            )
            vy = -side * speed
            if hesitates:
                # Crosses to the corridor edge, hesitates, then commits
                # — the intent flip constant-velocity prediction misses.
                edge_y = side * 1.9
                t_edge = t_start + abs(start_y - edge_y) / speed
                pause_s = _uniform(rng, 0.6, 1.2)
                phases = (
                    ScriptPhase(t_start, 0.0, 0.0),
                    ScriptPhase(t_edge, 0.0, vy),
                    ScriptPhase(t_edge + pause_s, 0.0, 0.0),
                    ScriptPhase(math.inf, 0.0, vy),
                )
            else:
                phases = (
                    ScriptPhase(t_start, 0.0, 0.0),
                    ScriptPhase(math.inf, 0.0, vy),
                )
            scripts.append(
                AgentScript(agent_id=next_id, intent=intent, phases=phases)
            )
            vx0, vy0 = scripts[-1].velocity_at(0.0)
            agents.append(
                Agent(
                    agent_id=next_id,
                    x_m=junction_x + _uniform(rng, -1.0, 1.0),
                    y_m=start_y,
                    vx_mps=vx0,
                    vy_mps=vy0,
                    radius_m=radius,
                    kind=kind,
                )
            )
        else:
            raise SceneGenerationError(f"unknown intent {intent!r}")
        return agents, scripts, obstacles

    def _agent_events(
        self, space: "ProcGenSpace", plan: Dict, rng: np.random.Generator
    ) -> Tuple[List[Agent], Dict[int, AgentScript], List[Obstacle], List[str]]:
        intensity = space.intensity
        agents: List[Agent] = []
        scripts: Dict[int, AgentScript] = {}
        extra_obstacles: List[Obstacle] = []
        intents: List[str] = []
        if plan["blocked"]:
            # Dead-end cells are pure stop drills (the cluttered_stop
            # motif); the ego never reaches where agents would matter.
            return agents, scripts, extra_obstacles, intents

        events: List[Tuple[str, float]] = []
        topology = plan["topology"]
        if topology in ("t_intersection", "crossroads"):
            sides = list(plan["junction_sides"])
            first_side = sides[int(rng.integers(0, len(sides)))]
            events.append(
                (
                    self._crossing_menu()[
                        int(rng.integers(0, len(self._crossing_menu())))
                    ],
                    first_side,
                )
            )
            if topology == "crossroads" and float(rng.random()) < min(
                0.5 * intensity, 0.9
            ):
                other = -first_side
                events.append(
                    (
                        self._crossing_menu()[
                            int(rng.integers(0, len(self._crossing_menu())))
                        ],
                        other,
                    )
                )
        else:
            menu = self._event_menu(topology)
            events.append((menu[int(rng.integers(0, len(menu)))], 1.0))
        n_extra = int(float(rng.random()) < 0.45 * min(intensity, 2.0)) + int(
            float(rng.random()) < 0.25 * min(intensity, 2.0)
        )
        extras_menu = self._event_menu(topology)
        for _ in range(n_extra):
            if len(events) >= space.max_agent_events:
                break
            candidate = extras_menu[int(rng.integers(0, len(extras_menu)))]
            if candidate in [e for e, _ in events]:
                continue  # one event per intent family keeps scenes legible
            events.append((candidate, 1.0))

        next_id = 0
        for intent, side in events:
            built_agents, built_scripts, built_obstacles = self._build_event(
                intent, rng, next_id, plan, intensity, side=side
            )
            # Renumber occluder obstacles after any already added.
            for obstacle in built_obstacles:
                plan["obstacles"].append(
                    Obstacle(
                        x_m=obstacle.x_m,
                        y_m=obstacle.y_m,
                        radius_m=obstacle.radius_m,
                        obstacle_id=len(plan["obstacles"]),
                    )
                )
            agents.extend(built_agents)
            for script in built_scripts:
                scripts[script.agent_id] = script
            next_id += len(built_agents)
            intents.append(intent)
        return agents, scripts, extra_obstacles, intents

    # -- composition -----------------------------------------------------------

    def compose(
        self,
        space: "ProcGenSpace",
        topology: str,
        rng_geometry: np.random.Generator,
        rng_agents: np.random.Generator,
        generator_seed: int,
        cell_index: int,
    ) -> GeneratedScenario:
        plan = self._skeleton(space, topology, rng_geometry)
        agents, scripts, _, intents = self._agent_events(
            space, plan, rng_agents
        )
        length = plan["length_m"]
        world = ScriptedWorld(
            obstacles=list(plan["obstacles"]),
            agents=agents,
            landmarks=_landmarks(rng_geometry, length),
            scripts=scripts,
        )
        lane_map = straight_corridor(length_m=length, n_lanes=plan["n_lanes"])
        junction_x = plan["junction_x"]
        if junction_x is not None:
            for sid in lane_map.segment_ids:
                lane_map.annotate(
                    sid, f"junction:{topology}@{junction_x:.1f}"
                )
        # The mission this corridor is one leg of: a multi-leg route
        # swept against Eq. 2 by the campaign's mission rows.
        legs = int(rng_geometry.integers(8, 21))
        mission = MissionSpec(
            name=f"procgen-{topology}-{generator_seed}-{cell_index}",
            route_length_m=length * legs,
            cruise_speed_mps=INITIAL_SPEED_MPS,
            n_stops=max(0, legs - 1),
            stop_dwell_s=_uniform(rng_geometry, 10.0, 40.0),
        )
        intent_note = ", ".join(intents) if intents else "no agents"
        return GeneratedScenario(
            name=f"procgen:{topology}",
            seed=generator_seed,
            description=(
                f"generated {topology} cell {cell_index} "
                f"(intensity {space.intensity:g}; {intent_note})"
            ),
            world=world,
            lane_map=lane_map,
            initial_speed_mps=INITIAL_SPEED_MPS,
            duration_s=plan["duration_s"],
            n_lanes=plan["n_lanes"],
            corridor_length_m=length,
            blocked=plan["blocked"],
            topology=topology,
            intents=tuple(intents),
            generator_seed=generator_seed,
            cell_index=cell_index,
            intensity=space.intensity,
            mission=mission,
        )


#: The module's composer instance (stateless; shared by every space).
GRAMMAR = ScenarioGrammar()


def validate_scene(scenario: GeneratedScenario) -> None:
    """Enforce the generation guarantees one sampled scene must satisfy."""
    from ..planning.collision import corridor_blocked_at

    check_spawn_clearance(scenario)
    blocked_at = corridor_blocked_at(
        scenario.world,
        scenario.lane_map,
        scenario.corridor_length_m,
        ego_radius_m=EGO_RADIUS_M,
    )
    if scenario.blocked and blocked_at is None:
        raise SceneGenerationError(
            f"{scenario.name} cell {scenario.cell_index}: dead-end scene "
            "left the corridor traversable"
        )
    if not scenario.blocked and blocked_at is not None:
        raise SceneGenerationError(
            f"{scenario.name} cell {scenario.cell_index}: corridor blocked "
            f"at {blocked_at:.1f} m in a scene marked traversable"
        )
    scripts: Dict[int, AgentScript] = getattr(scenario.world, "scripts", {})
    agent_ids = {a.agent_id for a in scenario.world.agents}
    for agent_id, script in scripts.items():
        if agent_id not in agent_ids:
            raise SceneGenerationError(
                f"script for missing agent {agent_id}"
            )
        if script.max_speed_mps > MAX_AGENT_SPEED_MPS:
            raise SceneGenerationError(
                f"agent {agent_id} script exceeds the speed cap"
            )


# -- the sampler ---------------------------------------------------------------


@dataclass(frozen=True)
class ProcGenSpace:
    """The distribution generated scenes are drawn from.

    Mirrors :class:`repro.robustness.chaos.FaultSpace`: frozen and
    picklable (it rides inside fleet ``CellSpec`` payloads), an
    ``intensity`` dial that scales difficulty (clutter density, agent
    count and speed, gap narrowing, dead-end admission), and a
    bit-identical sampling contract —
    ``space.sample(generator_seed, cell_index)`` always returns the same
    scene, checkable via :func:`scene_fingerprint`.
    """

    intensity: float = 1.0
    topology_weights: Tuple[Tuple[str, float], ...] = (
        ("straight", 3.0),
        ("narrowing_gap", 2.0),
        ("t_intersection", 2.0),
        ("crossroads", 2.0),
    )
    #: Mean off-corridor clutter count at intensity 1.0.
    clutter_rate: float = 1.2
    #: Cap on distinct agent events per scene.
    max_agent_events: int = 3
    #: Probability a straight/narrowing scene is a dead-end stop cell.
    dead_end_prob: float = 0.10
    #: Intensity below which dead ends are never drawn.
    dead_end_min_intensity: float = 1.0
    #: Deterministic re-rolls before a guarantee violation is fatal.
    max_regen_attempts: int = 8

    def __post_init__(self) -> None:
        if self.intensity <= 0:
            raise ValueError("intensity must be positive")
        if not self.topology_weights:
            raise ValueError("need at least one topology weight")
        for name, weight in self.topology_weights:
            if name not in TOPOLOGIES:
                raise ValueError(
                    f"unknown topology {name!r}; known: {TOPOLOGIES}"
                )
            if weight < 0:
                raise ValueError(f"topology weight {name!r} must be >= 0")
        if sum(w for _, w in self.topology_weights) <= 0:
            raise ValueError("topology weights must sum to > 0")
        if self.clutter_rate < 0:
            raise ValueError("clutter rate must be non-negative")
        if self.max_agent_events < 0:
            raise ValueError("max agent events must be non-negative")
        if not 0.0 <= self.dead_end_prob <= 1.0:
            raise ValueError("dead-end probability must be in [0, 1]")
        if self.max_regen_attempts < 1:
            raise ValueError("need at least one generation attempt")

    def with_intensity(self, intensity: float) -> "ProcGenSpace":
        """This space with the difficulty dial set to *intensity*."""
        return replace(self, intensity=intensity)

    @staticmethod
    def simpler_topologies(topology: str) -> Tuple[str, ...]:
        """Strictly simpler topologies than *topology*, simplest first.

        The scene-simplification hook for the failure-triage shrinker:
        it retargets a violating ``procgen:<topology>`` cell at each of
        these in order and keeps the simplest scene that still violates.
        """
        if topology not in TOPOLOGY_COMPLEXITY:
            raise ValueError(
                f"unknown topology {topology!r}; known: {TOPOLOGIES}"
            )
        rank = TOPOLOGY_COMPLEXITY.index(topology)
        return TOPOLOGY_COMPLEXITY[:rank]

    def topology_for(
        self, generator_seed: int, cell_index: int
    ) -> str:
        """The (deterministic) topology drawn for one cell."""
        rng = np.random.default_rng(
            np.random.SeedSequence(
                (generator_seed, cell_index, _STREAM_TOPOLOGY)
            )
        )
        names = [name for name, _ in self.topology_weights]
        weights = np.asarray(
            [weight for _, weight in self.topology_weights], dtype=float
        )
        return str(rng.choice(names, p=weights / weights.sum()))

    def sample(
        self,
        generator_seed: int,
        cell_index: int,
        topology: Optional[str] = None,
    ) -> GeneratedScenario:
        """Generate cell ``(generator_seed, cell_index)`` — bit-identical
        per pair, guarantees enforced (spawn clearance, traversability
        certificate, script sanity) with bounded deterministic re-rolls.
        """
        if topology is None:
            topology = self.topology_for(generator_seed, cell_index)
        elif topology not in TOPOLOGIES:
            raise KeyError(
                f"unknown topology {topology!r}; known: {TOPOLOGIES}"
            )
        last_error: Optional[SceneGenerationError] = None
        for attempt in range(self.max_regen_attempts):
            rng_geometry = np.random.default_rng(
                np.random.SeedSequence(
                    (generator_seed, cell_index, _STREAM_GEOMETRY, attempt)
                )
            )
            rng_agents = np.random.default_rng(
                np.random.SeedSequence(
                    (generator_seed, cell_index, _STREAM_AGENTS, attempt)
                )
            )
            scenario = GRAMMAR.compose(
                self,
                topology,
                rng_geometry,
                rng_agents,
                generator_seed,
                cell_index,
            )
            try:
                validate_scene(scenario)
            except (SceneGenerationError, ValueError) as exc:
                last_error = SceneGenerationError(str(exc))
                continue
            return scenario
        raise SceneGenerationError(
            f"cell ({generator_seed}, {cell_index}) violated generation "
            f"guarantees {self.max_regen_attempts} attempts running: "
            f"{last_error}"
        )

    def sample_suite(
        self, generator_seed: int, n_cells: int
    ) -> List[GeneratedScenario]:
        """Cells ``0..n_cells-1`` at *generator_seed*, in index order."""
        return [
            self.sample(generator_seed, index) for index in range(n_cells)
        ]


#: The default sampling distribution (what the provider and the
#: ``procgen_campaign`` experiment use).
DEFAULT_SPACE = ProcGenSpace()


# -- provider registration -----------------------------------------------------


def _build_procgen_scene(topology: str, seed: int) -> GeneratedScenario:
    """Provider hook: one generated scene per ``(topology, seed)``.

    The chaos campaign passes a fresh drive seed per drive, so
    ``ChaosConfig(corridor="procgen:crossroads")`` sweeps a different
    generated intersection every drive — bit-identically replayable.
    """
    return DEFAULT_SPACE.sample(
        generator_seed=seed, cell_index=0, topology=topology
    )


register_scene_provider(
    SceneProvider(
        name="procgen",
        list_scenes=lambda: list(TOPOLOGIES),
        build=_build_procgen_scene,
    )
)
