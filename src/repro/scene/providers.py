"""Named scene-provider registry: one namespace for every scene source.

PR 4 taught the chaos campaign to drive named corridor scenarios via
``ChaosConfig(corridor="slalom")``; the procedural generator
(:mod:`repro.scene.procgen`) is a second scene source, and hard-coding a
second keyword would mean per-suite plumbing in every consumer (chaos,
the invariant harness, the fleet cell grid).  Instead, scene sources
register here as **providers** and every consumer resolves scenes
through one qualified namespace:

* ``"slalom"`` — a bare name resolves through the default ``corridor``
  provider, so every pre-existing spelling keeps working;
* ``"corridor:slalom"`` — the same scene, fully qualified;
* ``"procgen:crossroads"`` — a procedurally generated 4-way-intersection
  scene, sampled bit-identically from the seed the consumer passes.

A provider is three things: a name, a scene listing, and a seeded
builder ``(scene, seed) -> scenario``.  Builders must be pure per
``(scene, seed)`` — the chaos campaign regenerates the scene for every
drive seed and the invariant harness replays cells from the same pair,
so a provider that draws hidden state breaks bit-identical replay.

Scenarios returned by providers duck-type
:class:`repro.scene.corridors.CorridorScenario`: consumers hand them to
:func:`repro.scene.corridors.make_corridor_sov`, which only needs the
world / lane-map / start-state / duration / fault-schedule fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

#: Bare (unqualified) scene names resolve through this provider.
DEFAULT_PROVIDER = "corridor"


@dataclass(frozen=True)
class SceneProvider:
    """One registered scene source."""

    name: str
    #: Unqualified scene names this provider can build, callable so lazy
    #: registries (decorator-populated) list their final contents.
    list_scenes: Callable[[], List[str]]
    #: Seeded builder: ``build(scene, seed)`` -> scenario (pure per pair).
    build: Callable[[str, int], object]

    def __post_init__(self) -> None:
        if not self.name or ":" in self.name:
            raise ValueError(
                f"provider name {self.name!r} must be non-empty and free "
                "of ':' (it is the namespace separator)"
            )


_PROVIDERS: Dict[str, SceneProvider] = {}


def register_scene_provider(provider: SceneProvider) -> SceneProvider:
    """Register *provider*; duplicate names are a wiring bug."""
    if provider.name in _PROVIDERS:
        raise ValueError(f"duplicate scene provider {provider.name!r}")
    _PROVIDERS[provider.name] = provider
    return provider


def _ensure_builtins() -> None:
    # Importing the built-in scene modules registers their providers as
    # a side effect; both import this module, so the import happens here
    # (function scope) rather than at module top to avoid a cycle.
    from . import corridors, procgen  # noqa: F401


def split_scene_spec(spec: str) -> Tuple[str, str]:
    """``"procgen:straight"`` -> ``("procgen", "straight")``; bare names
    map to the default corridor provider."""
    if ":" in spec:
        provider, scene = spec.split(":", 1)
        return provider, scene
    return DEFAULT_PROVIDER, spec


def provider_names() -> List[str]:
    """All registered provider names, sorted."""
    _ensure_builtins()
    return sorted(_PROVIDERS)


def scene_names() -> List[str]:
    """Every qualified scene id, sorted — the full campaign vocabulary."""
    _ensure_builtins()
    return sorted(
        f"{provider.name}:{scene}"
        for provider in _PROVIDERS.values()
        for scene in provider.list_scenes()
    )


def is_known_scene(spec: str) -> bool:
    """Whether *spec* (bare or qualified) resolves to a buildable scene."""
    _ensure_builtins()
    provider_name, scene = split_scene_spec(spec)
    provider = _PROVIDERS.get(provider_name)
    return provider is not None and scene in provider.list_scenes()


def resolve_scene(spec: str, seed: int = 0):
    """Build the scenario *spec* names at *seed* (same pair -> same scene)."""
    _ensure_builtins()
    provider_name, scene = split_scene_spec(spec)
    try:
        provider = _PROVIDERS[provider_name]
    except KeyError:
        raise KeyError(
            f"unknown scene provider {provider_name!r} in {spec!r}; "
            f"known providers: {provider_names()}"
        ) from None
    if scene not in provider.list_scenes():
        raise KeyError(
            f"provider {provider_name!r} has no scene {scene!r}; "
            f"known: {sorted(provider.list_scenes())}"
        )
    return provider.build(scene, seed)
