"""World simulation substrate: lane maps, worlds, trajectories, datasets."""

from .corridors import (
    CorridorScenario,
    corridor_names,
    generate_corridor,
    generate_suite,
    make_corridor_sov,
    run_corridor_drive,
)
from .dataset_io import load_sequence, save_sequence
from .kitti_like import (
    CameraIntrinsics,
    DriveSequence,
    FeatureObservation,
    Frame,
    ImuSample,
    SequenceGenerator,
    StereoPair,
    make_disparity_scene,
    make_stereo_pair,
    project_landmark,
)
from .lanes import LaneMap, LaneSegment, campus_loop, straight_corridor
from .trajectory import (
    CircuitTrajectory,
    FigureEightTrajectory,
    StraightTrajectory,
    Trajectory,
    TrajectorySample,
    WaypointTrajectory,
)
from .world import Agent, Landmark, Obstacle, World, make_urban_block

__all__ = [
    "Agent",
    "CameraIntrinsics",
    "CircuitTrajectory",
    "CorridorScenario",
    "corridor_names",
    "generate_corridor",
    "generate_suite",
    "make_corridor_sov",
    "run_corridor_drive",
    "DriveSequence",
    "FeatureObservation",
    "FigureEightTrajectory",
    "Frame",
    "ImuSample",
    "Landmark",
    "LaneMap",
    "LaneSegment",
    "Obstacle",
    "SequenceGenerator",
    "StereoPair",
    "StraightTrajectory",
    "Trajectory",
    "TrajectorySample",
    "WaypointTrajectory",
    "load_sequence",
    "save_sequence",
    "World",
    "campus_loop",
    "make_disparity_scene",
    "make_stereo_pair",
    "make_urban_block",
    "project_landmark",
    "straight_corridor",
]
