"""Named multi-obstacle corridor scenarios for campaign drives.

The paper's deployment story (Sec. II, VI) is not "one obstacle on an
empty road": PerceptIn's confidence came from driving the same stack
through many *structured* situations — slalom rows of planters, narrow
gates, pedestrians stepping out from behind parked vans, oncoming carts
in a shared corridor, and dead-end clutter that demands a clean stop.
This module is that situation library.  Each scenario is a **named,
seeded generator**: ``generate_corridor("slalom", seed=7)`` always
builds the same world, and different seeds jitter geometry and agent
kinematics within the scenario's envelope, so a campaign can sweep
``scenario x seed`` cells and every cell is replayable bit-identically.

Scenarios plug into three consumers:

* the closed-loop SoV (:func:`make_corridor_sov` wires world, lane map,
  start state, duration, and any built-in fault scenario);
* the fault/chaos campaigns (``ChaosConfig(corridor="slalom")`` drives
  sampled fault scenarios down these worlds instead of the single-
  obstacle drill lane);
* the invariant harness (:mod:`repro.testing.invariants`), which checks
  the safety properties over the full scenario matrix.

Sensor-degraded variants carry a built-in
:class:`~repro.robustness.faults.FaultScenario` (flaky camera frames,
GPS denial, lossy CAN) — single failures the Sec. III-C architecture is
designed to survive, so the protected no-collision invariant must hold
on them too.

Generated worlds keep a spawn-clearance disc around the ego start pose
(no obstacle surface within :data:`SPAWN_CLEAR_RADIUS_M` of the origin)
and, unless the scenario is :attr:`CorridorScenario.blocked`, leave a
drivable gap through the corridor (checked against the planner's own
collision geometry by :func:`repro.planning.collision.corridor_blocked_at`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..robustness.faults import (
    CameraFrameDropFault,
    CanBusFault,
    FaultScenario,
    FaultWindow,
    GpsDenialFault,
    PerceptionStallFault,
)
from .lanes import LaneMap, straight_corridor
from .world import Agent, Landmark, Obstacle, World

#: No obstacle surface may intrude into this disc around the ego start
#: pose at (0, 0) — the spawn-clearance property the world tests check.
SPAWN_CLEAR_RADIUS_M = 6.0

#: Ego body radius used for corridor traversability checks (matches the
#: planner's collision-check default in :mod:`repro.planning.collision`).
EGO_RADIUS_M = 0.8


@dataclass(frozen=True)
class CorridorScenario:
    """One generated corridor drive: world + map + start + expectations."""

    name: str
    seed: int
    description: str
    world: World
    lane_map: LaneMap
    initial_speed_mps: float
    duration_s: float
    n_lanes: int
    corridor_length_m: float
    #: Built-in fault schedule (sensor-degraded variants); None = clean.
    fault_scenario: Optional[FaultScenario] = None
    #: True when the corridor is intentionally impassable: the expected
    #: safe outcome is a stop (reactive hold or SAFE_STOP), not progress.
    blocked: bool = False

    @property
    def degraded(self) -> bool:
        return self.fault_scenario is not None


#: A builder receives (rng, seed) and returns a scenario.
_Builder = Callable[[np.random.Generator, int], CorridorScenario]

_REGISTRY: Dict[str, _Builder] = {}


def _corridor(name: str):
    """Decorator registering a corridor scenario builder under *name*."""

    def wrap(fn: _Builder) -> _Builder:
        if name in _REGISTRY:
            raise ValueError(f"duplicate corridor scenario {name!r}")
        _REGISTRY[name] = fn
        return fn

    return wrap


def corridor_names() -> List[str]:
    """All registered scenario names, sorted (the campaign sweep order)."""
    return sorted(_REGISTRY)


def generate_corridor(name: str, seed: int = 0) -> CorridorScenario:
    """Build scenario *name* for *seed* (same pair -> same world).

    The builder RNG derives from ``SeedSequence((seed, digest(name)))``
    so two scenarios sharing a seed still draw independent geometry.
    """
    try:
        builder = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown corridor scenario {name!r}; known: {corridor_names()}"
        ) from None
    digest = sum(ord(c) * (i + 1) for i, c in enumerate(name))
    rng = np.random.default_rng(np.random.SeedSequence((seed, digest)))
    scenario = builder(rng, seed)
    check_spawn_clearance(scenario)
    return scenario


def generate_suite(seed: int = 0) -> List[CorridorScenario]:
    """Every registered scenario at *seed*, in name order."""
    return [generate_corridor(name, seed) for name in corridor_names()]


def check_spawn_clearance(scenario: CorridorScenario) -> None:
    """Generated worlds must never drop an obstacle on the start pose.

    Shared with every scene provider (:mod:`repro.scene.providers`): the
    procedural generator enforces the identical spawn guarantee.
    """
    for obstacle in scenario.world.obstacles:
        clearance = obstacle.distance_to(0.0, 0.0)
        if clearance < SPAWN_CLEAR_RADIUS_M:
            raise ValueError(
                f"{scenario.name!r} (seed {scenario.seed}) spawned obstacle "
                f"{obstacle.obstacle_id} only {clearance:.2f} m from the ego "
                f"start pose (need {SPAWN_CLEAR_RADIUS_M} m)"
            )


#: Backwards-compatible alias (pre-provider-registry spelling).
_check_spawn_clearance = check_spawn_clearance


def _landmarks(
    rng: np.random.Generator, length_m: float, n: int = 60
) -> List[Landmark]:
    """Roadside landmarks lining the corridor (what the VIO tracks)."""
    return [
        Landmark(
            landmark_id=i,
            x_m=float(rng.uniform(0.0, length_m)),
            y_m=float(rng.uniform(5.0, 12.0) * rng.choice([-1.0, 1.0])),
            z_m=float(rng.uniform(0.5, 5.0)),
        )
        for i in range(n)
    ]


def make_corridor_sov(
    scenario: CorridorScenario,
    safety_net: bool = True,
    extra_faults: Sequence = (),
    config: Optional[object] = None,
    **config_overrides,
):
    """Wire a scenario into a ready-to-drive :class:`SystemsOnAVehicle`.

    ``safety_net=False`` yields the unprotected ablation arm (reactive
    path and degradation supervisor disabled).  *extra_faults* are merged
    with the scenario's built-in fault schedule (the chaos campaign uses
    this to drive sampled faults down corridor worlds).  Remaining
    keyword arguments override :class:`~repro.runtime.sov.SovConfig`
    fields; pass a prebuilt *config* to take full control.
    """
    # Imported lazily: repro.runtime.sov imports repro.scene modules, so
    # a top-level import here would be circular.
    from ..runtime.sov import SovConfig, SystemsOnAVehicle
    from ..vehicle.dynamics import VehicleState

    faults = tuple(
        () if scenario.fault_scenario is None else scenario.fault_scenario.faults
    ) + tuple(extra_faults)
    fault_scenario = None
    if faults:
        fault_scenario = FaultScenario(
            name=f"{scenario.name}-{scenario.seed}",
            faults=faults,
            description=f"corridor {scenario.name!r} fault schedule",
        )
    if config is None:
        config = SovConfig(
            reactive_enabled=safety_net,
            degradation_enabled=safety_net,
            scenario=fault_scenario,
            seed=scenario.seed,
            **config_overrides,
        )
    return SystemsOnAVehicle(
        world=scenario.world,
        lane_map=scenario.lane_map,
        initial_state=VehicleState(speed_mps=scenario.initial_speed_mps),
        config=config,
    )


def run_corridor_drive(
    name: str,
    seed: int = 0,
    safety_net: bool = True,
    attribution: bool = True,
    **config_overrides,
):
    """Generate + drive one scenario cell; returns (scenario, DriveResult).

    Attribution is RNG-free bookkeeping, so enabling it (the default)
    leaves the drive bit-identical to an unobserved run — the invariant
    harness relies on both facts.
    """
    scenario = generate_corridor(name, seed)
    sov = make_corridor_sov(scenario, safety_net=safety_net, **config_overrides)
    if attribution:
        sov.enable_attribution()
    result = sov.drive(scenario.duration_s)
    return scenario, result


# -- the scenario library ------------------------------------------------------


@_corridor("slalom")
def _slalom(rng: np.random.Generator, seed: int) -> CorridorScenario:
    """Alternating planters force repeated lane changes (Sec. III-D:
    maneuvering at lane granularity is the vehicles' whole vocabulary)."""
    length = 400.0
    obstacles = []
    for i, base_x in enumerate((25.0, 45.0, 65.0, 85.0)):
        lane_y = 0.0 if i % 2 == 0 else 2.5
        obstacles.append(
            Obstacle(
                x_m=base_x + float(rng.uniform(-2.0, 2.0)),
                y_m=lane_y + float(rng.uniform(-0.3, 0.3)),
                radius_m=float(rng.uniform(0.45, 0.65)),
                obstacle_id=i,
            )
        )
    world = World(obstacles=obstacles, landmarks=_landmarks(rng, length))
    return CorridorScenario(
        name="slalom",
        seed=seed,
        description="alternating in-lane planters; repeated lane changes",
        world=world,
        lane_map=straight_corridor(length_m=length, n_lanes=2),
        initial_speed_mps=5.6,
        duration_s=18.0,
        n_lanes=2,
        corridor_length_m=length,
    )


@_corridor("narrow_gap")
def _narrow_gap(rng: np.random.Generator, seed: int) -> CorridorScenario:
    """A gate of flanking obstacles: the single lane threads a gap that
    leaves lateral room but no swerve option."""
    length = 300.0
    gate_x = 30.0 + float(rng.uniform(-3.0, 3.0))
    half_gap = float(rng.uniform(1.9, 2.4))
    radius = float(rng.uniform(0.4, 0.6))
    obstacles = [
        Obstacle(gate_x, half_gap + radius, radius_m=radius, obstacle_id=0),
        Obstacle(gate_x, -(half_gap + radius), radius_m=radius, obstacle_id=1),
        # A second, offset gate farther down the corridor.
        Obstacle(
            gate_x + 30.0,
            half_gap + 0.4 + radius,
            radius_m=radius,
            obstacle_id=2,
        ),
        Obstacle(
            gate_x + 30.0,
            -(half_gap + 0.4 + radius),
            radius_m=radius,
            obstacle_id=3,
        ),
    ]
    world = World(obstacles=obstacles, landmarks=_landmarks(rng, length))
    return CorridorScenario(
        name="narrow_gap",
        seed=seed,
        description="two flanking gates on a single lane; no swerve room",
        world=world,
        lane_map=straight_corridor(length_m=length, n_lanes=1),
        initial_speed_mps=5.6,
        duration_s=14.0,
        n_lanes=1,
        corridor_length_m=length,
    )


@_corridor("occluded_crossing")
def _occluded_crossing(rng: np.random.Generator, seed: int) -> CorridorScenario:
    """A pedestrian steps out from behind a parked van: the proactive
    path sees them late, the reactive path guards the gap (Sec. IV)."""
    length = 300.0
    van_x = 28.0 + float(rng.uniform(-2.0, 2.0))
    # The pedestrian starts behind the van (occluded roadside) and
    # crosses the lane as the ego arrives.
    walk_speed = float(rng.uniform(0.8, 1.2))
    ped = Agent(
        agent_id=0,
        x_m=van_x + 4.0 + float(rng.uniform(0.0, 2.0)),
        y_m=-5.0,
        vx_mps=0.0,
        vy_mps=walk_speed,
        radius_m=0.4,
        kind="pedestrian",
    )
    world = World(
        obstacles=[Obstacle(van_x, -3.6, radius_m=1.2, obstacle_id=0)],
        agents=[ped],
        landmarks=_landmarks(rng, length),
    )
    return CorridorScenario(
        name="occluded_crossing",
        seed=seed,
        description="pedestrian crossing from behind a parked van",
        world=world,
        lane_map=straight_corridor(length_m=length, n_lanes=2),
        initial_speed_mps=5.6,
        duration_s=14.0,
        n_lanes=2,
        corridor_length_m=length,
    )


@_corridor("oncoming_agent")
def _oncoming_agent(rng: np.random.Generator, seed: int) -> CorridorScenario:
    """A cart coming head-on in the ego lane of a shared corridor: yield
    to the adjacent lane or brake."""
    length = 400.0
    cart = Agent(
        agent_id=0,
        x_m=70.0 + float(rng.uniform(-5.0, 5.0)),
        y_m=0.0,
        vx_mps=-float(rng.uniform(1.2, 2.0)),
        vy_mps=0.0,
        radius_m=0.5,
        kind="cart",
    )
    # A parked obstacle in the passing lane makes the yield non-trivial.
    parked = Obstacle(
        x_m=95.0 + float(rng.uniform(-4.0, 4.0)),
        y_m=2.5,
        radius_m=0.5,
        obstacle_id=0,
    )
    world = World(
        obstacles=[parked], agents=[cart], landmarks=_landmarks(rng, length)
    )
    return CorridorScenario(
        name="oncoming_agent",
        seed=seed,
        description="head-on cart in the ego lane; parked cart in the other",
        world=world,
        lane_map=straight_corridor(length_m=length, n_lanes=2),
        initial_speed_mps=5.6,
        duration_s=16.0,
        n_lanes=2,
        corridor_length_m=length,
    )


@_corridor("pedestrian_platoon")
def _pedestrian_platoon(rng: np.random.Generator, seed: int) -> CorridorScenario:
    """A walking group strung along the lane ahead: follow or pass
    without contact (the tourist-site default)."""
    length = 400.0
    agents = []
    for i in range(3):
        agents.append(
            Agent(
                agent_id=i,
                x_m=18.0 + 8.0 * i + float(rng.uniform(-1.5, 1.5)),
                y_m=float(rng.uniform(-0.6, 0.6)),
                vx_mps=float(rng.uniform(0.9, 1.3)),
                vy_mps=0.0,
                radius_m=0.4,
                kind="pedestrian",
            )
        )
    world = World(agents=agents, landmarks=_landmarks(rng, length))
    return CorridorScenario(
        name="pedestrian_platoon",
        seed=seed,
        description="walking group ahead in-lane; follow or pass",
        world=world,
        lane_map=straight_corridor(length_m=length, n_lanes=2),
        initial_speed_mps=5.6,
        duration_s=16.0,
        n_lanes=2,
        corridor_length_m=length,
    )


@_corridor("cluttered_stop")
def _cluttered_stop(rng: np.random.Generator, seed: int) -> CorridorScenario:
    """Clutter spanning every lane: the only safe outcome is a stop.

    This is the one intentionally *blocked* corridor — the invariant
    harness expects zero collisions and no forward escape, i.e. the
    reactive path (or supervisor) holds the vehicle short of the wall.
    """
    length = 200.0
    wall_x = 30.0 + float(rng.uniform(-2.0, 2.0))
    obstacles = [
        Obstacle(
            x_m=wall_x + float(rng.uniform(-0.5, 0.5)),
            y_m=y,
            radius_m=float(rng.uniform(0.7, 0.9)),
            obstacle_id=i,
        )
        for i, y in enumerate((-1.2, 1.2, 3.6))
    ]
    world = World(obstacles=obstacles, landmarks=_landmarks(rng, length))
    return CorridorScenario(
        name="cluttered_stop",
        seed=seed,
        description="clutter wall across both lanes; stop short of it",
        world=world,
        lane_map=straight_corridor(length_m=length, n_lanes=2),
        initial_speed_mps=5.6,
        duration_s=12.0,
        n_lanes=2,
        corridor_length_m=length,
        blocked=True,
    )


# -- sensor-degraded variants --------------------------------------------------
#
# Each carries a single survivable fault (Sec. III-C: "any single
# failure") layered on one of the clean geometries, so the protected
# no-collision invariant must still hold.


@_corridor("slalom_flaky_camera")
def _slalom_flaky_camera(
    rng: np.random.Generator, seed: int
) -> CorridorScenario:
    """The slalom with Bernoulli camera-frame loss mid-run: the vision
    pipeline flickers while the radar keeps the forward cone truthful."""
    base = _slalom(rng, seed)
    onset = 1.0 + float(rng.uniform(0.0, 1.0))
    fault = CameraFrameDropFault(
        drop_prob=float(rng.uniform(0.3, 0.6)),
        window=FaultWindow(onset, onset + 4.0),
    )
    return CorridorScenario(
        name="slalom_flaky_camera",
        seed=seed,
        description="slalom geometry + camera frame drops (radar intact)",
        world=base.world,
        lane_map=base.lane_map,
        initial_speed_mps=base.initial_speed_mps,
        duration_s=base.duration_s,
        n_lanes=base.n_lanes,
        corridor_length_m=base.corridor_length_m,
        fault_scenario=FaultScenario(
            name=f"slalom-flaky-camera-{seed}",
            faults=(fault,),
            description="camera frame drops over the slalom",
        ),
    )


@_corridor("narrow_gap_gps_denied")
def _narrow_gap_gps_denied(
    rng: np.random.Generator, seed: int
) -> CorridorScenario:
    """The narrow gap under GPS denial: the supervisor caps speed
    (DEGRADED) while the gates are threaded on vision + radar alone."""
    base = _narrow_gap(rng, seed)
    onset = float(rng.uniform(0.5, 1.5))
    fault = GpsDenialFault(window=FaultWindow(onset, onset + 5.0))
    return CorridorScenario(
        name="narrow_gap_gps_denied",
        seed=seed,
        description="narrow-gap gates threaded under GPS denial",
        world=base.world,
        lane_map=base.lane_map,
        initial_speed_mps=base.initial_speed_mps,
        duration_s=base.duration_s,
        n_lanes=base.n_lanes,
        corridor_length_m=base.corridor_length_m,
        fault_scenario=FaultScenario(
            name=f"narrow-gap-gps-denied-{seed}",
            faults=(fault,),
            description="GPS denial across the gates",
        ),
    )


@_corridor("cluttered_stop_lossy_can")
def _cluttered_stop_lossy_can(
    rng: np.random.Generator, seed: int
) -> CorridorScenario:
    """The clutter wall behind a lossy CAN bus: brake frames are dropped
    and delayed, so the stop leans on retransmission + the reactive
    path's direct ECU entry."""
    base = _cluttered_stop(rng, seed)
    onset = float(rng.uniform(0.0, 1.0))
    fault = CanBusFault(
        window=FaultWindow(onset, onset + 5.0),
        loss_prob=float(rng.uniform(0.2, 0.4)),
        extra_delay_s=float(rng.uniform(0.001, 0.004)),
    )
    return CorridorScenario(
        name="cluttered_stop_lossy_can",
        seed=seed,
        description="clutter-wall stop over a lossy, delayed CAN bus",
        world=base.world,
        lane_map=base.lane_map,
        initial_speed_mps=base.initial_speed_mps,
        duration_s=base.duration_s,
        n_lanes=base.n_lanes,
        corridor_length_m=base.corridor_length_m,
        fault_scenario=FaultScenario(
            name=f"cluttered-stop-lossy-can-{seed}",
            faults=(fault,),
            description="CAN loss/delay burst during the approach",
        ),
        blocked=True,
    )


@_corridor("occluded_crossing_stalled")
def _occluded_crossing_stalled(
    rng: np.random.Generator, seed: int
) -> CorridorScenario:
    """The occluded crossing while perception pays a latency stall: the
    Eq. 1 budget is pressured exactly when the pedestrian appears, so
    deadline-miss attribution has something to charge."""
    base = _occluded_crossing(rng, seed)
    onset = float(rng.uniform(1.0, 2.0))
    fault = PerceptionStallFault(
        extra_latency_s=float(rng.uniform(0.15, 0.3)),
        window=FaultWindow(onset, onset + 3.0),
    )
    return CorridorScenario(
        name="occluded_crossing_stalled",
        seed=seed,
        description="occluded crossing under a perception latency stall",
        world=base.world,
        lane_map=base.lane_map,
        initial_speed_mps=base.initial_speed_mps,
        duration_s=base.duration_s,
        n_lanes=base.n_lanes,
        corridor_length_m=base.corridor_length_m,
        fault_scenario=FaultScenario(
            name=f"occluded-crossing-stalled-{seed}",
            faults=(fault,),
            description="perception stall while the pedestrian crosses",
        ),
    )


# -- provider registration -----------------------------------------------------
#
# The hand-named corridor library is the *default* scene provider: bare
# scene names everywhere in the repo ("slalom", "narrow_gap", ...) keep
# resolving here, while qualified ids ("corridor:slalom",
# "procgen:crossroads") address any registered provider.

from .providers import SceneProvider, register_scene_provider  # noqa: E402

register_scene_provider(
    SceneProvider(
        name="corridor",
        list_scenes=corridor_names,
        build=generate_corridor,
    )
)
