"""Per-scenario invariant geometry, precomputed once per scene.

The scalar planner re-derives segment lengths, projection denominators,
and cumulative arc-lengths from raw centerline tuples on every rollout
step of every candidate of every tick.  All of that is invariant for the
life of a scene, so the batched stepper hoists it into a
:class:`SceneCache`: per-segment structure-of-arrays constants
(:class:`~repro.runtime.kernels.LaneSoA`), the planner's candidate-lane
lists, and a gather table that assembles a per-candidate
:class:`~repro.runtime.kernels.LaneBatch` with two fancy-indexing reads.

Caches are keyed by a **scene fingerprint** — a value-equality digest of
every segment's identity, centerline, width, and the lane-change edge
list, in insertion order (the scalar planner's ``locate`` tie-break and
adjacency enumeration both depend on that order, so it is part of the
scene's semantics).  Two maps with equal fingerprints are
interchangeable bit-for-bit; a mutated or regenerated map simply misses
and rebuilds.  Entries live in a small LRU so fleet campaigns that
cycle through hundreds of procgen scenes don't accumulate geometry.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..runtime.kernels import LaneBatch, LaneSoA, lane_soa
from .lanes import LaneMap

#: Maximum number of distinct scenes kept alive at once.
_LRU_CAPACITY = 64

SceneFingerprint = Tuple


def scene_fingerprint(lane_map: LaneMap) -> SceneFingerprint:
    """Value-equality digest of a lane map's planning-relevant state.

    Captures, in insertion order: each segment's id, centerline, and
    width (the inputs to ``locate`` / ``point_at`` / lane progress), and
    each graph edge with its ``lane_change`` flag (the input to the
    planner's adjacency enumeration).  Insertion order is significant:
    ``locate`` breaks lateral-offset ties by dict order and
    ``_adjacent_lanes`` enumerates ``out_edges`` order, so reordering
    *is* a semantic change and must miss the cache.
    """
    segments = tuple(
        (sid, seg.centerline, seg.width_m)
        for sid, seg in lane_map._segments.items()
    )
    edges = tuple(
        (u, v, bool(data.get("lane_change")))
        for u, v, data in lane_map._graph.edges(data=True)
    )
    return (segments, edges)


@dataclass(frozen=True)
class SceneCache:
    """Precomputed invariant geometry for one lane map."""

    fingerprint: SceneFingerprint
    #: Segment ids in map insertion order.
    segment_ids: Tuple[str, ...]
    #: sid -> row index into the stacked arrays below.
    row_of: Dict[str, int]
    #: Stacked per-segment geometry, shape ``[n_segments, S_max]`` each.
    ax: np.ndarray
    ay: np.ndarray
    dx: np.ndarray
    dy: np.ndarray
    length: np.ndarray
    length_sq: np.ndarray
    cum: np.ndarray
    start_x: np.ndarray
    start_y: np.ndarray
    end_x: np.ndarray
    end_y: np.ndarray
    #: The source LaneSegment per row (scalar guard-band fallback).
    segments: Tuple[object, ...]
    #: sid -> the planner's candidate list ``[sid] + adjacent`` in
    #: ``out_edges`` order.
    candidates_of: Dict[str, Tuple[str, ...]]

    def lanes_for(self, sids: List[str]) -> LaneBatch:
        """Assemble a per-candidate :class:`LaneBatch` by gathering rows."""
        idx = np.fromiter(
            (self.row_of[s] for s in sids), dtype=np.intp, count=len(sids)
        )
        return LaneBatch(
            ax=self.ax[idx],
            ay=self.ay[idx],
            dx=self.dx[idx],
            dy=self.dy[idx],
            length=self.length[idx],
            length_sq=self.length_sq[idx],
            cum=self.cum[idx],
            start_x=self.start_x[idx],
            start_y=self.start_y[idx],
            end_x=self.end_x[idx],
            end_y=self.end_y[idx],
            segments=tuple(self.segments[i] for i in idx),
        )


def _build(lane_map: LaneMap, fingerprint: SceneFingerprint) -> SceneCache:
    sids = tuple(lane_map._segments)
    soas: List[LaneSoA] = []
    pad = 1
    for sid in sids:
        seg = lane_map._segments[sid]
        pad = max(pad, len(seg.centerline) - 1)
    for sid in sids:
        soas.append(lane_soa(lane_map._segments[sid], pad_to=pad))

    def stack(attr: str) -> np.ndarray:
        return np.stack([getattr(s, attr) for s in soas])

    graph = lane_map._graph
    candidates_of = {}
    for sid in sids:
        adjacent = tuple(
            v
            for _u, v, data in graph.out_edges(sid, data=True)
            if data.get("lane_change")
        )
        candidates_of[sid] = (sid,) + adjacent
    return SceneCache(
        fingerprint=fingerprint,
        segment_ids=sids,
        row_of={sid: i for i, sid in enumerate(sids)},
        ax=stack("ax"),
        ay=stack("ay"),
        dx=stack("dx"),
        dy=stack("dy"),
        length=stack("length"),
        length_sq=stack("length_sq"),
        cum=stack("cum"),
        start_x=np.array([s.start[0] for s in soas]),
        start_y=np.array([s.start[1] for s in soas]),
        end_x=np.array([s.end[0] for s in soas]),
        end_y=np.array([s.end[1] for s in soas]),
        segments=tuple(s.segment for s in soas),
        candidates_of=candidates_of,
    )


_lru: "OrderedDict[SceneFingerprint, SceneCache]" = OrderedDict()


def cache_for(lane_map: LaneMap) -> SceneCache:
    """The :class:`SceneCache` for *lane_map*, building on first sight.

    The fingerprint is recomputed on every call (cheap: a few tuple
    constructions over data the map already holds), so a mutated map —
    e.g. a regenerated procgen scene re-using a ``LaneMap`` instance —
    can never be served stale geometry.
    """
    fingerprint = scene_fingerprint(lane_map)
    cached = _lru.get(fingerprint)
    if cached is not None:
        _lru.move_to_end(fingerprint)
        return cached
    built = _build(lane_map, fingerprint)
    _lru[fingerprint] = built
    while len(_lru) > _LRU_CAPACITY:
        _lru.popitem(last=False)
    return built


def cache_stats() -> Dict[str, int]:
    """Introspection for tests: current LRU occupancy."""
    return {"entries": len(_lru), "capacity": _LRU_CAPACITY}


def clear_cache() -> None:
    """Drop all cached scenes (tests)."""
    _lru.clear()
