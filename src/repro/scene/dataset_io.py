"""Dataset serialization: save/load KITTI-like drive sequences.

The paper's cloud loop stores captured drives on the vehicle SSD and
replays them offline (training, simulation — Fig. 1).  This module gives
:class:`repro.scene.kitti_like.DriveSequence` a stable on-disk format
(a single ``.npz``), so synthetic datasets can be generated once and
shared/replayed like KITTI logs.
"""

from __future__ import annotations

import os
from typing import List, Union

import numpy as np

from .kitti_like import (
    CameraIntrinsics,
    DriveSequence,
    FeatureObservation,
    Frame,
    ImuSample,
)
from .world import Landmark

_FORMAT_VERSION = 1


def save_sequence(sequence: DriveSequence, path: Union[str, os.PathLike]) -> None:
    """Write a drive sequence to a ``.npz`` file.

    Frames are stored as flat arrays plus an index of per-frame
    observation counts — compact and fast to load.
    """
    frame_meta = np.array(
        [
            (f.index, f.trigger_time_s, f.position[0], f.position[1], f.heading_rad)
            for f in sequence.frames
        ],
        dtype=np.float64,
    ).reshape(len(sequence.frames), 5)
    observation_counts = np.array(
        [len(f.observations) for f in sequence.frames], dtype=np.int64
    )
    observations = np.array(
        [
            (
                o.landmark_id,
                o.u_px,
                o.v_px,
                np.nan if o.depth_m is None else o.depth_m,
            )
            for f in sequence.frames
            for o in f.observations
        ],
        dtype=np.float64,
    ).reshape(-1, 4)
    imu = np.array(
        [
            (s.trigger_time_s, s.accel_body[0], s.accel_body[1], s.yaw_rate_rps)
            for s in sequence.imu
        ],
        dtype=np.float64,
    ).reshape(len(sequence.imu), 4)
    landmarks = np.array(
        [(lm.landmark_id, lm.x_m, lm.y_m, lm.z_m) for lm in sequence.landmarks],
        dtype=np.float64,
    ).reshape(len(sequence.landmarks), 4)
    camera = np.array(
        [
            sequence.camera.focal_px,
            sequence.camera.cx_px,
            sequence.camera.cy_px,
            sequence.camera.width_px,
            sequence.camera.height_px,
        ],
        dtype=np.float64,
    )
    np.savez_compressed(
        path,
        version=np.array([_FORMAT_VERSION]),
        frame_meta=frame_meta,
        observation_counts=observation_counts,
        observations=observations,
        imu=imu,
        landmarks=landmarks,
        camera=camera,
    )


def load_sequence(path: Union[str, os.PathLike]) -> DriveSequence:
    """Read a drive sequence written by :func:`save_sequence`."""
    with np.load(path) as data:
        version = int(data["version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported dataset version {version}; "
                f"this library reads version {_FORMAT_VERSION}"
            )
        frame_meta = data["frame_meta"]
        observation_counts = data["observation_counts"]
        observations = data["observations"]
        imu = data["imu"]
        landmarks = data["landmarks"]
        camera_values = data["camera"]
    camera = CameraIntrinsics(
        focal_px=float(camera_values[0]),
        cx_px=float(camera_values[1]),
        cy_px=float(camera_values[2]),
        width_px=int(camera_values[3]),
        height_px=int(camera_values[4]),
    )
    frames: List[Frame] = []
    cursor = 0
    for meta, count in zip(frame_meta, observation_counts):
        frame_observations = []
        for row in observations[cursor : cursor + int(count)]:
            depth = None if np.isnan(row[3]) else float(row[3])
            frame_observations.append(
                FeatureObservation(
                    landmark_id=int(row[0]),
                    u_px=float(row[1]),
                    v_px=float(row[2]),
                    depth_m=depth,
                )
            )
        cursor += int(count)
        frames.append(
            Frame(
                index=int(meta[0]),
                trigger_time_s=float(meta[1]),
                position=(float(meta[2]), float(meta[3])),
                heading_rad=float(meta[4]),
                observations=tuple(frame_observations),
            )
        )
    imu_samples = tuple(
        ImuSample(
            trigger_time_s=float(row[0]),
            accel_body=(float(row[1]), float(row[2])),
            yaw_rate_rps=float(row[3]),
        )
        for row in imu
    )
    landmark_objects = tuple(
        Landmark(
            landmark_id=int(row[0]),
            x_m=float(row[1]),
            y_m=float(row[2]),
            z_m=float(row[3]),
        )
        for row in landmarks
    )
    return DriveSequence(
        frames=tuple(frames),
        imu=imu_samples,
        landmarks=landmark_objects,
        camera=camera,
    )
