"""Cost model of an autonomous vehicle (paper Sec. III-C, Table II).

The paper frames vehicle cost like data-center TCO: the retail price is a
function of the bill of materials plus indirect costs (servicing, cloud
back-end).  This module provides a composable bill-of-materials, the two
Table II configurations (camera-based vs LiDAR-based), and a simple TCO /
fare model matching the paper's "$1 per trip" deployment example and the
concluding-remarks TCO discussion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from . import calibration


@dataclass(frozen=True)
class CostItem:
    """One bill-of-materials row (Table II)."""

    name: str
    unit_cost_usd: float
    quantity: int = 1

    def __post_init__(self) -> None:
        if self.unit_cost_usd < 0:
            raise ValueError(f"{self.name}: cost must be non-negative")
        if self.quantity < 0:
            raise ValueError(f"{self.name}: quantity must be non-negative")

    @property
    def total_cost_usd(self) -> float:
        return self.unit_cost_usd * self.quantity


@dataclass(frozen=True)
class BillOfMaterials:
    """A named set of cost items, e.g. the sensor suite of one vehicle."""

    items: Tuple[CostItem, ...]

    @property
    def total_cost_usd(self) -> float:
        return sum(item.total_cost_usd for item in self.items)

    def breakdown(self) -> Dict[str, float]:
        return {item.name: item.total_cost_usd for item in self.items}

    def with_item(self, item: CostItem) -> "BillOfMaterials":
        return BillOfMaterials(self.items + (item,))


def camera_vehicle_sensors() -> BillOfMaterials:
    """Table II, top half: the paper's camera-based sensor suite."""
    return BillOfMaterials(
        (
            CostItem("cameras_plus_imu", calibration.COST_CAMERA_IMU_RIG_USD),
            CostItem(
                "radar",
                calibration.COST_RADAR_BANK_USD / calibration.NUM_RADARS,
                quantity=calibration.NUM_RADARS,
            ),
            CostItem(
                "sonar",
                calibration.COST_SONAR_BANK_USD / calibration.NUM_SONARS,
                quantity=calibration.NUM_SONARS,
            ),
            CostItem("gps", calibration.COST_GPS_USD),
        )
    )


def lidar_vehicle_sensors() -> BillOfMaterials:
    """Table II, bottom half: a Waymo-style LiDAR suite."""
    return BillOfMaterials(
        (
            CostItem("long_range_lidar", calibration.COST_LIDAR_LONG_RANGE_USD),
            CostItem(
                "short_range_lidar",
                calibration.COST_LIDAR_SHORT_RANGE_USD,
                quantity=4,
            ),
        )
    )


@dataclass(frozen=True)
class VehicleCost:
    """Retail price plus the sensor BOM it embeds (Table II)."""

    name: str
    sensors: BillOfMaterials
    retail_price_usd: float

    @property
    def sensor_cost_usd(self) -> float:
        return self.sensors.total_cost_usd

    @property
    def sensor_fraction(self) -> float:
        """Share of the retail price attributable to sensors."""
        if self.retail_price_usd == 0:
            return 0.0
        return self.sensor_cost_usd / self.retail_price_usd


def paper_camera_vehicle() -> VehicleCost:
    return VehicleCost(
        name="camera_based",
        sensors=camera_vehicle_sensors(),
        retail_price_usd=calibration.COST_VEHICLE_RETAIL_USD,
    )


def paper_lidar_vehicle() -> VehicleCost:
    return VehicleCost(
        name="lidar_based",
        sensors=lidar_vehicle_sensors(),
        retail_price_usd=calibration.COST_LIDAR_VEHICLE_RETAIL_USD,
    )


@dataclass(frozen=True)
class TcoModel:
    """A simple total-cost-of-ownership model (concluding remarks).

    Amortizes the vehicle over its service life and adds per-day operating
    costs (cloud services, servicing, energy), yielding a required fare for
    a target trip volume — the knob that lets the tourist site charge $1.
    """

    vehicle: VehicleCost
    service_life_days: float = 5 * 365.0
    cloud_cost_per_day_usd: float = 5.0
    service_cost_per_day_usd: float = 10.0
    energy_cost_per_kwh_usd: float = 0.15
    energy_per_day_kwh: float = 6.0

    def __post_init__(self) -> None:
        if self.service_life_days <= 0:
            raise ValueError("service life must be positive")

    @property
    def amortized_vehicle_cost_per_day_usd(self) -> float:
        return self.vehicle.retail_price_usd / self.service_life_days

    @property
    def operating_cost_per_day_usd(self) -> float:
        return (
            self.cloud_cost_per_day_usd
            + self.service_cost_per_day_usd
            + self.energy_cost_per_kwh_usd * self.energy_per_day_kwh
        )

    @property
    def total_cost_per_day_usd(self) -> float:
        return self.amortized_vehicle_cost_per_day_usd + self.operating_cost_per_day_usd

    def breakeven_fare_usd(self, trips_per_day: int) -> float:
        """Fare at which daily revenue covers daily cost."""
        if trips_per_day <= 0:
            raise ValueError("trips per day must be positive")
        return self.total_cost_per_day_usd / trips_per_day

    def daily_profit_usd(self, fare_usd: float, trips_per_day: int) -> float:
        return fare_usd * trips_per_day - self.total_cost_per_day_usd


def cost_comparison() -> Dict[str, Dict[str, float]]:
    """Table II as a dictionary for reports and benchmarks."""
    cam = paper_camera_vehicle()
    lidar = paper_lidar_vehicle()
    return {
        cam.name: {
            **cam.sensors.breakdown(),
            "retail_price": cam.retail_price_usd,
        },
        lidar.name: {
            **lidar.sensors.breakdown(),
            "retail_price": lidar.retail_price_usd,
        },
    }
