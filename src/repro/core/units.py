"""Unit helpers and physical constants used throughout the library.

All internal computation uses SI base units: seconds, meters, watts,
joules, kilograms, and US dollars for cost.  The helpers here exist so
call-sites can state quantities in the units the paper uses (milliseconds,
kilowatts, kW·h, mph, ...) without sprinkling conversion factors around.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------

MS_PER_S = 1_000.0
US_PER_S = 1_000_000.0
NS_PER_S = 1_000_000_000.0
S_PER_HOUR = 3_600.0
S_PER_MINUTE = 60.0


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value / MS_PER_S


def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return value / US_PER_S


def to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * MS_PER_S


def hours(value: float) -> float:
    """Convert hours to seconds."""
    return value * S_PER_HOUR


def to_hours(seconds: float) -> float:
    """Convert seconds to hours."""
    return seconds / S_PER_HOUR


# ---------------------------------------------------------------------------
# Speed / distance
# ---------------------------------------------------------------------------

MPH_PER_MPS = 2.23694
MILES_PER_KM = 0.621371


def mph(value: float) -> float:
    """Convert miles-per-hour to meters-per-second."""
    return value / MPH_PER_MPS


def to_mph(mps: float) -> float:
    """Convert meters-per-second to miles-per-hour."""
    return mps * MPH_PER_MPS


def km(value: float) -> float:
    """Convert kilometers to meters."""
    return value * 1_000.0


def miles(value: float) -> float:
    """Convert miles to meters."""
    return value * 1_000.0 / MILES_PER_KM


# ---------------------------------------------------------------------------
# Energy / power
# ---------------------------------------------------------------------------


def kw(value: float) -> float:
    """Convert kilowatts to watts."""
    return value * 1_000.0


def to_kw(watts: float) -> float:
    """Convert watts to kilowatts."""
    return watts / 1_000.0


def kwh(value: float) -> float:
    """Convert kilowatt-hours to joules."""
    return value * 1_000.0 * S_PER_HOUR


def to_kwh(joules: float) -> float:
    """Convert joules to kilowatt-hours."""
    return joules / (1_000.0 * S_PER_HOUR)


def mj(value: float) -> float:
    """Convert millijoules to joules."""
    return value / 1_000.0


# ---------------------------------------------------------------------------
# Data sizes (used by the RPR engine and the uplink model)
# ---------------------------------------------------------------------------

KB = 1_024
MB = 1_024 * KB
GB = 1_024 * MB
TB = 1_024 * GB


def mbps(value: float) -> float:
    """Convert megabytes-per-second to bytes-per-second."""
    return value * MB


def kbps(value: float) -> float:
    """Convert kilobytes-per-second to bytes-per-second."""
    return value * KB
