"""Calibration constants measured from the paper's deployed vehicles.

Every constant quoted in the paper is collected here, with a provenance
comment naming the section, table, or figure it comes from.  Models in the
rest of the library consume these values; benchmarks compare model outputs
against the paper's *derived* claims.

Units are SI (seconds, meters, watts, joules, dollars) unless the name says
otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

# ---------------------------------------------------------------------------
# Sec. III-A — latency model parameters (Fig. 2, Fig. 3a)
# ---------------------------------------------------------------------------

#: Typical operating speed, m/s ("at a typical speed v of 5.6 m/s").
TYPICAL_SPEED_MPS = 5.6

#: Brake deceleration, m/s^2 ("the brake generates a deceleration a of
#: about 4 m/s^2").
BRAKE_DECEL_MPS2 = 4.0

#: CAN bus transmission latency, seconds ("Tdata is about 1 ms").
CAN_BUS_LATENCY_S = 1e-3

#: Mechanical reaction latency, seconds ("Tmech is about 19 ms").
MECHANICAL_LATENCY_S = 19e-3

#: Mean computing latency of the deployed SoV, seconds (Sec. V-C).
MEAN_COMPUTING_LATENCY_S = 164e-3

#: Best-case computing latency, seconds (Sec. V-C, Fig. 10a).
BEST_CASE_COMPUTING_LATENCY_S = 149e-3

#: Worst-case computing latency, seconds (Sec. III-A).
WORST_CASE_COMPUTING_LATENCY_S = 740e-3

#: Reactive-path latency, seconds ("as low as 30 ms", Sec. IV).
REACTIVE_PATH_LATENCY_S = 30e-3

#: Avoidance ranges the paper derives from the latency model (Sec. III-A,
#: Sec. IV): proactive mean -> 5 m, worst case -> 8.3 m, reactive -> 4.1 m,
#: braking-distance floor -> 4 m.
PAPER_AVOIDANCE_RANGE_MEAN_M = 5.0
PAPER_AVOIDANCE_RANGE_WORST_M = 8.3
PAPER_AVOIDANCE_RANGE_REACTIVE_M = 4.1
PAPER_BRAKING_DISTANCE_M = 4.0

#: Control-command throughput requirement, Hz (Sec. III-A).
THROUGHPUT_REQUIREMENT_HZ = 10.0

# ---------------------------------------------------------------------------
# Sec. III-B — energy model parameters (Eq. 2, Fig. 3b, Table I)
# ---------------------------------------------------------------------------

#: Total battery capacity, joules (6 kW·h).
BATTERY_CAPACITY_J = 6.0 * 1_000.0 * 3_600.0

#: Average vehicle power without autonomy, watts (0.6 kW; peak can be 2 kW).
VEHICLE_POWER_W = 600.0
VEHICLE_PEAK_POWER_W = 2_000.0

#: Additional power for autonomous driving, watts (0.175 kW).
AD_POWER_W = 175.0

#: Table I power breakdown, watts.
SERVER_DYNAMIC_POWER_W = 118.0
SERVER_IDLE_POWER_W = 31.0
VISION_MODULE_POWER_W = 11.0  # FPGA + cameras + IMU + GPS
RADAR_UNIT_POWER_W = 13.0 / 6.0  # Table I lists 13 W for the 6-radar bank
RADAR_BANK_POWER_W = 13.0
SONAR_UNIT_POWER_W = 2.0 / 8.0  # Table I lists 2 W for the 8-sonar bank
SONAR_BANK_POWER_W = 2.0
NUM_RADARS = 6
NUM_SONARS = 8

#: LiDAR powers (Table I; "not used by us").
LIDAR_LONG_RANGE_POWER_W = 60.0
LIDAR_SHORT_RANGE_POWER_W = 8.0

#: Waymo-style LiDAR bank: 1 long-range + 4 short-range, ~92 W (Sec. III-D).
WAYMO_LIDAR_BANK_POWER_W = LIDAR_LONG_RANGE_POWER_W + 4 * LIDAR_SHORT_RANGE_POWER_W

#: Camera bank power ("the power of the 4 cameras in our vehicle is under
#: 1 W", Sec. III-D).
CAMERA_BANK_POWER_W = 1.0

#: Nominal daily operation, hours (tourist-site deployment, Sec. III-B).
DAILY_OPERATION_HOURS = 10.0

# ---------------------------------------------------------------------------
# Sec. III-C — cost model parameters (Table II)
# ---------------------------------------------------------------------------

COST_CAMERA_IMU_RIG_USD = 1_000.0  # 4 cameras + IMU
COST_RADAR_BANK_USD = 3_000.0  # 6 radars
COST_RADAR_UNIT_USD = 500.0  # "today's automotive Radars cost ~$500"
COST_SONAR_BANK_USD = 1_600.0  # 8 sonars
COST_GPS_USD = 1_000.0
COST_VEHICLE_RETAIL_USD = 70_000.0
COST_LIDAR_LONG_RANGE_USD = 80_000.0
COST_LIDAR_SHORT_RANGE_USD = 4_000.0  # x4 = $16,000 in Table II
COST_LIDAR_VEHICLE_RETAIL_USD = 300_000.0  # ">$300,000"
FARE_PER_TRIP_USD = 1.0

# ---------------------------------------------------------------------------
# Sec. III-D — depth quality
# ---------------------------------------------------------------------------

LIDAR_DEPTH_PRECISION_M = 0.02
TOLERABLE_DEPTH_ERROR_M = 0.2
LANE_WIDTH_RANGE_M = (1.0, 3.0)

# ---------------------------------------------------------------------------
# Sec. V — platform latency / power calibration (Fig. 6, Fig. 8, Fig. 10b)
#
# The paper reports exact values for a subset of points (TX2 perception sum
# 844.2 ms; localization 31 ms on shared GPU, 24/25 ms on FPGA; scene
# understanding 120 ms shared vs 77 ms after offload; planning 3 ms; EM
# planner 100 ms).  The remaining per-platform numbers are read off the
# log-scale bars of Fig. 6 and reconciled so that every derived quantity the
# text states is reproduced exactly by the models.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TaskPlatformProfile:
    """Latency and power of one task on one platform."""

    latency_s: float
    power_w: float

    @property
    def energy_j(self) -> float:
        return self.latency_s * self.power_w


#: Perception task latencies (seconds) and powers (watts) per platform.
#: Keys: (task, platform).  Platforms: "cpu", "gpu", "tx2", "fpga".
TASK_PLATFORM_PROFILES: Mapping[Tuple[str, str], TaskPlatformProfile] = {
    # Depth estimation (ELAS).  CPU bar in Fig. 6a reads ~1.3e3 ms.
    ("depth", "cpu"): TaskPlatformProfile(1.289, 80.0),
    ("depth", "gpu"): TaskPlatformProfile(0.035, 120.0),
    ("depth", "tx2"): TaskPlatformProfile(0.350, 15.0),
    ("depth", "fpga"): TaskPlatformProfile(0.150, 6.0),
    # Object detection (DNN).  Dominates perception latency (Sec. V-C).
    ("detection", "cpu"): TaskPlatformProfile(2.100, 80.0),
    ("detection", "gpu"): TaskPlatformProfile(0.070, 120.0),
    ("detection", "tx2"): TaskPlatformProfile(0.450, 15.0),
    ("detection", "fpga"): TaskPlatformProfile(0.250, 8.0),
    # Localization (VIO).  FPGA beats GPU only here (Sec. V-B2):
    # 25 ms on FPGA vs 31 ms on the (shared) GPU.
    ("localization", "cpu"): TaskPlatformProfile(0.100, 80.0),
    ("localization", "gpu"): TaskPlatformProfile(0.028, 120.0),
    ("localization", "tx2"): TaskPlatformProfile(0.0442, 15.0),
    ("localization", "fpga"): TaskPlatformProfile(0.024, 6.0),
    # Tracking (KCF on CPU; radar spatial sync replaces it, Sec. VI-B).
    ("tracking", "cpu"): TaskPlatformProfile(0.007, 80.0),
    ("tracking", "gpu"): TaskPlatformProfile(0.007, 120.0),
    ("tracking", "tx2"): TaskPlatformProfile(0.014, 15.0),
    ("tracking", "fpga"): TaskPlatformProfile(0.010, 6.0),
}

#: TX2 cumulative perception latency stated in Sec. V-A, seconds.
TX2_PERCEPTION_TOTAL_S = 0.8442

#: GPU contention: when scene understanding and localization share the GPU,
#: scene understanding takes 120 ms (vs 77 ms alone) and localization 31 ms
#: (vs 28 ms alone).  Fig. 8.
GPU_SHARED_SCENE_UNDERSTANDING_S = 0.120
GPU_ALONE_SCENE_UNDERSTANDING_S = 0.077
GPU_SHARED_LOCALIZATION_S = 0.031
FPGA_LOCALIZATION_S = 0.024

#: Perception speedup from offloading localization to the FPGA (Sec. V-B2).
PAPER_PERCEPTION_SPEEDUP = 120.0 / 77.0  # ~1.6x
PAPER_END_TO_END_REDUCTION = 0.23  # "23% end-to-end latency reduction"

#: FPGA resource usage of the localization accelerator (Sec. V-B2).
LOCALIZATION_ACCEL_RESOURCES = {
    "luts": 200_000,
    "registers": 120_000,
    "brams": 600,
    "dsps": 800,
}
LOCALIZATION_ACCEL_POWER_W = 6.0

#: Hardware synchronizer resources (Sec. VI-A3).
SYNCHRONIZER_RESOURCES = {"luts": 1_443, "registers": 1_587}
SYNCHRONIZER_POWER_W = 5e-3
SYNCHRONIZER_LATENCY_S = 1e-3  # "incurs less than 1 ms delay"

#: Zynq UltraScale+-class budgets used by the resource accountant.
ZYNQ_RESOURCE_BUDGET = {
    "luts": 274_080,
    "registers": 548_160,
    "brams": 912,
    "dsps": 2_520,
}

# ---------------------------------------------------------------------------
# Sec. V-B3 — runtime partial reconfiguration (Fig. 9)
# ---------------------------------------------------------------------------

RPR_CPU_THROUGHPUT_BPS = 300 * 1_024.0  # CPU-driven path: 300 KB/s
RPR_ENGINE_THROUGHPUT_BPS = 350 * 1_024.0 * 1_024.0  # ours: >350 MB/s
RPR_FIFO_BYTES = 128
RPR_BITSTREAM_MAX_BYTES = 10 * 1_024 * 1_024  # both bitstreams < 10 MB
#: Typical *partial* bitstream size.  Note: the paper states <10 MB files,
#: <3 ms delay, and >350 MB/s throughput — mutually consistent only for
#: ~1 MB partial bitstreams (350 MB/s x 3 ms ~= 1 MB), so the per-variant
#: partial bitstreams we simulate are 1 MB.
RPR_TYPICAL_BITSTREAM_BYTES = 1 * 1_024 * 1_024
RPR_MAX_DELAY_S = 3e-3
RPR_ENERGY_PER_RECONFIG_J = 2.1e-3
RPR_ENGINE_RESOURCES = {"luts": 400, "registers": 400}

#: Feature extraction vs feature tracking (Sec. V-B3): tracking executes in
#: 10 ms, "50% faster than" extraction.
FEATURE_TRACKING_LATENCY_S = 0.010
FEATURE_EXTRACTION_LATENCY_S = 0.020

# ---------------------------------------------------------------------------
# Sec. V-C — end-to-end latency distribution (Fig. 10)
# ---------------------------------------------------------------------------

#: Stage means consistent with: mean total 164 ms, planning 3 ms, perception
#: 77 ms (scene understanding dictates; localization runs in parallel), so
#: sensing = 164 - 77 - 3 = 84 ms — matching "sensing constitutes almost 50%
#: of the SoV latency".
SENSING_MEAN_LATENCY_S = 0.084
PERCEPTION_MEAN_LATENCY_S = 0.077
PLANNING_MEAN_LATENCY_S = 0.003

SENSING_BEST_LATENCY_S = 0.074
PERCEPTION_BEST_LATENCY_S = 0.072
PLANNING_BEST_LATENCY_S = 0.003

#: Localization latency statistics (Sec. V-C).
LOCALIZATION_MEDIAN_S = 0.025
LOCALIZATION_STDDEV_S = 0.014

#: Fraction of time the deployed vehicles stay on the proactive path.
PAPER_PROACTIVE_FRACTION = 0.90

#: Pipeline operating rates (Sec. V-C): 10-30 Hz.
PIPELINE_RATE_RANGE_HZ = (10.0, 30.0)

#: Fig. 10b average-case perception task latencies, seconds.  Chosen so
#: detection + tracking (serialized) = 77 ms = scene-understanding latency.
FIG10B_TASK_LATENCIES_S: Dict[str, float] = {
    "depth": 0.035,
    "detection": 0.070,
    "tracking": 0.007,
    "localization": 0.025,
}

# ---------------------------------------------------------------------------
# Sec. V-C / Sec. VI-B — planner and co-design comparisons
# ---------------------------------------------------------------------------

MPC_PLANNER_LATENCY_S = 0.003
EM_PLANNER_LATENCY_S = 0.100  # "33x more expensive than our planner"
PAPER_EM_OVER_MPC = 33.0

EKF_FUSION_LATENCY_S = 1e-3  # GPS-VIO fusion executes in ~1 ms
VIO_LATENCY_S = 0.024
SPATIAL_SYNC_LATENCY_S = 1e-3  # radar<->vision association, 1 ms
PAPER_KCF_OVER_SPATIAL_SYNC = 100.0

# ---------------------------------------------------------------------------
# Sec. VI-A — sensor synchronization (Fig. 11, Fig. 12)
# ---------------------------------------------------------------------------

CAMERA_RATE_HZ = 30.0
IMU_RATE_HZ = 240.0
IMU_TO_CAMERA_DOWNSAMPLE = 8  # camera trigger = IMU trigger / 8
IMU_SAMPLE_BYTES = 20
FRAME_BYTES_1080P = 6 * 1_024 * 1_024  # "about 6 MB for an 1080p frame"

ISP_LATENCY_VARIATION_S = 0.010  # "~10 ms variation"
APP_LATENCY_VARIATION_S = 0.100  # "~100 ms variation" up the CPU stack

#: Fig. 11a anchor: a 30 ms stereo offset yields >5 m depth error.
SYNC_30MS_DEPTH_ERROR_M = 5.0
#: Fig. 11b anchor: a 40 ms camera/IMU offset yields ~10 m localization error.
SYNC_40MS_LOCALIZATION_ERROR_M = 10.0

# ---------------------------------------------------------------------------
# Sec. II — deployment context
# ---------------------------------------------------------------------------

VEHICLE_TOP_SPEED_MPS = 20.0 / 2.23694  # 20 mph cap
FLEET_TOTAL_MILES = 200_000.0

#: Uplink model (Sec. II-B): condensed log once an hour, a few KB; raw data
#: up to 1 TB/day kept on the on-vehicle SSD.
LOG_UPLOAD_PERIOD_S = 3_600.0
LOG_UPLOAD_SIZE_BYTES = 4 * 1_024
RAW_DATA_PER_DAY_BYTES = 1_024 ** 4  # 1 TB


def task_profile(task: str, platform: str) -> TaskPlatformProfile:
    """Look up the calibrated latency/power profile for *task* on *platform*.

    Raises ``KeyError`` with a helpful message for unknown combinations.
    """
    try:
        return TASK_PLATFORM_PROFILES[(task, platform)]
    except KeyError:
        known_tasks = sorted({t for t, _ in TASK_PLATFORM_PROFILES})
        known_platforms = sorted({p for _, p in TASK_PLATFORM_PROFILES})
        raise KeyError(
            f"no calibration for task={task!r} on platform={platform!r}; "
            f"known tasks {known_tasks}, platforms {known_platforms}"
        ) from None
