"""Fleet-level TCO model (paper Sec. VII, "'TCO' Model for Autonomous
Vehicles").

The conclusion sketches a future contribution: "a comprehensive cost model
for autonomous vehicles, which could enable cost-effective optimization
opportunities and reveal new design trade-offs such as cost vs. latency,
similar in a way that the TCO model drives new optimizations in data
centers."  This module builds that model on top of the Sec. III pieces:

* per-vehicle cost = amortized vehicle + energy + servicing;
* fleet-shared cost = cloud services (maps, training) amortized over the
  fleet — the scale economics;
* **cost vs latency**: a compute tier choice (cheap/slow vs pricey/fast)
  changes Tcomp, which changes the avoidance range, which changes how
  often the vehicle leaves the efficient proactive path — monetized as
  trip throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from . import calibration
from .energy_model import EnergyModel
from .latency_model import LatencyModel


@dataclass(frozen=True)
class ComputeTier:
    """One computing-platform option for the SoV."""

    name: str
    unit_cost_usd: float
    mean_tcomp_s: float
    power_w: float


def paper_compute_tiers() -> List[ComputeTier]:
    """Representative tiers bracketing the paper's design point."""
    return [
        ComputeTier("mobile_soc", 600.0, 0.90, 20.0),  # TX2-class: too slow
        ComputeTier("our_platform", 2_000.0, 0.164, 129.0),  # FPGA + server
        ComputeTier(
            "automotive_asic", 10_000.0, 0.120, 250.0
        ),  # PX2-class: fast, pricey, power-hungry
        ComputeTier(
            "dual_server", 4_000.0, 0.140, 278.0
        ),  # extra server: small gain, big power
    ]


@dataclass(frozen=True)
class FleetTcoModel:
    """Fleet economics parameterized by the compute tier.

    ``trip_length_m``/``fare_usd`` describe the service; the tier's
    latency determines an *effective average speed*: segments where the
    proactive path cannot cover an appearing obstacle force reactive
    braking episodes that cost ``reactive_episode_s`` each, at a rate
    proportional to how far the tier's avoidance range falls short of the
    ideal sensing range.
    """

    fleet_size: int = 10
    service_life_days: float = 5 * 365.0
    operating_hours_per_day: float = calibration.DAILY_OPERATION_HOURS
    trip_length_m: float = 1_200.0
    fare_usd: float = calibration.FARE_PER_TRIP_USD
    vehicle_base_cost_usd: float = 60_000.0
    cloud_cost_per_day_usd: float = 120.0  # maps + training, fleet-shared
    service_cost_per_vehicle_day_usd: float = 10.0
    energy_cost_per_kwh_usd: float = 0.15
    cruise_speed_mps: float = calibration.TYPICAL_SPEED_MPS
    obstacle_rate_per_km: float = 2.0  # appearing obstacles per km
    reactive_episode_s: float = 8.0  # time lost per forced hard stop
    ideal_reach_m: float = 9.0  # a very fast system avoids everything here
    max_safe_reach_m: float = 8.5  # tiers needing more room are unsafe

    def __post_init__(self) -> None:
        if self.fleet_size < 1:
            raise ValueError("fleet must have at least one vehicle")

    # -- latency -> service quality ------------------------------------------

    def forced_stop_fraction(self, tier: ComputeTier) -> float:
        """Fraction of appearing obstacles the proactive path cannot cover.

        Obstacles appear uniformly in (braking floor, ideal reach); those
        inside the tier's avoidance range force a reactive episode.
        """
        model = LatencyModel()
        reach = model.min_avoidable_distance_m(tier.mean_tcomp_s)
        floor = model.braking_distance_m
        span = self.ideal_reach_m - floor
        if span <= 0:
            return 0.0
        return min(1.0, max(0.0, (reach - floor) / span))

    def is_safe(self, tier: ComputeTier) -> bool:
        """Safety gate: the tier must cover obstacles appearing within the
        sensing horizon — the reason the paper rejects mobile SoCs outright
        rather than merely pricing their slowness (Sec. V-A)."""
        reach = LatencyModel().min_avoidable_distance_m(tier.mean_tcomp_s)
        return reach <= self.max_safe_reach_m

    def effective_speed_mps(self, tier: ComputeTier) -> float:
        """Average speed once reactive episodes are charged."""
        stops_per_m = (
            self.obstacle_rate_per_km / 1_000.0 * self.forced_stop_fraction(tier)
        )
        seconds_per_m = 1.0 / self.cruise_speed_mps + (
            stops_per_m * self.reactive_episode_s
        )
        return 1.0 / seconds_per_m

    def trips_per_vehicle_day(self, tier: ComputeTier) -> float:
        # Driving hours are limited by the battery under the tier's power.
        energy = EnergyModel(ad_power_w=calibration.AD_POWER_W
                             - calibration.SERVER_DYNAMIC_POWER_W
                             - calibration.SERVER_IDLE_POWER_W
                             + tier.power_w)
        driving_s = min(
            energy.driving_time_s, self.operating_hours_per_day * 3_600.0
        )
        trip_s = self.trip_length_m / self.effective_speed_mps(tier)
        return driving_s / trip_s

    # -- money ------------------------------------------------------------------

    def vehicle_cost_per_day_usd(self, tier: ComputeTier) -> float:
        capital = (
            self.vehicle_base_cost_usd + tier.unit_cost_usd
        ) / self.service_life_days
        energy_kwh = (
            (calibration.VEHICLE_POWER_W + tier.power_w)
            * self.operating_hours_per_day
            / 1_000.0
        )
        return (
            capital
            + self.service_cost_per_vehicle_day_usd
            + energy_kwh * self.energy_cost_per_kwh_usd
        )

    def fleet_cost_per_day_usd(self, tier: ComputeTier) -> float:
        return (
            self.fleet_size * self.vehicle_cost_per_day_usd(tier)
            + self.cloud_cost_per_day_usd
        )

    def fleet_revenue_per_day_usd(self, tier: ComputeTier) -> float:
        return (
            self.fleet_size * self.trips_per_vehicle_day(tier) * self.fare_usd
        )

    def fleet_profit_per_day_usd(self, tier: ComputeTier) -> float:
        return self.fleet_revenue_per_day_usd(tier) - self.fleet_cost_per_day_usd(
            tier
        )

    def compare_tiers(
        self, tiers: Optional[Iterable[ComputeTier]] = None
    ) -> List[Tuple[ComputeTier, float]]:
        """Tiers ranked by daily fleet profit (best first)."""
        tiers = list(tiers) if tiers is not None else paper_compute_tiers()
        ranked = [
            (
                tier,
                self.fleet_profit_per_day_usd(tier)
                if self.is_safe(tier)
                else float("-inf"),
            )
            for tier in tiers
        ]
        ranked.sort(key=lambda pair: pair[1], reverse=True)
        return ranked

    def best_tier(
        self, tiers: Optional[Iterable[ComputeTier]] = None
    ) -> ComputeTier:
        return self.compare_tiers(tiers)[0][0]
