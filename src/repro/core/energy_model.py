"""Energy and driving-time model (paper Sec. III-B, Eq. 2, Fig. 3b, Table I).

The paper models the driving time lost to the autonomous-driving (AD)
payload as::

    Treduced = E / Pv  -  E / (Pv + Pad)                          (2)

where ``E`` is battery capacity, ``Pv`` the base vehicle power, and ``Pad``
the additional AD power.  This module provides Eq. 2, the Table I power
breakdown as a composable inventory, and the what-if scenarios the paper
walks through (adding a server idle/loaded, switching to a Waymo-style
LiDAR bank).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Tuple

from . import calibration
from .units import S_PER_HOUR, to_hours


@dataclass(frozen=True)
class PowerComponent:
    """One row of a power inventory (Table I)."""

    name: str
    unit_power_w: float
    quantity: int = 1

    def __post_init__(self) -> None:
        if self.unit_power_w < 0:
            raise ValueError(f"{self.name}: power must be non-negative")
        if self.quantity < 0:
            raise ValueError(f"{self.name}: quantity must be non-negative")

    @property
    def total_power_w(self) -> float:
        return self.unit_power_w * self.quantity


@dataclass(frozen=True)
class PowerInventory:
    """A named collection of power components; Table I is one of these."""

    components: Tuple[PowerComponent, ...]

    @property
    def total_power_w(self) -> float:
        """Explicit left-fold in declared component order.

        The fold order is part of the contract: inventories built by
        :meth:`with_component` / :meth:`without` must report bit-identical
        totals for identical component sequences, so the reduction must
        not depend on any intermediate container's iteration order.
        """
        total = 0.0
        for c in self.components:
            total += c.total_power_w
        return total

    def breakdown(self) -> Dict[str, float]:
        """Component name -> total watts."""
        return {c.name: c.total_power_w for c in self.components}

    def with_component(self, component: PowerComponent) -> "PowerInventory":
        """Return a new inventory with *component* appended."""
        return PowerInventory(self.components + (component,))

    def without(self, name: str) -> "PowerInventory":
        """Return a new inventory with the named component removed."""
        remaining = tuple(c for c in self.components if c.name != name)
        if len(remaining) == len(self.components):
            raise KeyError(f"no component named {name!r}")
        return PowerInventory(remaining)


def paper_ad_inventory() -> PowerInventory:
    """Table I: the AD power inventory of the deployed vehicle (175 W)."""
    return PowerInventory(
        (
            PowerComponent("server_dynamic", calibration.SERVER_DYNAMIC_POWER_W),
            PowerComponent("server_idle", calibration.SERVER_IDLE_POWER_W),
            PowerComponent("vision_module", calibration.VISION_MODULE_POWER_W),
            PowerComponent(
                "radar_bank",
                calibration.RADAR_BANK_POWER_W / calibration.NUM_RADARS,
                quantity=calibration.NUM_RADARS,
            ),
            PowerComponent(
                "sonar_bank",
                calibration.SONAR_BANK_POWER_W / calibration.NUM_SONARS,
                quantity=calibration.NUM_SONARS,
            ),
        )
    )


def waymo_lidar_bank() -> PowerInventory:
    """The LiDAR bank the paper contrasts with (1 long + 4 short, ~92 W)."""
    return PowerInventory(
        (
            PowerComponent("lidar_long_range", calibration.LIDAR_LONG_RANGE_POWER_W),
            PowerComponent(
                "lidar_short_range",
                calibration.LIDAR_SHORT_RANGE_POWER_W,
                quantity=4,
            ),
        )
    )


@dataclass(frozen=True)
class EnergyModel:
    """Eq. 2 driving-time model.

    Parameters default to the paper's vehicle: 6 kW·h battery, 0.6 kW base
    load, 175 W AD payload.
    """

    battery_capacity_j: float = calibration.BATTERY_CAPACITY_J
    vehicle_power_w: float = calibration.VEHICLE_POWER_W
    ad_power_w: float = calibration.AD_POWER_W

    def __post_init__(self) -> None:
        if self.battery_capacity_j <= 0:
            raise ValueError("battery capacity must be positive")
        if self.vehicle_power_w <= 0:
            raise ValueError("vehicle power must be positive")
        if self.ad_power_w < 0:
            raise ValueError("AD power must be non-negative")

    @property
    def base_driving_time_s(self) -> float:
        """Driving time with autonomy disabled: ``E / Pv`` (10 h)."""
        return self.battery_capacity_j / self.vehicle_power_w

    @property
    def driving_time_s(self) -> float:
        """Driving time with the AD payload: ``E / (Pv + Pad)`` (~7.7 h)."""
        return self.battery_capacity_j / (self.vehicle_power_w + self.ad_power_w)

    @property
    def reduced_driving_time_s(self) -> float:
        """Eq. 2: driving time lost to the AD payload."""
        return self.base_driving_time_s - self.driving_time_s

    def reduced_driving_time_for(self, ad_power_w: float) -> float:
        """Eq. 2 evaluated at an alternative AD power (the Fig. 3b x-axis)."""
        if ad_power_w < 0:
            raise ValueError("AD power must be non-negative")
        return self.base_driving_time_s - self.battery_capacity_j / (
            self.vehicle_power_w + ad_power_w
        )

    def reduction_curve(
        self, ad_powers_w: Iterable[float]
    ) -> List[Tuple[float, float]]:
        """The Fig. 3b curve: (Pad watts, reduced driving time hours)."""
        return [
            (p, to_hours(self.reduced_driving_time_for(p))) for p in ad_powers_w
        ]

    def with_extra_load(self, extra_power_w: float) -> "EnergyModel":
        """A new model with *extra_power_w* added to the AD payload."""
        return EnergyModel(
            battery_capacity_j=self.battery_capacity_j,
            vehicle_power_w=self.vehicle_power_w,
            ad_power_w=self.ad_power_w + extra_power_w,
        )

    def revenue_time_lost_fraction(
        self,
        extra_power_w: float,
        daily_operation_hours: float = calibration.DAILY_OPERATION_HOURS,
    ) -> float:
        """Fraction of a workday lost by adding *extra_power_w* of load.

        The paper's example: an additional idle server (31 W) costs 0.3 h of
        a 10-hour day, i.e. a 3% revenue loss.
        """
        if daily_operation_hours <= 0:
            raise ValueError("daily operation must be positive")
        lost_s = self.with_extra_load(extra_power_w).reduced_driving_time_s
        lost_s -= self.reduced_driving_time_s
        return to_hours(lost_s) / daily_operation_hours


@dataclass(frozen=True)
class Scenario:
    """One labelled point on the Fig. 3b curve."""

    name: str
    ad_power_w: float
    reduced_driving_time_h: float


def fig3b_scenarios(model: EnergyModel | None = None) -> List[Scenario]:
    """The four labelled operating points in Fig. 3b.

    * the current system (175 W);
    * the current system with a Waymo-style LiDAR bank added (+92 W);
    * one additional server at idle (+31 W);
    * one additional server at full load (+149 W dynamic+idle).
    """
    model = model or EnergyModel()
    extra = {
        "current_system": 0.0,
        "use_lidar": waymo_lidar_bank().total_power_w
        - calibration.CAMERA_BANK_POWER_W,
        "plus_one_server_idle": calibration.SERVER_IDLE_POWER_W,
        "plus_one_server_full_load": calibration.SERVER_IDLE_POWER_W
        + calibration.SERVER_DYNAMIC_POWER_W,
    }
    scenarios = []
    for name, extra_w in extra.items():
        pad = model.ad_power_w + extra_w
        scenarios.append(
            Scenario(
                name=name,
                ad_power_w=pad,
                reduced_driving_time_h=to_hours(model.reduced_driving_time_for(pad)),
            )
        )
    return scenarios
