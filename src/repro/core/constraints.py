"""Design-constraint checking (paper Sec. III).

The paper's thesis is that the computing system must be designed against
*end-to-end vehicle* constraints — latency, throughput, energy, thermal,
and cost — rather than in isolation.  This module turns Sec. III into an
executable checklist: a :class:`ConstraintSet` evaluates a candidate design
(latency profile + power inventory + BOM) and reports which requirements
hold, with margins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from . import calibration
from .cost_model import BillOfMaterials
from .energy_model import EnergyModel, PowerInventory
from .latency_model import LatencyModel


@dataclass(frozen=True)
class ConstraintResult:
    """Outcome of evaluating one constraint."""

    name: str
    satisfied: bool
    actual: float
    limit: float
    unit: str
    note: str = ""

    @property
    def margin(self) -> float:
        """Positive slack (limit - actual) in the constraint's unit.

        For constraints where larger-is-better the caller flips the sign
        before constructing the result, so margin is always slack.
        """
        return self.limit - self.actual

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "PASS" if self.satisfied else "FAIL"
        return (
            f"[{status}] {self.name}: {self.actual:.4g} {self.unit} "
            f"(limit {self.limit:.4g} {self.unit}) {self.note}"
        )


@dataclass(frozen=True)
class DesignCandidate:
    """A candidate SoV design to evaluate against the constraint set."""

    computing_latency_s: float
    throughput_hz: float
    ad_power_inventory: PowerInventory
    sensor_bom: Optional[BillOfMaterials] = None
    peak_power_w: Optional[float] = None

    @property
    def ad_power_w(self) -> float:
        return self.ad_power_inventory.total_power_w


@dataclass(frozen=True)
class ConstraintSet:
    """The Sec. III requirements for a micromobility vehicle.

    Parameters default to the paper's values:

    * obstacles at ``min_object_distance_m`` (5 m) must be avoidable;
    * control commands at >= 10 Hz;
    * total computing power under 200 W (the thermal comfort bound the
      paper states lets it use conventional cooling);
    * AD driving-time loss per day under ``max_daily_time_loss_fraction``;
    * sensor BOM under ``max_sensor_cost_usd``.
    """

    min_object_distance_m: float = calibration.PAPER_AVOIDANCE_RANGE_MEAN_M
    min_throughput_hz: float = calibration.THROUGHPUT_REQUIREMENT_HZ
    max_ad_power_w: float = 200.0
    max_daily_time_loss_fraction: float = 0.25
    max_sensor_cost_usd: float = 10_000.0
    latency_model: LatencyModel = field(default_factory=LatencyModel)
    energy_model: EnergyModel = field(default_factory=EnergyModel)

    def evaluate(self, candidate: DesignCandidate) -> List[ConstraintResult]:
        """Evaluate every constraint; returns one result per requirement."""
        results = [
            self._latency(candidate),
            self._throughput(candidate),
            self._power(candidate),
            self._driving_time(candidate),
        ]
        if candidate.sensor_bom is not None:
            results.append(self._cost(candidate))
        return results

    def satisfied(self, candidate: DesignCandidate) -> bool:
        """True iff every constraint passes."""
        return all(r.satisfied for r in self.evaluate(candidate))

    def report(self, candidate: DesignCandidate) -> str:
        """Human-readable multi-line evaluation report."""
        return "\n".join(str(r) for r in self.evaluate(candidate))

    # -- individual constraints ----------------------------------------------

    def _latency(self, candidate: DesignCandidate) -> ConstraintResult:
        limit = self.latency_model.latency_requirement_s(self.min_object_distance_m)
        return ConstraintResult(
            name="computing_latency",
            satisfied=candidate.computing_latency_s <= limit,
            actual=candidate.computing_latency_s,
            limit=limit,
            unit="s",
            note=f"to avoid objects at {self.min_object_distance_m} m",
        )

    def _throughput(self, candidate: DesignCandidate) -> ConstraintResult:
        # Larger-is-better: express as negated values so margin stays slack.
        return ConstraintResult(
            name="control_throughput",
            satisfied=candidate.throughput_hz >= self.min_throughput_hz,
            actual=-candidate.throughput_hz,
            limit=-self.min_throughput_hz,
            unit="Hz (negated)",
            note="control commands per second",
        )

    def _power(self, candidate: DesignCandidate) -> ConstraintResult:
        actual = candidate.peak_power_w or candidate.ad_power_w
        return ConstraintResult(
            name="ad_power",
            satisfied=actual <= self.max_ad_power_w,
            actual=actual,
            limit=self.max_ad_power_w,
            unit="W",
            note="thermal comfort bound for conventional cooling",
        )

    def _driving_time(self, candidate: DesignCandidate) -> ConstraintResult:
        model = EnergyModel(
            battery_capacity_j=self.energy_model.battery_capacity_j,
            vehicle_power_w=self.energy_model.vehicle_power_w,
            ad_power_w=candidate.ad_power_w,
        )
        lost_fraction = (
            model.reduced_driving_time_s
            / (calibration.DAILY_OPERATION_HOURS * 3_600.0)
        )
        return ConstraintResult(
            name="daily_driving_time_loss",
            satisfied=lost_fraction <= self.max_daily_time_loss_fraction,
            actual=lost_fraction,
            limit=self.max_daily_time_loss_fraction,
            unit="fraction",
            note="driving time lost to the AD payload per day",
        )

    def _cost(self, candidate: DesignCandidate) -> ConstraintResult:
        assert candidate.sensor_bom is not None
        return ConstraintResult(
            name="sensor_cost",
            satisfied=candidate.sensor_bom.total_cost_usd <= self.max_sensor_cost_usd,
            actual=candidate.sensor_bom.total_cost_usd,
            limit=self.max_sensor_cost_usd,
            unit="USD",
            note="sensor bill of materials",
        )
