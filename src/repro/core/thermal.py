"""Thermal model (paper Sec. III-B, "Thermal Constraint").

"Since we have managed to optimize the total computing power consumption
well under 200 W, thermal constraints do not appear to be a problem in
various commercial deployment environments, where temperatures range from
-20 C to +40 C.  Conventional cooling techniques (e.g., fans) for server
systems are used."

A simple steady-state model: the enclosure has a thermal resistance to
ambient (lower with forced-air cooling); component temperature is ambient
plus power times resistance.  The model answers the paper's two questions:
does the 175 W payload stay under the component limit across the
deployment ambient range with fans, and where does the budget break.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from . import calibration

#: The paper's deployment ambient range, degrees C.
DEPLOYMENT_AMBIENT_RANGE_C = (-20.0, 40.0)


@dataclass(frozen=True)
class CoolingSolution:
    """One cooling option with its thermal resistance and overhead."""

    name: str
    thermal_resistance_c_per_w: float
    fan_power_w: float = 0.0

    def __post_init__(self) -> None:
        if self.thermal_resistance_c_per_w <= 0:
            raise ValueError("thermal resistance must be positive")
        if self.fan_power_w < 0:
            raise ValueError("fan power must be non-negative")


def passive_cooling() -> CoolingSolution:
    """A sealed, fanless enclosure."""
    return CoolingSolution("passive", thermal_resistance_c_per_w=0.60)


def conventional_fans() -> CoolingSolution:
    """The paper's choice: server-style forced air."""
    return CoolingSolution(
        "conventional_fans", thermal_resistance_c_per_w=0.20, fan_power_w=8.0
    )


def liquid_cooling() -> CoolingSolution:
    """The expensive option the paper avoids needing."""
    return CoolingSolution(
        "liquid", thermal_resistance_c_per_w=0.08, fan_power_w=25.0
    )


@dataclass(frozen=True)
class ThermalModel:
    """Steady-state enclosure thermal model."""

    cooling: CoolingSolution
    component_limit_c: float = 85.0  # commercial-grade silicon

    def steady_state_temp_c(self, power_w: float, ambient_c: float) -> float:
        """Component temperature at a dissipated power and ambient."""
        if power_w < 0:
            raise ValueError("power must be non-negative")
        total = power_w + self.cooling.fan_power_w
        return ambient_c + total * self.cooling.thermal_resistance_c_per_w

    def within_limit(self, power_w: float, ambient_c: float) -> bool:
        return self.steady_state_temp_c(power_w, ambient_c) <= self.component_limit_c

    def max_power_w(self, ambient_c: float) -> float:
        """Largest payload that stays under the component limit."""
        headroom = self.component_limit_c - ambient_c
        if headroom <= 0:
            return 0.0
        return max(
            0.0,
            headroom / self.cooling.thermal_resistance_c_per_w
            - self.cooling.fan_power_w,
        )

    def check_deployment_range(
        self,
        power_w: float = calibration.AD_POWER_W,
        ambient_range_c: Tuple[float, float] = DEPLOYMENT_AMBIENT_RANGE_C,
    ) -> bool:
        """The Sec. III-B claim: OK across -20 C to +40 C."""
        return all(
            self.within_limit(power_w, ambient)
            for ambient in ambient_range_c
        )


def cooling_comparison(
    power_w: float = calibration.AD_POWER_W,
    ambient_c: float = DEPLOYMENT_AMBIENT_RANGE_C[1],
) -> List[Tuple[str, float, bool]]:
    """(name, steady temp at the hot ambient, within limit) per option."""
    rows = []
    for cooling in (passive_cooling(), conventional_fans(), liquid_cooling()):
        model = ThermalModel(cooling=cooling)
        temp = model.steady_state_temp_c(power_w, ambient_c)
        rows.append((cooling.name, temp, model.within_limit(power_w, ambient_c)))
    return rows
