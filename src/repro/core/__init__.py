"""Core analytical models from Sec. III of the paper.

Public surface:

* :mod:`repro.core.latency_model` — Eq. 1 end-to-end latency model.
* :mod:`repro.core.energy_model` — Eq. 2 driving-time model, Table I.
* :mod:`repro.core.cost_model` — Table II bill of materials and TCO.
* :mod:`repro.core.constraints` — executable Sec. III constraint checklist.
* :mod:`repro.core.calibration` — every constant the paper reports.
"""

from .calibration import TaskPlatformProfile, task_profile
from .fleet import ComputeTier, FleetTcoModel, paper_compute_tiers
from .thermal import (
    CoolingSolution,
    ThermalModel,
    conventional_fans,
    cooling_comparison,
    liquid_cooling,
    passive_cooling,
)
from .constraints import ConstraintResult, ConstraintSet, DesignCandidate
from .cost_model import (
    BillOfMaterials,
    CostItem,
    TcoModel,
    VehicleCost,
    camera_vehicle_sensors,
    cost_comparison,
    lidar_vehicle_sensors,
    paper_camera_vehicle,
    paper_lidar_vehicle,
)
from .energy_model import (
    EnergyModel,
    PowerComponent,
    PowerInventory,
    Scenario,
    fig3b_scenarios,
    paper_ad_inventory,
    waymo_lidar_bank,
)
from .latency_model import (
    LatencyBreakdown,
    LatencyModel,
    LatencyRequirementPoint,
    computing_fraction,
    end_to_end_latency_s,
    paper_breakdown_best,
    paper_breakdown_mean,
)

__all__ = [
    "BillOfMaterials",
    "ComputeTier",
    "ConstraintResult",
    "CoolingSolution",
    "ConstraintSet",
    "CostItem",
    "DesignCandidate",
    "EnergyModel",
    "FleetTcoModel",
    "LatencyBreakdown",
    "LatencyModel",
    "LatencyRequirementPoint",
    "PowerComponent",
    "PowerInventory",
    "Scenario",
    "TaskPlatformProfile",
    "TcoModel",
    "ThermalModel",
    "VehicleCost",
    "camera_vehicle_sensors",
    "computing_fraction",
    "conventional_fans",
    "cooling_comparison",
    "cost_comparison",
    "end_to_end_latency_s",
    "fig3b_scenarios",
    "lidar_vehicle_sensors",
    "liquid_cooling",
    "paper_ad_inventory",
    "passive_cooling",
    "paper_breakdown_best",
    "paper_breakdown_mean",
    "paper_camera_vehicle",
    "paper_compute_tiers",
    "paper_lidar_vehicle",
    "task_profile",
    "waymo_lidar_bank",
]
