"""End-to-end latency model of an autonomous vehicle (paper Sec. III-A).

The paper's Eq. 1 bounds the total reaction of the vehicle: the obstacle at
distance ``D`` is avoided iff the distance covered while computing,
transmitting, and mechanically reacting, plus the braking distance, does
not exceed ``D``::

    (Tcomp + Tdata + Tmech) * v  +  (1/2) * a * Tstop^2  <=  D     (1a)
    Tstop = v / a                                                   (1b)

Note that ``(1/2) * a * Tstop^2`` with ``Tstop = v/a`` equals ``v^2 / 2a``,
the familiar braking distance.  This module provides the model in all the
directions the paper uses it:

* given a computing latency, the minimum avoidable obstacle distance;
* given an obstacle distance, the maximum tolerable computing latency
  (Fig. 3a);
* the braking-distance lower bound (4 m at v=5.6 m/s, a=4 m/s^2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

from . import calibration


@dataclass(frozen=True)
class LatencyModel:
    """Analytical end-to-end latency model (Fig. 2 / Eq. 1).

    Parameters
    ----------
    speed_mps:
        Vehicle speed ``v`` when the event is sensed.
    decel_mps2:
        Brake deceleration ``a``.
    data_latency_s:
        CAN-bus transmission latency ``Tdata``.
    mech_latency_s:
        Mechanical reaction latency ``Tmech``.
    """

    speed_mps: float = calibration.TYPICAL_SPEED_MPS
    decel_mps2: float = calibration.BRAKE_DECEL_MPS2
    data_latency_s: float = calibration.CAN_BUS_LATENCY_S
    mech_latency_s: float = calibration.MECHANICAL_LATENCY_S

    def __post_init__(self) -> None:
        if self.speed_mps < 0:
            raise ValueError(f"speed must be non-negative, got {self.speed_mps}")
        if self.decel_mps2 <= 0:
            raise ValueError(f"deceleration must be positive, got {self.decel_mps2}")
        if self.data_latency_s < 0 or self.mech_latency_s < 0:
            raise ValueError("latencies must be non-negative")

    # -- Eq. 1b -------------------------------------------------------------

    @property
    def stopping_time_s(self) -> float:
        """``Tstop = v / a`` — time from full braking to standstill."""
        return self.speed_mps / self.decel_mps2

    @property
    def braking_distance_m(self) -> float:
        """Distance covered while braking: ``v^2 / 2a``.

        This is the theoretical lower bound of obstacle avoidance — no
        computing system, however fast, can avoid an object closer than
        this (4 m for the paper's vehicle).
        """
        return self.speed_mps ** 2 / (2.0 * self.decel_mps2)

    @property
    def reaction_overhead_s(self) -> float:
        """Non-computing latency: ``Tdata + Tmech``."""
        return self.data_latency_s + self.mech_latency_s

    # -- Eq. 1a, solved both ways --------------------------------------------

    def stopping_distance_m(self, computing_latency_s: float) -> float:
        """Total distance travelled from event to standstill.

        The left-hand side of Eq. 1a: reaction distance plus braking
        distance.
        """
        if computing_latency_s < 0:
            raise ValueError("computing latency must be non-negative")
        reaction = (computing_latency_s + self.reaction_overhead_s) * self.speed_mps
        return reaction + self.braking_distance_m

    def can_avoid(self, computing_latency_s: float, object_distance_m: float) -> bool:
        """Whether an obstacle sensed at *object_distance_m* is avoidable."""
        return self.stopping_distance_m(computing_latency_s) <= object_distance_m

    def min_avoidable_distance_m(self, computing_latency_s: float) -> float:
        """Closest obstacle distance avoidable at a given computing latency.

        The paper: at the 164 ms mean latency, objects >= 5 m away are
        avoidable; at the 740 ms worst case, >= 8.3 m.
        """
        return self.stopping_distance_m(computing_latency_s)

    def latency_requirement_s(self, object_distance_m: float) -> float:
        """Maximum tolerable ``Tcomp`` to avoid an obstacle at distance *D*.

        Solves Eq. 1a for ``Tcomp`` (Fig. 3a).  Returns a negative number
        when *D* is inside the physically unavoidable region (closer than
        braking distance plus the distance covered during ``Tdata+Tmech``),
        so callers can distinguish "impossible" from "zero budget".
        """
        if object_distance_m < 0:
            raise ValueError("object distance must be non-negative")
        if self.speed_mps == 0:
            return float("inf")
        slack_m = object_distance_m - self.braking_distance_m
        return slack_m / self.speed_mps - self.reaction_overhead_s

    def requirement_curve(
        self, distances_m: Iterable[float]
    ) -> List["LatencyRequirementPoint"]:
        """Evaluate the Fig. 3a curve at each distance."""
        return [
            LatencyRequirementPoint(
                object_distance_m=d,
                computing_latency_requirement_s=self.latency_requirement_s(d),
            )
            for d in distances_m
        ]


@dataclass(frozen=True)
class LatencyRequirementPoint:
    """One <distance, Tcomp requirement> point on the Fig. 3a curve."""

    object_distance_m: float
    computing_latency_requirement_s: float

    @property
    def feasible(self) -> bool:
        """Whether any computing system could meet this point."""
        return self.computing_latency_requirement_s >= 0


@dataclass(frozen=True)
class LatencyBreakdown:
    """A sensing/perception/planning split of one pipeline iteration.

    Mirrors Fig. 10a: the paper reports best-case, mean, and 99th-percentile
    end-to-end computing latency, broken into the three serialized stages.
    """

    sensing_s: float
    perception_s: float
    planning_s: float

    @property
    def total_s(self) -> float:
        return self.sensing_s + self.perception_s + self.planning_s

    def fraction(self, stage: str) -> float:
        """Fraction of the total attributable to *stage*."""
        value = {
            "sensing": self.sensing_s,
            "perception": self.perception_s,
            "planning": self.planning_s,
        }.get(stage)
        if value is None:
            raise ValueError(f"unknown stage {stage!r}")
        if self.total_s == 0:
            return 0.0
        return value / self.total_s


def paper_breakdown_mean() -> LatencyBreakdown:
    """The deployed vehicle's mean latency split (Sec. V-C)."""
    return LatencyBreakdown(
        sensing_s=calibration.SENSING_MEAN_LATENCY_S,
        perception_s=calibration.PERCEPTION_MEAN_LATENCY_S,
        planning_s=calibration.PLANNING_MEAN_LATENCY_S,
    )


def paper_breakdown_best() -> LatencyBreakdown:
    """The deployed vehicle's best-case latency split (Sec. V-C)."""
    return LatencyBreakdown(
        sensing_s=calibration.SENSING_BEST_LATENCY_S,
        perception_s=calibration.PERCEPTION_BEST_LATENCY_S,
        planning_s=calibration.PLANNING_BEST_LATENCY_S,
    )


def end_to_end_latency_s(
    computing_latency_s: float,
    model: LatencyModel | None = None,
) -> float:
    """Computing + CAN + mechanical latency (excludes the braking phase).

    The paper's headline "computing contributes 88% of the end-to-end
    latency" uses this definition: 164 / (164 + 1 + 19) = 0.891.
    """
    model = model or LatencyModel()
    return computing_latency_s + model.reaction_overhead_s


def computing_fraction(
    computing_latency_s: float, model: LatencyModel | None = None
) -> float:
    """Fraction of end-to-end latency attributable to computing."""
    total = end_to_end_latency_s(computing_latency_s, model)
    if total == 0:
        return 0.0
    return computing_latency_s / total
