"""Deadline-miss attribution against the Eq. 1 reaction budget.

Aggregate latency stats say *how often* the loop blows its budget; this
module says *why*.  Every control tick whose computing latency ``Tcomp``
exceeds the Eq. 1 budget is charged to:

* the **dominant task** — the single largest-latency task on that
  iteration's critical path (sensing / localization (VIO) / depth /
  detection / tracking / planning), or the injected fault overhead when
  that overhead alone outweighs every task;
* the **active faults** — every fault kind whose window covered the tick;
* the **operating context** — the degradation mode and any shed decision
  in force.

The default budget is the Tcomp that still avoids an obstacle at the
paper's worst-case avoidance range (8.3 m → ≈ 0.74 s, Sec. III-A): the
calibrated latency tail sits inside it, so a nominal drive misses almost
never and a miss is a genuine anomaly worth explaining.  Campaign-level
reports tighten or relax it per scenario.

Attribution is pure bookkeeping: no randomness, no mutation of the loop
it observes.  The per-stage counts sum exactly to the total number of
misses — asserted by test and relied on by the chaos envelope report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core import calibration
from ..core.latency_model import LatencyModel

#: Attribution bucket for the injected fault overhead dominating a miss.
FAULT_OVERHEAD_STAGE = "fault_overhead"
#: Attribution bucket when no per-task breakdown exists (fixed-latency
#: runs): the whole iteration is one opaque stage.
OPAQUE_STAGE = "total"


def default_deadline_budget_s(
    avoidance_range_m: float = calibration.PAPER_AVOIDANCE_RANGE_WORST_M,
    model: Optional[LatencyModel] = None,
) -> float:
    """The Eq. 1 Tcomp budget for an obstacle at *avoidance_range_m*."""
    model = model or LatencyModel()
    budget = model.latency_requirement_s(avoidance_range_m)
    if budget <= 0:
        raise ValueError(
            f"no positive computing budget exists at {avoidance_range_m} m"
        )
    return budget


@dataclass(frozen=True)
class MissRecord:
    """One control tick that blew the Eq. 1 budget."""

    tick: int
    now_s: float
    total_s: float
    budget_s: float
    dominant_stage: str
    fault_kinds: Tuple[str, ...]
    mode: str
    shed_tasks: Tuple[str, ...]

    @property
    def overrun_s(self) -> float:
        return self.total_s - self.budget_s


@dataclass
class AttributionTable:
    """Aggregated deadline-miss causes for one drive (or one campaign)."""

    budget_s: float
    ticks_observed: int = 0
    total_misses: int = 0
    by_stage: Dict[str, int] = field(default_factory=dict)
    by_fault: Dict[str, int] = field(default_factory=dict)
    by_mode: Dict[str, int] = field(default_factory=dict)
    worst_overrun_s: float = 0.0
    records: List[MissRecord] = field(default_factory=list)

    @property
    def miss_rate(self) -> float:
        if self.ticks_observed == 0:
            return 0.0
        return self.total_misses / self.ticks_observed

    def check_consistency(self) -> None:
        """Per-stage (and per-mode) miss counts must sum to the total."""
        for label, table in (("stage", self.by_stage), ("mode", self.by_mode)):
            total = sum(table.values())
            if total != self.total_misses:
                raise AssertionError(
                    f"per-{label} miss counts sum to {total}, "
                    f"expected {self.total_misses}"
                )

    def as_dict(self) -> Dict[str, float]:
        """A flat, order-stable numeric view for reports and snapshots."""
        out: Dict[str, float] = {
            "budget_s": self.budget_s,
            "ticks_observed": float(self.ticks_observed),
            "deadline_misses": float(self.total_misses),
            "miss_rate": self.miss_rate,
            "worst_overrun_s": self.worst_overrun_s,
        }
        for stage in sorted(self.by_stage):
            out[f"miss_stage_{stage}"] = float(self.by_stage[stage])
        for kind in sorted(self.by_fault):
            out[f"miss_fault_{kind}"] = float(self.by_fault[kind])
        for mode in sorted(self.by_mode):
            out[f"miss_mode_{mode}"] = float(self.by_mode[mode])
        return out

    def format_table(self) -> str:
        """The human-readable attribution table (README's example)."""
        lines = [
            f"deadline budget: {self.budget_s * 1e3:.1f} ms; "
            f"misses: {self.total_misses}/{self.ticks_observed} ticks "
            f"({self.miss_rate:.1%}); worst overrun "
            f"{self.worst_overrun_s * 1e3:.1f} ms"
        ]
        for title, table in (
            ("dominant stage", self.by_stage),
            ("active fault", self.by_fault),
            ("mode", self.by_mode),
        ):
            for key in sorted(table, key=lambda k: (-table[k], k)):
                lines.append(f"  {title:<15} {key:<20} {table[key]:>6}")
        return "\n".join(lines)


class DeadlineMissAttributor:
    """Watches per-tick latency and attributes every budget miss.

    ``keep_records`` bounds memory: per-miss :class:`MissRecord` rows are
    kept only up to that many (the aggregates always cover every miss).
    """

    def __init__(
        self,
        budget_s: Optional[float] = None,
        keep_records: int = 256,
    ) -> None:
        if budget_s is None:
            budget_s = default_deadline_budget_s()
        if budget_s <= 0:
            raise ValueError("deadline budget must be positive")
        self.table = AttributionTable(budget_s=budget_s)
        self.keep_records = keep_records

    @property
    def budget_s(self) -> float:
        return self.table.budget_s

    def observe(
        self,
        tick: int,
        now_s: float,
        total_s: float,
        critical_path: Sequence[str] = (),
        task_latencies: Optional[Mapping[str, float]] = None,
        fault_overhead_s: float = 0.0,
        fault_kinds: Sequence[str] = (),
        mode: str = "NOMINAL",
        shed_tasks: Sequence[str] = (),
    ) -> Optional[MissRecord]:
        """Account one control tick; returns the miss record if it missed.

        *critical_path* and *task_latencies* come from the sampled
        dataflow iteration; *fault_overhead_s* is the injected stall or
        spike latency added on top of it.
        """
        table = self.table
        table.ticks_observed += 1
        if total_s <= table.budget_s:
            return None
        dominant = self._dominant_stage(
            critical_path, task_latencies, fault_overhead_s
        )
        record = MissRecord(
            tick=tick,
            now_s=now_s,
            total_s=total_s,
            budget_s=table.budget_s,
            dominant_stage=dominant,
            fault_kinds=tuple(fault_kinds),
            mode=mode,
            shed_tasks=tuple(sorted(shed_tasks)),
        )
        table.total_misses += 1
        table.by_stage[dominant] = table.by_stage.get(dominant, 0) + 1
        table.by_mode[mode] = table.by_mode.get(mode, 0) + 1
        for kind in record.fault_kinds:
            table.by_fault[kind] = table.by_fault.get(kind, 0) + 1
        table.worst_overrun_s = max(table.worst_overrun_s, record.overrun_s)
        if len(table.records) < self.keep_records:
            table.records.append(record)
        return record

    @staticmethod
    def _dominant_stage(
        critical_path: Sequence[str],
        task_latencies: Optional[Mapping[str, float]],
        fault_overhead_s: float,
    ) -> str:
        if not critical_path or not task_latencies:
            return (
                FAULT_OVERHEAD_STAGE if fault_overhead_s > 0 else OPAQUE_STAGE
            )
        heaviest = max(critical_path, key=lambda t: task_latencies[t])
        if fault_overhead_s > task_latencies[heaviest]:
            return FAULT_OVERHEAD_STAGE
        return heaviest


def merge_attribution_tables(
    tables: Sequence[AttributionTable],
) -> AttributionTable:
    """Fold per-drive tables into one campaign-level table.

    All inputs must share the same budget (mixing budgets would make the
    merged miss counts incomparable).
    """
    if not tables:
        raise ValueError("nothing to merge")
    budgets = {t.budget_s for t in tables}
    if len(budgets) != 1:
        raise ValueError(f"cannot merge tables with budgets {sorted(budgets)}")
    merged = AttributionTable(budget_s=tables[0].budget_s)
    for table in tables:
        merged.ticks_observed += table.ticks_observed
        merged.total_misses += table.total_misses
        merged.worst_overrun_s = max(
            merged.worst_overrun_s, table.worst_overrun_s
        )
        for attr in ("by_stage", "by_fault", "by_mode"):
            target = getattr(merged, attr)
            for key, count in getattr(table, attr).items():
                target[key] = target.get(key, 0) + count
    return merged
