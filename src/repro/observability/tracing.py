"""Per-frame span tracing for the SoV loop (zero dependencies).

The closed-loop simulation runs in *simulated* time, so spans are not
measured with a wall clock: the code that knows when a piece of work
starts and ends in simulation time records those instants explicitly.
What the tracer adds is structure — parent links via context managers, a
per-control-tick :class:`FrameTrace` grouping, and an export to the
Chrome ``trace_event`` JSON format (the "JSON Array with metadata"
flavour) so a drive opens directly in Perfetto or ``chrome://tracing``.

Tracks map to CAN-bus/compute/reactive lanes: every span carries a
``track`` name which becomes a thread in the exported trace; complete
(``ph: "X"``) events on the same track nest by time containment, which is
exactly how Perfetto renders the sensing → perception → planning
pipeline inside a control tick.

Design constraints honoured here:

* **No randomness.**  The tracer never touches an RNG, so attaching it
  cannot perturb a seeded drive.
* **Cheap when absent.**  Call sites guard with ``if tracer is not
  None``; the uninstrumented loop allocates nothing.
* **Stable output.**  Exported JSON depends only on recorded spans, so a
  seeded drive exports a bit-stable trace.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

#: Default process id in exported traces (one SoV = one process).
_PID = 1


@dataclass
class Span:
    """One unit of traced work in simulated time."""

    span_id: int
    name: str
    track: str
    start_s: float
    end_s: Optional[float] = None
    parent_id: Optional[int] = None
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def finish(self, end_s: float) -> None:
        """Close the span at *end_s* (must not precede the start)."""
        if end_s < self.start_s:
            raise ValueError(
                f"span {self.name!r} cannot end at {end_s} before its "
                f"start {self.start_s}"
            )
        self.end_s = end_s

    def annotate(self, **args: Any) -> None:
        """Attach key/value arguments (rendered by the trace viewer)."""
        self.args.update(args)

    def contains(self, other: "Span") -> bool:
        """Whether *other* nests inside this span's time interval."""
        if self.end_s is None or other.end_s is None:
            return False
        return self.start_s <= other.start_s and other.end_s <= self.end_s


@dataclass
class FrameTrace:
    """All spans of one control tick, keyed by the tick index."""

    tick: int
    start_s: float
    span_ids: List[int] = field(default_factory=list)
    deadline_missed: bool = False
    total_latency_s: Optional[float] = None
    budget_s: Optional[float] = None


class Tracer:
    """Collects spans and frames; exports Chrome ``trace_event`` JSON.

    Spans are opened either as context managers (parent links follow the
    with-nesting) or recorded whole with :meth:`record` when start and
    end are both already known (the common case in a simulation, where a
    command's delivery time is computed, not awaited).
    """

    def __init__(self, name: str = "sov") -> None:
        self.name = name
        self.spans: List[Span] = []
        self.frames: List[FrameTrace] = []
        self._stack: List[int] = []
        self._current_frame: Optional[FrameTrace] = None
        self._lanes: Dict[str, List[float]] = {}

    def lane(self, base: str, start_s: float, end_s: float) -> str:
        """Allocate a non-overlapping lane (track) for ``[start_s, end_s]``.

        Pipelined control ticks overlap in time (the mean iteration runs
        164 ms against a 100 ms period); complete events that partially
        overlap on one thread render garbled.  This first-fit allocator
        spreads overlapping spans over ``base``, ``base.1``, ``base.2``…
        so every lane stays strictly sequential — the standard way to
        draw pipeline occupancy in a Chrome trace.
        """
        ends = self._lanes.setdefault(base, [])
        for i, busy_until in enumerate(ends):
            if busy_until <= start_s:
                ends[i] = end_s
                return base if i == 0 else f"{base}.{i}"
        ends.append(end_s)
        i = len(ends) - 1
        return base if i == 0 else f"{base}.{i}"

    # -- recording -------------------------------------------------------------

    def begin_frame(self, tick: int, now_s: float) -> FrameTrace:
        """Open the per-control-tick grouping for subsequent spans."""
        frame = FrameTrace(tick=tick, start_s=now_s)
        self.frames.append(frame)
        self._current_frame = frame
        return frame

    @property
    def current_frame(self) -> Optional[FrameTrace]:
        return self._current_frame

    def record(
        self,
        name: str,
        track: str,
        start_s: float,
        end_s: float,
        **args: Any,
    ) -> Span:
        """Record a completed span with explicit simulated times."""
        span = self._open(name, track, start_s, args)
        span.finish(end_s)
        self._stack.pop()
        return span

    @contextmanager
    def span(
        self, name: str, track: str, start_s: float, **args: Any
    ) -> Iterator[Span]:
        """Open a span; children recorded inside the block get parented.

        The block must call ``span.finish(end_s)``; a span left open is
        closed at the latest end of its children (or zero-length).
        """
        span = self._open(name, track, start_s, args)
        try:
            yield span
        finally:
            self._stack.pop()
            if span.end_s is None:
                children_end = [
                    s.end_s
                    for s in self.spans
                    if s.parent_id == span.span_id and s.end_s is not None
                ]
                span.finish(max(children_end, default=span.start_s))

    def instant(self, name: str, track: str, at_s: float, **args: Any) -> Span:
        """A zero-duration marker (a deadline miss, a dropped frame)."""
        return self.record(name, track, at_s, at_s, **args)

    def _open(
        self, name: str, track: str, start_s: float, args: Mapping[str, Any]
    ) -> Span:
        span = Span(
            span_id=len(self.spans),
            name=name,
            track=track,
            start_s=start_s,
            parent_id=self._stack[-1] if self._stack else None,
            args=dict(args),
        )
        self.spans.append(span)
        self._stack.append(span.span_id)
        if self._current_frame is not None:
            self._current_frame.span_ids.append(span.span_id)
        return span

    # -- queries ---------------------------------------------------------------

    def spans_named(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def frame_spans(self, tick: int) -> List[Span]:
        for frame in self.frames:
            if frame.tick == tick:
                return [self.spans[i] for i in frame.span_ids]
        raise KeyError(f"no frame traced for tick {tick}")

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    # -- export ----------------------------------------------------------------

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The trace as a Chrome ``trace_event`` JSON object.

        Complete events (``ph: "X"``) carry microsecond timestamps;
        tracks become named threads via ``thread_name`` metadata events,
        ordered by first appearance so the compute lane stays on top.
        """
        events: List[Dict[str, Any]] = []
        tracks: Dict[str, int] = {}
        for span in self.spans:
            if span.track not in tracks:
                tid = len(tracks) + 1
                tracks[span.track] = tid
                events.append(
                    {
                        "ph": "M",
                        "pid": _PID,
                        "tid": tid,
                        "name": "thread_name",
                        "args": {"name": span.track},
                    }
                )
            end_s = span.end_s if span.end_s is not None else span.start_s
            events.append(
                {
                    "ph": "X",
                    "pid": _PID,
                    "tid": tracks[span.track],
                    "name": span.name,
                    "ts": span.start_s * 1e6,
                    "dur": (end_s - span.start_s) * 1e6,
                    "args": dict(span.args),
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "tracer": self.name,
                "frames": len(self.frames),
                "deadline_misses": sum(
                    f.deadline_missed for f in self.frames
                ),
            },
        }

    def export_json(self, path: str) -> None:
        """Write the Chrome trace to *path* (open it in Perfetto)."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh)


#: Overlap slop in exported-trace microseconds: seconds→µs conversion can
#: round the shared boundary of two contiguous spans to floats ~1e-8 µs
#: apart; anything under a nanosecond is contiguity, not overlap.
_OVERLAP_EPS_US = 1e-3


def validate_chrome_trace(trace: Mapping[str, Any]) -> List[str]:
    """Structural validation of an exported trace; returns problems.

    Checks the invariants Perfetto relies on: a ``traceEvents`` list,
    every ``X`` event with non-negative ``ts``/``dur`` and a known
    ``pid``/``tid``, and — per thread — that overlapping complete events
    strictly nest (no partial overlap, which viewers render garbled).
    An empty list means the trace is loadable.
    """
    problems: List[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    by_tid: Dict[Tuple[int, int], List[Tuple[float, float, str]]] = {}
    for i, event in enumerate(events):
        ph = event.get("ph")
        if ph not in ("X", "M", "i", "I"):
            problems.append(f"event {i}: unsupported phase {ph!r}")
            continue
        if ph != "X":
            continue
        ts, dur = event.get("ts"), event.get("dur")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {i}: bad ts {ts!r}")
            continue
        if not isinstance(dur, (int, float)) or dur < 0:
            problems.append(f"event {i}: bad dur {dur!r}")
            continue
        key = (event.get("pid"), event.get("tid"))
        if key[0] is None or key[1] is None:
            problems.append(f"event {i}: missing pid/tid")
            continue
        by_tid.setdefault(key, []).append((ts, ts + dur, event.get("name", "")))
    for key, intervals in by_tid.items():
        # Containers first: equal starts sort longest-first so a pair
        # like [a, c] ⊃ [a, b] reads as nesting, not overlap.
        intervals.sort(key=lambda iv: (iv[0], -iv[1]))
        for (s1, e1, n1), (s2, e2, n2) in zip(intervals, intervals[1:]):
            # Overlap without containment (up to conversion rounding).
            if s2 < e1 - _OVERLAP_EPS_US and e2 > e1 + _OVERLAP_EPS_US:
                problems.append(
                    f"track {key}: {n1!r} [{s1},{e1}) and {n2!r} "
                    f"[{s2},{e2}) overlap without nesting"
                )
    return problems
