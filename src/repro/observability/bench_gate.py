"""``bench-gate`` CLI: snapshot seeded benchmarks, gate regressions.

Usage::

    # Record (or refresh) an accepted baseline:
    python -m repro.observability.bench_gate snapshot --workload closedloop
    python -m repro.observability.bench_gate snapshot --workload chaos
    python -m repro.observability.bench_gate snapshot --workload scheduler
    python -m repro.observability.bench_gate snapshot --workload ingest
    python -m repro.observability.bench_gate snapshot --workload fleet
    python -m repro.observability.bench_gate snapshot --workload procgen
    python -m repro.observability.bench_gate snapshot --workload triage
    python -m repro.observability.bench_gate snapshot --workload batched

    # CI: re-run the seeded workload named by the baseline, fail on any
    # gated-metric regression, and (closed loop only) export the drive's
    # Perfetto trace as a build artifact:
    python -m repro.observability.bench_gate check \
        --baseline BENCH_closedloop.json --trace closedloop_trace.json
    python -m repro.observability.bench_gate check --baseline BENCH_chaos.json
    python -m repro.observability.bench_gate check --baseline BENCH_scheduler.json
    python -m repro.observability.bench_gate check --baseline BENCH_ingest.json
    python -m repro.observability.bench_gate check --baseline BENCH_fleet.json
    python -m repro.observability.bench_gate check --baseline BENCH_procgen.json
    python -m repro.observability.bench_gate check --baseline BENCH_triage.json
    python -m repro.observability.bench_gate check --baseline BENCH_batched.json

``check`` reads the workload to replay from the baseline snapshot itself
and exits non-zero when any gated metric regresses beyond its tolerance
or the workload changed shape (different tick/sample/drive counts).
"""

from __future__ import annotations

import argparse
import sys

from .regression import (
    BATCHED_WORKLOAD_DURATION_S,
    CHAOS_WORKLOAD_DRIVES,
    FLEET_WORKLOAD_CELLS,
    FLEET_WORKLOAD_WORKERS,
    INGEST_WORKLOAD_LOGS,
    INGEST_WORKLOAD_VEHICLES,
    PROCGEN_WORKLOAD_CELLS,
    PROCGEN_WORKLOAD_WORKERS,
    SCHEDULER_WORKLOAD_FRAMES,
    TRIAGE_WORKLOAD_CHAOS,
    TRIAGE_WORKLOAD_PROCGEN,
    TRIAGE_WORKLOAD_REPLICAS,
    WORKLOAD_TOLERANCES,
    gate_against_baseline,
    load_snapshot,
    snapshot_chaos,
    snapshot_closedloop,
    snapshot_fleet,
    snapshot_ingest,
    snapshot_batched,
    snapshot_path,
    snapshot_procgen,
    snapshot_scheduler,
    snapshot_triage,
    write_snapshot,
)
from .tracing import Tracer


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observability.bench_gate",
        description="Snapshot seeded benchmark runs; gate perf regressions.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    snap = sub.add_parser("snapshot", help="write BENCH_<name>.json")
    snap.add_argument(
        "--workload",
        choices=sorted(WORKLOAD_TOLERANCES),
        default="closedloop",
        help="which seeded workload to snapshot",
    )
    snap.add_argument(
        "--name", default=None, help="snapshot name (default: the workload)"
    )
    snap.add_argument("--seed", type=int, default=0)
    snap.add_argument(
        "--duration",
        type=float,
        default=12.0,
        help="closed-loop drive duration (closedloop workload only)",
    )
    snap.add_argument(
        "--drives",
        type=int,
        default=CHAOS_WORKLOAD_DRIVES,
        help="campaign size (chaos and batched workloads)",
    )
    snap.add_argument(
        "--frames",
        type=int,
        default=SCHEDULER_WORKLOAD_FRAMES,
        help="pipeline frames (scheduler workload only)",
    )
    snap.add_argument(
        "--vehicles",
        type=int,
        default=INGEST_WORKLOAD_VEHICLES,
        help="fleet size (ingest workload only)",
    )
    snap.add_argument(
        "--logs",
        type=int,
        default=INGEST_WORKLOAD_LOGS,
        help="realtime logs per vehicle (ingest workload only)",
    )
    snap.add_argument(
        "--cells",
        type=int,
        default=None,
        help="campaign cells (fleet and procgen workloads)",
    )
    snap.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker-pool size (fleet and procgen workloads)",
    )
    snap.add_argument(
        "--replicas",
        type=int,
        default=TRIAGE_WORKLOAD_REPLICAS,
        help="flake-protocol replicas (triage workload only)",
    )
    snap.add_argument(
        "--out", default=None, help="output path (default BENCH_<name>.json)"
    )

    check = sub.add_parser("check", help="gate a run against a baseline")
    check.add_argument("--baseline", required=True)
    check.add_argument(
        "--mean-tol",
        type=float,
        default=None,
        help="override the relative tolerance on mean latency",
    )
    check.add_argument(
        "--p99-tol",
        type=float,
        default=None,
        help="override the relative tolerance on p99 latency",
    )
    check.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="also export the gated drive's Chrome/Perfetto trace JSON "
        "(closedloop baselines only)",
    )

    args = parser.parse_args(argv)
    if args.command == "snapshot":
        name = args.name or args.workload
        if args.workload == "chaos":
            snapshot = snapshot_chaos(
                name=name, seed=args.seed, n_drives=args.drives
            )
        elif args.workload == "scheduler":
            snapshot = snapshot_scheduler(
                name=name, seed=args.seed, n_frames=args.frames
            )
        elif args.workload == "ingest":
            snapshot = snapshot_ingest(
                name=name,
                seed=args.seed,
                n_vehicles=args.vehicles,
                logs_per_vehicle=args.logs,
            )
        elif args.workload == "fleet":
            snapshot = snapshot_fleet(
                name=name,
                seed=args.seed,
                n_cells=args.cells or FLEET_WORKLOAD_CELLS,
                n_workers=args.workers or FLEET_WORKLOAD_WORKERS,
            )
        elif args.workload == "procgen":
            snapshot = snapshot_procgen(
                name=name,
                seed=args.seed,
                n_cells=args.cells or PROCGEN_WORKLOAD_CELLS,
                n_workers=args.workers or PROCGEN_WORKLOAD_WORKERS,
            )
        elif args.workload == "batched":
            snapshot = snapshot_batched(
                name=name,
                seed=args.seed,
                n_drives=args.drives,
                duration_s=BATCHED_WORKLOAD_DURATION_S,
            )
        elif args.workload == "triage":
            snapshot = snapshot_triage(
                name=name,
                seed=args.seed,
                n_chaos=TRIAGE_WORKLOAD_CHAOS,
                n_procgen=TRIAGE_WORKLOAD_PROCGEN,
                n_replicas=args.replicas,
            )
        else:
            snapshot = snapshot_closedloop(
                name=name, seed=args.seed, duration_s=args.duration
            )
        out = args.out or snapshot_path(name)
        write_snapshot(snapshot, out)
        print(f"wrote {out} (workload: {snapshot.workload})")
        for metric in sorted(snapshot.metrics):
            print(f"  {metric} = {snapshot.metrics[metric]:.6g}")
        return 0

    baseline = load_snapshot(args.baseline)
    if args.trace and baseline.workload != "closedloop":
        print(
            f"--trace only applies to closedloop baselines "
            f"(got {baseline.workload!r})",
            file=sys.stderr,
        )
        return 2
    tolerances = None
    if args.mean_tol is not None or args.p99_tol is not None:
        tolerances = dict(
            WORKLOAD_TOLERANCES.get(
                baseline.workload, WORKLOAD_TOLERANCES["closedloop"]
            )
        )
        if args.mean_tol is not None:
            tolerances["latency_mean_s"] = args.mean_tol
        if args.p99_tol is not None:
            tolerances["latency_p99_s"] = args.p99_tol
    tracer = Tracer(name=baseline.name) if args.trace else None
    report = gate_against_baseline(baseline, tolerances=tolerances, tracer=tracer)
    if tracer is not None:
        tracer.export_json(args.trace)
        print(f"trace written to {args.trace} (open in Perfetto)")
    print(report.format_report())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
