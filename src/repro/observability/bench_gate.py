"""``bench-gate`` CLI: snapshot seeded benchmarks, gate regressions.

Usage::

    # Record (or refresh) the accepted baseline:
    python -m repro.observability.bench_gate snapshot --name closedloop

    # CI: re-run the seeded workload, fail on a mean/p99 regression,
    # and export the drive's Perfetto trace as a build artifact:
    python -m repro.observability.bench_gate check \
        --baseline BENCH_closedloop.json --trace closedloop_trace.json

``check`` exits non-zero when any gated metric regresses beyond its
tolerance or the workload changed shape (different tick/sample counts).
"""

from __future__ import annotations

import argparse
import sys

from .regression import (
    DEFAULT_TOLERANCES,
    gate_against_baseline,
    load_snapshot,
    snapshot_closedloop,
    snapshot_path,
    write_snapshot,
)
from .tracing import Tracer


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observability.bench_gate",
        description="Snapshot seeded benchmark runs; gate perf regressions.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    snap = sub.add_parser("snapshot", help="write BENCH_<name>.json")
    snap.add_argument("--name", default="closedloop")
    snap.add_argument("--seed", type=int, default=0)
    snap.add_argument("--duration", type=float, default=12.0)
    snap.add_argument(
        "--out", default=None, help="output path (default BENCH_<name>.json)"
    )

    check = sub.add_parser("check", help="gate a run against a baseline")
    check.add_argument("--baseline", required=True)
    check.add_argument(
        "--mean-tol",
        type=float,
        default=DEFAULT_TOLERANCES["latency_mean_s"],
        help="relative tolerance on mean latency",
    )
    check.add_argument(
        "--p99-tol",
        type=float,
        default=DEFAULT_TOLERANCES["latency_p99_s"],
        help="relative tolerance on p99 latency",
    )
    check.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="also export the gated drive's Chrome/Perfetto trace JSON",
    )

    args = parser.parse_args(argv)
    if args.command == "snapshot":
        snapshot = snapshot_closedloop(
            name=args.name, seed=args.seed, duration_s=args.duration
        )
        out = args.out or snapshot_path(args.name)
        write_snapshot(snapshot, out)
        print(f"wrote {out}")
        for metric in sorted(snapshot.metrics):
            print(f"  {metric} = {snapshot.metrics[metric]:.6g}")
        return 0

    baseline = load_snapshot(args.baseline)
    tracer = Tracer(name=baseline.name) if args.trace else None
    report = gate_against_baseline(
        baseline,
        tolerances={
            "latency_mean_s": args.mean_tol,
            "latency_p99_s": args.p99_tol,
        },
        tracer=tracer,
    )
    if tracer is not None:
        tracer.export_json(args.trace)
        print(f"trace written to {args.trace} (open in Perfetto)")
    print(report.format_report())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
