"""Observability for the SoV loop: tracing, metrics, attribution, gating.

The paper is fundamentally a latency-characterization study — Fig. 10's
per-stage breakdowns and Eq. 1's reaction budget are its spine — and this
package is the instrumentation that makes those numbers inspectable *per
frame* instead of only in aggregate:

* :mod:`repro.observability.tracing` — a zero-dependency span tracer.
  Spans live in simulated time, nest via context managers, group into
  per-control-tick :class:`~repro.observability.tracing.FrameTrace`
  records, and export as Chrome ``trace_event`` JSON so a drive opens
  directly in Perfetto / ``chrome://tracing``.
* :mod:`repro.observability.metrics` — a metrics registry (counters,
  gauges, streaming P² percentile histograms) that gives the ad-hoc
  counters scattered across :class:`~repro.runtime.telemetry.OperationsLog`
  one uniform, exportable view.
* :mod:`repro.observability.attribution` — deadline-miss attribution:
  every control tick whose computing latency blows the Eq. 1 budget is
  charged to the dominant pipeline task (sensing/VIO/depth/detection/
  planning), to any active fault, and to the degradation mode + shed
  decision in force, so chaos campaigns report *causes*, not just rates.
* :mod:`repro.observability.regression` — seeded benchmark snapshots
  (``BENCH_<name>.json``) and a perf-regression gate over three seeded
  workloads: the closed loop (mean/p99 latency), the chaos campaign
  (safety envelope), and the pipelined scheduler (throughput, gated
  downward); the ``bench-gate`` CLI
  (:mod:`repro.observability.bench_gate`) wraps it for CI.

Everything is opt-in: with no tracer/attributor attached the SoV loop
allocates nothing on the hot path, consumes no extra randomness, and is
bit-identical to the uninstrumented loop (asserted by test).
"""

from .attribution import (
    AttributionTable,
    DeadlineMissAttributor,
    MissRecord,
    default_deadline_budget_s,
    merge_attribution_tables,
)
from .metrics import Counter, Gauge, MetricsRegistry, StreamingHistogram
from .regression import (
    BenchmarkSnapshot,
    GateReport,
    gate_against_baseline,
    load_snapshot,
    snapshot_chaos,
    snapshot_closedloop,
    snapshot_scheduler,
    write_snapshot,
)
from .tracing import FrameTrace, Span, Tracer, validate_chrome_trace

__all__ = [
    "AttributionTable",
    "BenchmarkSnapshot",
    "Counter",
    "DeadlineMissAttributor",
    "FrameTrace",
    "Gauge",
    "GateReport",
    "MetricsRegistry",
    "MissRecord",
    "Span",
    "StreamingHistogram",
    "Tracer",
    "default_deadline_budget_s",
    "gate_against_baseline",
    "load_snapshot",
    "merge_attribution_tables",
    "snapshot_chaos",
    "snapshot_closedloop",
    "snapshot_scheduler",
    "validate_chrome_trace",
    "write_snapshot",
]
