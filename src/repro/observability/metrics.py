"""A metrics registry: counters, gauges, streaming percentile histograms.

:class:`~repro.runtime.telemetry.OperationsLog` grew one ad-hoc integer
field per PR; this registry gives those counters a uniform, exportable
shape (named metrics, one flat snapshot) and adds what plain counters
cannot do: streaming percentiles.  :class:`StreamingHistogram` keeps
P² (Jain & Chlamtac 1985) marker estimates for a fixed quantile set in
O(1) memory per quantile — the right tool for per-frame latency series
that a fleet of drives would otherwise have to store whole.

Nothing here consumes randomness, so publishing metrics from a seeded
drive never perturbs it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    help: str = ""
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount


@dataclass
class Gauge:
    """A value that can go up and down (a level, a mode, a queue depth)."""

    name: str
    help: str = ""
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class _P2Quantile:
    """One P² marker set tracking a single quantile ``q`` in (0, 1)."""

    def __init__(self, q: float) -> None:
        self.q = q
        self._heights: List[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2 * q, 1.0 + 4 * q, 3.0 + 2 * q, 5.0]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def observe(self, x: float) -> None:
        heights = self._heights
        if len(heights) < 5:
            heights.append(x)
            heights.sort()
            return
        # Find the cell k containing x, clamping the extremes.
        if x < heights[0]:
            heights[0] = x
            k = 0
        elif x >= heights[4]:
            heights[4] = x
            k = 3
        else:
            k = 0
            while x >= heights[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            self._positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        # Adjust the three interior markers with the parabolic formula.
        for i in (1, 2, 3):
            d = self._desired[i] - self._positions[i]
            n, n_prev, n_next = (
                self._positions[i],
                self._positions[i - 1],
                self._positions[i + 1],
            )
            if (d >= 1.0 and n_next - n > 1.0) or (d <= -1.0 and n_prev - n < -1.0):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                self._positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step)
            * (h[i + 1] - h[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    def estimate(self) -> float:
        heights = self._heights
        if not heights:
            raise ValueError("no samples observed")
        if len(heights) < 5:
            # Exact small-sample quantile (nearest-rank interpolation).
            rank = self.q * (len(heights) - 1)
            lo = int(rank)
            hi = min(lo + 1, len(heights) - 1)
            return heights[lo] + (rank - lo) * (heights[hi] - heights[lo])
        return self._heights[2]


class StreamingHistogram:
    """Count/sum/min/max plus P² estimates for a fixed quantile set.

    Determinism contract: every statistic is a pure left-fold over the
    observation sequence.  ``sum`` accumulates in arrival order, each
    P² estimator updates its five markers from one observation at a time
    (estimators are independent, so their relative update order cannot
    affect any estimate), and no randomness is consumed anywhere.  Two
    histograms fed the same value sequence therefore produce bit-identical
    summaries — which is what lets histogram output appear in replayed /
    differential drive comparisons without tolerances.
    """

    DEFAULT_QUANTILES = (0.5, 0.9, 0.99)

    def __init__(
        self,
        name: str,
        help: str = "",
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
    ) -> None:
        for q in quantiles:
            if not 0.0 < q < 1.0:
                raise ValueError(f"quantile {q} must be in (0, 1)")
        self.name = name
        self.help = help
        self.quantiles = tuple(quantiles)
        self._estimators = {q: _P2Quantile(q) for q in self.quantiles}
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for estimator in self._estimators.values():
            estimator.observe(value)

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError(f"histogram {self.name!r} has no samples")
        return self.sum / self.count

    def quantile(self, q: float) -> float:
        try:
            return self._estimators[q].estimate()
        except KeyError:
            raise KeyError(
                f"histogram {self.name!r} does not track q={q}; "
                f"tracked: {self.quantiles}"
            ) from None

    def summary(self) -> Dict[str, float]:
        if self.count == 0:
            return {"count": 0.0}
        out = {
            "count": float(self.count),
            "mean": self.mean,
            "min": float(self.min),
            "max": float(self.max),
        }
        for q in self.quantiles:
            out[f"p{round(q * 100):02d}"] = self.quantile(q)
        return out


class MetricsRegistry:
    """Named metrics with get-or-create semantics and one flat snapshot."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get_or_create(self, name: str, factory, kind: type):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}"
                )
            return existing
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, lambda: Counter(name, help), Counter)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, help), Gauge)

    def histogram(
        self,
        name: str,
        help: str = "",
        quantiles: Sequence[float] = StreamingHistogram.DEFAULT_QUANTILES,
    ) -> StreamingHistogram:
        return self._get_or_create(
            name,
            lambda: StreamingHistogram(name, help, quantiles),
            StreamingHistogram,
        )

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> Dict[str, float]:
        """Every metric flattened to ``name`` / ``name_<stat>`` floats."""
        out: Dict[str, float] = {}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, (Counter, Gauge)):
                out[name] = metric.value
            else:
                for stat, value in metric.summary().items():
                    out[f"{name}_{stat}"] = value
        return out


def registry_from_operations_log(ops) -> MetricsRegistry:
    """Mirror an :class:`~repro.runtime.telemetry.OperationsLog` into a
    registry — the uniform view that subsumes its ad-hoc counters.

    Scalar fields become counters/gauges under ``ops_``; dict-valued
    tallies become one counter per key (``ops_sheds_by_mode_DEGRADED``).
    """
    registry = MetricsRegistry()
    scalar_fields = (
        "control_ticks",
        "reactive_overrides",
        "reactive_holds",
        "collisions",
        "proactive_skips",
        "fallback_commands",
        "can_frames_dropped",
        "can_priority_sends",
    )
    for name in scalar_fields:
        registry.counter(f"ops_{name}").inc(getattr(ops, name))
    registry.gauge("ops_distance_m").set(ops.distance_m)
    registry.gauge("ops_energy_j").set(ops.energy_j)
    registry.gauge("ops_proactive_fraction").set(ops.proactive_fraction)
    for attr in ("faults_injected", "mode_ticks", "sheds_by_mode", "sheds_by_task"):
        for key, count in sorted(getattr(ops, attr).items()):
            registry.counter(f"ops_{attr}_{key}").inc(count)
    return registry
