"""Seeded benchmark snapshots and the perf-regression gate.

The ROADMAP's north star ("as fast as the hardware allows") needs a
trajectory: every perf PR must prove it did not regress the loop.  The
mechanism is a *snapshot → gate* pair:

1. :func:`snapshot_closedloop` runs a fully seeded closed-loop drive and
   collects its latency distribution (mean/p99/best/worst) plus the
   operational counters — all deterministic per seed — and a wall-clock
   per-tick cost (informational; machine-dependent, not gated).
2. :func:`write_snapshot` persists it as ``BENCH_<name>.json`` (committed
   to the repo as the accepted baseline).
3. :func:`gate_against_baseline` re-runs the same seeded workload and
   fails when a gated metric regresses beyond its tolerance.

Simulated-latency metrics are bit-stable per seed, so their tolerance
exists only to absorb *intentional* recalibrations: an unintentional
change of the sampled distribution trips the gate immediately.  The
``bench-gate`` CLI (:mod:`repro.observability.bench_gate`) wraps this
for CI.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

#: Metrics the gate checks, with their default relative tolerances.
#: Latency metrics regress *upward*; the gate is one-sided.
DEFAULT_TOLERANCES: Dict[str, float] = {
    "latency_mean_s": 0.05,
    "latency_p99_s": 0.10,
}

#: Per-workload gated metrics and tolerances.  All simulated metrics are
#: bit-stable per seed; nonzero tolerances exist only to absorb
#: *intentional* recalibrations.
WORKLOAD_TOLERANCES: Dict[str, Dict[str, float]] = {
    "closedloop": DEFAULT_TOLERANCES,
    # The chaos-campaign workload gates the safety envelope itself: a
    # single leaked collision or new deadline miss fails immediately.
    "chaos": {
        "collision_rate": 0.0,
        "safe_stop_rate": 0.0,
        "deadline_misses": 0.0,
    },
    # The scheduler workload gates sustained pipeline throughput
    # (downward) alongside per-frame service latency (upward).
    "scheduler": {
        "throughput_hz": 0.05,
        "latency_mean_s": 0.05,
        "latency_p99_s": 0.10,
    },
    # The ingest workload gates the telemetry pipeline's delivery
    # guarantee exactly (no realtime loss, no post-dedup duplicates,
    # ever) alongside fleet throughput (downward) and p99 ingest
    # latency (upward).
    "ingest": {
        "throughput_logs_per_s": 0.05,
        "ingest_p99_s": 0.10,
        "realtime_delivery_rate": 0.0,
        "post_dedup_duplicates": 0.0,
    },
    # The fleet workload gates the campaign engine's exactly-once
    # accounting at zero tolerance (a lost or duplicated cell is a
    # correctness bug, never noise) and the measured envelope exactly,
    # alongside campaign throughput (downward, generous tolerance —
    # wall-clock on shared CI is noisy; the correctness gates are the
    # sharp ones).
    "fleet": {
        "cells_per_s": 0.5,
        "lost_cells": 0.0,
        "duplicate_cells": 0.0,
        "failed_cells": 0.0,
        "collision_rate": 0.0,
        "deadline_misses": 0.0,
    },
    # The procgen workload sweeps generated scenarios through the fleet
    # engine and the invariant harness: the invariant verdict, the
    # exactly-once accounting, and the safety envelope gate at zero
    # tolerance, and the scene_fingerprint shape invariant (below)
    # pins scene generation bit for bit — any change to the generator's
    # draws fails the gate as a shape change, not a tolerance miss.
    "procgen": {
        "cells_per_s": 0.5,
        "violations": 0.0,
        "lost_cells": 0.0,
        "duplicate_cells": 0.0,
        "failed_cells": 0.0,
        "collision_rate": 0.0,
    },
    # The triage workload gates the failure-triage contracts: every
    # minimized counterexample must still violate and every corpus
    # record must replay bit-identically (both zero tolerance,
    # regressing downward), the mean shrink reduction must not decay,
    # and nothing may land in quarantine.  Shrink throughput gates
    # downward with a generous tolerance (wall-clock on shared CI).
    "triage": {
        "mean_reduction_ratio": 0.0,
        "minimized_still_violates_rate": 0.0,
        "corpus_replay_pass_rate": 0.0,
        "corpus_quarantined": 0.0,
        "shrink_evals_per_s": 0.5,
    },
    # The batched workload races the batched multi-drive stepper against
    # the serial engine on the same N corridor drives.  Equivalence gates
    # at zero tolerance (one diverging drive fingerprint fails
    # immediately — the stepper's whole contract is bit-identity), and
    # the measured speedup gates *downward* with a generous tolerance
    # (wall-clock ratios on shared CI are noisy; losing half the
    # vectorization win is still a regression worth failing on).
    "batched": {
        "fingerprint_mismatches": 0.0,
        "collisions": 0.0,
        "speedup": 0.5,
    },
}

#: Which way each gated metric regresses.  Default is "upper" (bigger is
#: worse — latencies, rates, misses); "lower" metrics regress downward
#: (throughput).
DEFAULT_DIRECTIONS: Dict[str, str] = {
    "throughput_hz": "lower",
    "throughput_logs_per_s": "lower",
    "realtime_delivery_rate": "lower",
    "cells_per_s": "lower",
    "mean_reduction_ratio": "lower",
    "minimized_still_violates_rate": "lower",
    "corpus_replay_pass_rate": "lower",
    "shrink_evals_per_s": "lower",
    "speedup": "lower",
}

#: Workload-shape invariants: when present in both snapshots these must
#: match exactly, otherwise the gate is comparing different workloads.
SHAPE_INVARIANTS = (
    "latency_samples",
    "control_ticks",
    "n_drives",
    "frames",
    "n_logs",
    "n_cells",
    "scene_fingerprint",
    "n_violations",
    "shrink_evaluations",
    "corpus_records",
)

#: Snapshot format version (bump on incompatible metric renames).
SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class BenchmarkSnapshot:
    """One named, seeded benchmark run, flattened to numeric metrics."""

    name: str
    seed: int
    duration_s: float
    metrics: Dict[str, float]
    version: int = SNAPSHOT_VERSION
    #: Which seeded workload produced this snapshot (drives the re-run
    #: during ``check``); pre-PR-4 snapshots default to "closedloop".
    workload: str = "closedloop"
    #: Extra workload parameters the re-run needs (e.g. n_drives).
    params: Dict[str, float] = field(default_factory=dict)

    def to_json(self) -> str:
        payload = {
            "name": self.name,
            "seed": self.seed,
            "duration_s": self.duration_s,
            "version": self.version,
            "workload": self.workload,
            "metrics": {k: self.metrics[k] for k in sorted(self.metrics)},
        }
        if self.params:
            payload["params"] = {
                k: self.params[k] for k in sorted(self.params)
            }
        return json.dumps(payload, indent=2)


def snapshot_path(name: str, directory: str = ".") -> str:
    import os

    return os.path.join(directory, f"BENCH_{name}.json")


def write_snapshot(snapshot: BenchmarkSnapshot, path: str) -> None:
    with open(path, "w") as fh:
        fh.write(snapshot.to_json() + "\n")


def load_snapshot(path: str) -> BenchmarkSnapshot:
    with open(path) as fh:
        data = json.load(fh)
    if data.get("version") != SNAPSHOT_VERSION:
        raise ValueError(
            f"snapshot {path!r} has version {data.get('version')}; "
            f"this code reads version {SNAPSHOT_VERSION}"
        )
    workload = data.get("workload", "closedloop")
    if workload not in WORKLOAD_TOLERANCES:
        raise ValueError(
            f"snapshot {path!r} names unknown workload {workload!r}; "
            f"known: {sorted(WORKLOAD_TOLERANCES)}"
        )
    return BenchmarkSnapshot(
        name=data["name"],
        seed=int(data["seed"]),
        duration_s=float(data["duration_s"]),
        metrics={k: float(v) for k, v in data["metrics"].items()},
        workload=workload,
        params={k: float(v) for k, v in data.get("params", {}).items()},
    )


def snapshot_closedloop(
    name: str = "closedloop",
    seed: int = 0,
    duration_s: float = 12.0,
    obstacle_distance_m: float = 30.0,
    tracer=None,
) -> BenchmarkSnapshot:
    """Run the seeded reference drive and collect its metrics.

    The workload is the Eq. 1 drill corridor with the obstacle far
    enough that a nominal drive brakes cleanly: a stable, fully seeded
    exercise of perception, planning, CAN, and actuation.  Pass a
    :class:`~repro.observability.tracing.Tracer` to also capture the
    drive's Perfetto trace (CI uploads it as an artifact).
    """
    from ..runtime.sov import obstacle_ahead_scenario

    sov = obstacle_ahead_scenario(obstacle_distance_m, seed=seed)
    sov.enable_attribution()
    if tracer is not None:
        sov.attach_tracer(tracer)
    started = time.perf_counter()
    result = sov.drive(duration_s)
    wall_s = time.perf_counter() - started
    latency = result.latency
    metrics: Dict[str, float] = {
        "latency_mean_s": latency.mean_s,
        "latency_p99_s": latency.percentile_s(99.0),
        "latency_best_s": latency.best_s,
        "latency_worst_s": latency.worst_s,
        "latency_samples": float(latency.count),
        "control_ticks": float(result.ops.control_ticks),
        "distance_m": result.ops.distance_m,
        "collisions": float(result.ops.collisions),
        "deadline_misses": (
            float(result.attribution.total_misses)
            if result.attribution is not None
            else 0.0
        ),
        # Informational only (machine-dependent): never gated.
        "wall_s_per_tick": wall_s / max(1, result.ops.control_ticks),
    }
    for stage in sorted(latency.stages_s):
        metrics[f"latency_stage_{stage}_mean_s"] = latency.stage_mean_s(stage)
    return BenchmarkSnapshot(
        name=name, seed=seed, duration_s=duration_s, metrics=metrics
    )


#: The chaos workload's campaign shape: a compact seeded sweep down the
#: slalom corridor, big enough that a leaked collision or attribution
#: drift shows, small enough to gate every CI run.
CHAOS_WORKLOAD_DRIVES = 16
CHAOS_WORKLOAD_CORRIDOR = "slalom"


def snapshot_chaos(
    name: str = "chaos",
    seed: int = 0,
    n_drives: int = CHAOS_WORKLOAD_DRIVES,
) -> BenchmarkSnapshot:
    """Run the seeded chaos-campaign workload and collect its envelope.

    The workload drives *n_drives* chaos-sampled fault scenarios down
    the ``slalom`` corridor with the full safety net engaged.  Envelope
    metrics (collision/SAFE_STOP rates, deadline misses, residency) are
    bit-stable per seed and gated; the campaign's wall-clock cost is
    reported per drive (machine-dependent, never gated).
    """
    from ..robustness.chaos import ChaosConfig, run_chaos_campaign

    config = ChaosConfig(
        n_drives=n_drives,
        seed=seed,
        safety_net=True,
        corridor=CHAOS_WORKLOAD_CORRIDOR,
    )
    started = time.perf_counter()
    envelope = run_chaos_campaign(config).envelope
    wall_s = time.perf_counter() - started
    metrics: Dict[str, float] = {
        "n_drives": float(envelope.n_drives),
        "collision_rate": envelope.collision_rate,
        "safe_stop_rate": envelope.safe_stop_rate,
        "stop_rate": envelope.stop_rate,
        "deadline_misses": float(envelope.deadline_misses),
        "mean_reactive_interventions": envelope.mean_reactive_interventions,
        "residency_nominal": envelope.mode_residency_mean.get("NOMINAL", 0.0),
        # Informational only (machine-dependent): never gated.
        "wall_s_total": wall_s,
        "wall_s_per_drive": wall_s / n_drives,
    }
    return BenchmarkSnapshot(
        name=name,
        seed=seed,
        duration_s=config.duration_s,
        metrics=metrics,
        workload="chaos",
        params={"n_drives": float(n_drives)},
    )


#: The scheduler workload's shape: enough frames that the sustained
#: throughput estimate is stable to well under the gate tolerance.
SCHEDULER_WORKLOAD_FRAMES = 400


def snapshot_scheduler(
    name: str = "scheduler",
    seed: int = 0,
    n_frames: int = SCHEDULER_WORKLOAD_FRAMES,
) -> BenchmarkSnapshot:
    """Run the seeded pipelined-executor workload (paper Sec. IV).

    Replays *n_frames* through the sensing -> perception -> planning
    pipeline and gates sustained throughput (one-sided, *downward*)
    together with per-frame service latency (upward) — the pair the
    paper's pipelining argument balances.
    """
    from ..runtime.scheduler import PipelinedExecutor

    executor = PipelinedExecutor(seed=seed)
    started = time.perf_counter()
    report = executor.run(n_frames)
    wall_s = time.perf_counter() - started
    stats = report.stats
    metrics: Dict[str, float] = {
        "frames": float(n_frames),
        "throughput_hz": report.throughput_hz,
        "latency_mean_s": stats.mean_s,
        "latency_p99_s": stats.percentile_s(99.0),
        "latency_worst_s": stats.worst_s,
        # Informational only (machine-dependent): never gated.
        "wall_s_total": wall_s,
        "wall_us_per_frame": wall_s / n_frames * 1e6,
    }
    for stage in sorted(stats.stages_s):
        metrics[f"latency_stage_{stage}_mean_s"] = stats.stage_mean_s(stage)
    return BenchmarkSnapshot(
        name=name,
        seed=seed,
        duration_s=n_frames / executor.frame_rate_hz,
        metrics=metrics,
        workload="scheduler",
        params={"n_frames": float(n_frames)},
    )


#: The ingest workload's fleet shape: enough vehicles and logs that the
#: sampled fault profiles cover every kind, small enough to gate CI.
INGEST_WORKLOAD_VEHICLES = 6
INGEST_WORKLOAD_LOGS = 10
INGEST_WORKLOAD_METRICS = 10


def snapshot_ingest(
    name: str = "ingest",
    seed: int = 0,
    n_vehicles: int = INGEST_WORKLOAD_VEHICLES,
    logs_per_vehicle: int = INGEST_WORKLOAD_LOGS,
    metrics_per_vehicle: int = INGEST_WORKLOAD_METRICS,
) -> BenchmarkSnapshot:
    """Run the seeded fleet-telemetry ingest campaign (paper Sec. II-B).

    Every vehicle uplinks its condensed hourly logs across a seeded
    lossy link into one shared ingestion service.  The gate holds the
    delivery guarantee exactly — realtime delivery rate 1.0 and zero
    post-dedup duplicates, both at 0% tolerance — alongside fleet
    throughput (downward) and p99 ingest latency (upward).
    """
    from ..cloud.ingestion import IngestCampaignConfig, run_ingest_campaign

    config = IngestCampaignConfig(
        n_vehicles=n_vehicles,
        logs_per_vehicle=logs_per_vehicle,
        metrics_per_vehicle=metrics_per_vehicle,
        seed=seed,
    )
    started = time.perf_counter()
    result = run_ingest_campaign(config)
    wall_s = time.perf_counter() - started
    report = result.report
    metrics: Dict[str, float] = {
        "n_logs": float(result.realtime_submitted),
        "throughput_logs_per_s": result.throughput_logs_per_s,
        "realtime_delivery_rate": result.realtime_delivery_rate,
        "realtime_lost": float(result.realtime_lost),
        "post_dedup_duplicates": float(result.post_dedup_duplicates),
        "delivered": report.delivered,
        "duplicated_pre_dedup": report.duplicated,
        "corrupted_detected": report.corrupted,
        "dead_lettered": report.dead_lettered,
        "ingest_p50_s": report.ingest_p50_s,
        "ingest_p99_s": report.ingest_p99_s,
        # Informational only (machine-dependent): never gated.
        "wall_s_total": wall_s,
    }
    return BenchmarkSnapshot(
        name=name,
        seed=seed,
        duration_s=result.sim_span_s,
        metrics=metrics,
        workload="ingest",
        params={
            "n_vehicles": float(n_vehicles),
            "logs_per_vehicle": float(logs_per_vehicle),
            "metrics_per_vehicle": float(metrics_per_vehicle),
        },
    )


#: The fleet workload's campaign shape: enough short drill-lane cells
#: that worker scheduling genuinely interleaves, small enough to gate
#: every CI run even with the worker pool running on one core.
FLEET_WORKLOAD_CELLS = 24
FLEET_WORKLOAD_WORKERS = 4
FLEET_WORKLOAD_DURATION_S = 2.0


def snapshot_fleet(
    name: str = "fleet",
    seed: int = 0,
    n_cells: int = FLEET_WORKLOAD_CELLS,
    n_workers: int = FLEET_WORKLOAD_WORKERS,
) -> BenchmarkSnapshot:
    """Run the seeded fleet-campaign workload across the worker pool.

    Drives *n_cells* chaos cells through the supervised fleet engine
    (:mod:`repro.fleetops`) with journaling off (CI gates the resume
    path separately).  Exactly-once accounting (zero lost, zero
    duplicated, zero failed cells) and the measured safety envelope are
    gated at zero tolerance — they are deterministic per seed; campaign
    throughput in cells/sec gates downward with a generous tolerance.
    """
    from ..fleetops.campaign import (
        FleetCampaignConfig,
        fleet_summary,
        run_fleet_campaign,
    )
    from ..fleetops.supervisor import FleetConfig
    from ..robustness.chaos import ChaosConfig

    config = FleetCampaignConfig(
        chaos=ChaosConfig(
            n_drives=n_cells,
            seed=seed,
            safety_net=True,
            duration_s=FLEET_WORKLOAD_DURATION_S,
        ),
        fleet=FleetConfig(n_workers=n_workers, seed=seed),
    )
    result = run_fleet_campaign(config)
    flat = fleet_summary(result)
    metrics: Dict[str, float] = {
        "n_cells": flat["n_cells"],
        "cells_per_s": flat["cells_per_s"],
        "lost_cells": flat["lost_cells"],
        "duplicate_cells": flat["duplicate_cells"],
        "failed_cells": flat["failed_cells"],
        "collision_rate": flat["collision_rate"],
        "safe_stop_rate": flat["safe_stop_rate"],
        "deadline_misses": flat["deadline_misses"],
        "retries": flat["retries"],
        "worker_crashes": flat["worker_crashes"],
        "degraded_to_serial": flat["degraded_to_serial"],
        "risk_adjusted_profit_per_day_usd": flat[
            "risk_adjusted_profit_per_day_usd"
        ],
        # Informational only (machine-dependent): never gated.
        "wall_s_total": flat["wall_s"],
        "wall_s_per_cell": flat["wall_s"] / max(1, n_cells),
    }
    return BenchmarkSnapshot(
        name=name,
        seed=seed,
        duration_s=FLEET_WORKLOAD_DURATION_S,
        metrics=metrics,
        workload="fleet",
        params={
            "n_cells": float(n_cells),
            "n_workers": float(n_workers),
        },
    )


#: The procgen workload's shape: enough generated cells that every
#: topology family appears, small enough to gate every CI run with the
#: scene-regeneration + drive-determinism double-check per cell.
PROCGEN_WORKLOAD_CELLS = 12
PROCGEN_WORKLOAD_WORKERS = 4


def snapshot_procgen(
    name: str = "procgen",
    seed: int = 0,
    n_cells: int = PROCGEN_WORKLOAD_CELLS,
    n_workers: int = PROCGEN_WORKLOAD_WORKERS,
) -> BenchmarkSnapshot:
    """Run the seeded procedural-scenario workload (scene + invariants).

    Sweeps *n_cells* scenes sampled from the default
    :class:`~repro.scene.procgen.ProcGenSpace` through the fleet engine
    with the full invariant harness (scene regeneration + the five drive
    invariants per cell).  The invariant verdict, exactly-once
    accounting, and collision rate gate at zero tolerance;
    ``scene_fingerprint`` — the campaign-level CRC over every generated
    scene — is a shape invariant, so the gate fails the moment scene
    generation changes bit for bit.  Throughput in cells/sec gates
    downward with a generous tolerance.
    """
    from ..fleetops.campaign import procgen_summary, run_procgen_campaign
    from ..fleetops.supervisor import FleetConfig

    result = run_procgen_campaign(
        generator_seed=seed,
        n_cells=n_cells,
        fleet=FleetConfig(n_workers=n_workers, seed=seed),
    )
    flat = procgen_summary(result)
    metrics: Dict[str, float] = {
        "n_cells": flat["n_cells"],
        "cells_per_s": flat["cells_per_s"],
        "violations": flat["violations"],
        "checks_run": flat["checks_run"],
        "collision_rate": flat["collision_rate"],
        "safe_stop_rate": flat["safe_stop_rate"],
        "lost_cells": flat["lost_cells"],
        "duplicate_cells": flat["duplicate_cells"],
        "failed_cells": flat["failed_cells"],
        "n_topologies": flat["n_topologies"],
        "scene_fingerprint": flat["campaign_checksum"],
        # Informational only (machine-dependent): never gated.
        "wall_s_total": flat["wall_s"],
        "wall_s_per_cell": flat["wall_s"] / max(1, n_cells),
    }
    return BenchmarkSnapshot(
        name=name,
        seed=seed,
        duration_s=0.0,
        metrics=metrics,
        workload="procgen",
        params={
            "n_cells": float(n_cells),
            "n_workers": float(n_workers),
        },
    )


#: The triage workload's shape: the same seeded injection campaign the
#: ``triage_campaign`` experiment runs — both arms contribute
#: violations, both failure classes appear, and the whole loop
#: (harvest, shrink, dedup, classify, file, replay) executes.
TRIAGE_WORKLOAD_CHAOS = 12
TRIAGE_WORKLOAD_PROCGEN = 10
TRIAGE_WORKLOAD_REPLICAS = 4


def snapshot_triage(
    name: str = "triage",
    seed: int = 0,
    n_chaos: int = TRIAGE_WORKLOAD_CHAOS,
    n_procgen: int = TRIAGE_WORKLOAD_PROCGEN,
    n_replicas: int = TRIAGE_WORKLOAD_REPLICAS,
) -> BenchmarkSnapshot:
    """Run the seeded failure-triage workload end to end.

    Harvests injected violations across the chaos and procgen arms,
    delta-debugs each one, deduplicates by failure fingerprint,
    flake-classifies the survivors, files them in a throwaway corpus,
    and replays it.  The triage contracts gate at zero tolerance —
    every minimized cell still violates, every record replays
    bit-identically — and the violation/evaluation counts are shape
    invariants (they are deterministic per seed, so any drift means the
    workload itself changed).  Shrink throughput gates downward.
    """
    import tempfile

    from ..triage.campaign import (
        TriageCampaignConfig,
        run_triage_campaign,
        triage_summary,
    )

    config = TriageCampaignConfig(
        seed=seed,
        n_chaos=n_chaos,
        n_procgen=n_procgen,
        n_replicas=n_replicas,
    )
    with tempfile.TemporaryDirectory() as corpus_dir:
        result = run_triage_campaign(config, corpus_dir=corpus_dir)
        flat = triage_summary(result)
    metrics: Dict[str, float] = {
        "n_candidates": flat["n_candidates"],
        "n_violations": flat["n_violations"],
        "unique_failures": flat["unique_failures"],
        "duplicates_merged": flat["duplicates_merged"],
        "mean_reduction_ratio": flat["mean_reduction_ratio"],
        "minimized_still_violates_rate": flat[
            "minimized_still_violates_rate"
        ],
        "shrink_evaluations": flat["shrink_evaluations"],
        "shrink_evals_per_s": flat["shrink_evals_per_s"],
        "corpus_records": flat["corpus_records"],
        "corpus_replay_pass_rate": flat["corpus_replay_pass_rate"],
        "corpus_quarantined": flat["corpus_quarantined"],
        "n_deterministic": flat["n_deterministic"],
        "n_flaky": flat["n_flaky"],
        "n_unreproducible": flat["n_unreproducible"],
        # Informational only (machine-dependent): never gated.
        "wall_s_total": flat["wall_s"],
    }
    return BenchmarkSnapshot(
        name=name,
        seed=seed,
        duration_s=0.0,
        metrics=metrics,
        workload="triage",
        params={
            "n_chaos": float(n_chaos),
            "n_procgen": float(n_procgen),
            "n_replicas": float(n_replicas),
        },
    )


#: The batched workload's shape: one drive per corridor plus wrap-around
#: repeats up to N, long enough that the stepper's lockstep/retirement
#: machinery is exercised across heterogeneous scene durations.
BATCHED_WORKLOAD_DRIVES = 16
BATCHED_WORKLOAD_DURATION_S = 8.0


def snapshot_batched(
    name: str = "batched",
    seed: int = 0,
    n_drives: int = BATCHED_WORKLOAD_DRIVES,
    duration_s: float = BATCHED_WORKLOAD_DURATION_S,
) -> BenchmarkSnapshot:
    """Race the batched multi-drive stepper against the serial engine.

    Builds the same *n_drives* corridor drives twice (corridors cycled,
    seeds offset from *seed*), runs one set serially through
    ``SystemsOnAVehicle.drive`` and the other through
    :func:`~repro.runtime.batched.drive_batch`, and snapshots:

    * ``fingerprint_mismatches`` — drives whose
      :func:`~repro.testing.invariants.drive_fingerprint` diverged
      between engines (the equivalence contract; gated at zero);
    * ``speedup`` — aggregate ticks/s, batched over serial (gated
      downward — the vectorization win must not silently erode);
    * per-engine ticks/s plus wall-clock totals (informational).
    """
    from ..runtime.batched import drive_batch
    from ..scene.corridors import corridor_names, make_corridor_sov
    from ..scene.providers import resolve_scene
    from ..testing.invariants import drive_fingerprint

    names = sorted(corridor_names())

    def build(index: int):
        scenario = resolve_scene(names[index % len(names)], seed + index)
        sov = make_corridor_sov(scenario, safety_net=True)
        sov.enable_attribution()
        return sov

    serial_sovs = [build(i) for i in range(n_drives)]
    started = time.perf_counter()
    serial_results = [sov.drive(duration_s) for sov in serial_sovs]
    serial_wall_s = time.perf_counter() - started

    batched_sovs = [build(i) for i in range(n_drives)]
    started = time.perf_counter()
    batched_results = drive_batch(
        batched_sovs, [duration_s] * n_drives
    )
    batched_wall_s = time.perf_counter() - started

    mismatches = sum(
        drive_fingerprint(a) != drive_fingerprint(b)
        for a, b in zip(serial_results, batched_results)
    )
    ticks = sum(r.ops.control_ticks for r in serial_results)
    metrics: Dict[str, float] = {
        "n_drives": float(n_drives),
        "control_ticks": float(ticks),
        "fingerprint_mismatches": float(mismatches),
        "collisions": float(
            sum(r.ops.collisions for r in serial_results)
        ),
        "speedup": (ticks / batched_wall_s) / (ticks / serial_wall_s),
        # Informational only (machine-dependent): never gated.
        "ticks_per_s_serial": ticks / serial_wall_s,
        "ticks_per_s_batched": ticks / batched_wall_s,
        "wall_s_serial": serial_wall_s,
        "wall_s_batched": batched_wall_s,
    }
    return BenchmarkSnapshot(
        name=name,
        seed=seed,
        duration_s=duration_s,
        metrics=metrics,
        workload="batched",
        params={"n_drives": float(n_drives)},
    )


def run_workload(baseline: BenchmarkSnapshot, tracer=None) -> BenchmarkSnapshot:
    """Re-run the seeded workload a baseline snapshot describes."""
    if baseline.workload == "closedloop":
        return snapshot_closedloop(
            name=baseline.name,
            seed=baseline.seed,
            duration_s=baseline.duration_s,
            tracer=tracer,
        )
    if baseline.workload == "chaos":
        return snapshot_chaos(
            name=baseline.name,
            seed=baseline.seed,
            n_drives=int(
                baseline.params.get("n_drives", CHAOS_WORKLOAD_DRIVES)
            ),
        )
    if baseline.workload == "scheduler":
        return snapshot_scheduler(
            name=baseline.name,
            seed=baseline.seed,
            n_frames=int(
                baseline.params.get("n_frames", SCHEDULER_WORKLOAD_FRAMES)
            ),
        )
    if baseline.workload == "ingest":
        return snapshot_ingest(
            name=baseline.name,
            seed=baseline.seed,
            n_vehicles=int(
                baseline.params.get("n_vehicles", INGEST_WORKLOAD_VEHICLES)
            ),
            logs_per_vehicle=int(
                baseline.params.get("logs_per_vehicle", INGEST_WORKLOAD_LOGS)
            ),
            metrics_per_vehicle=int(
                baseline.params.get(
                    "metrics_per_vehicle", INGEST_WORKLOAD_METRICS
                )
            ),
        )
    if baseline.workload == "fleet":
        return snapshot_fleet(
            name=baseline.name,
            seed=baseline.seed,
            n_cells=int(
                baseline.params.get("n_cells", FLEET_WORKLOAD_CELLS)
            ),
            n_workers=int(
                baseline.params.get("n_workers", FLEET_WORKLOAD_WORKERS)
            ),
        )
    if baseline.workload == "procgen":
        return snapshot_procgen(
            name=baseline.name,
            seed=baseline.seed,
            n_cells=int(
                baseline.params.get("n_cells", PROCGEN_WORKLOAD_CELLS)
            ),
            n_workers=int(
                baseline.params.get("n_workers", PROCGEN_WORKLOAD_WORKERS)
            ),
        )
    if baseline.workload == "batched":
        return snapshot_batched(
            name=baseline.name,
            seed=baseline.seed,
            n_drives=int(
                baseline.params.get("n_drives", BATCHED_WORKLOAD_DRIVES)
            ),
            duration_s=baseline.duration_s or BATCHED_WORKLOAD_DURATION_S,
        )
    if baseline.workload == "triage":
        return snapshot_triage(
            name=baseline.name,
            seed=baseline.seed,
            n_chaos=int(
                baseline.params.get("n_chaos", TRIAGE_WORKLOAD_CHAOS)
            ),
            n_procgen=int(
                baseline.params.get("n_procgen", TRIAGE_WORKLOAD_PROCGEN)
            ),
            n_replicas=int(
                baseline.params.get("n_replicas", TRIAGE_WORKLOAD_REPLICAS)
            ),
        )
    raise ValueError(f"unknown workload {baseline.workload!r}")


@dataclass(frozen=True)
class GateFinding:
    """One gated metric's verdict."""

    metric: str
    baseline: float
    current: float
    tolerance: float
    regressed: bool
    #: "upper" metrics regress when they grow; "lower" when they shrink.
    direction: str = "upper"

    @property
    def delta_frac(self) -> float:
        if self.baseline == 0:
            return 0.0 if self.current == 0 else float("inf")
        return (self.current - self.baseline) / self.baseline

    def describe(self) -> str:
        verdict = "REGRESSED" if self.regressed else "ok"
        sign = "-" if self.direction == "lower" else "+"
        return (
            f"{self.metric}: baseline {self.baseline:.6g} -> current "
            f"{self.current:.6g} ({self.delta_frac:+.2%}, "
            f"tol {sign}{self.tolerance:.0%}) {verdict}"
        )


@dataclass
class GateReport:
    """The gate's full verdict over one baseline snapshot."""

    name: str
    findings: List[GateFinding] = field(default_factory=list)
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems and not any(
            f.regressed for f in self.findings
        )

    def format_report(self) -> str:
        lines = [f"bench-gate: {self.name} -> {'PASS' if self.ok else 'FAIL'}"]
        lines.extend(f.describe() for f in self.findings)
        lines.extend(f"problem: {p}" for p in self.problems)
        return "\n".join(lines)


def gate_metrics(
    baseline: Mapping[str, float],
    current: Mapping[str, float],
    tolerances: Optional[Mapping[str, float]] = None,
    directions: Optional[Mapping[str, str]] = None,
) -> Tuple[List[GateFinding], List[str]]:
    """Compare metric maps; returns (findings, structural problems).

    Each gated metric is checked one-sided in its *direction*: "upper"
    metrics (latencies, rates, miss counts) regress when they exceed
    ``baseline * (1 + tol)``; "lower" metrics (throughput) regress when
    they fall below ``baseline * (1 - tol)``.
    """
    tolerances = dict(tolerances or DEFAULT_TOLERANCES)
    directions = dict(DEFAULT_DIRECTIONS, **(directions or {}))
    findings: List[GateFinding] = []
    problems: List[str] = []
    for metric, tolerance in sorted(tolerances.items()):
        if metric not in baseline:
            problems.append(f"baseline is missing gated metric {metric!r}")
            continue
        if metric not in current:
            problems.append(f"current run is missing gated metric {metric!r}")
            continue
        base, cur = baseline[metric], current[metric]
        direction = directions.get(metric, "upper")
        if direction == "lower":
            regressed = cur < base * (1.0 - tolerance)
        else:
            regressed = cur > base * (1.0 + tolerance)
        findings.append(
            GateFinding(
                metric=metric,
                baseline=base,
                current=cur,
                tolerance=tolerance,
                regressed=regressed,
                direction=direction,
            )
        )
    # The workload itself must not silently change shape.
    for invariant in SHAPE_INVARIANTS:
        if invariant in baseline and invariant in current:
            if baseline[invariant] != current[invariant]:
                problems.append(
                    f"workload changed: {invariant} was "
                    f"{baseline[invariant]:.0f}, now {current[invariant]:.0f}"
                )
    return findings, problems


def gate_against_baseline(
    baseline: BenchmarkSnapshot,
    current: Optional[BenchmarkSnapshot] = None,
    tolerances: Optional[Mapping[str, float]] = None,
    tracer=None,
) -> GateReport:
    """Re-run the baseline's seeded workload and gate the result.

    The baseline's ``workload`` field names the seeded runner to replay
    (closed loop, chaos campaign, or scheduler); gated metrics default
    to that workload's :data:`WORKLOAD_TOLERANCES` entry.
    """
    if current is None:
        current = run_workload(baseline, tracer=tracer)
    if tolerances is None:
        tolerances = WORKLOAD_TOLERANCES.get(
            baseline.workload, DEFAULT_TOLERANCES
        )
    findings, problems = gate_metrics(
        baseline.metrics, current.metrics, tolerances
    )
    if baseline.workload != current.workload:
        problems.append(
            f"workload mismatch: baseline is {baseline.workload!r}, "
            f"current is {current.workload!r}"
        )
    return GateReport(name=baseline.name, findings=findings, problems=problems)
