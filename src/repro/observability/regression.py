"""Seeded benchmark snapshots and the perf-regression gate.

The ROADMAP's north star ("as fast as the hardware allows") needs a
trajectory: every perf PR must prove it did not regress the loop.  The
mechanism is a *snapshot → gate* pair:

1. :func:`snapshot_closedloop` runs a fully seeded closed-loop drive and
   collects its latency distribution (mean/p99/best/worst) plus the
   operational counters — all deterministic per seed — and a wall-clock
   per-tick cost (informational; machine-dependent, not gated).
2. :func:`write_snapshot` persists it as ``BENCH_<name>.json`` (committed
   to the repo as the accepted baseline).
3. :func:`gate_against_baseline` re-runs the same seeded workload and
   fails when a gated metric regresses beyond its tolerance.

Simulated-latency metrics are bit-stable per seed, so their tolerance
exists only to absorb *intentional* recalibrations: an unintentional
change of the sampled distribution trips the gate immediately.  The
``bench-gate`` CLI (:mod:`repro.observability.bench_gate`) wraps this
for CI.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

#: Metrics the gate checks, with their default relative tolerances.
#: Latency metrics regress *upward*; the gate is one-sided.
DEFAULT_TOLERANCES: Dict[str, float] = {
    "latency_mean_s": 0.05,
    "latency_p99_s": 0.10,
}

#: Snapshot format version (bump on incompatible metric renames).
SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class BenchmarkSnapshot:
    """One named, seeded benchmark run, flattened to numeric metrics."""

    name: str
    seed: int
    duration_s: float
    metrics: Dict[str, float]
    version: int = SNAPSHOT_VERSION

    def to_json(self) -> str:
        return json.dumps(
            {
                "name": self.name,
                "seed": self.seed,
                "duration_s": self.duration_s,
                "version": self.version,
                "metrics": {k: self.metrics[k] for k in sorted(self.metrics)},
            },
            indent=2,
        )


def snapshot_path(name: str, directory: str = ".") -> str:
    import os

    return os.path.join(directory, f"BENCH_{name}.json")


def write_snapshot(snapshot: BenchmarkSnapshot, path: str) -> None:
    with open(path, "w") as fh:
        fh.write(snapshot.to_json() + "\n")


def load_snapshot(path: str) -> BenchmarkSnapshot:
    with open(path) as fh:
        data = json.load(fh)
    if data.get("version") != SNAPSHOT_VERSION:
        raise ValueError(
            f"snapshot {path!r} has version {data.get('version')}; "
            f"this code reads version {SNAPSHOT_VERSION}"
        )
    return BenchmarkSnapshot(
        name=data["name"],
        seed=int(data["seed"]),
        duration_s=float(data["duration_s"]),
        metrics={k: float(v) for k, v in data["metrics"].items()},
    )


def snapshot_closedloop(
    name: str = "closedloop",
    seed: int = 0,
    duration_s: float = 12.0,
    obstacle_distance_m: float = 30.0,
    tracer=None,
) -> BenchmarkSnapshot:
    """Run the seeded reference drive and collect its metrics.

    The workload is the Eq. 1 drill corridor with the obstacle far
    enough that a nominal drive brakes cleanly: a stable, fully seeded
    exercise of perception, planning, CAN, and actuation.  Pass a
    :class:`~repro.observability.tracing.Tracer` to also capture the
    drive's Perfetto trace (CI uploads it as an artifact).
    """
    from ..runtime.sov import obstacle_ahead_scenario

    sov = obstacle_ahead_scenario(obstacle_distance_m, seed=seed)
    sov.enable_attribution()
    if tracer is not None:
        sov.attach_tracer(tracer)
    started = time.perf_counter()
    result = sov.drive(duration_s)
    wall_s = time.perf_counter() - started
    latency = result.latency
    metrics: Dict[str, float] = {
        "latency_mean_s": latency.mean_s,
        "latency_p99_s": latency.percentile_s(99.0),
        "latency_best_s": latency.best_s,
        "latency_worst_s": latency.worst_s,
        "latency_samples": float(latency.count),
        "control_ticks": float(result.ops.control_ticks),
        "distance_m": result.ops.distance_m,
        "collisions": float(result.ops.collisions),
        "deadline_misses": (
            float(result.attribution.total_misses)
            if result.attribution is not None
            else 0.0
        ),
        # Informational only (machine-dependent): never gated.
        "wall_s_per_tick": wall_s / max(1, result.ops.control_ticks),
    }
    for stage in sorted(latency.stages_s):
        metrics[f"latency_stage_{stage}_mean_s"] = latency.stage_mean_s(stage)
    return BenchmarkSnapshot(
        name=name, seed=seed, duration_s=duration_s, metrics=metrics
    )


@dataclass(frozen=True)
class GateFinding:
    """One gated metric's verdict."""

    metric: str
    baseline: float
    current: float
    tolerance: float
    regressed: bool

    @property
    def delta_frac(self) -> float:
        if self.baseline == 0:
            return 0.0 if self.current == 0 else float("inf")
        return (self.current - self.baseline) / self.baseline

    def describe(self) -> str:
        verdict = "REGRESSED" if self.regressed else "ok"
        return (
            f"{self.metric}: baseline {self.baseline:.6g} -> current "
            f"{self.current:.6g} ({self.delta_frac:+.2%}, "
            f"tol +{self.tolerance:.0%}) {verdict}"
        )


@dataclass
class GateReport:
    """The gate's full verdict over one baseline snapshot."""

    name: str
    findings: List[GateFinding] = field(default_factory=list)
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems and not any(
            f.regressed for f in self.findings
        )

    def format_report(self) -> str:
        lines = [f"bench-gate: {self.name} -> {'PASS' if self.ok else 'FAIL'}"]
        lines.extend(f.describe() for f in self.findings)
        lines.extend(f"problem: {p}" for p in self.problems)
        return "\n".join(lines)


def gate_metrics(
    baseline: Mapping[str, float],
    current: Mapping[str, float],
    tolerances: Optional[Mapping[str, float]] = None,
) -> Tuple[List[GateFinding], List[str]]:
    """Compare metric maps; returns (findings, structural problems)."""
    tolerances = dict(tolerances or DEFAULT_TOLERANCES)
    findings: List[GateFinding] = []
    problems: List[str] = []
    for metric, tolerance in sorted(tolerances.items()):
        if metric not in baseline:
            problems.append(f"baseline is missing gated metric {metric!r}")
            continue
        if metric not in current:
            problems.append(f"current run is missing gated metric {metric!r}")
            continue
        base, cur = baseline[metric], current[metric]
        regressed = cur > base * (1.0 + tolerance)
        findings.append(
            GateFinding(
                metric=metric,
                baseline=base,
                current=cur,
                tolerance=tolerance,
                regressed=regressed,
            )
        )
    # The workload itself must not silently change shape.
    for invariant in ("latency_samples", "control_ticks"):
        if invariant in baseline and invariant in current:
            if baseline[invariant] != current[invariant]:
                problems.append(
                    f"workload changed: {invariant} was "
                    f"{baseline[invariant]:.0f}, now {current[invariant]:.0f}"
                )
    return findings, problems


def gate_against_baseline(
    baseline: BenchmarkSnapshot,
    current: Optional[BenchmarkSnapshot] = None,
    tolerances: Optional[Mapping[str, float]] = None,
    tracer=None,
) -> GateReport:
    """Re-run the baseline's seeded workload and gate the result."""
    if current is None:
        current = snapshot_closedloop(
            name=baseline.name,
            seed=baseline.seed,
            duration_s=baseline.duration_s,
            tracer=tracer,
        )
    findings, problems = gate_metrics(
        baseline.metrics, current.metrics, tolerances
    )
    return GateReport(name=baseline.name, findings=findings, problems=problems)
