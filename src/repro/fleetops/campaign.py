"""Fleet-scale chaos campaigns: supervised execution + fleet rollup.

:func:`run_fleet_campaign` is the fleet twin of
:func:`repro.robustness.chaos.run_chaos_campaign`: the same
``ChaosConfig``, the same cells, the same
:class:`~repro.robustness.chaos.EnvelopeReport` out the other end — but
executed across the supervised worker pool with checkpoint/resume, and
finished with a fleet-level rollup that feeds the campaign's measured
safety envelope into the Sec. VII TCO model
(:class:`repro.core.fleet.FleetTcoModel`).

Because :func:`~repro.fleetops.cells.run_cell` is pure per spec, the
fleet envelope is bit-identical to the serial one — crashes, retries,
stragglers and speculation included.  ``tests/fleetops`` and
``benchmarks/test_fleet_campaign.py`` assert exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import zlib

from ..core.fleet import FleetTcoModel, paper_compute_tiers
from ..robustness.chaos import (
    ChaosCampaignResult,
    ChaosConfig,
    aggregate_envelope,
)
from .cells import CellResult, chaos_cells, procgen_cells
from .injection import WorkerFaultPlan
from .supervisor import FleetConfig, FleetRunReport, FleetSupervisor


@dataclass(frozen=True)
class FleetCampaignConfig:
    """One fleet campaign: what to drive, and how to supervise it."""

    chaos: ChaosConfig = field(default_factory=ChaosConfig)
    fleet: FleetConfig = field(default_factory=FleetConfig)


@dataclass(frozen=True)
class FleetRollup:
    """Fleet-level economics derived from the measured envelope.

    The campaign's collision rate discounts every tier's daily profit:
    a fleet that crashes does not keep its revenue (paper Sec. VII's
    cost-vs-latency trade-off, grounded in campaign evidence instead of
    an assumed safety level).
    """

    n_cells: int
    collision_rate: float
    safe_stop_rate: float
    best_tier: str
    fleet_profit_per_day_usd: float
    risk_adjusted_profit_per_day_usd: float
    tier_profits_usd: Dict[str, float]

    def as_dict(self) -> Dict[str, float]:
        flat: Dict[str, float] = {
            "n_cells": float(self.n_cells),
            "collision_rate": self.collision_rate,
            "safe_stop_rate": self.safe_stop_rate,
            "fleet_profit_per_day_usd": self.fleet_profit_per_day_usd,
            "risk_adjusted_profit_per_day_usd": (
                self.risk_adjusted_profit_per_day_usd
            ),
        }
        for name, profit in sorted(self.tier_profits_usd.items()):
            flat[f"profit_{name}_usd"] = profit
        return flat


@dataclass
class FleetCampaignResult:
    """A supervised campaign, its envelope, and the fleet economics."""

    config: FleetCampaignConfig
    report: FleetRunReport
    campaign: ChaosCampaignResult
    rollup: FleetRollup


def rollup_fleet(
    n_cells: int,
    collision_rate: float,
    safe_stop_rate: float,
    model: Optional[FleetTcoModel] = None,
) -> FleetRollup:
    """Feed a measured envelope into the TCO model."""
    model = model or FleetTcoModel()
    ranked = model.compare_tiers(paper_compute_tiers())
    profits = {tier.name: profit for tier, profit in ranked}
    best_tier, best_profit = ranked[0]
    survival = max(0.0, 1.0 - collision_rate)
    return FleetRollup(
        n_cells=n_cells,
        collision_rate=collision_rate,
        safe_stop_rate=safe_stop_rate,
        best_tier=best_tier.name,
        fleet_profit_per_day_usd=best_profit,
        risk_adjusted_profit_per_day_usd=best_profit * survival,
        tier_profits_usd=profits,
    )


def run_fleet_campaign(
    config: Optional[FleetCampaignConfig] = None,
    journal_path: Optional[str] = None,
    fault_plan: Optional[WorkerFaultPlan] = None,
    tco_model: Optional[FleetTcoModel] = None,
) -> FleetCampaignResult:
    """Run a chaos campaign across the supervised fleet pool.

    With ``journal_path`` set, an interrupted campaign resumes from its
    journal with exactly-once cell accounting.  The returned envelope is
    aggregated from results sorted back into drive order, so it is
    bit-identical to :func:`~repro.robustness.chaos.run_chaos_campaign`
    on the same ``ChaosConfig``.
    """
    config = config or FleetCampaignConfig()
    specs = list(chaos_cells(config.chaos))
    supervisor = FleetSupervisor(config.fleet)
    report = supervisor.run(
        specs,
        journal_path=journal_path,
        fault_plan=fault_plan,
        meta={"kind": "chaos", "n_drives": config.chaos.n_drives},
    )
    if not report.ok:
        raise RuntimeError(
            f"fleet campaign incomplete: lost={report.lost_cells} "
            f"duplicates={report.duplicate_cells} "
            f"failed={list(report.failed_cells)}"
        )
    records = [result.record for result in report.results]
    envelope = aggregate_envelope(config.chaos, records)
    campaign = ChaosCampaignResult(
        config=config.chaos, records=records, envelope=envelope
    )
    rollup = rollup_fleet(
        n_cells=len(report.results),
        collision_rate=envelope.collision_rate,
        safe_stop_rate=envelope.safe_stop_rate,
        model=tco_model,
    )
    return FleetCampaignResult(
        config=config, report=report, campaign=campaign, rollup=rollup
    )


@dataclass
class ProcGenCampaignResult:
    """A fleet sweep over procedurally generated invariant cells."""

    space: "object"  # repro.scene.procgen.ProcGenSpace
    generator_seed: int
    report: FleetRunReport
    matrix: "object"  # repro.testing.invariants.MatrixReport
    #: CRC32 over every cell's scene checksum, in index order — one
    #: number that pins the entire generated campaign's geometry.
    campaign_checksum: int
    topology_counts: Dict[str, int]


def run_procgen_campaign(
    space=None,
    generator_seed: int = 0,
    n_cells: int = 200,
    fleet: Optional[FleetConfig] = None,
    journal_path: Optional[str] = None,
    fault_plan: Optional[WorkerFaultPlan] = None,
    check_determinism: bool = True,
) -> ProcGenCampaignResult:
    """Sweep *n_cells* generated scenarios across the fleet pool.

    Each cell samples scene ``(generator_seed, index)`` from *space*
    (None: the default :class:`~repro.scene.procgen.ProcGenSpace`),
    checks the scene-regeneration invariant plus the five drive
    invariants, and reports its scene checksum; the campaign checksum
    folds those into one number, so two runs generated identical scenes
    iff the checksums match.  With ``journal_path`` set, an interrupted
    campaign resumes with exactly-once cell accounting.
    """
    from ..testing.invariants import MatrixReport

    if space is None:
        from ..scene.procgen import DEFAULT_SPACE

        space = DEFAULT_SPACE
    specs = list(
        procgen_cells(
            space=space,
            generator_seed=generator_seed,
            n_cells=n_cells,
            check_determinism=check_determinism,
        )
    )
    supervisor = FleetSupervisor(fleet or FleetConfig())
    report = supervisor.run(
        specs,
        journal_path=journal_path,
        fault_plan=fault_plan,
        meta={
            "kind": "procgen",
            "generator_seed": generator_seed,
            "n_cells": n_cells,
            "intensity": space.intensity,
        },
    )
    if not report.ok:
        raise RuntimeError(
            f"procgen campaign incomplete: lost={report.lost_cells} "
            f"duplicates={report.duplicate_cells} "
            f"failed={list(report.failed_cells)}"
        )
    ordered = sorted(report.results, key=lambda r: r.index)
    outcomes = [result.record for result in ordered]
    checksum = 0
    topology_counts: Dict[str, int] = {}
    for outcome in outcomes:
        checksum = zlib.crc32(
            str(outcome.scene_checksum).encode("ascii"), checksum
        )
        topology = outcome.scenario.split(":", 1)[1].split("[", 1)[0]
        topology_counts[topology] = topology_counts.get(topology, 0) + 1
    return ProcGenCampaignResult(
        space=space,
        generator_seed=generator_seed,
        report=report,
        matrix=MatrixReport(cells=outcomes),
        campaign_checksum=checksum,
        topology_counts=topology_counts,
    )


def procgen_summary(result: ProcGenCampaignResult) -> Dict[str, float]:
    """Flat numeric view of one generated campaign (rows, snapshots)."""
    flat = dict(result.report.summary())
    flat.update(result.matrix.summary())
    flat["campaign_checksum"] = float(result.campaign_checksum)
    flat["n_topologies"] = float(len(result.topology_counts))
    return flat


def fleet_summary(result: FleetCampaignResult) -> Dict[str, float]:
    """Flat numeric view of one fleet campaign (rows, snapshots)."""
    flat = dict(result.report.summary())
    flat["collision_rate"] = result.campaign.envelope.collision_rate
    flat["safe_stop_rate"] = result.campaign.envelope.safe_stop_rate
    flat["deadline_misses"] = float(
        sum(record.deadline_misses for record in result.campaign.records)
    )
    flat["risk_adjusted_profit_per_day_usd"] = (
        result.rollup.risk_adjusted_profit_per_day_usd
    )
    return flat
