"""Fleet-scale campaign engine (ROADMAP: "Fleet-scale campaign engine").

The paper's Sec. VII fleet economics assume fleet-scale operation; this
package makes our own campaign infrastructure operate at that scale and
survive the failures that come with it.  The pieces:

``cells``
    :class:`~repro.fleetops.cells.CellSpec` / :func:`~repro.fleetops.cells.run_cell`
    — the pure, picklable unit of campaign work shared by the serial and
    fleet paths, with deterministic per-cell seeding so results are
    bit-identical no matter where a cell runs.

``journal``
    A crash-consistent append-only campaign journal
    (``journal.jsonl`` with per-record checksums) checkpointing
    completed cells so an interrupted campaign resumes with exactly-once
    cell accounting.

``supervisor``
    :class:`~repro.fleetops.supervisor.FleetSupervisor` — a supervised
    multi-process worker pool with heartbeat liveness, per-cell
    timeouts, bounded seeded-backoff retries, straggler detection with
    speculative re-execution, and graceful degradation to serial
    execution when the pool collapses.

``injection``
    Self-test fault injection: kill workers mid-cell, delay them past
    the straggler threshold, truncate the journal mid-record — the
    chaos-engineering discipline applied to the campaign runner itself.

``campaign``
    Fleet campaigns end to end: cell grid -> supervised execution ->
    :class:`~repro.robustness.chaos.EnvelopeReport` aggregation and
    Sec. VII TCO rollups via :mod:`repro.core.fleet`.
"""

from .cells import (
    CellResult,
    CellSpec,
    ChaosCell,
    DrillCell,
    InvariantCell,
    chaos_cells,
    drill_cells,
    invariant_cells,
    run_cell,
)
from .injection import (
    WorkerFaultPlan,
    corrupt_journal_record,
    truncate_journal_tail,
)
from .journal import CampaignJournal, JournalState, load_journal
from .supervisor import FleetConfig, FleetRunReport, FleetSupervisor
from .campaign import (
    FleetCampaignConfig,
    FleetCampaignResult,
    FleetRollup,
    fleet_summary,
    rollup_fleet,
    run_fleet_campaign,
)

__all__ = [
    "CellResult",
    "CellSpec",
    "ChaosCell",
    "DrillCell",
    "InvariantCell",
    "chaos_cells",
    "drill_cells",
    "invariant_cells",
    "run_cell",
    "WorkerFaultPlan",
    "corrupt_journal_record",
    "truncate_journal_tail",
    "CampaignJournal",
    "JournalState",
    "load_journal",
    "FleetConfig",
    "FleetRunReport",
    "FleetSupervisor",
    "FleetCampaignConfig",
    "FleetCampaignResult",
    "FleetRollup",
    "fleet_summary",
    "rollup_fleet",
    "run_fleet_campaign",
]
