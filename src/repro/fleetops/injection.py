"""Self-test fault injection for the fleet engine itself.

PR 1 pointed fault injection at the vehicle; this module points it at
the *campaign runner*: workers are killed mid-cell with ``os._exit``
(no cleanup, no goodbye — the worker simply vanishes the way an OOM
kill or a segfault would take it), delayed past the straggler threshold
to trigger speculative re-execution, and the journal is truncated or
corrupted mid-record to prove crash-consistent resume.  Tests use these
hooks to demonstrate that the supervisor recovers every injected
failure with zero lost and zero duplicated cells.

The plan is declarative and picklable, so it crosses the process
boundary with the worker and keys off ``(cell_id, attempt)``: a cell
that crashes its worker on attempt 0 is expected to succeed on its
retry, exactly like a flaky host in a real fleet.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Tuple

#: Exit code an injected crash dies with (distinguishable from real bugs).
INJECTED_CRASH_EXIT = 117


@dataclass(frozen=True)
class WorkerFaultPlan:
    """Declarative worker-fault schedule, keyed by cell id.

    ``crash_cells`` name cells whose worker hard-exits mid-cell on every
    attempt below ``crash_attempts`` (default: first attempt only, so
    the bounded retry recovers).  ``delay_cells`` map cell ids to an
    extra sleep, applied on attempts below ``delay_attempts`` — long
    enough a delay turns the cell into a straggler and provokes
    speculative re-execution.
    """

    crash_cells: Tuple[str, ...] = ()
    crash_attempts: int = 1
    delay_cells: Tuple[Tuple[str, float], ...] = ()
    delay_attempts: int = 1

    def __post_init__(self) -> None:
        if self.crash_attempts < 1:
            raise ValueError("crash_attempts must be >= 1")
        if self.delay_attempts < 1:
            raise ValueError("delay_attempts must be >= 1")

    @property
    def _delays(self) -> Dict[str, float]:
        return dict(self.delay_cells)

    def delay_for(self, cell_id: str, attempt: int) -> float:
        """Extra seconds this (cell, attempt) sleeps before running."""
        if attempt >= self.delay_attempts:
            return 0.0
        return self._delays.get(cell_id, 0.0)

    def should_crash(self, cell_id: str, attempt: int) -> bool:
        return attempt < self.crash_attempts and cell_id in self.crash_cells

    def crash_now(self) -> None:  # pragma: no cover - exits the process
        """Die the ungraceful way: no atexit, no flushing, no farewell."""
        os._exit(INJECTED_CRASH_EXIT)


# -- journal tampering ---------------------------------------------------------


def truncate_journal_tail(path: str, drop_bytes: int = 25) -> int:
    """Chop *drop_bytes* off the journal's end — a torn final record.

    Models a crash mid-append (power loss with the page half-written).
    Returns the resulting file size.
    """
    if drop_bytes <= 0:
        raise ValueError("drop_bytes must be positive")
    size = os.path.getsize(path)
    new_size = max(0, size - drop_bytes)
    with open(path, "r+b") as fh:
        fh.truncate(new_size)
    return new_size


def corrupt_journal_record(path: str, line_index: int = -1) -> None:
    """Flip bytes inside one journal line (bit rot / torn write).

    The line keeps its length and newline, so every *other* record still
    parses — recovery must detect the damage by checksum, not by shape.
    """
    with open(path, "rb") as fh:
        lines = fh.readlines()
    if not lines:
        raise ValueError(f"journal {path!r} is empty")
    target = lines[line_index]
    body = target.rstrip(b"\n")
    if len(body) < 8:
        raise ValueError("record too short to corrupt meaningfully")
    # Overwrite a mid-record span with junk of the same length.
    mid = len(body) // 2
    mangled = body[:mid] + b"#XCORRUPTX#"[: min(11, len(body) - mid)]
    mangled = mangled + body[len(mangled):]
    lines[line_index] = mangled + b"\n"
    with open(path, "wb") as fh:
        fh.writelines(lines)
