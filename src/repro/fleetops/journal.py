"""Crash-consistent append-only campaign journal (``journal.jsonl``).

The journal is the fleet engine's checkpoint/resume substrate: every
completed cell is appended as one self-checksummed JSON line, flushed
(and by default fsynced) before the supervisor considers the cell done.
A campaign killed at any instant — mid-line included — therefore leaves
a journal that is a *valid prefix* of its history, and resuming replays
exactly the cells that are missing: no cell is lost, no cell is counted
twice.

Record format (one JSON object per line)::

    {"v": 1, "type": "header", "campaign": <sig>, "n_cells": N, "meta": {...}, "crc": C}
    {"v": 1, "type": "cell", "cell_id": ..., "index": ..., "kind": ...,
     "attempt": ..., "worker": ..., "summary": {...}, "payload": <b64>, "crc": C}

``crc`` is the CRC32 of the record's canonical JSON with the ``crc`` key
removed; ``payload`` is the zlib-compressed pickle of the full
:class:`~repro.fleetops.cells.CellResult` (every campaign dataclass is
picklable by contract — see ``tests/fleetops/test_cells.py``).  Reading
stops at the first record that fails to parse or checksum: everything
before it is trusted, the broken tail is dropped and counted, and the
supervisor re-runs exactly those dropped cells.  Duplicate ``cell_id``
lines (a speculative double-completion racing a crash) keep the first
occurrence — first result wins, the same rule the supervisor applies
in memory.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .cells import CellResult, CellSpec

#: Journal format version (bump on incompatible record changes).
JOURNAL_VERSION = 1


def campaign_signature(specs: Sequence[CellSpec]) -> str:
    """A stable identity for a cell grid: resume refuses a mismatch."""
    joined = "\n".join(spec.cell_id for spec in specs)
    return f"{len(specs)}:{zlib.crc32(joined.encode('utf-8')):08x}"


def _canonical(record: Dict) -> bytes:
    return json.dumps(record, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


def _seal(record: Dict) -> Dict:
    record = dict(record)
    record.pop("crc", None)
    record["crc"] = zlib.crc32(_canonical(record))
    return record


def _check_seal(record: Dict) -> bool:
    if "crc" not in record:
        return False
    body = dict(record)
    crc = body.pop("crc")
    return isinstance(crc, int) and zlib.crc32(_canonical(body)) == crc


def _encode_result(result: CellResult) -> str:
    return base64.b64encode(
        zlib.compress(pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL))
    ).decode("ascii")


def _decode_result(payload: str) -> CellResult:
    return pickle.loads(zlib.decompress(base64.b64decode(payload)))


@dataclass
class JournalState:
    """Everything a resume needs, recovered from a journal file."""

    path: str
    header: Optional[Dict] = None
    results: Dict[str, CellResult] = field(default_factory=dict)
    lines_read: int = 0
    #: Duplicate cell lines dropped (first occurrence kept).
    duplicates_dropped: int = 0
    #: Trailing lines dropped as corrupt/truncated (crash tail).
    tail_dropped: int = 0
    #: Byte length of the trusted prefix; a resume truncates the file
    #: here before appending, so the torn tail never shadows new records.
    valid_bytes: int = 0

    @property
    def campaign(self) -> Optional[str]:
        if self.header is None:
            return None
        return self.header.get("campaign")

    def completed_ids(self) -> List[str]:
        return list(self.results)


class CampaignJournal:
    """Single-writer append-only journal for one campaign run."""

    def __init__(self, path: str, fsync: bool = True) -> None:
        self.path = path
        self.fsync = fsync
        self._fh = open(path, "a", encoding="utf-8")

    # -- writing ---------------------------------------------------------------

    def _append(self, record: Dict) -> None:
        line = json.dumps(_seal(record), sort_keys=True)
        self._fh.write(line + "\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    def write_header(
        self,
        campaign: str,
        n_cells: int,
        meta: Optional[Dict] = None,
    ) -> None:
        self._append(
            {
                "v": JOURNAL_VERSION,
                "type": "header",
                "campaign": campaign,
                "n_cells": n_cells,
                "meta": meta or {},
            }
        )

    def append_cell(
        self, result: CellResult, attempt: int = 0, worker: int = -1
    ) -> None:
        """Checkpoint one completed cell (flushed before returning)."""
        self._append(
            {
                "v": JOURNAL_VERSION,
                "type": "cell",
                "cell_id": result.cell_id,
                "index": result.index,
                "kind": result.kind,
                "attempt": attempt,
                "worker": worker,
                "summary": {
                    k: result.summary[k] for k in sorted(result.summary)
                },
                "payload": _encode_result(result),
            }
        )

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def load_journal(path: str) -> JournalState:
    """Recover a journal, trusting the longest valid prefix.

    Any line that fails JSON parsing, checksum validation, or payload
    decoding ends the trusted prefix: it and every later line are
    dropped (``tail_dropped``), exactly as a crash mid-append would
    leave them.  Within the prefix, duplicate ``cell_id`` records keep
    the first occurrence.
    """
    state = JournalState(path=path)
    if not os.path.exists(path):
        return state
    with open(path, "rb") as fh:
        raw_lines = fh.readlines()
    offset = 0
    for lineno, raw in enumerate(raw_lines):
        line = raw.decode("utf-8", errors="replace").strip()
        if not line:
            # A bare newline can only be a torn write: stop trusting here.
            state.tail_dropped = len(raw_lines) - lineno
            break
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            state.tail_dropped = len(raw_lines) - lineno
            break
        if not isinstance(record, dict) or not _check_seal(record):
            state.tail_dropped = len(raw_lines) - lineno
            break
        if record.get("v") != JOURNAL_VERSION:
            state.tail_dropped = len(raw_lines) - lineno
            break
        rtype = record.get("type")
        if rtype == "header":
            if state.header is None:
                state.header = record
        elif rtype == "cell":
            try:
                result = _decode_result(record["payload"])
            except Exception:
                state.tail_dropped = len(raw_lines) - lineno
                break
            if result.cell_id in state.results:
                state.duplicates_dropped += 1
            else:
                state.results[result.cell_id] = result
        else:
            state.tail_dropped = len(raw_lines) - lineno
            break
        state.lines_read += 1
        offset += len(raw)
        state.valid_bytes = offset
    return state


def truncate_to_valid_prefix(state: JournalState) -> None:
    """Physically drop a recovered journal's torn tail before appending."""
    if state.tail_dropped <= 0:
        return
    with open(state.path, "r+b") as fh:
        fh.truncate(state.valid_bytes)
