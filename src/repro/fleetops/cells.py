"""The campaign cell: one pure, picklable unit of fleet work.

Every campaign the repo runs — chaos sweeps
(:func:`repro.robustness.chaos.run_chaos_campaign`), the corridor
invariant matrix (:func:`repro.testing.invariants.run_invariant_matrix`),
and the fault-drill ablation
(:func:`repro.experiments.fault_campaign.run_campaign`) — decomposes into
``scenario x seed x fault`` cells.  This module gives those cells one
shared entry point:

* :class:`CellSpec` names a cell completely: its kind, its position in
  campaign order, and a frozen kind-specific payload.  Specs are small,
  hashable, and picklable, so they cross process boundaries and key the
  campaign journal.
* :func:`run_cell` executes a spec and returns a :class:`CellResult`.
  It is a *pure function of the spec*: all randomness derives from seeds
  the spec carries, so a cell produces a bit-identical result whether it
  runs in-process, in a worker four retries deep, or speculatively on
  two workers at once.  That purity is the whole determinism contract of
  the fleet engine — first result wins and nothing is lost by
  discarding duplicates.

The serial campaign paths run the very same function (see
:func:`repro.robustness.chaos.run_chaos_campaign`), which is what makes
"fleet results bit-identical to serial" a structural property instead of
a test hope.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

#: The cell kinds :func:`run_cell` can execute.
CELL_KINDS = ("chaos", "invariant", "drill", "procgen", "triage")


@dataclass(frozen=True)
class ChaosCell:
    """One drive of a chaos campaign: ``(campaign config, drive index)``."""

    config: "object"  # repro.robustness.chaos.ChaosConfig
    drive_index: int

    @property
    def cell_id(self) -> str:
        arm = "net" if self.config.safety_net else "raw"
        corridor = self.config.corridor or "drill-lane"
        return (
            f"chaos:{corridor}:{self.config.seed}:"
            f"{self.drive_index}:{arm}"
        )


@dataclass(frozen=True)
class InvariantCell:
    """One corridor invariant-harness cell: ``(scenario name, seed)``."""

    name: str
    seed: int
    deadline_budget_s: Optional[float] = None
    check_determinism: bool = True

    @property
    def cell_id(self) -> str:
        # The default (determinism-checked) id predates the flag; only
        # the opt-out spells it, so historical journal ids stay valid.
        suffix = "" if self.check_determinism else ":nodet"
        return f"invariant:{self.name}:{self.seed}{suffix}"


@dataclass(frozen=True)
class ProcGenCell:
    """One generated-scenario invariant cell: ``(space, seed, index)``.

    The :class:`~repro.scene.procgen.ProcGenSpace` rides inside the
    payload (frozen, picklable), so workers regenerate the scene from
    the coordinates alone — the same purity contract every cell kind
    obeys.
    """

    space: "object"  # repro.scene.procgen.ProcGenSpace
    generator_seed: int
    cell_index: int
    check_determinism: bool = True

    @property
    def cell_id(self) -> str:
        suffix = "" if self.check_determinism else ":nodet"
        return (
            f"procgen:{self.generator_seed}:{self.cell_index}"
            f":i{self.space.intensity:g}{suffix}"
        )


@dataclass(frozen=True)
class DrillCell:
    """One fault-campaign drill: a named scenario with or without the net."""

    scenario: str
    safety_net: bool = True
    seed: int = 0

    @property
    def cell_id(self) -> str:
        arm = "net" if self.safety_net else "raw"
        return f"drill:{self.scenario}:{arm}:{self.seed}"


@dataclass(frozen=True)
class TriageCell:
    """One fully-explicit drive: the unit the failure-triage shrinker edits.

    Unlike the campaign cell kinds — which name a *draw* (a config plus
    an index into a seeded stream) — a triage cell carries the complete
    fault schedule, the agent drop-set, the drive horizon, and the scene
    coordinates explicitly, so the delta-debugging shrinker can remove
    any single element and re-run the remainder bit-identically.

    ``scene`` is ``"drill-lane"`` (the chaos single-obstacle lane), a
    registered corridor name, or ``"procgen:<topology>"`` (regenerated
    from ``space.sample(scene_seed, cell_index, topology=...)``).
    ``faults`` is the *entire* schedule — any schedule the scene carries
    built in is ignored, so the shrinker's subset is authoritative.
    ``replica`` distinguishes flake-protocol re-executions of the same
    underlying cell; replica 0 is the exact original.
    """

    scene: str = "drill-lane"
    scene_seed: int = 0
    sim_seed: int = 0
    faults: Tuple = ()
    drop_agents: Tuple[int, ...] = ()
    duration_s: Optional[float] = None
    safety_net: bool = False
    invariant: str = "no_collision_or_safe_stop"
    #: Drill-lane geometry (ignored for corridor/procgen scenes).
    obstacle_distance_m: float = 25.0
    initial_speed_mps: float = 5.6
    #: Generator space for ``procgen:*`` scenes (frozen, picklable).
    space: Optional["object"] = None
    cell_index: int = 0
    replica: int = 0
    #: Provenance: the campaign cell id this violation was harvested from.
    origin: str = ""

    @property
    def cell_id(self) -> str:
        import zlib

        ident = (
            self.scene,
            self.scene_seed,
            self.sim_seed,
            tuple(repr(f) for f in self.faults),
            self.drop_agents,
            self.duration_s,
            self.safety_net,
            self.invariant,
            self.obstacle_distance_m,
            self.initial_speed_mps,
            repr(self.space),
            self.cell_index,
        )
        crc = zlib.crc32(repr(ident).encode("utf-8"))
        return f"triage:{self.scene}:{self.sim_seed}:{crc:08x}:r{self.replica}"


CellPayload = Union[ChaosCell, InvariantCell, DrillCell, ProcGenCell, TriageCell]


@dataclass(frozen=True)
class CellSpec:
    """One cell of a campaign, named completely and picklable.

    ``index`` is the cell's position in campaign order — the serial path
    executes specs in index order, and the fleet path sorts results back
    into it, so aggregation sees the identical sequence either way.
    """

    kind: str
    index: int
    cell: CellPayload

    def __post_init__(self) -> None:
        if self.kind not in CELL_KINDS:
            raise ValueError(
                f"unknown cell kind {self.kind!r}; known: {CELL_KINDS}"
            )
        if self.index < 0:
            raise ValueError("cell index must be non-negative")

    @property
    def cell_id(self) -> str:
        """The stable identity key (journal, dedup, speculative merge)."""
        return self.cell.cell_id


@dataclass(frozen=True)
class DrillRecord:
    """Compact, picklable outcome of one fault drill."""

    scenario: str
    safety_net: bool
    seed: int
    collided: bool
    stopped: bool
    entered_safe_stop: bool
    final_mode: str
    min_clearance_m: float
    reactive_interventions: int
    restarts: int
    worst_availability: float


@dataclass(frozen=True)
class CellResult:
    """The outcome of one executed cell.

    ``fingerprint`` is the bit-exact identity of the underlying drive
    (see :func:`repro.testing.invariants.drive_fingerprint`): two
    results with equal fingerprints took the same trajectory tick for
    tick.  ``wall_s`` is machine-dependent and excluded from every
    determinism comparison.
    """

    cell_id: str
    index: int
    kind: str
    fingerprint: Tuple
    summary: Dict[str, float]
    record: object
    sim_duration_s: float
    wall_s: float
    #: Worker-side exception traceback, when this result came out of an
    #: in-process fallback after pool attempts died (see
    #: :class:`repro.fleetops.supervisor.FleetRunReport.failure_details`).
    #: Diagnostic only — excluded from :meth:`identity`.
    error: Optional[str] = None

    def identity(self) -> Tuple:
        """The machine-independent view (what bit-identity compares)."""
        return (self.cell_id, self.index, self.kind, self.fingerprint)


# -- execution -----------------------------------------------------------------


def _chaos_cell_result(
    spec: CellSpec, record, result, wall_s: float
) -> CellResult:
    from ..testing.invariants import drive_fingerprint

    cell: ChaosCell = spec.cell
    summary = {
        "collided": float(record.collided),
        "stopped": float(record.stopped),
        "entered_safe_stop": float(record.entered_safe_stop),
        "min_clearance_m": record.min_clearance_m,
        "reactive_interventions": float(record.reactive_interventions),
        "deadline_misses": float(record.deadline_misses),
    }
    return CellResult(
        cell_id=spec.cell_id,
        index=spec.index,
        kind=spec.kind,
        fingerprint=drive_fingerprint(result),
        summary=summary,
        record=record,
        sim_duration_s=cell.config.duration_s,
        wall_s=wall_s,
    )


def _run_chaos_cell(spec: CellSpec) -> CellResult:
    from ..robustness.chaos import run_chaos_drive

    cell: ChaosCell = spec.cell
    started = time.perf_counter()
    record, result = run_chaos_drive(cell.config, cell.drive_index)
    wall_s = time.perf_counter() - started
    return _chaos_cell_result(spec, record, result, wall_s)


def _run_invariant_cell(spec: CellSpec) -> CellResult:
    from ..testing.invariants import run_invariant_cell

    cell: InvariantCell = spec.cell
    started = time.perf_counter()
    outcome = run_invariant_cell(
        cell.name,
        cell.seed,
        check_determinism=cell.check_determinism,
        deadline_budget_s=cell.deadline_budget_s,
    )
    wall_s = time.perf_counter() - started
    summary = {
        "collided": float(outcome.collided),
        "entered_safe_stop": float(outcome.entered_safe_stop),
        "violations": float(len(outcome.violations)),
        "checks": float(len(outcome.checked)),
        "deadline_misses": float(outcome.deadline_misses),
    }
    return CellResult(
        cell_id=spec.cell_id,
        index=spec.index,
        kind=spec.kind,
        fingerprint=dataclasses.astuple(outcome),
        summary=summary,
        record=outcome,
        sim_duration_s=0.0,
        wall_s=wall_s,
    )


def _run_drill_cell(spec: CellSpec) -> CellResult:
    from ..experiments.fault_campaign import (
        DRILL_DURATION_S,
        drill_scenario,
        run_drill,
    )
    from ..testing.invariants import drive_fingerprint

    cell: DrillCell = spec.cell
    scenario = drill_scenario(cell.scenario)
    started = time.perf_counter()
    result = run_drill(scenario, safety_net=cell.safety_net, seed=cell.seed)
    wall_s = time.perf_counter() - started
    health = result.health
    record = DrillRecord(
        scenario=cell.scenario,
        safety_net=cell.safety_net,
        seed=cell.seed,
        collided=result.collided,
        stopped=result.stopped,
        entered_safe_stop=result.entered_safe_stop,
        final_mode=result.final_mode,
        min_clearance_m=result.min_obstacle_clearance_m,
        reactive_interventions=result.ops.reactive_overrides,
        restarts=0 if health is None else health.total_restarts,
        worst_availability=(
            1.0 if health is None else health.worst_availability
        ),
    )
    summary = {
        "collided": float(record.collided),
        "stopped": float(record.stopped),
        "reactive_interventions": float(record.reactive_interventions),
        "restarts": float(record.restarts),
    }
    return CellResult(
        cell_id=spec.cell_id,
        index=spec.index,
        kind=spec.kind,
        fingerprint=drive_fingerprint(result),
        summary=summary,
        record=record,
        sim_duration_s=DRILL_DURATION_S,
        wall_s=wall_s,
    )


def _run_procgen_cell(spec: CellSpec) -> CellResult:
    from ..testing.invariants import run_generated_cell

    cell: ProcGenCell = spec.cell
    started = time.perf_counter()
    outcome = run_generated_cell(
        space=cell.space,
        generator_seed=cell.generator_seed,
        cell_index=cell.cell_index,
        check_determinism=cell.check_determinism,
    )
    wall_s = time.perf_counter() - started
    summary = {
        "collided": float(outcome.collided),
        "entered_safe_stop": float(outcome.entered_safe_stop),
        "violations": float(len(outcome.violations)),
        "checks": float(len(outcome.checked)),
        "deadline_misses": float(outcome.deadline_misses),
        "scene_checksum": float(outcome.scene_checksum or 0),
    }
    return CellResult(
        cell_id=spec.cell_id,
        index=spec.index,
        kind=spec.kind,
        fingerprint=dataclasses.astuple(outcome),
        summary=summary,
        record=outcome,
        sim_duration_s=0.0,
        wall_s=wall_s,
    )


def _run_triage_cell(spec: CellSpec) -> CellResult:
    from ..testing.invariants import drive_fingerprint
    from ..triage.oracle import execute_triage_cell

    cell: TriageCell = spec.cell
    started = time.perf_counter()
    outcome, result = execute_triage_cell(cell)
    wall_s = time.perf_counter() - started
    summary = {
        "violated": float(outcome.violated),
        "collided": float(outcome.collided),
        "stopped": float(outcome.stopped),
        "entered_safe_stop": float(outcome.entered_safe_stop),
        "min_clearance_m": outcome.min_clearance_m,
        "n_faults": float(outcome.n_faults),
        "n_agents": float(outcome.n_agents),
        "duration_s": outcome.duration_s,
    }
    return CellResult(
        cell_id=spec.cell_id,
        index=spec.index,
        kind=spec.kind,
        fingerprint=drive_fingerprint(result),
        summary=summary,
        record=outcome,
        sim_duration_s=outcome.duration_s,
        wall_s=wall_s,
    )


_RUNNERS = {
    "chaos": _run_chaos_cell,
    "invariant": _run_invariant_cell,
    "drill": _run_drill_cell,
    "procgen": _run_procgen_cell,
    "triage": _run_triage_cell,
}


def run_cell(spec: CellSpec) -> CellResult:
    """Execute one cell — the single code path serial and fleet share.

    Pure per spec: every random draw derives from seeds the spec
    carries, so re-running a spec anywhere reproduces the identical
    :class:`CellResult` (modulo the informational ``wall_s``).
    """
    return _RUNNERS[spec.kind](spec)


CELL_ENGINES = ("serial", "batched")


def run_cells(
    specs: Sequence[CellSpec], engine: str = "serial"
) -> List[CellResult]:
    """Execute many cells; ``engine="batched"`` advances every chaos
    cell's vehicle in lockstep through the vectorized multi-drive
    stepper (:mod:`repro.runtime.batched`).

    The engine is an execution strategy, not a semantic knob: batched
    results are bit-identical to serial ones (``CellResult.identity()``
    equality, enforced by the differential suite and the CI batched
    smoke job).  Cell kinds without a batched build path (drill, triage,
    invariant, procgen) run through :func:`run_cell` unchanged, so a
    mixed campaign is always safe.  Results come back in spec order.
    """
    if engine not in CELL_ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; use one of {CELL_ENGINES}"
        )
    specs = list(specs)
    if engine == "serial":
        return [run_cell(spec) for spec in specs]
    from ..robustness.chaos import build_chaos_drive, chaos_drive_record
    from ..runtime.batched import drive_batch

    results: List[Optional[CellResult]] = [None] * len(specs)
    chaos_positions: List[int] = []
    for i, spec in enumerate(specs):
        if spec.kind == "chaos":
            chaos_positions.append(i)
        else:
            results[i] = run_cell(spec)
    if chaos_positions:
        started = time.perf_counter()
        built = []
        for i in chaos_positions:
            cell: ChaosCell = specs[i].cell
            built.append(build_chaos_drive(cell.config, cell.drive_index))
        drive_results = drive_batch(
            [sov for _scn, sov, _dur in built],
            [duration for _scn, _sov, duration in built],
        )
        wall_s = (time.perf_counter() - started) / len(chaos_positions)
        for pos, (scenario, _sov, _dur), result in zip(
            chaos_positions, built, drive_results
        ):
            spec = specs[pos]
            record = chaos_drive_record(
                spec.cell.config, spec.cell.drive_index, scenario, result
            )
            results[pos] = _chaos_cell_result(spec, record, result, wall_s)
    return [r for r in results if r is not None]


def campaign_crc(results: Sequence[CellResult]) -> int:
    """Order-independent CRC32 over a campaign's cell identities.

    Two campaigns with equal CRCs produced bit-identical outcomes for
    every cell (`identity()` excludes the informational ``wall_s``), no
    matter which engine, worker count, or completion order produced
    them — the single number the CI batched-smoke job compares.
    """
    import zlib

    payload = repr(tuple(sorted(r.identity() for r in results)))
    return zlib.crc32(payload.encode("utf-8"))


# -- grid builders -------------------------------------------------------------


def chaos_cells(config, start: int = 0) -> Iterator[CellSpec]:
    """Lazily yield a chaos campaign's cells in drive order.

    This is the generator behind
    :func:`repro.robustness.chaos.iter_cells`; nothing is materialized,
    so a million-drive campaign costs nothing to enumerate and the fleet
    engine streams cells exactly as the serial path does.
    """
    for index in range(start, config.n_drives):
        yield CellSpec(
            kind="chaos",
            index=index,
            cell=ChaosCell(config=config, drive_index=index),
        )


def invariant_cells(
    names: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = (0, 1, 2),
    start_index: int = 0,
    check_determinism: bool = True,
    deadline_budget_s: Optional[float] = None,
) -> List[CellSpec]:
    """The corridor invariant matrix as a flat cell list."""
    from ..scene.corridors import corridor_names

    specs: List[CellSpec] = []
    index = start_index
    for name in names if names is not None else corridor_names():
        for seed in seeds:
            specs.append(
                CellSpec(
                    kind="invariant",
                    index=index,
                    cell=InvariantCell(
                        name=name,
                        seed=seed,
                        deadline_budget_s=deadline_budget_s,
                        check_determinism=check_determinism,
                    ),
                )
            )
            index += 1
    return specs


def procgen_cells(
    space=None,
    generator_seed: int = 0,
    n_cells: int = 200,
    start_index: int = 0,
    check_determinism: bool = True,
) -> Iterator[CellSpec]:
    """Lazily yield a generated-scenario campaign's cells in index order.

    Workers rebuild each scene from ``(space, generator_seed,
    cell_index)`` alone, so enumerating a huge campaign materializes
    nothing but coordinates.
    """
    if space is None:
        from ..scene.procgen import DEFAULT_SPACE

        space = DEFAULT_SPACE
    for offset in range(n_cells):
        index = start_index + offset
        yield CellSpec(
            kind="procgen",
            index=index,
            cell=ProcGenCell(
                space=space,
                generator_seed=generator_seed,
                cell_index=index,
                check_determinism=check_determinism,
            ),
        )


# -- cell-id parsing -----------------------------------------------------------


def parse_cell_id(cell_id: str) -> CellSpec:
    """Rebuild a runnable :class:`CellSpec` from a printed cell id.

    This is the inverse of the ``cell_id`` properties for the campaign
    kinds whose ids are self-describing — ``invariant:``, ``procgen:``,
    ``chaos:``, and ``drill:`` — so a violation's repro line can be
    replayed with nothing but the id (see
    :func:`repro.triage.replay.replay_cell`).  Triage ids embed a CRC of
    an explicit payload and cannot be reconstructed from the id alone;
    replay those from the regression corpus instead.
    """
    parts = cell_id.split(":")
    kind = parts[0]
    try:
        if kind == "invariant":
            # invariant:{name}:{seed}[:nodet]
            check = parts[-1] != "nodet"
            if check:
                name, seed = ":".join(parts[1:-1]), int(parts[-1])
            else:
                name, seed = ":".join(parts[1:-2]), int(parts[-2])
            return CellSpec(
                kind="invariant",
                index=0,
                cell=InvariantCell(name=name, seed=seed, check_determinism=check),
            )
        if kind == "procgen":
            # procgen:{generator_seed}:{cell_index}:i{intensity}[:nodet]
            from ..scene.procgen import DEFAULT_SPACE

            check = parts[-1] != "nodet"
            fields = parts[1:] if check else parts[1:-1]
            generator_seed, cell_index = int(fields[0]), int(fields[1])
            intensity = float(fields[2][1:])
            space = DEFAULT_SPACE.with_intensity(intensity)
            return CellSpec(
                kind="procgen",
                index=cell_index,
                cell=ProcGenCell(
                    space=space,
                    generator_seed=generator_seed,
                    cell_index=cell_index,
                    check_determinism=check,
                ),
            )
        if kind == "chaos":
            # chaos:{corridor}:{seed}:{index}:{net|raw}; the corridor
            # segment may itself contain ':' (procgen:crossroads), so
            # split the fixed fields off the right.
            from ..robustness.chaos import ChaosConfig

            arm = parts[-1]
            if arm not in ("net", "raw"):
                raise ValueError(f"bad chaos arm {arm!r}")
            seed, index = int(parts[-3]), int(parts[-2])
            corridor = ":".join(parts[1:-3])
            config = ChaosConfig(
                n_drives=index + 1,
                seed=seed,
                safety_net=(arm == "net"),
                corridor=None if corridor == "drill-lane" else corridor,
            )
            return CellSpec(
                kind="chaos",
                index=index,
                cell=ChaosCell(config=config, drive_index=index),
            )
        if kind == "drill":
            # drill:{scenario}:{arm}:{seed}
            scenario = ":".join(parts[1:-2])
            arm, seed = parts[-2], int(parts[-1])
            if arm not in ("net", "raw"):
                raise ValueError(f"bad drill arm {arm!r}")
            return CellSpec(
                kind="drill",
                index=0,
                cell=DrillCell(
                    scenario=scenario, safety_net=(arm == "net"), seed=seed
                ),
            )
    except (IndexError, ValueError) as exc:
        raise ValueError(f"unparseable cell id {cell_id!r}: {exc}") from exc
    raise ValueError(
        f"cell id kind {kind!r} is not replayable from its id "
        "(known: invariant, procgen, chaos, drill)"
    )


def drill_cells(
    scenarios: Optional[Sequence[str]] = None,
    safety_net: bool = True,
    seed: int = 0,
    start_index: int = 0,
) -> List[CellSpec]:
    """The fault-campaign drill sweep as a flat cell list."""
    from ..experiments.fault_campaign import DRILL_ORDER

    specs: List[CellSpec] = []
    for offset, name in enumerate(scenarios or DRILL_ORDER):
        specs.append(
            CellSpec(
                kind="drill",
                index=start_index + offset,
                cell=DrillCell(scenario=name, safety_net=safety_net, seed=seed),
            )
        )
    return specs
