"""Supervised multi-process worker pool for fleet campaigns.

The :class:`FleetSupervisor` runs a grid of
:class:`~repro.fleetops.cells.CellSpec` cells across a pool of worker
processes and is robust by construction, borrowing the discipline the
on-vehicle :class:`~repro.robustness.health.HealthMonitor` applies to
vehicle modules:

* **Heartbeat liveness.**  Every worker runs a daemon thread stamping a
  shared-memory timestamp; a stale stamp (or a dead process) marks the
  worker failed, its in-flight cell is re-queued, and the worker is
  restarted — up to a bounded restart budget, like the watchdog's
  supervised module restarts.
* **Per-cell wall-clock timeouts.**  A cell that exceeds
  ``cell_timeout_s`` gets its worker terminated and the cell retried
  elsewhere.
* **Bounded seeded-backoff retries.**  Failed dispatches retry after an
  exponential backoff with seeded jitter (same seed, same schedule);
  past ``max_retries_per_cell`` failures the cell falls back to one
  final in-process serial attempt.
* **Straggler speculation.**  An in-flight cell running far past the
  median completed-cell wall time is speculatively re-dispatched to an
  idle worker; the first result wins and the loser's duplicate is
  discarded by cell id.  Because :func:`~repro.fleetops.cells.run_cell`
  is pure per spec, both results are bit-identical, so discarding is
  lossless.
* **Graceful degradation to serial.**  When the pool collapses (every
  worker dead, restart budget spent) the supervisor finishes the
  remaining cells in-process — slower, never wrong, the campaign-engine
  analogue of REACTIVE_ONLY mode.

Completed cells are checkpointed to the crash-consistent campaign
journal (:mod:`repro.fleetops.journal`) before being counted, so an
interrupted campaign resumes with exactly-once accounting: zero lost
cells, zero duplicated cells.
"""

from __future__ import annotations

import dataclasses
import heapq
import multiprocessing as mp
import queue as queue_mod
import statistics
import threading
import time
import traceback
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from .cells import CellResult, CellSpec, run_cell
from .injection import WorkerFaultPlan
from .journal import (
    CampaignJournal,
    campaign_signature,
    load_journal,
    truncate_to_valid_prefix,
)


@dataclass(frozen=True)
class FleetConfig:
    """Supervision policy for one fleet run."""

    n_workers: int = 4
    #: Hard per-cell wall-clock ceiling; past it the worker is killed
    #: and the cell retried.
    cell_timeout_s: float = 120.0
    #: Worker heartbeat cadence (a daemon thread stamps shared memory).
    heartbeat_interval_s: float = 0.25
    #: A worker whose stamp is older than this is declared hung.
    heartbeat_timeout_s: float = 30.0
    #: Re-dispatches allowed per cell after its first failure; past the
    #: budget the cell gets one final in-process serial attempt.
    max_retries_per_cell: int = 2
    retry_backoff_base_s: float = 0.05
    retry_backoff_cap_s: float = 2.0
    #: Straggler threshold: max(min_straggler_s, factor x median wall
    #: time of completed cells).  Speculation needs an idle worker.
    straggler_factor: float = 6.0
    min_straggler_s: float = 5.0
    speculative_execution: bool = True
    #: Worker restarts allowed pool-wide before the pool is declared
    #: collapsed and the campaign degrades to serial execution.
    max_worker_restarts: int = 8
    #: Supervisor poll cadence (result-queue wait per loop turn).
    poll_interval_s: float = 0.02
    #: Multiprocessing start method (None: fork where available).
    mp_start_method: Optional[str] = None
    #: Seed for the retry-backoff jitter stream.
    seed: int = 0
    #: fsync the journal after every record (crash consistency; turn
    #: off only for throughput experiments).
    journal_fsync: bool = True

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("fleet needs at least one worker")
        if self.cell_timeout_s <= 0:
            raise ValueError("cell timeout must be positive")
        if self.heartbeat_timeout_s <= self.heartbeat_interval_s:
            raise ValueError("heartbeat timeout must exceed the interval")
        if self.max_retries_per_cell < 0:
            raise ValueError("retry budget cannot be negative")
        if self.max_worker_restarts < 0:
            raise ValueError("restart budget cannot be negative")


@dataclass
class FleetRunReport:
    """Everything one supervised campaign run did and survived."""

    n_cells: int
    n_workers: int
    results: List[CellResult] = field(default_factory=list)
    cells_from_journal: int = 0
    journal_tail_dropped: int = 0
    journal_duplicates_dropped: int = 0
    retries: int = 0
    cell_errors: int = 0
    worker_crashes: int = 0
    worker_hangs: int = 0
    worker_timeouts: int = 0
    workers_restarted: int = 0
    stragglers_detected: int = 0
    speculative_launches: int = 0
    duplicates_discarded: int = 0
    serial_fallback_cells: int = 0
    degraded_to_serial: bool = False
    dropped_messages: int = 0
    failed_cells: Tuple[str, ...] = ()
    #: cell_id -> last worker-side exception traceback, for every cell
    #: that errored at least once (failed cells keep theirs; cells that
    #: eventually completed carry it on ``CellResult.error`` instead).
    failure_details: Dict[str, str] = field(default_factory=dict)
    wall_s: float = 0.0
    journal_path: Optional[str] = None

    @property
    def lost_cells(self) -> int:
        """Cells the campaign never accounted for — must be zero."""
        return self.n_cells - len(self.results) - len(self.failed_cells)

    @property
    def duplicate_cells(self) -> int:
        """Cells counted more than once in the final accounting — zero
        by construction (speculative duplicates are discarded on
        arrival, journal duplicates on load)."""
        return len(self.results) - len({r.cell_id for r in self.results})

    @property
    def cells_per_s(self) -> float:
        if self.wall_s <= 0:
            return 0.0
        return len(self.results) / self.wall_s

    @property
    def ok(self) -> bool:
        return (
            not self.failed_cells
            and self.lost_cells == 0
            and self.duplicate_cells == 0
        )

    def summary(self) -> Dict[str, float]:
        """Flat numeric view (experiment rows, bench snapshots)."""
        return {
            "n_cells": float(self.n_cells),
            "completed": float(len(self.results)),
            "lost_cells": float(self.lost_cells),
            "duplicate_cells": float(self.duplicate_cells),
            "cells_from_journal": float(self.cells_from_journal),
            "retries": float(self.retries),
            "worker_crashes": float(self.worker_crashes),
            "worker_hangs": float(self.worker_hangs),
            "worker_timeouts": float(self.worker_timeouts),
            "workers_restarted": float(self.workers_restarted),
            "stragglers_detected": float(self.stragglers_detected),
            "speculative_launches": float(self.speculative_launches),
            "duplicates_discarded": float(self.duplicates_discarded),
            "serial_fallback_cells": float(self.serial_fallback_cells),
            "degraded_to_serial": float(self.degraded_to_serial),
            "failed_cells": float(len(self.failed_cells)),
            "cells_per_s": self.cells_per_s,
            "wall_s": self.wall_s,
        }


# -- worker side ---------------------------------------------------------------


def _worker_main(
    worker_id: int,
    task_q,
    result_q,
    heartbeat,
    heartbeat_interval_s: float,
    fault_plan: Optional[WorkerFaultPlan],
) -> None:
    """Worker loop: heartbeat thread + one cell at a time.

    Module-level (not a closure) so it pickles under any start method.
    The injected crash fires *after* the cell is dequeued and before any
    result is sent — the worker vanishes mid-cell, exactly the failure
    the supervisor must absorb.
    """
    stop = threading.Event()

    def _beat() -> None:
        while not stop.is_set():
            heartbeat.value = time.monotonic()
            stop.wait(heartbeat_interval_s)

    beater = threading.Thread(target=_beat, daemon=True)
    beater.start()
    try:
        while True:
            task = task_q.get()
            if task is None:
                break
            spec, attempt = task
            if fault_plan is not None:
                delay = fault_plan.delay_for(spec.cell_id, attempt)
                if delay > 0.0:
                    time.sleep(delay)
                if fault_plan.should_crash(spec.cell_id, attempt):
                    fault_plan.crash_now()
            try:
                result = run_cell(spec)
                result_q.put(
                    ("result", worker_id, spec.cell_id, attempt, result)
                )
            except Exception:
                result_q.put(
                    (
                        "error",
                        worker_id,
                        spec.cell_id,
                        attempt,
                        traceback.format_exc(limit=8),
                    )
                )
    finally:
        stop.set()


class _WorkerHandle:
    """Supervisor-side view of one worker process."""

    def __init__(
        self,
        ctx,
        worker_id: int,
        result_q,
        config: FleetConfig,
        fault_plan: Optional[WorkerFaultPlan],
    ) -> None:
        self.id = worker_id
        self.task_q = ctx.Queue()
        self.heartbeat = ctx.Value("d", time.monotonic())
        self.cell_id: Optional[str] = None
        self.attempt = 0
        self.dispatched_at = 0.0
        self.process = ctx.Process(
            target=_worker_main,
            args=(
                worker_id,
                self.task_q,
                result_q,
                self.heartbeat,
                config.heartbeat_interval_s,
                fault_plan,
            ),
            daemon=True,
        )
        self.process.start()

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    @property
    def idle(self) -> bool:
        return self.cell_id is None

    def heartbeat_age_s(self, now: float) -> float:
        return now - float(self.heartbeat.value)

    def assign(self, spec: CellSpec, attempt: int, now: float) -> None:
        self.cell_id = spec.cell_id
        self.attempt = attempt
        self.dispatched_at = now
        self.task_q.put((spec, attempt))

    def release(self) -> None:
        self.cell_id = None

    def shutdown(self, timeout_s: float = 1.0) -> None:
        try:
            if self.alive:
                self.task_q.put(None)
        except Exception:
            pass
        self.process.join(timeout_s)
        if self.alive:
            self.process.terminate()
            self.process.join(timeout_s)
        try:
            self.task_q.cancel_join_thread()
            self.task_q.close()
        except Exception:
            pass


# -- supervisor ----------------------------------------------------------------


@dataclass
class _CellState:
    """In-flight bookkeeping for one not-yet-completed cell."""

    spec: CellSpec
    dispatches: int = 0
    failures: int = 0
    workers: Set[int] = field(default_factory=set)
    first_dispatched_at: float = 0.0
    speculated: bool = False


class FleetSupervisor:
    """Run a cell grid across a supervised worker pool."""

    def __init__(self, config: Optional[FleetConfig] = None) -> None:
        self.config = config or FleetConfig()

    # -- public API ------------------------------------------------------------

    def run(
        self,
        specs: Sequence[CellSpec],
        journal_path: Optional[str] = None,
        fault_plan: Optional[WorkerFaultPlan] = None,
        meta: Optional[Dict] = None,
    ) -> FleetRunReport:
        """Execute every cell exactly once; resume from the journal.

        Results come back sorted by ``spec.index`` — the serial order —
        so downstream aggregation cannot observe worker scheduling.
        """
        specs = list(specs)
        ids = [spec.cell_id for spec in specs]
        if len(set(ids)) != len(ids):
            raise ValueError("cell ids must be unique within a campaign")
        signature = campaign_signature(specs)
        report = FleetRunReport(
            n_cells=len(specs),
            n_workers=self.config.n_workers,
            journal_path=journal_path,
        )
        started = time.perf_counter()
        completed: Dict[str, CellResult] = {}
        journal: Optional[CampaignJournal] = None
        if journal_path is not None:
            state = load_journal(journal_path)
            if state.header is not None:
                if state.campaign != signature:
                    raise ValueError(
                        f"journal {journal_path!r} belongs to campaign "
                        f"{state.campaign!r}, not {signature!r}; refusing "
                        "to mix histories"
                    )
                known = set(ids)
                for cell_id, result in state.results.items():
                    if cell_id in known:
                        completed[cell_id] = result
                report.cells_from_journal = len(completed)
                report.journal_tail_dropped = state.tail_dropped
                report.journal_duplicates_dropped = state.duplicates_dropped
                truncate_to_valid_prefix(state)
            journal = CampaignJournal(
                journal_path, fsync=self.config.journal_fsync
            )
            if state.header is None:
                journal.write_header(signature, len(specs), meta)
        try:
            remaining = [s for s in specs if s.cell_id not in completed]
            if remaining:
                if self.config.n_workers == 1:
                    self._run_serial(remaining, completed, journal, report)
                else:
                    self._run_pool(
                        remaining, completed, journal, report, fault_plan
                    )
        finally:
            if journal is not None:
                journal.close()
        report.results = sorted(
            completed.values(), key=lambda result: result.index
        )
        report.wall_s = time.perf_counter() - started
        return report

    # -- serial path (n_workers == 1 or pool collapse) -------------------------

    def _run_serial(
        self,
        specs: Sequence[CellSpec],
        completed: Dict[str, CellResult],
        journal: Optional[CampaignJournal],
        report: FleetRunReport,
    ) -> None:
        failed = list(report.failed_cells)
        for spec in specs:
            if spec.cell_id in completed:
                continue
            try:
                result = run_cell(spec)
            except Exception:
                failed.append(spec.cell_id)
                report.failure_details[spec.cell_id] = traceback.format_exc(
                    limit=8
                )
                continue
            completed[spec.cell_id] = result
            report.serial_fallback_cells += 1
            if journal is not None:
                journal.append_cell(result, attempt=0, worker=-1)
        report.failed_cells = tuple(failed)

    # -- pool path --------------------------------------------------------------

    def _backoff_s(self, cell_id: str, failure: int) -> float:
        rng = np.random.default_rng(
            [self.config.seed, zlib.crc32(cell_id.encode("utf-8")), failure]
        )
        base = min(
            self.config.retry_backoff_cap_s,
            self.config.retry_backoff_base_s * (2.0 ** max(0, failure - 1)),
        )
        return base * (0.5 + float(rng.random()))

    def _run_pool(
        self,
        specs: Sequence[CellSpec],
        completed: Dict[str, CellResult],
        journal: Optional[CampaignJournal],
        report: FleetRunReport,
        fault_plan: Optional[WorkerFaultPlan],
    ) -> None:
        config = self.config
        try:
            method = config.mp_start_method or (
                "fork"
                if "fork" in mp.get_all_start_methods()
                else mp.get_start_method(allow_none=False)
            )
            ctx = mp.get_context(method)
        except Exception:
            # No usable multiprocessing: the pool never forms at all.
            report.degraded_to_serial = True
            self._run_serial(specs, completed, journal, report)
            return

        result_q = ctx.Queue()
        spec_by_id = {spec.cell_id: spec for spec in specs}
        pending = deque(specs)
        cells: Dict[str, _CellState] = {}
        retry_heap: List[Tuple[float, int, str]] = []
        retry_seq = 0
        abandoned: List[str] = list(report.failed_cells)
        wall_times: List[float] = []
        restarts_left = config.max_worker_restarts
        next_worker_id = 0
        workers: Dict[int, _WorkerHandle] = {}

        def spawn_worker() -> None:
            nonlocal next_worker_id
            handle = _WorkerHandle(
                ctx, next_worker_id, result_q, config, fault_plan
            )
            workers[handle.id] = handle
            next_worker_id += 1

        def accept(result: CellResult, attempt: int, worker: int) -> None:
            if result.cell_id in completed:
                report.duplicates_discarded += 1
                return
            # A cell that errored on earlier attempts but completed here
            # carries the last traceback as diagnostic payload (it is
            # excluded from identity(), so bit-identity is unaffected).
            detail = report.failure_details.pop(result.cell_id, None)
            if detail is not None and result.error is None:
                result = dataclasses.replace(result, error=detail)
            completed[result.cell_id] = result
            wall_times.append(result.wall_s)
            cells.pop(result.cell_id, None)
            if journal is not None:
                journal.append_cell(result, attempt=attempt, worker=worker)

        def schedule_retry(cell_id: str) -> None:
            """One dispatch of *cell_id* failed; retry, or fall back."""
            nonlocal retry_seq
            if cell_id in completed or cell_id in abandoned:
                return
            state = cells.get(cell_id)
            if state is None:
                return
            state.failures += 1
            if state.workers:
                # A speculative twin is still running; let it race.
                return
            if state.failures <= config.max_retries_per_cell:
                report.retries += 1
                ready_at = time.monotonic() + self._backoff_s(
                    cell_id, state.failures
                )
                heapq.heappush(retry_heap, (ready_at, retry_seq, cell_id))
                retry_seq += 1
                return
            # Retry budget spent: one final in-process serial attempt.
            cells.pop(cell_id, None)
            try:
                result = run_cell(state.spec)
            except Exception:
                abandoned.append(cell_id)
                report.failure_details[cell_id] = traceback.format_exc(
                    limit=8
                )
                return
            report.serial_fallback_cells += 1
            accept(result, attempt=state.dispatches, worker=-1)

        def fail_assignment(worker: _WorkerHandle) -> None:
            cell_id = worker.cell_id
            worker.release()
            if cell_id is None:
                return
            state = cells.get(cell_id)
            if state is not None:
                state.workers.discard(worker.id)
            schedule_retry(cell_id)

        def straggler_threshold_s() -> float:
            if len(wall_times) >= 3:
                return max(
                    config.min_straggler_s,
                    config.straggler_factor * statistics.median(wall_times),
                )
            return config.min_straggler_s

        def next_dispatchable(now: float) -> Optional[CellSpec]:
            while retry_heap and retry_heap[0][0] <= now:
                _ready, _seq, cell_id = heapq.heappop(retry_heap)
                if cell_id in completed or cell_id in abandoned:
                    continue
                return spec_by_id[cell_id]
            while pending:
                spec = pending.popleft()
                if spec.cell_id not in completed:
                    return spec
            return None

        def dispatch(worker: _WorkerHandle, spec: CellSpec, now: float) -> None:
            state = cells.get(spec.cell_id)
            if state is None:
                state = _CellState(spec=spec, first_dispatched_at=now)
                cells[spec.cell_id] = state
            attempt = state.dispatches
            state.dispatches += 1
            state.workers.add(worker.id)
            worker.assign(spec, attempt, now)

        for _ in range(config.n_workers):
            spawn_worker()

        def outstanding() -> int:
            done = sum(
                1
                for cell_id in spec_by_id
                if cell_id in completed or cell_id in abandoned
            )
            return len(spec_by_id) - done

        try:
            while outstanding() > 0:
                now = time.monotonic()

                # 1. Drain completed work.
                try:
                    message = result_q.get(timeout=config.poll_interval_s)
                except queue_mod.Empty:
                    message = None
                except Exception:
                    # A torn pipe from a dying worker; the cell itself is
                    # recovered by the liveness pass, so just count it.
                    report.dropped_messages += 1
                    message = None
                if message is not None:
                    kind, worker_id, cell_id, attempt, payload = message
                    handle = workers.get(worker_id)
                    if handle is not None and handle.cell_id == cell_id:
                        handle.release()
                        state = cells.get(cell_id)
                        if state is not None:
                            state.workers.discard(worker_id)
                    if kind == "result":
                        accept(payload, attempt=attempt, worker=worker_id)
                    else:
                        report.cell_errors += 1
                        report.failure_details[cell_id] = payload
                        schedule_retry(cell_id)
                    continue  # drain eagerly before supervision passes

                now = time.monotonic()

                # 2. Liveness: dead processes, stale heartbeats, timeouts.
                for handle in list(workers.values()):
                    if not handle.alive:
                        report.worker_crashes += 1
                        del workers[handle.id]
                        fail_assignment(handle)
                        handle.shutdown(timeout_s=0.1)
                        if restarts_left > 0:
                            restarts_left -= 1
                            report.workers_restarted += 1
                            spawn_worker()
                        continue
                    if handle.heartbeat_age_s(now) > config.heartbeat_timeout_s:
                        report.worker_hangs += 1
                        handle.process.terminate()
                        handle.process.join(0.5)
                        del workers[handle.id]
                        fail_assignment(handle)
                        handle.shutdown(timeout_s=0.1)
                        if restarts_left > 0:
                            restarts_left -= 1
                            report.workers_restarted += 1
                            spawn_worker()
                        continue
                    if (
                        not handle.idle
                        and now - handle.dispatched_at > config.cell_timeout_s
                    ):
                        report.worker_timeouts += 1
                        handle.process.terminate()
                        handle.process.join(0.5)
                        del workers[handle.id]
                        fail_assignment(handle)
                        handle.shutdown(timeout_s=0.1)
                        if restarts_left > 0:
                            restarts_left -= 1
                            report.workers_restarted += 1
                            spawn_worker()

                # 3. Pool collapse -> graceful degradation to serial.
                if not workers:
                    report.degraded_to_serial = True
                    report.failed_cells = tuple(abandoned)
                    leftovers = [
                        spec
                        for spec in specs
                        if spec.cell_id not in completed
                        and spec.cell_id not in abandoned
                    ]
                    self._run_serial(leftovers, completed, journal, report)
                    return

                # 4. Straggler speculation (needs an idle worker).
                if config.speculative_execution:
                    threshold = straggler_threshold_s()
                    idle = [h for h in workers.values() if h.idle and h.alive]
                    for state in list(cells.values()):
                        if not idle:
                            break
                        if state.speculated or len(state.workers) != 1:
                            continue
                        if now - state.first_dispatched_at <= threshold:
                            continue
                        report.stragglers_detected += 1
                        report.speculative_launches += 1
                        state.speculated = True
                        dispatch(idle.pop(), state.spec, now)

                # 5. Dispatch pending/retry work onto idle workers.
                for handle in workers.values():
                    if not handle.idle or not handle.alive:
                        continue
                    spec = next_dispatchable(now)
                    if spec is None:
                        break
                    dispatch(handle, spec, now)
        finally:
            merged = list(abandoned)
            for cell_id in report.failed_cells:
                if cell_id not in merged:
                    merged.append(cell_id)
            report.failed_cells = tuple(merged)
            for handle in workers.values():
                handle.shutdown()
            try:
                result_q.cancel_join_thread()
                result_q.close()
            except Exception:
                pass
