"""Planning: lane-level MPC, EM baseline, collision, prediction, reactive."""

from .collision import CollisionReport, TrajectoryPoint, check_trajectory
from .em_planner import EmPlan, EmPlanner
from .mpc import MpcPlanner, Plan, PlanCandidate
from .prediction import (
    PredictedState,
    TrackedObject,
    predict_constant_velocity,
    predictions_at,
)
from .reactive import ReactiveDecision, ReactivePath

__all__ = [
    "CollisionReport",
    "EmPlan",
    "EmPlanner",
    "MpcPlanner",
    "Plan",
    "PlanCandidate",
    "PredictedState",
    "ReactiveDecision",
    "ReactivePath",
    "TrackedObject",
    "TrajectoryPoint",
    "check_trajectory",
    "predict_constant_velocity",
    "predictions_at",
]
