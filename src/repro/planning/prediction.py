"""Action/traffic prediction (paper Fig. 5).

The planning module consumes "object velocity, position, & class" from
perception and predicts where agents will be over the planning horizon.
Micromobility deployments (campuses, tourist sites) involve pedestrians
and carts whose short-horizon motion is well captured by constant-velocity
extrapolation — the same law the world simulator uses, so the predictor is
exact in the nominal case and degrades gracefully when agents maneuver.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class TrackedObject:
    """Perception's view of one object (from radar tracking / detection)."""

    object_id: int
    x_m: float
    y_m: float
    vx_mps: float
    vy_mps: float
    radius_m: float = 0.5
    label: str = "object"

    @property
    def speed_mps(self) -> float:
        return math.hypot(self.vx_mps, self.vy_mps)


@dataclass(frozen=True)
class PredictedState:
    """One object's predicted position at a horizon instant."""

    object_id: int
    time_s: float
    x_m: float
    y_m: float
    radius_m: float


def predict_constant_velocity(
    objects: Sequence[TrackedObject],
    horizon_s: float,
    dt_s: float = 0.1,
    inflation_mps: float = 0.3,
) -> List[PredictedState]:
    """Constant-velocity forecasts on a time grid.

    ``inflation_mps`` grows each object's radius over time to account for
    prediction uncertainty (an object could deviate from the constant-
    velocity assumption by roughly this speed).
    """
    if horizon_s <= 0 or dt_s <= 0:
        raise ValueError("horizon and dt must be positive")
    states = []
    steps = int(round(horizon_s / dt_s))
    for k in range(1, steps + 1):
        t = k * dt_s
        for obj in objects:
            states.append(
                PredictedState(
                    object_id=obj.object_id,
                    time_s=t,
                    x_m=obj.x_m + obj.vx_mps * t,
                    y_m=obj.y_m + obj.vy_mps * t,
                    radius_m=obj.radius_m + inflation_mps * t,
                )
            )
    return states


def predictions_at(
    states: Sequence[PredictedState], time_s: float, tolerance_s: float = 1e-6
) -> List[PredictedState]:
    """The subset of predictions at one horizon instant."""
    return [s for s in states if abs(s.time_s - time_s) <= tolerance_s]
