"""Lane-level Model Predictive Control planner (paper Table III, Sec. V-C).

The paper's planner is "formulated as Model Predictive Control" but
operates at *lane granularity* — "staying in a lane or switching lanes,
without maneuvering within a lane" (Sec. III-D) — which is why it runs in
~3 ms, 33x cheaper than fine-grained planners (Sec. V-C).

We implement it as sampling-based MPC (a shooting method): the decision
space is {target lane} x {speed profile}; each candidate is rolled out
with the kinematic model over the horizon, scored (progress, comfort,
collision, lane-change penalty), and the best candidate's first control
action is emitted — the classic receding-horizon loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..scene.lanes import LaneMap, LaneSegment
from ..scene.world import Obstacle
from ..vehicle.dynamics import BicycleModel, ControlCommand, VehicleState
from .collision import CollisionReport, TrajectoryPoint, check_trajectory
from .prediction import PredictedState


@dataclass(frozen=True)
class PlanCandidate:
    """One rolled-out (lane, accel) candidate."""

    lane_id: str
    accel_mps2: float
    trajectory: Tuple[TrajectoryPoint, ...]
    cost: float
    collision: CollisionReport


@dataclass(frozen=True)
class Plan:
    """The chosen plan and the command implementing its first step."""

    command: ControlCommand
    chosen: PlanCandidate
    candidates: Tuple[PlanCandidate, ...]

    @property
    def feasible(self) -> bool:
        return not self.chosen.collision.collides


@dataclass
class MpcPlanner:
    """Receding-horizon lane-level planner."""

    lane_map: LaneMap
    model: BicycleModel = field(default_factory=BicycleModel)
    horizon_s: float = 3.0
    dt_s: float = 0.2
    target_speed_mps: float = 5.6
    accel_candidates: Tuple[float, ...] = (-4.0, -2.0, -0.5, 0.0, 1.0, 2.0)
    lane_change_penalty: float = 5.0
    comfort_weight: float = 0.5
    speed_error_weight: float = 2.0
    progress_weight: float = 1.0
    collision_cost: float = 1e6
    lookahead_m: float = 4.0

    def plan(
        self,
        state: VehicleState,
        predictions: Sequence[PredictedState] = (),
        static_obstacles: Sequence[Obstacle] = (),
        now_s: float = 0.0,
    ) -> Plan:
        """One planning cycle: roll out candidates, score, pick, command."""
        current_lane = self.lane_map.locate(state.x_m, state.y_m)
        if current_lane is None:
            # Off-map: emergency stop.
            return self._emergency_plan(state, now_s)
        candidate_lanes = [current_lane] + self._adjacent_lanes(current_lane)
        candidates: List[PlanCandidate] = []
        for lane_id in candidate_lanes:
            lane = self.lane_map.segment(lane_id)
            for accel in self.accel_candidates:
                trajectory = self._rollout(state, lane, accel)
                report = check_trajectory(
                    trajectory, predictions, static_obstacles
                )
                cost = self._cost(
                    trajectory, lane_id != current_lane, accel, report
                )
                candidates.append(
                    PlanCandidate(
                        lane_id=lane_id,
                        accel_mps2=accel,
                        trajectory=tuple(trajectory),
                        cost=cost,
                        collision=report,
                    )
                )
        best = min(candidates, key=lambda c: c.cost)
        lane = self.lane_map.segment(best.lane_id)
        command = ControlCommand(
            steer_rad=self._pure_pursuit_steer(state, lane),
            accel_mps2=best.accel_mps2,
            timestamp_s=now_s,
            source="proactive",
        )
        return Plan(
            command=self.model.clamp(command),
            chosen=best,
            candidates=tuple(candidates),
        )

    # -- internals ---------------------------------------------------------

    def _adjacent_lanes(self, lane_id: str) -> List[str]:
        """Lanes reachable from *lane_id* via a lane-change edge."""
        graph = self.lane_map._graph
        return [
            v
            for _u, v, data in graph.out_edges(lane_id, data=True)
            if data.get("lane_change")
        ]

    def _lane_progress(self, lane: LaneSegment, x: float, y: float) -> float:
        """Approximate arc-length of the closest centerline point."""
        best_s, best_d = 0.0, float("inf")
        cumulative = 0.0
        for a, b in zip(lane.centerline, lane.centerline[1:]):
            seg_len = math.hypot(b[0] - a[0], b[1] - a[1])
            if seg_len == 0:
                continue
            t = max(
                0.0,
                min(
                    1.0,
                    ((x - a[0]) * (b[0] - a[0]) + (y - a[1]) * (b[1] - a[1]))
                    / seg_len ** 2,
                ),
            )
            cx, cy = a[0] + t * (b[0] - a[0]), a[1] + t * (b[1] - a[1])
            d = math.hypot(x - cx, y - cy)
            if d < best_d:
                best_d, best_s = d, cumulative + t * seg_len
            cumulative += seg_len
        return best_s

    def _pure_pursuit_steer(
        self, state: VehicleState, lane: LaneSegment
    ) -> float:
        """Steer toward a lookahead point on the target lane centerline."""
        s = self._lane_progress(lane, state.x_m, state.y_m)
        target = lane.point_at(s + self.lookahead_m)
        dx, dy = target[0] - state.x_m, target[1] - state.y_m
        alpha = math.atan2(dy, dx) - state.heading_rad
        alpha = math.atan2(math.sin(alpha), math.cos(alpha))
        lookahead = max(math.hypot(dx, dy), 1e-6)
        return math.atan2(
            2.0 * self.model.wheelbase_m * math.sin(alpha), lookahead
        )

    def _rollout(
        self, state: VehicleState, lane: LaneSegment, accel: float
    ) -> List[TrajectoryPoint]:
        """Forward-simulate following *lane* at constant *accel*."""
        points = []
        sim_state = state
        steps = int(round(self.horizon_s / self.dt_s))
        for k in range(steps):
            steer = self._pure_pursuit_steer(sim_state, lane)
            command = ControlCommand(steer_rad=steer, accel_mps2=accel)
            sim_state = self.model.step(sim_state, command, self.dt_s)
            points.append(
                TrajectoryPoint(
                    time_s=(k + 1) * self.dt_s,
                    x_m=sim_state.x_m,
                    y_m=sim_state.y_m,
                    speed_mps=sim_state.speed_mps,
                )
            )
        return points

    def _cost(
        self,
        trajectory: Sequence[TrajectoryPoint],
        is_lane_change: bool,
        accel: float,
        report: CollisionReport,
    ) -> float:
        if not trajectory:
            return float("inf")
        progress = trajectory[-1].x_m - trajectory[0].x_m
        speed_error = sum(
            (p.speed_mps - self.target_speed_mps) ** 2 for p in trajectory
        ) / len(trajectory)
        if report.collides:
            # All-infeasible situations still need a sane ordering: push
            # the collision as far into the future as possible and brake
            # as hard as possible (mitigation), never chase progress.
            ttc = report.first_collision_time_s or 0.0
            return (
                self.collision_cost
                - 100.0 * ttc
                + 10.0 * (accel + self.model.max_decel_mps2)
            )
        return (
            -self.progress_weight * progress
            + self.comfort_weight * abs(accel)
            + self.speed_error_weight * speed_error
            + (self.lane_change_penalty if is_lane_change else 0.0)
        )

    def _emergency_plan(self, state: VehicleState, now_s: float) -> Plan:
        command = ControlCommand(
            steer_rad=0.0,
            accel_mps2=-self.model.max_decel_mps2,
            timestamp_s=now_s,
            source="proactive",
        )
        stopped = PlanCandidate(
            lane_id="<off-map>",
            accel_mps2=-self.model.max_decel_mps2,
            trajectory=(),
            cost=float("inf"),
            collision=CollisionReport(collides=False),
        )
        return Plan(command=command, chosen=stopped, candidates=(stopped,))
