"""The reactive path — the last line of defense (paper Sec. IV, Fig. 5).

Radar (and sonar) distance readings bypass the computing system: when the
nearest obstruction is inside the stopping envelope, the reactive path
sends a full-brake command directly to the ECU, overriding the proactive
pipeline.  Its end-to-end latency is ~30 ms (vs the proactive best case of
149 ms), letting the vehicle react to objects 4.1 m away — approaching the
4 m braking-distance limit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core import calibration
from ..core.latency_model import LatencyModel
from ..vehicle.dynamics import ControlCommand


@dataclass(frozen=True)
class ReactiveDecision:
    """Outcome of one reactive-path evaluation."""

    triggered: bool
    distance_m: Optional[float]
    threshold_m: float
    command: Optional[ControlCommand] = None


@dataclass
class ReactivePath:
    """Distance-threshold brake override.

    The trigger threshold is the avoidance range achievable at the
    reactive path's own latency (Eq. 1 with Tcomp = 30 ms), padded by a
    small margin.  Anything closer cannot be avoided even by this path, so
    the threshold is also the earliest-useful trigger point — braking
    sooner than necessary hurts ride quality (Sec. V-C: staying proactive
    "directly translates to better passenger experience").
    """

    latency_s: float = calibration.REACTIVE_PATH_LATENCY_S
    margin_m: float = 0.3
    latency_model: LatencyModel = field(default_factory=LatencyModel)
    triggers: int = field(default=0, init=False)

    @property
    def threshold_m(self) -> float:
        return (
            self.latency_model.min_avoidable_distance_m(self.latency_s)
            + self.margin_m
        )

    def evaluate(
        self, nearest_distance_m: Optional[float], now_s: float
    ) -> ReactiveDecision:
        """Evaluate one radar/sonar reading.

        ``nearest_distance_m`` is None when no obstruction is in view.
        """
        threshold = self.threshold_m
        if nearest_distance_m is None or nearest_distance_m > threshold:
            return ReactiveDecision(
                triggered=False,
                distance_m=nearest_distance_m,
                threshold_m=threshold,
            )
        self.triggers += 1
        command = ControlCommand(
            steer_rad=0.0,
            accel_mps2=-self.latency_model.decel_mps2,
            timestamp_s=now_s + self.latency_s,
            source="reactive",
        )
        return ReactiveDecision(
            triggered=True,
            distance_m=nearest_distance_m,
            threshold_m=threshold,
            command=command,
        )
