"""The reactive path — the last line of defense (paper Sec. IV, Fig. 5).

Radar (and sonar) distance readings bypass the computing system: when the
nearest obstruction is inside the stopping envelope, the reactive path
sends a full-brake command directly to the ECU, overriding the proactive
pipeline.  Its end-to-end latency is ~30 ms (vs the proactive best case of
149 ms), letting the vehicle react to objects 4.1 m away — approaching the
4 m braking-distance limit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core import calibration
from ..core.latency_model import LatencyModel
from ..vehicle.dynamics import ControlCommand


@dataclass(frozen=True)
class ReactiveDecision:
    """Outcome of one reactive-path evaluation.

    ``triggered`` marks a *new intervention* (the path stopped a moving
    vehicle); ``held`` marks a standing brake-hold refresh on a vehicle
    that is already stopped — a hold carries a command but is not counted
    as a trigger, so trigger counts reflect real interventions.
    """

    triggered: bool
    distance_m: Optional[float]
    threshold_m: float
    command: Optional[ControlCommand] = None
    held: bool = False


@dataclass
class ReactivePath:
    """Distance-threshold brake override.

    The trigger threshold is the avoidance range achievable at the
    reactive path's own latency (Eq. 1 with Tcomp = 30 ms), padded by a
    small margin.  Anything closer cannot be avoided even by this path, so
    the threshold is also the earliest-useful trigger point — braking
    sooner than necessary hurts ride quality (Sec. V-C: staying proactive
    "directly translates to better passenger experience").
    """

    latency_s: float = calibration.REACTIVE_PATH_LATENCY_S
    margin_m: float = 0.3
    #: Below this speed the vehicle counts as stopped: an in-threshold
    #: obstruction yields a brake *hold*, not a new trigger.
    stopped_speed_eps_mps: float = 0.05
    latency_model: LatencyModel = field(default_factory=LatencyModel)
    triggers: int = field(default=0, init=False)

    @property
    def threshold_m(self) -> float:
        return (
            self.latency_model.min_avoidable_distance_m(self.latency_s)
            + self.margin_m
        )

    def evaluate(
        self,
        nearest_distance_m: Optional[float],
        now_s: float,
        speed_mps: Optional[float] = None,
    ) -> ReactiveDecision:
        """Evaluate one radar/sonar reading.

        ``nearest_distance_m`` is None when no obstruction is in view.
        When *speed_mps* is supplied and the vehicle is already stopped,
        an in-threshold obstruction refreshes the standing brake command
        (``held=True``) without counting a trigger — braking a parked
        vehicle is not an intervention.
        """
        threshold = self.threshold_m
        if nearest_distance_m is None or nearest_distance_m > threshold:
            return ReactiveDecision(
                triggered=False,
                distance_m=nearest_distance_m,
                threshold_m=threshold,
            )
        command = ControlCommand(
            steer_rad=0.0,
            accel_mps2=-self.latency_model.decel_mps2,
            timestamp_s=now_s + self.latency_s,
            source="reactive",
        )
        if speed_mps is not None and speed_mps <= self.stopped_speed_eps_mps:
            return ReactiveDecision(
                triggered=False,
                distance_m=nearest_distance_m,
                threshold_m=threshold,
                command=command,
                held=True,
            )
        self.triggers += 1
        return ReactiveDecision(
            triggered=True,
            distance_m=nearest_distance_m,
            threshold_m=threshold,
            command=command,
        )
