"""An Apollo-EM-style fine-grained motion planner (paper Sec. V-C baseline).

The paper contrasts its 3 ms lane-level planner with "the Baidu Apollo EM
Motion Planner, whose motion plan is generated through a combination of
Quadratic Programming (QP) and Dynamic Programming (DP).  On our platform,
the EM planner takes 100 ms, 33x more expensive than our planner."

This module implements that baseline family faithfully at small scale:

1. **Path DP** — sample lateral offsets on a station-lateral (SL) grid
   along the reference line; dynamic programming finds the min-cost
   polyline (offset, smoothness, obstacle costs).
2. **Path QP** — smooth the DP polyline by minimizing curvature energy
   plus deviation (a banded linear system).
3. **Speed DP** — dynamic programming over a station-time (ST) grid with
   obstacle-blocked cells.
4. **Speed QP** — smooth the speed profile the same way.

The planner plans at *centimeter* lateral granularity within the lane —
exactly the fine-grained maneuvering the paper's vehicles do not need,
which is where the 33x cost gap comes from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..scene.world import Obstacle
from .collision import TrajectoryPoint


@dataclass(frozen=True)
class EmPlan:
    """Output of the EM planner."""

    path_sl: np.ndarray  # (N, 2): station, smoothed lateral offset
    speed_profile: np.ndarray  # (T,): speed at each time step
    trajectory: Tuple[TrajectoryPoint, ...]
    dp_path_cost: float
    feasible: bool


@dataclass
class EmPlanner:
    """DP + QP path and speed planner on a straight reference line.

    The reference line is the ego lane centerline (x axis in the ego
    frame); obstacles are given in the same frame.
    """

    planning_distance_m: float = 50.0
    station_step_m: float = 0.4
    max_lateral_m: float = 3.0
    lateral_step_m: float = 0.2
    horizon_s: float = 8.0
    time_step_s: float = 0.25
    max_speed_mps: float = 8.0
    speed_step_mps: float = 0.5
    obstacle_clearance_m: float = 1.0
    smoothness_weight: float = 2.0
    offset_weight: float = 0.5
    obstacle_weight: float = 50.0
    qp_fidelity_weight: float = 1.0
    qp_smoothness_weight: float = 4.0

    # -- stage 1: path DP ----------------------------------------------------

    def _sl_grid(self) -> Tuple[np.ndarray, np.ndarray]:
        stations = np.arange(
            0.0, self.planning_distance_m + 1e-9, self.station_step_m
        )
        laterals = np.arange(
            -self.max_lateral_m, self.max_lateral_m + 1e-9, self.lateral_step_m
        )
        return stations, laterals

    def _obstacle_cost(
        self, station: float, lateral: float, obstacles: Sequence[Obstacle]
    ) -> float:
        cost = 0.0
        for obstacle in obstacles:
            d = math.hypot(station - obstacle.x_m, lateral - obstacle.y_m)
            clearance = d - obstacle.radius_m
            if clearance < self.obstacle_clearance_m:
                cost += self.obstacle_weight * (
                    self.obstacle_clearance_m - max(clearance, 0.0) + 1.0
                )
        return cost

    def path_dp(
        self, obstacles: Sequence[Obstacle]
    ) -> Tuple[np.ndarray, float]:
        """Min-cost lateral profile over the SL grid."""
        stations, laterals = self._sl_grid()
        n_s, n_l = len(stations), len(laterals)
        node_cost = np.zeros((n_s, n_l))
        for i, s in enumerate(stations):
            for j, l in enumerate(laterals):
                node_cost[i, j] = (
                    self.offset_weight * l * l
                    + self._obstacle_cost(s, l, obstacles)
                )
        best = np.full((n_s, n_l), np.inf)
        parent = np.zeros((n_s, n_l), dtype=int)
        center = n_l // 2
        best[0, center] = node_cost[0, center]
        for i in range(1, n_s):
            for j in range(n_l):
                transition = (
                    self.smoothness_weight
                    * ((laterals[j] - laterals) / self.station_step_m) ** 2
                )
                total = best[i - 1] + transition
                k = int(np.argmin(total))
                best[i, j] = total[k] + node_cost[i, j]
                parent[i, j] = k
        j = int(np.argmin(best[-1]))
        path = np.zeros(n_s)
        cost = float(best[-1, j])
        for i in range(n_s - 1, -1, -1):
            path[i] = laterals[j]
            j = parent[i, j]
        return np.column_stack([stations, path]), cost

    # -- stage 2: path QP ----------------------------------------------------

    def path_qp(self, dp_path: np.ndarray) -> np.ndarray:
        """Curvature-energy smoothing of the DP polyline.

        Minimizes ``w_s * ||D2 l||^2 + w_f * ||l - l_dp||^2`` with the
        endpoints pinned — an unconstrained QP whose normal equations form
        a banded linear system.
        """
        l_dp = dp_path[:, 1]
        n = len(l_dp)
        if n < 3:
            return dp_path.copy()
        d2 = np.zeros((n - 2, n))
        for i in range(n - 2):
            d2[i, i : i + 3] = (1.0, -2.0, 1.0)
        h = (
            self.qp_smoothness_weight * d2.T @ d2
            + self.qp_fidelity_weight * np.eye(n)
        )
        g = self.qp_fidelity_weight * l_dp
        # Pin the endpoints by heavily weighting their fidelity terms.
        for idx in (0, n - 1):
            h[idx, idx] += 1e6
            g[idx] += 1e6 * l_dp[idx]
        smoothed = np.linalg.solve(h, g)
        return np.column_stack([dp_path[:, 0], smoothed])

    # -- stage 3: speed DP -----------------------------------------------------

    def speed_dp(
        self,
        blocked_st: Sequence[Tuple[float, float, float]] = (),
        initial_speed_mps: float = 5.6,
    ) -> np.ndarray:
        """DP over the station-time grid.

        ``blocked_st`` entries are (time_s, station_min_m, station_max_m)
        bands an obstacle occupies; the profile must not be inside a band
        at its time.  Returns the speed at each time step.
        """
        times = np.arange(
            self.time_step_s, self.horizon_s + 1e-9, self.time_step_s
        )
        speeds = np.arange(0.0, self.max_speed_mps + 1e-9, self.speed_step_mps)
        n_t, n_v = len(times), len(speeds)
        # State: (time index, speed index) with accumulated station.
        best = np.full((n_t, n_v), np.inf)
        station = np.zeros((n_t, n_v))
        parent = np.zeros((n_t, n_v), dtype=int)
        for j, v in enumerate(speeds):
            accel = (v - initial_speed_mps) / self.time_step_s
            if abs(accel) > 4.0:
                continue
            s = 0.5 * (initial_speed_mps + v) * self.time_step_s
            if self._st_blocked(times[0], s, blocked_st):
                continue
            best[0, j] = accel ** 2 + (v - self.max_speed_mps) ** 2 * 0.1
            station[0, j] = s
        for i in range(1, n_t):
            for j, v in enumerate(speeds):
                for k, pv in enumerate(speeds):
                    if not np.isfinite(best[i - 1, k]):
                        continue
                    accel = (v - pv) / self.time_step_s
                    if abs(accel) > 4.0:
                        continue
                    s = station[i - 1, k] + 0.5 * (pv + v) * self.time_step_s
                    if self._st_blocked(times[i], s, blocked_st):
                        continue
                    cost = (
                        best[i - 1, k]
                        + accel ** 2
                        + (v - self.max_speed_mps) ** 2 * 0.1
                    )
                    if cost < best[i, j]:
                        best[i, j] = cost
                        station[i, j] = s
                        parent[i, j] = k
        j = int(np.argmin(best[-1]))
        if not np.isfinite(best[-1, j]):
            return np.zeros(n_t)
        profile = np.zeros(n_t)
        for i in range(n_t - 1, -1, -1):
            profile[i] = speeds[j]
            j = parent[i, j]
        return profile

    @staticmethod
    def _st_blocked(
        time_s: float,
        station_m: float,
        blocked: Sequence[Tuple[float, float, float]],
        time_tol_s: float = 0.2,
    ) -> bool:
        for t, s_min, s_max in blocked:
            if abs(t - time_s) <= time_tol_s and s_min <= station_m <= s_max:
                return True
        return False

    # -- stage 4: speed QP -----------------------------------------------------

    def speed_qp(self, profile: np.ndarray) -> np.ndarray:
        """Jerk-minimizing smoothing of the DP speed profile."""
        n = len(profile)
        if n < 3:
            return profile.copy()
        d2 = np.zeros((n - 2, n))
        for i in range(n - 2):
            d2[i, i : i + 3] = (1.0, -2.0, 1.0)
        h = (
            self.qp_smoothness_weight * d2.T @ d2
            + self.qp_fidelity_weight * np.eye(n)
        )
        g = self.qp_fidelity_weight * profile
        return np.maximum(np.linalg.solve(h, g), 0.0)

    # -- the full EM iteration -------------------------------------------------

    def plan(
        self,
        obstacles: Sequence[Obstacle] = (),
        initial_speed_mps: float = 5.6,
    ) -> EmPlan:
        """One full EM iteration: path DP -> path QP -> speed DP -> QP."""
        dp_path, dp_cost = self.path_dp(obstacles)
        smooth_path = self.path_qp(dp_path)
        blocked = self._moving_blocks(obstacles)
        dp_speed = self.speed_dp(blocked, initial_speed_mps)
        smooth_speed = self.speed_qp(dp_speed)
        trajectory = self._assemble(smooth_path, smooth_speed)
        feasible = bool(np.any(smooth_speed > 0))
        return EmPlan(
            path_sl=smooth_path,
            speed_profile=smooth_speed,
            trajectory=tuple(trajectory),
            dp_path_cost=dp_cost,
            feasible=feasible,
        )

    def _moving_blocks(
        self, obstacles: Sequence[Obstacle]
    ) -> List[Tuple[float, float, float]]:
        """Static obstacles near the reference line become ST blocks."""
        blocks = []
        times = np.arange(
            self.time_step_s, self.horizon_s + 1e-9, self.time_step_s
        )
        for obstacle in obstacles:
            if abs(obstacle.y_m) > 1.0:  # off the reference corridor
                continue
            for t in times:
                blocks.append(
                    (
                        float(t),
                        obstacle.x_m - obstacle.radius_m - 1.0,
                        obstacle.x_m + obstacle.radius_m + 1.0,
                    )
                )
        return blocks

    def _assemble(
        self, path_sl: np.ndarray, speed: np.ndarray
    ) -> List[TrajectoryPoint]:
        points = []
        station = 0.0
        stations = path_sl[:, 0]
        laterals = path_sl[:, 1]
        for i, v in enumerate(speed):
            t = (i + 1) * self.time_step_s
            station += v * self.time_step_s
            lateral = float(np.interp(station, stations, laterals))
            points.append(
                TrajectoryPoint(
                    time_s=float(t),
                    x_m=float(station),
                    y_m=lateral,
                    speed_mps=float(v),
                )
            )
        return points
