"""Collision checking along candidate trajectories (paper Fig. 5).

The "Collision Detection" block: given a time-stamped ego trajectory and
the predicted states of surrounding objects (plus static obstacles), decide
whether any point comes within the safety margin.  The corridor-geometry
helpers at the bottom apply the same clearance arithmetic to whole lane
maps — the scenario suite uses them to prove a generated corridor is
drivable (or intentionally blocked) *before* a drive ever runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..scene.world import Obstacle, World
from .prediction import PredictedState


@dataclass(frozen=True)
class TrajectoryPoint:
    """One time-stamped pose on a candidate ego trajectory."""

    time_s: float
    x_m: float
    y_m: float
    speed_mps: float = 0.0


@dataclass(frozen=True)
class CollisionReport:
    """Result of checking one trajectory."""

    collides: bool
    first_collision_time_s: Optional[float] = None
    colliding_object_id: Optional[int] = None
    min_clearance_m: float = float("inf")


def check_trajectory(
    trajectory: Sequence[TrajectoryPoint],
    predictions: Sequence[PredictedState],
    static_obstacles: Sequence[Obstacle] = (),
    ego_radius_m: float = 0.8,
    safety_margin_m: float = 0.3,
    time_tolerance_s: float = 0.06,
) -> CollisionReport:
    """Check an ego trajectory against moving predictions and static
    obstacles.

    Moving objects are compared only at matching horizon instants (within
    ``time_tolerance_s``); static obstacles are checked at every point.
    """
    if ego_radius_m <= 0:
        raise ValueError("ego radius must be positive")
    min_clearance = float("inf")
    for point in trajectory:
        for obstacle in static_obstacles:
            clearance = (
                math.hypot(point.x_m - obstacle.x_m, point.y_m - obstacle.y_m)
                - obstacle.radius_m
                - ego_radius_m
            )
            min_clearance = min(min_clearance, clearance)
            if clearance < safety_margin_m:
                return CollisionReport(
                    collides=True,
                    first_collision_time_s=point.time_s,
                    colliding_object_id=-1 - obstacle.obstacle_id,
                    min_clearance_m=min_clearance,
                )
        for pred in predictions:
            if abs(pred.time_s - point.time_s) > time_tolerance_s:
                continue
            clearance = (
                math.hypot(point.x_m - pred.x_m, point.y_m - pred.y_m)
                - pred.radius_m
                - ego_radius_m
            )
            min_clearance = min(min_clearance, clearance)
            if clearance < safety_margin_m:
                return CollisionReport(
                    collides=True,
                    first_collision_time_s=point.time_s,
                    colliding_object_id=pred.object_id,
                    min_clearance_m=min_clearance,
                )
    return CollisionReport(collides=False, min_clearance_m=min_clearance)


def lane_clearance_at(
    world: World,
    lane_map,
    s_m: float,
    ego_radius_m: float = 0.8,
) -> float:
    """Best static clearance over all lanes at corridor station *s_m*.

    For each lane segment, takes the centerline point at arc-length
    *s_m* and measures its surface distance to the nearest static
    obstacle, less the ego body radius.  The max over lanes is the
    clearance a planner allowed to change lanes can achieve at that
    station; ``inf`` when the world has no obstacles.
    """
    best = -math.inf
    for segment_id in lane_map.segment_ids:
        segment = lane_map.segment(segment_id)
        x, y = segment.point_at(s_m)
        clearance = math.inf
        for obstacle in world.obstacles:
            clearance = min(
                clearance, obstacle.distance_to(x, y) - ego_radius_m
            )
        best = max(best, clearance)
    return best


def corridor_blocked_at(
    world: World,
    lane_map,
    length_m: float,
    ego_radius_m: float = 0.8,
    safety_margin_m: float = 0.3,
    step_m: float = 0.5,
) -> Optional[float]:
    """First corridor station where *every* lane is obstructed.

    Walks the corridor in *step_m* strides; a station is blocked when no
    lane offers ``safety_margin_m`` of clearance there (same ego radius
    and margin the trajectory checker uses).  Returns the arc-length of
    the first blocked station, or None when the corridor is traversable
    end to end — the scenario generator's drivability certificate.
    """
    if step_m <= 0:
        raise ValueError("step must be positive")
    n_steps = max(1, int(math.ceil(length_m / step_m)))
    for k in range(n_steps + 1):
        s = min(length_m, k * step_m)
        if lane_clearance_at(world, lane_map, s, ego_radius_m) < safety_margin_m:
            return s
    return None
