"""Collision checking along candidate trajectories (paper Fig. 5).

The "Collision Detection" block: given a time-stamped ego trajectory and
the predicted states of surrounding objects (plus static obstacles), decide
whether any point comes within the safety margin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..scene.world import Obstacle
from .prediction import PredictedState


@dataclass(frozen=True)
class TrajectoryPoint:
    """One time-stamped pose on a candidate ego trajectory."""

    time_s: float
    x_m: float
    y_m: float
    speed_mps: float = 0.0


@dataclass(frozen=True)
class CollisionReport:
    """Result of checking one trajectory."""

    collides: bool
    first_collision_time_s: Optional[float] = None
    colliding_object_id: Optional[int] = None
    min_clearance_m: float = float("inf")


def check_trajectory(
    trajectory: Sequence[TrajectoryPoint],
    predictions: Sequence[PredictedState],
    static_obstacles: Sequence[Obstacle] = (),
    ego_radius_m: float = 0.8,
    safety_margin_m: float = 0.3,
    time_tolerance_s: float = 0.06,
) -> CollisionReport:
    """Check an ego trajectory against moving predictions and static
    obstacles.

    Moving objects are compared only at matching horizon instants (within
    ``time_tolerance_s``); static obstacles are checked at every point.
    """
    if ego_radius_m <= 0:
        raise ValueError("ego radius must be positive")
    min_clearance = float("inf")
    for point in trajectory:
        for obstacle in static_obstacles:
            clearance = (
                math.hypot(point.x_m - obstacle.x_m, point.y_m - obstacle.y_m)
                - obstacle.radius_m
                - ego_radius_m
            )
            min_clearance = min(min_clearance, clearance)
            if clearance < safety_margin_m:
                return CollisionReport(
                    collides=True,
                    first_collision_time_s=point.time_s,
                    colliding_object_id=-1 - obstacle.obstacle_id,
                    min_clearance_m=min_clearance,
                )
        for pred in predictions:
            if abs(pred.time_s - point.time_s) > time_tolerance_s:
                continue
            clearance = (
                math.hypot(point.x_m - pred.x_m, point.y_m - pred.y_m)
                - pred.radius_m
                - ego_radius_m
            )
            min_clearance = min(min_clearance, clearance)
            if clearance < safety_margin_m:
                return CollisionReport(
                    collides=True,
                    first_collision_time_s=point.time_s,
                    colliding_object_id=pred.object_id,
                    min_clearance_m=min_clearance,
                )
    return CollisionReport(collides=False, min_clearance_m=min_clearance)
