"""Differential equivalence harness: scalar engine vs batched stepper.

The batched multi-drive stepper (:mod:`repro.runtime.batched`) claims to
be an *execution strategy*, not a semantic change: every drive it
advances must be bit-identical to the same drive run through
``SystemsOnAVehicle.drive``.  This module is the machine that earns that
claim.  It enumerates ``scenario x seed x fault`` cells over the
corridor suite and the procedural generator, drives every cell through
**both** engines (the batched side in genuinely shared lockstep batches,
so cross-drive interleaving is exercised), and compares:

* the full :func:`~repro.testing.invariants.drive_fingerprint` —
  trajectory endpoint, tick structure, fault history, latency totals —
  field by field, floats exact;
* degradation-mode residency, as a dict (not just the fingerprint's
  sorted view);
* the collision / stop / safe-stop flags;
* the Eq. 1 deadline-accounting table: total misses, per-stage and
  per-mode charges, ticks observed.

Every mismatch carries the cell id and a paste-able repro line, so a
divergence found in a 200-cell nightly sweep is a pinned single-cell
reproduction by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..scene.corridors import corridor_names, make_corridor_sov
from ..scene.providers import resolve_scene
from .invariants import drive_fingerprint

#: Field names of the :func:`drive_fingerprint` tuple, index-aligned.
FINGERPRINT_FIELDS: Tuple[str, ...] = (
    "final_x_m",
    "final_y_m",
    "final_heading_rad",
    "final_speed_mps",
    "control_ticks",
    "collisions",
    "reactive_overrides",
    "reactive_holds",
    "proactive_skips",
    "fallback_commands",
    "can_frames_dropped",
    "distance_m",
    "min_forward_range_m",
    "faults_injected",
    "mode_ticks",
    "sheds_by_mode",
    "final_mode",
    "mode_residency",
    "min_obstacle_clearance_m",
    "latency_totals_s",
)


@dataclass(frozen=True)
class Mismatch:
    """One field diverging between engines on one cell."""

    cell_id: str
    field: str
    scalar: object
    batched: object

    def repro(self) -> str:
        """The one-liner that replays this cell through both engines."""
        return (
            f"run_differential_cell({self.cell_id!r})"
            f"  # {self.field}: {self.scalar!r} != {self.batched!r}"
        )


@dataclass(frozen=True)
class _Cell:
    """One differential cell: an id plus a pure sov builder.

    ``build()`` must construct a *fresh* configured vehicle every call
    (both engines get their own), returning ``(sov, duration_s)``.
    """

    cell_id: str
    build: Callable[[], Tuple[object, float]]


@dataclass
class DifferentialReport:
    """The full sweep: cells compared, fields checked, divergences."""

    n_cells: int = 0
    comparisons: int = 0
    mismatches: List[Mismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def format_report(self) -> str:
        lines = [
            f"differential matrix: {self.n_cells} cells, "
            f"{self.comparisons} comparisons -> "
            f"{'MATCH' if self.ok else 'DIVERGED'}"
        ]
        for m in self.mismatches:
            lines.append(f"  !! {m.repro()}")
        return "\n".join(lines)


def compare_drives(cell_id: str, scalar, batched) -> List[Mismatch]:
    """Field-level comparison of two :class:`DriveResult` s.

    Returns one :class:`Mismatch` per diverging field — fingerprint
    fields by name, then the explicit mode-residency / collision-flag /
    deadline-accounting checks the equivalence contract calls out.
    """
    mismatches: List[Mismatch] = []

    def check(name: str, a, b) -> None:
        if a != b:
            mismatches.append(Mismatch(cell_id, name, a, b))

    for name, a, b in zip(
        FINGERPRINT_FIELDS,
        drive_fingerprint(scalar),
        drive_fingerprint(batched),
    ):
        check(name, a, b)
    check("collided", scalar.collided, batched.collided)
    check("stopped", scalar.stopped, batched.stopped)
    check(
        "entered_safe_stop", scalar.entered_safe_stop, batched.entered_safe_stop
    )
    check(
        "mode_residency_dict",
        dict(scalar.mode_residency),
        dict(batched.mode_residency),
    )
    ta, tb = scalar.attribution, batched.attribution
    check("attribution_present", ta is not None, tb is not None)
    if ta is not None and tb is not None:
        check("deadline_total_misses", ta.total_misses, tb.total_misses)
        check("deadline_ticks_observed", ta.ticks_observed, tb.ticks_observed)
        check("deadline_by_stage", dict(ta.by_stage), dict(tb.by_stage))
        check("deadline_by_mode", dict(ta.by_mode), dict(tb.by_mode))
    return mismatches


def n_comparisons_per_cell() -> int:
    """Fields checked per cell (assuming attribution present both sides)."""
    return len(FINGERPRINT_FIELDS) + 9


# -- cell enumeration ----------------------------------------------------------


def _corridor_cell(
    name: str, seed: int, fault_seed: Optional[int]
) -> _Cell:
    def build() -> Tuple[object, float]:
        scenario = resolve_scene(name, seed)
        extra = _fault_draw(fault_seed)
        sov = make_corridor_sov(scenario, safety_net=True, extra_faults=extra)
        sov.enable_attribution()
        return sov, scenario.duration_s

    suffix = "" if fault_seed is None else f":f{fault_seed}"
    return _Cell(cell_id=f"diff:{name}:{seed}{suffix}", build=build)


def _fault_draw(fault_seed: Optional[int]) -> Tuple:
    """A deterministic chaos fault schedule for *fault_seed* (None: none).

    Uses the chaos campaign's own sampling path, so differential fault
    cells draw from exactly the fault surface the fleet runs.
    """
    if fault_seed is None:
        return ()
    from ..robustness.chaos import FaultSpace, scenario_for_drive

    return tuple(
        scenario_for_drive(FaultSpace(), fault_seed, fault_seed).faults
    )


def _procgen_cell(generator_seed: int, index: int) -> _Cell:
    def build() -> Tuple[object, float]:
        from ..scene.procgen import DEFAULT_SPACE

        scenario = DEFAULT_SPACE.sample(generator_seed, index)
        sov = make_corridor_sov(scenario, safety_net=True)
        sov.enable_attribution()
        return sov, scenario.duration_s

    return _Cell(cell_id=f"diff:procgen:{generator_seed}:{index}", build=build)


def differential_cells(
    names: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = (0, 1, 2),
    fault_seeds: Sequence[Optional[int]] = (None,),
    n_procgen: int = 0,
    generator_seed: int = 0,
) -> List[_Cell]:
    """Enumerate the ``scenario x seed x fault`` differential grid.

    *fault_seeds* entries draw a chaos fault schedule on top of the
    scene's own (None = the scene unmodified); *n_procgen* appends that
    many procedurally generated cells.
    """
    cells: List[_Cell] = []
    for name in names if names is not None else corridor_names():
        for seed in seeds:
            for fault_seed in fault_seeds:
                cells.append(_corridor_cell(name, seed, fault_seed))
    for index in range(n_procgen):
        cells.append(_procgen_cell(generator_seed, index))
    return cells


def run_differential_cell(cell_id: str) -> List[Mismatch]:
    """Replay one cell by id through both engines — the repro entry point.

    Accepts the ``diff:...`` ids this module mints:
    ``diff:<corridor>:<seed>[:f<fault_seed>]`` or
    ``diff:procgen:<generator_seed>:<index>``.
    """
    parts = cell_id.split(":")
    if parts[0] != "diff":
        raise ValueError(f"not a differential cell id: {cell_id!r}")
    if parts[1] == "procgen":
        cell = _procgen_cell(int(parts[2]), int(parts[3]))
    else:
        fault_seed = None
        if len(parts) > 3 and parts[3].startswith("f"):
            fault_seed = int(parts[3][1:])
        cell = _corridor_cell(parts[1], int(parts[2]), fault_seed)
    report = _run_cells([cell], batch_size=1)
    return report.mismatches


def _run_cells(cells: Sequence[_Cell], batch_size: int) -> DifferentialReport:
    from ..runtime.batched import drive_batch

    report = DifferentialReport(n_cells=len(cells))
    scalar_results = []
    for cell in cells:
        sov, duration_s = cell.build()
        scalar_results.append(sov.drive(duration_s))
    for lo in range(0, len(cells), batch_size):
        chunk = cells[lo : lo + batch_size]
        built = [cell.build() for cell in chunk]
        batched_results = drive_batch(
            [sov for sov, _d in built], [d for _sov, d in built]
        )
        for cell, scalar, batched in zip(
            chunk, scalar_results[lo : lo + batch_size], batched_results
        ):
            found = compare_drives(cell.cell_id, scalar, batched)
            report.comparisons += n_comparisons_per_cell()
            report.mismatches.extend(found)
    return report


def run_differential_matrix(
    names: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = (0, 1, 2),
    fault_seeds: Sequence[Optional[int]] = (None,),
    n_procgen: int = 0,
    generator_seed: int = 0,
    batch_size: int = 32,
) -> DifferentialReport:
    """Drive every cell through both engines and compare bit-for-bit.

    The scalar side runs each cell serially; the batched side runs the
    cells in shared lockstep batches of *batch_size* (so drives of
    different scenes, durations, and fault schedules genuinely
    interleave inside one stepper — the configuration the fleet uses).
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    cells = differential_cells(
        names=names,
        seeds=seeds,
        fault_seeds=fault_seeds,
        n_procgen=n_procgen,
        generator_seed=generator_seed,
    )
    return _run_cells(cells, batch_size=batch_size)
