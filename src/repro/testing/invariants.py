"""Property-based safety-invariant harness over the corridor suite.

The paper argues safety in prose: the reactive path is "the last line of
defense" (Sec. IV), the Eq. 1 budget bounds how late the computing
system may be, and graceful degradation keeps the vehicle controlled
when modules die (Sec. III-C).  This module states those claims as
**machine-checked invariants** and evaluates every one on every
``scenario x seed`` cell of the corridor suite:

``replay_determinism``
    Re-running a cell from scratch produces a bit-identical
    :class:`~repro.runtime.sov.DriveResult` fingerprint — the property
    every campaign replay hook and pinned regression seed relies on.

``no_collision_or_safe_stop``
    Under the protected configuration (reactive path + degradation
    supervisor engaged) a drive never collides; when the corridor is
    impassable the vehicle instead comes to a controlled stop (reactive
    hold or commanded SAFE_STOP).

``deadline_accounting``
    The Eq. 1 deadline-miss attribution table is internally consistent:
    per-stage and per-mode charges each sum to the total miss count
    (every miss charged to exactly one stage), misses never exceed
    observed ticks, and the tick count matches the drive's.

``residency_sums_to_one``
    Degradation-mode residency fractions are a probability distribution:
    non-negative and summing to 1.0 (the final open segment flushed).

``reactive_engagement``
    Whenever the radar/sonar forward range ever crossed the reactive
    threshold, the reactive path engaged (a trigger or a standing brake
    hold).  Skipped when the cell's fault schedule corrupts the radar —
    a lying sensor voids the premise, not the system.

A failing cell produces an :class:`InvariantViolation` carrying the
scenario name and seed, so every violation is a pinned, replayable
reproduction by construction: ``run_invariant_cell(name, seed)`` is the
whole repro recipe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..scene.corridors import (
    CorridorScenario,
    corridor_names,
    make_corridor_sov,
)
from ..scene.providers import resolve_scene

#: Radar-corrupting fault kinds: a cell whose schedule includes one of
#: these skips the reactive-engagement check (the premise is void).
_RADAR_CORRUPTING = frozenset(
    {"sensor_dropout", "sensor_freeze", "sensor_stuck"}
)

INVARIANT_NAMES: Tuple[str, ...] = (
    "replay_determinism",
    "no_collision_or_safe_stop",
    "deadline_accounting",
    "residency_sums_to_one",
    "reactive_engagement",
)

#: Generated cells check one more invariant before driving: sampling the
#: same ``(generator_seed, cell_index)`` again rebuilds the scene bit
#: for bit (:func:`repro.scene.procgen.scene_fingerprint` equality).
GENERATED_INVARIANT_NAMES: Tuple[str, ...] = (
    "scene_regeneration",
) + INVARIANT_NAMES

#: Tolerance on the residency-sum check (pure float addition error).
_RESIDENCY_TOL = 1e-9


@dataclass(frozen=True)
class InvariantViolation:
    """One invariant failing on one cell — a pinned reproduction.

    ``cell_id`` is the campaign cell id the violation occurred in (when
    the caller knows it), which makes :meth:`replay_command` a paste-able
    serial replay with tracing enabled — the line every violation report
    prints, and the entry point the failure-triage shrinker consumes.
    """

    invariant: str
    scenario: str
    seed: int
    detail: str
    cell_id: str = ""

    def repro(self) -> str:
        """The one-liner that reproduces this violation."""
        return (
            f"run_invariant_cell({self.scenario!r}, seed={self.seed})"
            f"  # {self.invariant}"
        )

    def replay_command(self) -> str:
        """The shell one-liner that replays this cell serially, traced."""
        if not self.cell_id:
            return self.repro()
        tool = (
            "examples/procgen_matrix.py"
            if self.cell_id.startswith("procgen:")
            else "examples/corridor_matrix.py"
        )
        return f"python {tool} --cell-id {self.cell_id}"


@dataclass(frozen=True)
class CellOutcome:
    """One scenario x seed cell: drive summary + invariant verdicts."""

    scenario: str
    seed: int
    collided: bool
    stopped: bool
    entered_safe_stop: bool
    final_mode: str
    final_x_m: float
    min_clearance_m: float
    min_forward_range_m: float
    reactive_engagements: int
    deadline_misses: int
    checked: Tuple[str, ...]
    violations: Tuple[InvariantViolation, ...]
    #: Scene determinism fingerprint (generated cells only; see
    #: :func:`repro.scene.procgen.scene_checksum`).
    scene_checksum: Optional[int] = None
    #: Stage the Eq. 1 attribution charged the most deadline misses to
    #: ("none" when no miss was recorded) — one leg of the failure
    #: fingerprint (:func:`repro.triage.fingerprint.failure_fingerprint`).
    dominant_stage: str = "none"
    #: Degradation-mode trajectory, starting at NOMINAL, one entry per
    #: supervisor transition — the third fingerprint leg.
    mode_trajectory: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class MatrixReport:
    """The full scenario x seed sweep."""

    cells: List[CellOutcome] = field(default_factory=list)

    @property
    def n_cells(self) -> int:
        return len(self.cells)

    @property
    def violations(self) -> List[InvariantViolation]:
        return [v for cell in self.cells for v in cell.violations]

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def collision_rate(self) -> float:
        if not self.cells:
            return 0.0
        return sum(c.collided for c in self.cells) / self.n_cells

    @property
    def safe_stop_rate(self) -> float:
        if not self.cells:
            return 0.0
        return sum(c.entered_safe_stop for c in self.cells) / self.n_cells

    @property
    def reactive_engagement_rate(self) -> float:
        """Fraction of cells where the reactive path engaged at all."""
        if not self.cells:
            return 0.0
        return (
            sum(c.reactive_engagements > 0 for c in self.cells) / self.n_cells
        )

    @property
    def deadline_misses(self) -> int:
        return sum(c.deadline_misses for c in self.cells)

    def checks_run(self) -> int:
        return sum(len(c.checked) for c in self.cells)

    def summary(self) -> Dict[str, float]:
        """Flat numeric view (experiment rows, bench snapshots)."""
        return {
            "n_cells": float(self.n_cells),
            "n_scenarios": float(len({c.scenario for c in self.cells})),
            "checks_run": float(self.checks_run()),
            "violations": float(len(self.violations)),
            "collision_rate": self.collision_rate,
            "safe_stop_rate": self.safe_stop_rate,
            "reactive_engagement_rate": self.reactive_engagement_rate,
            "deadline_misses": float(self.deadline_misses),
        }

    def format_report(self) -> str:
        lines = [
            f"invariant matrix: {self.n_cells} cells, "
            f"{self.checks_run()} checks -> "
            f"{'PASS' if self.ok else 'FAIL'}"
        ]
        for cell in self.cells:
            verdict = "ok" if cell.ok else "VIOLATED"
            lines.append(
                f"  {cell.scenario:<28} seed={cell.seed} "
                f"collided={cell.collided!s:<5} "
                f"mode={cell.final_mode:<13} {verdict}"
            )
        for violation in self.violations:
            lines.append(f"  !! {violation.repro()}: {violation.detail}")
            if violation.cell_id:
                lines.append(f"     replay: {violation.replay_command()}")
        return "\n".join(lines)


def drive_fingerprint(result) -> Tuple:
    """A bit-exact fingerprint of a :class:`DriveResult`.

    Two drives with equal fingerprints took the same trajectory, tick
    structure, fault history, and mode history — the equality the
    determinism invariant (and the chaos replay hook) asserts.  Floats
    are compared exactly, never approximately.
    """
    state = result.final_state
    ops = result.ops
    return (
        state.x_m,
        state.y_m,
        state.heading_rad,
        state.speed_mps,
        ops.control_ticks,
        ops.collisions,
        ops.reactive_overrides,
        ops.reactive_holds,
        ops.proactive_skips,
        ops.fallback_commands,
        ops.can_frames_dropped,
        ops.distance_m,
        ops.min_forward_range_m,
        tuple(sorted(ops.faults_injected.items())),
        tuple(sorted(ops.mode_ticks.items())),
        tuple(sorted(ops.sheds_by_mode.items())),
        result.final_mode,
        tuple(sorted(result.mode_residency.items())),
        result.min_obstacle_clearance_m,
        tuple(result.latency.totals_s),
    )


def dominant_attribution_stage(result) -> str:
    """The stage charged the most Eq. 1 deadline misses ("none" if none).

    Ties break toward the alphabetically-first stage so the answer is
    stable across processes — it feeds the failure fingerprint.
    """
    table = getattr(result, "attribution", None)
    if table is None or not table.by_stage:
        return "none"
    return max(sorted(table.by_stage), key=lambda s: table.by_stage[s])


def degradation_trajectory(sov) -> Tuple[str, ...]:
    """The mode path the degradation supervisor walked this drive.

    Always starts at NOMINAL; one entry per supervisor transition.  A
    drive with the supervisor disabled reports just ``("NOMINAL",)``.
    """
    machine = getattr(sov, "degradation", None)
    transitions = getattr(machine, "transitions", None) or ()
    return ("NOMINAL",) + tuple(t.mode.name for t in transitions)


def check_drive_invariant(
    invariant: str,
    result,
    blocked: bool = False,
    sov=None,
    result2=None,
    faults: Sequence = (),
) -> Tuple[bool, str]:
    """Evaluate one named drive invariant on a completed drive.

    The standalone single-invariant face of :func:`_evaluate_cell`, used
    by the failure-triage oracle to ask "does this candidate still
    violate the *same* invariant?" without re-running the whole harness.
    Returns ``(violated, detail)``.

    *blocked* is the scene's impassability flag; *result2* is a second
    drive of the identical cell (required for ``replay_determinism``);
    *sov* is required for ``reactive_engagement``; *faults* is the
    cell's fault schedule (radar-corrupting kinds void the
    reactive-engagement premise, matching the matrix harness).
    """
    if invariant == "replay_determinism":
        if result2 is None:
            raise ValueError("replay_determinism needs a second drive")
        fp_a, fp_b = drive_fingerprint(result), drive_fingerprint(result2)
        if fp_a != fp_b:
            diffs = [
                f"field {i}: {a!r} != {b!r}"
                for i, (a, b) in enumerate(zip(fp_a, fp_b))
                if a != b
            ]
            return True, f"re-run diverged: {'; '.join(diffs[:3])}"
        return False, ""
    if invariant == "no_collision_or_safe_stop":
        if result.collided:
            return True, (
                f"{result.ops.collisions} collision tick(s), min clearance "
                f"{result.min_obstacle_clearance_m:.3f} m"
            )
        if blocked and not (result.stopped or result.entered_safe_stop):
            return True, (
                "blocked corridor but the vehicle neither stopped nor "
                "entered SAFE_STOP (final speed "
                f"{result.final_state.speed_mps:.2f} m/s)"
            )
        return False, ""
    if invariant == "deadline_accounting":
        table = result.attribution
        if table is None:
            return True, "attribution table missing"
        try:
            table.check_consistency()
        except AssertionError as exc:
            return True, str(exc)
        if table.total_misses > table.ticks_observed:
            return True, (
                f"{table.total_misses} misses exceed "
                f"{table.ticks_observed} observed ticks"
            )
        if len(table.records) != table.total_misses:
            return True, (
                f"{len(table.records)} miss records vs total "
                f"{table.total_misses}"
            )
        if table.total_misses != sum(table.by_stage.values()):
            return True, (
                "per-stage charges do not sum to the total "
                f"({sum(table.by_stage.values())} vs {table.total_misses})"
            )
        return False, ""
    if invariant == "residency_sums_to_one":
        residency = result.mode_residency
        total = sum(residency.values())
        if abs(total - 1.0) > _RESIDENCY_TOL:
            return True, f"residency fractions sum to {total!r}"
        for mode, frac in residency.items():
            if not 0.0 <= frac <= 1.0:
                return True, f"residency[{mode}] = {frac!r} outside [0, 1]"
        return False, ""
    if invariant == "reactive_engagement":
        if sov is None:
            raise ValueError("reactive_engagement needs the sov instance")
        if any(
            getattr(f, "kind", "") in _RADAR_CORRUPTING
            and getattr(f, "sensor", "") == "radar"
            for f in faults
        ):
            return False, ""  # lying radar voids the premise
        engagements = (
            result.ops.reactive_overrides + result.ops.reactive_holds
        )
        threshold = sov.reactive.threshold_m
        if result.ops.min_forward_range_m <= threshold and engagements == 0:
            return True, (
                f"forward range reached "
                f"{result.ops.min_forward_range_m:.2f} m (threshold "
                f"{threshold:.2f} m) but the reactive path never engaged"
            )
        return False, ""
    raise ValueError(
        f"unknown invariant {invariant!r}; known: {INVARIANT_NAMES}"
    )


def _radar_is_corrupted(scenario: CorridorScenario) -> bool:
    if scenario.fault_scenario is None:
        return False
    return any(
        fault.kind in _RADAR_CORRUPTING and fault.sensor == "radar"
        for fault in scenario.fault_scenario.faults
        if hasattr(fault, "sensor")
    )


def _evaluate_cell(
    one_drive,
    label: str,
    seed: int,
    check_determinism: bool,
    pre_checked: Tuple[str, ...] = (),
    pre_violations: Tuple[InvariantViolation, ...] = (),
    scene_checksum: Optional[int] = None,
    cell_id: str = "",
) -> CellOutcome:
    """The shared invariant check body: drive the cell via *one_drive*
    (a zero-argument callable returning ``(scenario, sov, result)``,
    pure per call) and evaluate every applicable invariant.

    *pre_checked* / *pre_violations* carry scene-level checks the caller
    ran before driving (the generated-cell regeneration invariant).
    *cell_id* stamps violations with the campaign cell id so reports can
    print a paste-able ``--cell-id`` replay line.
    """
    scenario, sov, result = one_drive()
    violations: List[InvariantViolation] = list(pre_violations)
    checked: List[str] = list(pre_checked)

    def violate(invariant: str, detail: str) -> None:
        violations.append(
            InvariantViolation(
                invariant=invariant,
                scenario=label,
                seed=seed,
                detail=detail,
                cell_id=cell_id,
            )
        )

    # -- replay determinism ---------------------------------------------------
    if check_determinism:
        checked.append("replay_determinism")
        _scenario2, _sov2, result2 = one_drive()
        fp_a, fp_b = drive_fingerprint(result), drive_fingerprint(result2)
        if fp_a != fp_b:
            diffs = [
                f"field {i}: {a!r} != {b!r}"
                for i, (a, b) in enumerate(zip(fp_a, fp_b))
                if a != b
            ]
            violate(
                "replay_determinism",
                f"re-run diverged: {'; '.join(diffs[:3])}",
            )

    # -- no collision / safe stop ---------------------------------------------
    checked.append("no_collision_or_safe_stop")
    if result.collided:
        violate(
            "no_collision_or_safe_stop",
            f"{result.ops.collisions} collision tick(s), min clearance "
            f"{result.min_obstacle_clearance_m:.3f} m",
        )
    elif scenario.blocked and not (result.stopped or result.entered_safe_stop):
        violate(
            "no_collision_or_safe_stop",
            "blocked corridor but the vehicle neither stopped nor entered "
            f"SAFE_STOP (final speed {result.final_state.speed_mps:.2f} m/s)",
        )

    # -- Eq. 1 deadline accounting --------------------------------------------
    checked.append("deadline_accounting")
    table = result.attribution
    if table is None:
        violate("deadline_accounting", "attribution table missing")
    else:
        try:
            table.check_consistency()
        except AssertionError as exc:
            violate("deadline_accounting", str(exc))
        if table.total_misses > table.ticks_observed:
            violate(
                "deadline_accounting",
                f"{table.total_misses} misses exceed "
                f"{table.ticks_observed} observed ticks",
            )
        if len(table.records) != table.total_misses:
            violate(
                "deadline_accounting",
                f"{len(table.records)} miss records vs total "
                f"{table.total_misses}",
            )
        if table.total_misses != sum(table.by_stage.values()):
            violate(
                "deadline_accounting",
                "per-stage charges do not sum to the total "
                f"({sum(table.by_stage.values())} vs {table.total_misses})",
            )

    # -- residency distribution ------------------------------------------------
    checked.append("residency_sums_to_one")
    residency = result.mode_residency
    total = sum(residency.values())
    if abs(total - 1.0) > _RESIDENCY_TOL:
        violate(
            "residency_sums_to_one",
            f"residency fractions sum to {total!r}",
        )
    for mode, frac in residency.items():
        if not 0.0 <= frac <= 1.0:
            violate(
                "residency_sums_to_one",
                f"residency[{mode}] = {frac!r} outside [0, 1]",
            )

    # -- reactive engagement ----------------------------------------------------
    engagements = result.ops.reactive_overrides + result.ops.reactive_holds
    if not _radar_is_corrupted(scenario):
        checked.append("reactive_engagement")
        threshold = sov.reactive.threshold_m
        crossed = result.ops.min_forward_range_m <= threshold
        if crossed and engagements == 0:
            violate(
                "reactive_engagement",
                f"forward range reached "
                f"{result.ops.min_forward_range_m:.2f} m (threshold "
                f"{threshold:.2f} m) but the reactive path never engaged",
            )

    return CellOutcome(
        scenario=label,
        seed=seed,
        collided=result.collided,
        stopped=result.stopped,
        entered_safe_stop=result.entered_safe_stop,
        final_mode=result.final_mode,
        final_x_m=result.final_state.x_m,
        min_clearance_m=result.min_obstacle_clearance_m,
        min_forward_range_m=result.ops.min_forward_range_m,
        reactive_engagements=engagements,
        deadline_misses=0 if table is None else table.total_misses,
        checked=tuple(checked),
        violations=tuple(violations),
        scene_checksum=scene_checksum,
        dominant_stage=dominant_attribution_stage(result),
        mode_trajectory=degradation_trajectory(sov),
    )


def run_invariant_cell(
    name: str,
    seed: int = 0,
    check_determinism: bool = True,
    deadline_budget_s: Optional[float] = None,
    **config_overrides,
) -> CellOutcome:
    """Drive one cell under the protected configuration and check every
    applicable invariant.

    *name* is any registered scene spec (see
    :mod:`repro.scene.providers`): a bare corridor name (``"slalom"``),
    a qualified one, or a generated family (``"procgen:crossroads"``).
    *deadline_budget_s* tightens the Eq. 1 budget for the accounting
    invariant (None: the paper's worst-case avoidance budget).  Extra
    keyword arguments pass through to
    :class:`~repro.runtime.sov.SovConfig` — the determinism re-run uses
    the identical configuration.
    """

    def one_drive():
        scenario = resolve_scene(name, seed)
        sov = make_corridor_sov(scenario, safety_net=True, **config_overrides)
        sov.enable_attribution(deadline_budget_s)
        return scenario, sov, sov.drive(scenario.duration_s)

    suffix = "" if check_determinism else ":nodet"
    return _evaluate_cell(
        one_drive,
        name,
        seed,
        check_determinism,
        cell_id=f"invariant:{name}:{seed}{suffix}",
    )


def run_generated_cell(
    space=None,
    generator_seed: int = 0,
    cell_index: int = 0,
    topology: Optional[str] = None,
    check_determinism: bool = True,
    deadline_budget_s: Optional[float] = None,
    **config_overrides,
) -> CellOutcome:
    """Check one procedurally generated cell ``(generator_seed,
    cell_index)`` of *space* (None: the default
    :class:`~repro.scene.procgen.ProcGenSpace`).

    On top of the five drive invariants, generated cells check
    ``scene_regeneration`` first: sampling the same pair again rebuilds
    the scene bit for bit — the replay contract every fleet/chaos
    consumer of generated scenes leans on.  The outcome carries the
    scene's determinism checksum for campaign-level fingerprinting.
    """
    from ..scene.procgen import (
        DEFAULT_SPACE,
        scene_checksum as _scene_checksum,
        scene_fingerprint,
    )

    space = DEFAULT_SPACE if space is None else space
    scenario = space.sample(generator_seed, cell_index, topology=topology)
    label = f"procgen:{scenario.topology}[{cell_index}]"
    suffix = "" if check_determinism else ":nodet"
    cell_id = (
        f"procgen:{generator_seed}:{cell_index}"
        f":i{space.intensity:g}{suffix}"
    )
    pre_checked = ("scene_regeneration",)
    pre_violations: List[InvariantViolation] = []
    regenerated = space.sample(generator_seed, cell_index, topology=topology)
    fp_a = scene_fingerprint(scenario)
    fp_b = scene_fingerprint(regenerated)
    if fp_a != fp_b:
        diffs = [
            f"field {i}: {a!r} != {b!r}"
            for i, (a, b) in enumerate(zip(fp_a, fp_b))
            if a != b
        ]
        pre_violations.append(
            InvariantViolation(
                invariant="scene_regeneration",
                scenario=label,
                seed=generator_seed,
                detail=f"regeneration diverged: {'; '.join(diffs[:3])}",
                cell_id=cell_id,
            )
        )

    def one_drive():
        fresh = space.sample(generator_seed, cell_index, topology=topology)
        sov = make_corridor_sov(fresh, safety_net=True, **config_overrides)
        sov.enable_attribution(deadline_budget_s)
        return fresh, sov, sov.drive(fresh.duration_s)

    return _evaluate_cell(
        one_drive,
        label,
        generator_seed,
        check_determinism,
        pre_checked=pre_checked,
        pre_violations=tuple(pre_violations),
        scene_checksum=_scene_checksum(scenario),
        cell_id=cell_id,
    )


def run_invariant_matrix(
    names: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = (0, 1, 2),
    check_determinism: bool = True,
    deadline_budget_s: Optional[float] = None,
    engine: str = "serial",
    n_workers: int = 4,
    **config_overrides,
) -> MatrixReport:
    """Sweep every ``scenario x seed`` cell (None: the whole suite).

    ``engine="fleet"`` runs the sweep on the fault-tolerant fleet
    substrate (:mod:`repro.fleetops`) with *n_workers* processes and
    exactly-once accounting; cells come back in the same order as the
    serial path.  Per-cell ``SovConfig`` overrides only ride the serial
    path (they are not part of the picklable fleet cell contract).

    ``engine="batched"`` advances every cell's vehicle (including the
    determinism re-drive) in lockstep through the vectorized
    multi-drive stepper (:mod:`repro.runtime.batched`) — bit-identical
    outcomes, one process, vectorized planning across the whole sweep.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    if engine not in ("serial", "fleet", "batched"):
        raise ValueError(
            f"unknown engine {engine!r}; use serial, fleet, or batched"
        )
    if engine == "batched":
        from ..runtime.batched import drive_batch

        name_list = (
            list(names) if names is not None else list(corridor_names())
        )
        coords = [(name, seed) for name in name_list for seed in seeds]
        drives_per_cell = 2 if check_determinism else 1
        sovs, durations, scenarios = [], [], []
        for name, seed in coords:
            for _rep in range(drives_per_cell):
                scenario = resolve_scene(name, seed)
                sov = make_corridor_sov(
                    scenario, safety_net=True, **config_overrides
                )
                sov.enable_attribution(deadline_budget_s)
                scenarios.append(scenario)
                sovs.append(sov)
                durations.append(scenario.duration_s)
        drive_results = drive_batch(sovs, durations)
        triples = iter(zip(scenarios, sovs, drive_results))
        suffix = "" if check_determinism else ":nodet"
        report = MatrixReport()
        for name, seed in coords:
            report.cells.append(
                _evaluate_cell(
                    lambda: next(triples),
                    name,
                    seed,
                    check_determinism,
                    cell_id=f"invariant:{name}:{seed}{suffix}",
                )
            )
        return report
    if engine == "fleet":
        if config_overrides:
            raise ValueError(
                "SovConfig overrides require engine='serial' (fleet cells "
                "carry only the picklable scenario/seed coordinates)"
            )
        from ..fleetops.cells import invariant_cells
        from ..fleetops.supervisor import FleetConfig, FleetSupervisor

        specs = list(
            invariant_cells(
                names=names,
                seeds=seeds,
                check_determinism=check_determinism,
                deadline_budget_s=deadline_budget_s,
            )
        )
        fleet_report = FleetSupervisor(FleetConfig(n_workers=n_workers)).run(
            specs
        )
        if not fleet_report.ok:
            raise RuntimeError(
                "fleet invariant matrix incomplete: "
                f"lost={fleet_report.lost_cells} "
                f"duplicates={fleet_report.duplicate_cells} "
                f"failed={len(fleet_report.failed_cells)}"
            )
        ordered = sorted(fleet_report.results, key=lambda r: r.index)
        return MatrixReport(cells=[r.record for r in ordered])
    report = MatrixReport()
    for name in names if names is not None else corridor_names():
        for seed in seeds:
            report.cells.append(
                run_invariant_cell(
                    name,
                    seed,
                    check_determinism=check_determinism,
                    deadline_budget_s=deadline_budget_s,
                    **config_overrides,
                )
            )
    return report
