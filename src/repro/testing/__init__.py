"""Machine-checked safety properties for the simulated stack.

:mod:`repro.testing.invariants` turns the paper's prose safety argument
into executable invariants and sweeps them over the corridor scenario
suite (:mod:`repro.scene.corridors`).
"""

from .invariants import (
    INVARIANT_NAMES,
    CellOutcome,
    InvariantViolation,
    MatrixReport,
    drive_fingerprint,
    run_invariant_cell,
    run_invariant_matrix,
)

__all__ = [
    "INVARIANT_NAMES",
    "CellOutcome",
    "InvariantViolation",
    "MatrixReport",
    "drive_fingerprint",
    "run_invariant_cell",
    "run_invariant_matrix",
]
