"""The on-vehicle software dataflow graph (paper Fig. 5, Sec. IV).

Encodes the paper's task structure and its task-level parallelism (TLP):

* sensing -> perception -> planning are serialized (all on the critical
  path);
* within perception, localization and scene understanding are independent;
* within scene understanding, depth estimation is independent of the
  detection -> tracking chain, which is serialized.

Each task carries a latency distribution; the graph computes critical
paths, stage latencies, and end-to-end samples — the machinery behind the
Fig. 10 characterization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (
    AbstractSet,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import networkx as nx
import numpy as np

from ..core import calibration


@dataclass(frozen=True)
class LatencyDistribution:
    """A shifted-lognormal latency model: ``best + LogNormal(mu, sigma)``.

    The shift is the best case; the lognormal excess produces the long
    tail the paper observes ("the mean latency (164 ms) is close to the
    best-case latency (149 ms), but a long tail exists").  A zero
    ``excess_mean_s`` makes the task deterministic.
    """

    best_s: float
    excess_mean_s: float = 0.0
    sigma: float = 1.3

    def __post_init__(self) -> None:
        if self.best_s < 0 or self.excess_mean_s < 0 or self.sigma <= 0:
            raise ValueError("latency parameters must be non-negative")

    @property
    def mean_s(self) -> float:
        return self.best_s + self.excess_mean_s

    @property
    def _mu(self) -> float:
        # mean of LogNormal(mu, sigma) = exp(mu + sigma^2/2)
        return math.log(max(self.excess_mean_s, 1e-12)) - self.sigma ** 2 / 2.0

    def sample(self, rng: np.random.Generator) -> float:
        if self.excess_mean_s == 0.0:
            return self.best_s
        return self.best_s + float(rng.lognormal(self._mu, self.sigma))

    def percentile(self, q: float) -> float:
        """Analytical percentile (q in [0, 100])."""
        if not 0 <= q <= 100:
            raise ValueError("q must be in [0, 100]")
        if self.excess_mean_s == 0.0:
            return self.best_s
        from scipy.stats import norm

        z = norm.ppf(q / 100.0)
        return self.best_s + math.exp(self._mu + self.sigma * z)


@dataclass(frozen=True)
class Task:
    """One node of the dataflow graph."""

    name: str
    stage: str  # "sensing" | "perception" | "planning"
    latency: LatencyDistribution


class SovDataflow:
    """The Fig. 5 task graph with latency semantics."""

    STAGES = ("sensing", "perception", "planning")

    def __init__(self, tasks: Sequence[Task], edges: Sequence[Tuple[str, str]]):
        self._tasks: Dict[str, Task] = {}
        self._graph = nx.DiGraph()
        for task in tasks:
            if task.name in self._tasks:
                raise ValueError(f"duplicate task {task.name!r}")
            if task.stage not in self.STAGES:
                raise ValueError(f"unknown stage {task.stage!r}")
            self._tasks[task.name] = task
            self._graph.add_node(task.name)
        for u, v in edges:
            if u not in self._tasks or v not in self._tasks:
                raise KeyError(f"edge ({u!r}, {v!r}) references unknown task")
            self._graph.add_edge(u, v)
        if not nx.is_directed_acyclic_graph(self._graph):
            raise ValueError("dataflow graph must be acyclic")
        # The graph never mutates after construction, so the traversal
        # structure every per-tick query re-derives (topological order,
        # predecessor lists, per-stage subgraphs) is hoisted here.  The
        # cached tuples are the *same enumeration order* networkx would
        # produce per call, so order-dependent tie-breaks (first-max
        # predecessor in critical_path) are bit-identical.
        self._topo: Tuple[str, ...] = tuple(nx.topological_sort(self._graph))
        self._preds: Dict[str, Tuple[str, ...]] = {
            node: tuple(self._graph.predecessors(node)) for node in self._topo
        }
        self._stage_topo: Dict[str, Tuple[str, ...]] = {}
        self._stage_preds: Dict[str, Dict[str, Tuple[str, ...]]] = {}
        for stage in self.STAGES:
            members = [n for n, t in self._tasks.items() if t.stage == stage]
            sub = self._graph.subgraph(members)
            order = tuple(nx.topological_sort(sub))
            self._stage_topo[stage] = order
            self._stage_preds[stage] = {
                node: tuple(sub.predecessors(node)) for node in order
            }

    @property
    def task_names(self) -> List[str]:
        return list(self._tasks)

    def task(self, name: str) -> Task:
        return self._tasks[name]

    def dependencies(self, name: str) -> List[str]:
        return list(self._graph.predecessors(name))

    def independent_pairs(self) -> List[Tuple[str, str]]:
        """Task pairs with no path between them — the exploitable TLP."""
        pairs = []
        names = self.task_names
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                if not nx.has_path(self._graph, a, b) and not nx.has_path(
                    self._graph, b, a
                ):
                    pairs.append((a, b))
        return pairs

    def critical_path(
        self, latencies: Optional[Mapping[str, float]] = None
    ) -> Tuple[List[str], float]:
        """Longest path by task latency (mean latency by default)."""
        weights = latencies or {
            name: task.latency.mean_s for name, task in self._tasks.items()
        }
        finish: Dict[str, float] = {}
        parent: Dict[str, Optional[str]] = {}
        for node in self._topo:
            preds = self._preds[node]
            if preds:
                best_pred = max(preds, key=lambda p: finish[p])
                start = finish[best_pred]
                parent[node] = best_pred
            else:
                start = 0.0
                parent[node] = None
            finish[node] = start + weights[node]
        end = max(finish, key=lambda n: finish[n])
        path = [end]
        while parent[path[-1]] is not None:
            path.append(parent[path[-1]])
        return list(reversed(path)), finish[end]

    def iteration_schedule(
        self, latencies: Mapping[str, float]
    ) -> Dict[str, Tuple[float, float]]:
        """ASAP schedule: each task's ``(start, finish)`` offset within one
        iteration, honouring the dependency edges.

        This is the per-task timeline the tracer exports as Perfetto
        spans; ``max(finish)`` equals :meth:`critical_path`'s total for
        the same latencies.
        """
        finish: Dict[str, float] = {}
        schedule: Dict[str, Tuple[float, float]] = {}
        for node in self._topo:
            start = max(
                (finish[p] for p in self._preds[node]),
                default=0.0,
            )
            finish[node] = start + latencies[node]
            schedule[node] = (start, finish[node])
        return schedule

    def sample_iteration(
        self,
        rng: np.random.Generator,
        skip: Optional[AbstractSet[str]] = None,
    ) -> Tuple[Dict[str, float], float]:
        """Sample one pipeline iteration; returns (per-task, end-to-end).

        *skip* names tasks shed by a load-shedding policy this iteration
        (fault-aware scheduling): their latency is zeroed after sampling.
        Every task is sampled regardless, so the RNG stream — and thus
        the latencies of the tasks that *do* run — is identical whether
        or not anything is shed; shedding can only shorten an iteration.
        """
        latencies = {
            name: task.latency.sample(rng) for name, task in self._tasks.items()
        }
        if skip:
            unknown = set(skip) - set(self._tasks)
            if unknown:
                raise KeyError(f"cannot shed unknown tasks {sorted(unknown)}")
            for name in skip:
                latencies[name] = 0.0
        _path, total = self.critical_path(latencies)
        return latencies, total

    def stage_latency(
        self, stage: str, latencies: Mapping[str, float]
    ) -> float:
        """Critical-path latency *within* one stage."""
        order = self._stage_topo.get(stage)
        if order is None:
            members = [n for n, t in self._tasks.items() if t.stage == stage]
            if not members:
                return 0.0
            sub = self._graph.subgraph(members)
            finish: Dict[str, float] = {}
            for node in nx.topological_sort(sub):
                start = max(
                    (finish[p] for p in sub.predecessors(node)), default=0.0
                )
                finish[node] = start + latencies[node]
            return max(finish.values())
        if not order:
            return 0.0
        preds = self._stage_preds[stage]
        finish = {}
        for node in order:
            start = max((finish[p] for p in preds[node]), default=0.0)
            finish[node] = start + latencies[node]
        return max(finish.values())


def paper_dataflow(seed_irrelevant: int = 0) -> SovDataflow:
    """The deployed vehicle's dataflow with calibrated latencies.

    Task latencies reflect the FPGA-offloaded configuration (Sec. V-B2):
    localization on the FPGA (24 ms median), scene understanding on the
    GPU (depth 35 ms; detection 70 ms -> tracking 7 ms), sensing 74 ms
    best-case with the dominant share of the tail, planning 3 ms.
    """
    fig10b = calibration.FIG10B_TASK_LATENCIES_S
    tasks = [
        Task(
            "sensing",
            "sensing",
            LatencyDistribution(
                best_s=calibration.SENSING_BEST_LATENCY_S,
                excess_mean_s=calibration.SENSING_MEAN_LATENCY_S
                - calibration.SENSING_BEST_LATENCY_S,
            ),
        ),
        Task(
            "localization",
            "perception",
            LatencyDistribution(
                best_s=0.020,
                excess_mean_s=fig10b["localization"] - 0.020,
                sigma=1.1,
            ),
        ),
        Task(
            "depth",
            "perception",
            LatencyDistribution(best_s=0.030, excess_mean_s=fig10b["depth"] - 0.030),
        ),
        Task(
            "detection",
            "perception",
            LatencyDistribution(
                best_s=0.065, excess_mean_s=fig10b["detection"] - 0.065
            ),
        ),
        Task(
            "tracking",
            "perception",
            LatencyDistribution(
                best_s=0.006, excess_mean_s=fig10b["tracking"] - 0.006, sigma=0.8
            ),
        ),
        Task(
            "planning",
            "planning",
            LatencyDistribution(
                best_s=calibration.PLANNING_MEAN_LATENCY_S, excess_mean_s=0.0
            ),
        ),
    ]
    edges = [
        ("sensing", "localization"),
        ("sensing", "depth"),
        ("sensing", "detection"),
        ("detection", "tracking"),
        ("localization", "planning"),
        ("depth", "planning"),
        ("tracking", "planning"),
    ]
    return SovDataflow(tasks, edges)
