"""Latency and operations telemetry (paper Sec. V-C).

Collects per-iteration latency samples and produces the Fig. 10a summary:
best case, mean, 99th percentile, per-stage breakdowns, plus operational
counters (proactive-path fraction) used by the closed-loop SoV.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np


@dataclass
class LatencyStats:
    """Streaming latency statistics with per-stage breakdowns."""

    totals_s: List[float] = field(default_factory=list)
    stages_s: Dict[str, List[float]] = field(default_factory=dict)

    def record(self, total_s: float, stages: Optional[Mapping[str, float]] = None) -> None:
        if total_s < 0:
            raise ValueError("latency must be non-negative")
        self.totals_s.append(total_s)
        for stage, value in (stages or {}).items():
            self.stages_s.setdefault(stage, []).append(value)

    @property
    def count(self) -> int:
        return len(self.totals_s)

    @property
    def best_s(self) -> float:
        self._require_data()
        return float(np.min(self.totals_s))

    @property
    def mean_s(self) -> float:
        self._require_data()
        return float(np.mean(self.totals_s))

    @property
    def worst_s(self) -> float:
        self._require_data()
        return float(np.max(self.totals_s))

    def percentile_s(self, q: float) -> float:
        self._require_data()
        return float(np.percentile(self.totals_s, q))

    def stage_mean_s(self, stage: str) -> float:
        values = self.stages_s.get(stage)
        if not values:
            raise KeyError(f"no samples for stage {stage!r}")
        return float(np.mean(values))

    def stage_fraction(self, stage: str) -> float:
        """Share of the mean total attributable to one stage."""
        return self.stage_mean_s(stage) / self.mean_s

    def summary(self) -> Dict[str, float]:
        """The Fig. 10a row set."""
        self._require_data()
        out = {
            "best_s": self.best_s,
            "mean_s": self.mean_s,
            "p99_s": self.percentile_s(99.0),
            "worst_s": self.worst_s,
        }
        for stage in self.stages_s:
            out[f"{stage}_mean_s"] = self.stage_mean_s(stage)
        return out

    def _require_data(self) -> None:
        if not self.totals_s:
            raise ValueError("no latency samples recorded")


@dataclass
class OperationsLog:
    """Operational counters for one drive."""

    control_ticks: int = 0
    reactive_overrides: int = 0
    #: Standing brake-hold refreshes on an already-stopped vehicle (not
    #: counted as interventions; see ReactivePath.evaluate).
    reactive_holds: int = 0
    distance_m: float = 0.0
    energy_j: float = 0.0
    collisions: int = 0
    #: Control ticks where the proactive pipeline produced no command
    #: (module crashed / awaiting restart).
    proactive_skips: int = 0
    #: Commands the degradation supervisor issued in place of the planner.
    fallback_commands: int = 0
    #: CAN frames corrupted by fault injection (sent but never delivered).
    can_frames_dropped: int = 0
    #: Fault-injection events observed, keyed by fault kind.
    faults_injected: Dict[str, int] = field(default_factory=dict)
    #: Control ticks spent in each degradation mode.
    mode_ticks: Dict[str, int] = field(default_factory=dict)
    #: Dataflow tasks shed by the load-shedding policy, keyed by the
    #: degradation mode that shed them (fault-aware scheduling).
    sheds_by_mode: Dict[str, int] = field(default_factory=dict)
    #: The same shed events keyed by task name.
    sheds_by_task: Dict[str, int] = field(default_factory=dict)
    #: Safety-critical CAN frames sent at high arbitration priority.
    can_priority_sends: int = 0
    #: Closest radar/sonar forward range the reactive path ever saw
    #: (post-fault reading; inf when nothing entered the forward cone).
    #: The invariant harness checks reactive engagement against this.
    min_forward_range_m: float = float("inf")

    def record_sheds(self, mode: str, tasks: Sequence[str]) -> None:
        """Account one tick's shed tasks against *mode*."""
        if not tasks:
            return
        self.sheds_by_mode[mode] = self.sheds_by_mode.get(mode, 0) + len(tasks)
        for task in tasks:
            self.sheds_by_task[task] = self.sheds_by_task.get(task, 0) + 1

    @property
    def total_sheds(self) -> int:
        return sum(self.sheds_by_mode.values())

    @property
    def proactive_fraction(self) -> float:
        """Fraction of control ticks on the proactive path (Sec. V-C:
        "our deployed vehicles stay in the proactive paths for over 90%
        of the time").

        A tick counts as reactive when the reactive path intervened
        (``reactive_overrides``) *or* kept refreshing a standing brake
        hold (``reactive_holds``) — a held vehicle is not driving
        proactively, even though holds are not interventions.  Both
        counters tick at the 20 Hz reactive rate against 10 Hz control
        ticks, so the ratio can exceed 1 during long reactive stretches;
        the result is clamped to [0, 1] (it used to go negative and to
        credit held ticks to the proactive path).
        """
        if self.control_ticks == 0:
            return 1.0
        reactive = self.reactive_overrides + self.reactive_holds
        return max(0.0, 1.0 - reactive / self.control_ticks)

    @property
    def degraded_fraction(self) -> float:
        """Fraction of control ticks spent outside NOMINAL mode."""
        total = sum(self.mode_ticks.values())
        if total == 0:
            return 0.0
        return 1.0 - self.mode_ticks.get("NOMINAL", 0) / total
