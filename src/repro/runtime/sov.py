"""The closed-loop Systems-on-a-Vehicle (paper Sec. V).

Integrates everything: the world, perception surrogates, the MPC planner
(proactive path), the reactive path, the CAN bus, the ECU/actuator, the
vehicle dynamics, the battery, and the sampled computing-latency model.
The control loop runs at the paper's 10 Hz; each proactive command reaches
the actuator after ``Tcomp`` (sampled from the calibrated dataflow) +
``Tdata`` (CAN) + ``Tmech`` (actuator), so Eq. 1 plays out mechanically in
closed loop rather than analytically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core import calibration
from ..planning.mpc import MpcPlanner
from ..planning.prediction import TrackedObject
from ..planning.reactive import ReactivePath
from ..scene.lanes import LaneMap, straight_corridor
from ..scene.world import Agent, Obstacle, World
from ..vehicle.actuator import Actuator, EngineControlUnit
from ..vehicle.battery import Battery
from ..vehicle.dynamics import BicycleModel, ControlCommand, VehicleState
from .canbus import CanBus
from .dataflow import SovDataflow, paper_dataflow
from .telemetry import LatencyStats, OperationsLog


@dataclass
class SovConfig:
    """Closed-loop simulation parameters."""

    control_rate_hz: float = calibration.THROUGHPUT_REQUIREMENT_HZ
    reactive_rate_hz: float = 20.0
    sim_dt_s: float = 0.005
    sensing_range_m: float = 40.0
    reactive_enabled: bool = True
    #: Probability that the vision pipeline misses an entity on a given
    #: control tick (Sec. III-C safety scenario 2: "vision algorithms
    #: produce wrong results, e.g., missing an object").  The reactive
    #: path still sees it through radar/sonar.
    vision_miss_prob: float = 0.0
    fixed_computing_latency_s: Optional[float] = None
    ad_power_w: float = calibration.AD_POWER_W
    vehicle_power_w: float = calibration.VEHICLE_POWER_W
    seed: int = 0


@dataclass
class DriveResult:
    """Outcome of one closed-loop drive."""

    final_state: VehicleState
    ops: OperationsLog
    latency: LatencyStats
    min_obstacle_clearance_m: float
    stopped: bool

    @property
    def collided(self) -> bool:
        return self.ops.collisions > 0


@dataclass
class _PendingCommand:
    apply_at_s: float
    command: ControlCommand


class SystemsOnAVehicle:
    """The full on-vehicle system in closed loop."""

    def __init__(
        self,
        world: World,
        lane_map: Optional[LaneMap] = None,
        initial_state: Optional[VehicleState] = None,
        config: Optional[SovConfig] = None,
        dataflow: Optional[SovDataflow] = None,
    ) -> None:
        self.world = world
        self.lane_map = lane_map or straight_corridor(length_m=200.0, n_lanes=1)
        self.config = config or SovConfig()
        self.state = initial_state or VehicleState(
            speed_mps=calibration.TYPICAL_SPEED_MPS
        )
        self.model = BicycleModel()
        self.planner = MpcPlanner(lane_map=self.lane_map, model=self.model)
        self.reactive = ReactivePath()
        self.can_bus = CanBus()
        self.ecu = EngineControlUnit()
        self.actuator = Actuator()
        self.battery = Battery()
        self.dataflow = dataflow or paper_dataflow()
        self._rng = np.random.default_rng(self.config.seed)
        self.latency = LatencyStats()
        self.ops = OperationsLog()
        self._pending: List[_PendingCommand] = []

    # -- perception surrogate -------------------------------------------------

    def _perceive(self) -> Tuple[List[TrackedObject], List[Obstacle]]:
        """Perception output: tracked agents and visible static obstacles.

        In the full system this comes from detection + radar tracking; in
        the closed loop we read the world within sensing range (perception
        accuracy is characterized separately in :mod:`repro.perception`).
        """
        objects = []
        obstacles = []
        for entity in self.world.entities_in_range(
            self.state.x_m, self.state.y_m, self.config.sensing_range_m
        ):
            if (
                self.config.vision_miss_prob > 0.0
                and self._rng.random() < self.config.vision_miss_prob
            ):
                continue  # a missed detection: the planner never sees it
            if isinstance(entity, Agent):
                objects.append(
                    TrackedObject(
                        object_id=entity.agent_id,
                        x_m=entity.x_m,
                        y_m=entity.y_m,
                        vx_mps=entity.vx_mps,
                        vy_mps=entity.vy_mps,
                        radius_m=entity.radius_m,
                        label=entity.kind,
                    )
                )
            else:
                obstacles.append(entity)
        return objects, obstacles

    def _forward_distance_m(self) -> Optional[float]:
        """Radar/sonar forward range for the reactive path."""
        hit = self.world.nearest_obstruction(
            self.state.x_m,
            self.state.y_m,
            self.state.heading_rad,
            fov_rad=math.radians(40.0),
        )
        return None if hit is None else hit[0]

    # -- control paths ---------------------------------------------------------

    def _proactive_tick(self, now_s: float) -> None:
        from ..planning.prediction import predict_constant_velocity

        objects, obstacles = self._perceive()
        predictions = predict_constant_velocity(
            objects, horizon_s=self.planner.horizon_s, dt_s=self.planner.dt_s
        ) if objects else []
        plan = self.planner.plan(
            self.state,
            predictions=predictions,
            static_obstacles=obstacles,
            now_s=now_s,
        )
        if self.config.fixed_computing_latency_s is not None:
            tcomp = self.config.fixed_computing_latency_s
            self.latency.record(tcomp)
        else:
            latencies, tcomp = self.dataflow.sample_iteration(self._rng)
            self.latency.record(
                tcomp,
                {
                    stage: self.dataflow.stage_latency(stage, latencies)
                    for stage in SovDataflow.STAGES
                },
            )
        # The command leaves the computing platform Tcomp after sensing.
        message = self.can_bus.send(plan.command, now_s + tcomp)
        self._pending.append(
            _PendingCommand(
                apply_at_s=self.actuator.ready_at(message.deliver_at_s),
                command=plan.command,
            )
        )
        self.ops.control_ticks += 1

    def _reactive_tick(self, now_s: float) -> None:
        decision = self.reactive.evaluate(self._forward_distance_m(), now_s)
        if decision.triggered and decision.command is not None:
            # Reactive signals enter the ECU directly; the 30 ms reactive
            # latency already covers sensing + transport (Sec. IV).
            self._pending.append(
                _PendingCommand(
                    apply_at_s=self.actuator.ready_at(
                        decision.command.timestamp_s
                    ),
                    command=decision.command,
                )
            )
            self.ops.reactive_overrides += 1

    # -- the loop ---------------------------------------------------------------

    def drive(self, duration_s: float) -> DriveResult:
        """Run the closed loop for *duration_s* of simulated time."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        cfg = self.config
        dt = cfg.sim_dt_s
        control_period = 1.0 / cfg.control_rate_hz
        reactive_period = 1.0 / cfg.reactive_rate_hz
        next_control = 0.0
        next_reactive = 0.0
        now = 0.0
        min_clearance = float("inf")
        steps = int(round(duration_s / dt))
        for _ in range(steps):
            if now >= next_control:
                self._proactive_tick(now)
                next_control += control_period
            if cfg.reactive_enabled and now >= next_reactive:
                self._reactive_tick(now)
                next_reactive += reactive_period
            # Deliver commands whose actuation time has come.
            due = [p for p in self._pending if p.apply_at_s <= now]
            self._pending = [p for p in self._pending if p.apply_at_s > now]
            for pending in sorted(due, key=lambda p: p.apply_at_s):
                self.ecu.receive(pending.command)
            command = self.ecu.active_command(now) or ControlCommand()
            previous = self.state
            self.state = self.model.step(self.state, command, dt)
            self.world.advance(dt)
            self.ops.distance_m += math.hypot(
                self.state.x_m - previous.x_m, self.state.y_m - previous.y_m
            )
            self.ops.energy_j += (
                cfg.vehicle_power_w + cfg.ad_power_w
            ) * dt
            self.battery.drain(cfg.vehicle_power_w + cfg.ad_power_w, dt)
            for obstacle in self.world.obstacles:
                clearance = obstacle.distance_to(self.state.x_m, self.state.y_m)
                min_clearance = min(min_clearance, clearance)
                if clearance <= 0.0:
                    self.ops.collisions += 1
            now += dt
        return DriveResult(
            final_state=self.state,
            ops=self.ops,
            latency=self.latency,
            min_obstacle_clearance_m=min_clearance,
            stopped=self.state.speed_mps < 0.05,
        )


def obstacle_ahead_scenario(
    object_distance_m: float,
    computing_latency_s: Optional[float] = None,
    reactive_enabled: bool = True,
    initial_speed_mps: float = calibration.TYPICAL_SPEED_MPS,
    seed: int = 0,
) -> SystemsOnAVehicle:
    """The Eq. 1 validation scenario: a single-lane corridor with an
    obstacle that is *object_distance_m* ahead when the drive starts.

    With a single lane the planner cannot swerve; the run measures whether
    the vehicle stops in time — the closed-loop counterpart of Fig. 3a.
    """
    if object_distance_m <= 0:
        raise ValueError("object distance must be positive")
    world = World(
        obstacles=[Obstacle(object_distance_m, 0.0, radius_m=0.4)]
    )
    config = SovConfig(
        fixed_computing_latency_s=computing_latency_s,
        reactive_enabled=reactive_enabled,
        seed=seed,
    )
    return SystemsOnAVehicle(
        world=world,
        lane_map=straight_corridor(length_m=300.0, n_lanes=1),
        initial_state=VehicleState(speed_mps=initial_speed_mps),
        config=config,
    )
