"""The closed-loop Systems-on-a-Vehicle (paper Sec. V).

Integrates everything: the world, perception surrogates, the MPC planner
(proactive path), the reactive path, the CAN bus, the ECU/actuator, the
vehicle dynamics, the battery, and the sampled computing-latency model.
The control loop runs at the paper's 10 Hz; each proactive command reaches
the actuator after ``Tcomp`` (sampled from the calibrated dataflow) +
``Tdata`` (CAN) + ``Tmech`` (actuator), so Eq. 1 plays out mechanically in
closed loop rather than analytically.

The loop is fault-aware (Sec. III-C): a :class:`FaultScenario` injects
sensor dropouts, CAN loss/delay bursts, perception crashes/stalls, and
GPS denial; a heartbeat/watchdog :class:`HealthMonitor` notices dead
modules and models supervised restarts; and a graceful-degradation state
machine (NOMINAL → DEGRADED → REACTIVE_ONLY → SAFE_STOP) shapes or
replaces the planner's commands each tick.  With no scenario attached the
fault machinery consumes no randomness and the loop behaves exactly as
the nominal model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import calibration
from ..observability.attribution import (
    AttributionTable,
    DeadlineMissAttributor,
)
from ..observability.metrics import (
    MetricsRegistry,
    registry_from_operations_log,
)
from ..observability.tracing import FrameTrace, Tracer
from ..planning.mpc import MpcPlanner
from ..planning.prediction import TrackedObject
from ..planning.reactive import ReactivePath
from ..robustness.degradation import (
    DegradationMode,
    DegradationPolicy,
    DegradationStateMachine,
    HealthInputs,
)
from ..robustness.faults import FaultHarness, FaultScenario
from ..robustness.health import HealthMonitor, HealthReport
from ..scene.lanes import LaneMap, straight_corridor
from ..scene.world import Agent, Obstacle, World
from ..vehicle.actuator import Actuator, EngineControlUnit
from ..vehicle.battery import Battery
from ..vehicle.dynamics import BicycleModel, ControlCommand, VehicleState
from .canbus import CanBus
from .dataflow import SovDataflow, paper_dataflow
from .shedding import LoadShedder, LoadShedPolicy, TickShed
from .telemetry import LatencyStats, OperationsLog

#: Latency of a degradation-supervisor fallback command: the supervisor
#: runs on the safety island next to the planner output stage, so only
#: a planning-scale delay applies before the frame enters the CAN bus.
_SUPERVISOR_LATENCY_S = 0.005

#: How long one observed CAN transmit error keeps the bus flagged lossy.
_CAN_DEGRADED_HOLD_S = 0.5


@dataclass
class SovConfig:
    """Closed-loop simulation parameters."""

    control_rate_hz: float = calibration.THROUGHPUT_REQUIREMENT_HZ
    reactive_rate_hz: float = 20.0
    sim_dt_s: float = 0.005
    sensing_range_m: float = 40.0
    reactive_enabled: bool = True
    #: Probability that the vision pipeline misses an entity on a given
    #: control tick (Sec. III-C safety scenario 2: "vision algorithms
    #: produce wrong results, e.g., missing an object").  The reactive
    #: path still sees it through radar/sonar.
    vision_miss_prob: float = 0.0
    fixed_computing_latency_s: Optional[float] = None
    ad_power_w: float = calibration.AD_POWER_W
    vehicle_power_w: float = calibration.VEHICLE_POWER_W
    seed: int = 0
    #: Declarative fault schedule for this drive (None: inject nothing).
    scenario: Optional[FaultScenario] = None
    #: Whether the degradation supervisor may shape/replace commands.
    #: Disabling it (together with ``reactive_enabled=False``) yields the
    #: unprotected baseline the fault campaign ablates against.
    degradation_enabled: bool = True
    degradation_policy: Optional[DegradationPolicy] = None
    #: Heartbeat watchdog timeout for on-vehicle modules.
    watchdog_timeout_s: float = 0.5
    #: Mean time-to-repair for supervised module restarts.
    mttr_mean_s: float = 0.8
    #: Whether HealthMonitor verdicts drive load shedding (fault-aware
    #: scheduling): degraded modes shed pipeline work instead of running
    #: the full dataflow behind a restart loop.
    load_shedding_enabled: bool = True
    #: Which work each degradation mode sheds (None: default policy).
    shed_policy: Optional[LoadShedPolicy] = None
    # -- observability (all opt-in: the disabled path allocates nothing,
    # consumes no randomness, and is bit-identical to the bare loop) ------
    #: Capture per-frame spans exportable as a Chrome/Perfetto trace.
    tracing_enabled: bool = False
    #: Attribute every Eq. 1 deadline miss to its dominant stage/fault.
    attribution_enabled: bool = False
    #: Tcomp budget for attribution (None: the paper's worst-case
    #: avoidance-range budget, ~0.74 s — see observability.attribution).
    deadline_budget_s: Optional[float] = None
    #: Publish per-tick latency histograms + operational counters into a
    #: MetricsRegistry snapshot on the DriveResult.
    metrics_enabled: bool = False


@dataclass
class DriveResult:
    """Outcome of one closed-loop drive."""

    final_state: VehicleState
    ops: OperationsLog
    latency: LatencyStats
    min_obstacle_clearance_m: float
    stopped: bool
    health: Optional[HealthReport] = None
    final_mode: str = DegradationMode.NOMINAL.name
    #: Wall-clock share of the drive spent in each degradation mode
    #: (sums to 1.0; the final open segment is flushed at drive end).
    mode_residency: Dict[str, float] = field(default_factory=dict)
    #: The drive's span tracer (None unless tracing was enabled); export
    #: with ``result.trace.export_json(path)`` and open in Perfetto.
    trace: Optional[Tracer] = None
    #: Deadline-miss attribution table (None unless attribution enabled).
    attribution: Optional[AttributionTable] = None
    #: Flat metrics snapshot (None unless metrics were enabled).
    metrics: Optional[Dict[str, float]] = None

    @property
    def collided(self) -> bool:
        return self.ops.collisions > 0

    @property
    def sheds_by_mode(self) -> Dict[str, int]:
        """Load-shedding counts per degradation mode (telemetry view)."""
        return dict(self.ops.sheds_by_mode)

    @property
    def entered_safe_stop(self) -> bool:
        return self.ops.mode_ticks.get(DegradationMode.SAFE_STOP.name, 0) > 0


@dataclass
class _PendingCommand:
    apply_at_s: float
    command: ControlCommand


@dataclass
class PlanRequest:
    """A proactive tick that reached the planner call.

    ``_proactive_pre`` runs everything *before* ``planner.plan`` (fault
    gating, shedding, perception, prediction) and returns one of these
    when a plan is actually needed; ``_proactive_post`` consumes the
    planner's command and runs everything after.  The scalar loop calls
    plan immediately in between; the batched stepper collects requests
    across N drives and answers them with one vectorized planning round.
    """

    now_s: float
    state: VehicleState
    predictions: List
    obstacles: List[Obstacle]
    shed: TickShed
    tick: int
    frame: Optional[FrameTrace]


class SystemsOnAVehicle:
    """The full on-vehicle system in closed loop."""

    def __init__(
        self,
        world: World,
        lane_map: Optional[LaneMap] = None,
        initial_state: Optional[VehicleState] = None,
        config: Optional[SovConfig] = None,
        dataflow: Optional[SovDataflow] = None,
    ) -> None:
        self.world = world
        self.lane_map = lane_map or straight_corridor(length_m=200.0, n_lanes=1)
        self.config = config or SovConfig()
        self.state = initial_state or VehicleState(
            speed_mps=calibration.TYPICAL_SPEED_MPS
        )
        self.model = BicycleModel()
        self.planner = MpcPlanner(lane_map=self.lane_map, model=self.model)
        self.reactive = ReactivePath()
        self.can_bus = CanBus()
        self.ecu = EngineControlUnit()
        self.actuator = Actuator()
        self.battery = Battery()
        self.dataflow = dataflow or paper_dataflow()
        self._rng = np.random.default_rng(self.config.seed)
        self.latency = LatencyStats()
        self.ops = OperationsLog()
        self._pending: List[_PendingCommand] = []
        # -- robustness stack -------------------------------------------------
        self.harness = FaultHarness(self.config.scenario, seed=self.config.seed)
        self.health = HealthMonitor(
            default_timeout_s=self.config.watchdog_timeout_s,
            mttr_mean_s=self.config.mttr_mean_s,
            seed=self.config.seed,
        )
        self.health.register("perception")
        self.health.register("planning")
        if self.config.reactive_enabled:
            self.health.register("radar")
        self.degradation = DegradationStateMachine(
            self.config.degradation_policy
        )
        self.shedder = LoadShedder(self.config.shed_policy)
        self._cached_perception: Optional[
            Tuple[List[TrackedObject], List[Obstacle]]
        ] = None
        self._can_drops_seen = 0
        self._can_degraded_until_s = -math.inf
        # -- observability (opt-in; never consumes randomness) ----------------
        self.tracer: Optional[Tracer] = (
            Tracer() if self.config.tracing_enabled else None
        )
        self.attributor: Optional[DeadlineMissAttributor] = (
            DeadlineMissAttributor(self.config.deadline_budget_s)
            if self.config.attribution_enabled
            else None
        )
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if self.config.metrics_enabled else None
        )
        self.can_bus.tracer = self.tracer

    def attach_tracer(self, tracer: Optional[Tracer]) -> None:
        """Attach (or detach) a span tracer after construction.

        Tracing only reads simulated timestamps the loop already computes,
        so attaching a tracer never perturbs a seeded drive — the
        bench-gate CLI relies on this to export a Perfetto trace of the
        exact run it gates.
        """
        self.tracer = tracer
        self.can_bus.tracer = tracer

    def enable_attribution(self, budget_s: Optional[float] = None) -> None:
        """Turn on deadline-miss attribution after construction.

        *budget_s* overrides the config's budget (None keeps it, which
        itself defaults to the Eq. 1 worst-case avoidance budget).  Like
        tracing, attribution is RNG-free and cannot perturb the drive.
        """
        self.attributor = DeadlineMissAttributor(
            budget_s if budget_s is not None else self.config.deadline_budget_s
        )

    def enable_metrics(self) -> None:
        """Turn on the metrics registry after construction (RNG-free)."""
        self.metrics = MetricsRegistry()

    # -- perception surrogate -------------------------------------------------

    def _perceive(self, now_s: float) -> Tuple[List[TrackedObject], List[Obstacle]]:
        """Perception output: tracked agents and visible static obstacles.

        In the full system this comes from detection + radar tracking; in
        the closed loop we read the world within sensing range (perception
        accuracy is characterized separately in :mod:`repro.perception`).
        A camera dropout fault blinds this path entirely — and silently:
        the perception task keeps heartbeating on empty frames.
        """
        objects: List[TrackedObject] = []
        obstacles: List[Obstacle] = []
        if self.harness.vision_blinded(now_s):
            return objects, obstacles
        for entity in self.world.entities_in_range(
            self.state.x_m, self.state.y_m, self.config.sensing_range_m
        ):
            if (
                self.config.vision_miss_prob > 0.0
                and self._rng.random() < self.config.vision_miss_prob
            ):
                continue  # a missed detection: the planner never sees it
            if isinstance(entity, Agent):
                objects.append(
                    TrackedObject(
                        object_id=entity.agent_id,
                        x_m=entity.x_m,
                        y_m=entity.y_m,
                        vx_mps=entity.vx_mps,
                        vy_mps=entity.vy_mps,
                        radius_m=entity.radius_m,
                        label=entity.kind,
                    )
                )
            else:
                obstacles.append(entity)
        return objects, obstacles

    def _forward_distance_m(self) -> Optional[float]:
        """Radar/sonar forward range for the reactive path."""
        hit = self.world.nearest_obstruction(
            self.state.x_m,
            self.state.y_m,
            self.state.heading_rad,
            fov_rad=math.radians(40.0),
        )
        return None if hit is None else hit[0]

    # -- supervision ------------------------------------------------------------

    def _supervise(self, now_s: float) -> None:
        """Advance the watchdog and the degradation state machine."""
        self.health.check(now_s)
        if self.can_bus.frames_dropped > self._can_drops_seen:
            self._can_drops_seen = self.can_bus.frames_dropped
            self._can_degraded_until_s = now_s + _CAN_DEGRADED_HOLD_S
        if not self.config.degradation_enabled:
            return
        inputs = HealthInputs(
            perception_up=self.health.is_up("perception"),
            planning_up=self.health.is_up("planning"),
            radar_up=(
                self.health.is_up("radar")
                if self.config.reactive_enabled
                else True
            ),
            gps_ok=not self.harness.gps_denied(now_s),
            can_ok=now_s >= self._can_degraded_until_s,
        )
        self.degradation.update(now_s, inputs)

    def _shadow_stalled(self, now_s: float) -> bool:
        """Whether an injected stall would blow the watchdog deadline
        even when the module's output is not driving (shadow execution)."""
        stall = sum(
            f.extra_latency_s
            for f in self.harness.scenario.active("perception_stall", now_s)
        )
        return stall > self.config.watchdog_timeout_s

    # -- control paths ---------------------------------------------------------

    def _send_command(
        self,
        command: ControlCommand,
        leave_at_s: float,
        arbitration_id: Optional[int] = None,
    ) -> None:
        """Ship a command over the (possibly faulty) CAN bus to the ECU."""
        self.can_bus.set_fault(
            self.harness.can_fault(leave_at_s), self.harness.can_rng()
        )
        if (
            arbitration_id is not None
            and arbitration_id < CanBus.PRIORITY_NORMAL
        ):
            self.ops.can_priority_sends += 1
        message = self.can_bus.send(
            command, leave_at_s, arbitration_id=arbitration_id
        )
        if message.dropped:
            self.ops.can_frames_dropped += 1
            if self.tracer is not None:
                self.tracer.instant("can_drop", "canbus", leave_at_s)
            return
        apply_at_s = self.actuator.ready_at(message.deliver_at_s)
        if self.tracer is not None:
            lane = self.tracer.lane(
                "actuation", message.deliver_at_s, apply_at_s
            )
            self.tracer.record(
                "actuate",
                lane,
                message.deliver_at_s,
                apply_at_s,
                steer_rad=command.steer_rad,
                accel_mps2=command.accel_mps2,
            )
        self._pending.append(
            _PendingCommand(
                apply_at_s=apply_at_s,
                command=command,
            )
        )

    def _proactive_tick(self, now_s: float) -> None:
        request = self._proactive_pre(now_s)
        if request is None:
            return
        plan = self.planner.plan(
            request.state,
            predictions=request.predictions,
            static_obstacles=request.obstacles,
            now_s=now_s,
        )
        self._proactive_post(request, plan.command)

    def _proactive_pre(self, now_s: float) -> Optional[PlanRequest]:
        """Everything before the planner call; None when no plan is needed
        this tick (the fallback / skip paths complete inline)."""
        from ..planning.prediction import predict_constant_velocity

        cfg = self.config
        tick = self.ops.control_ticks
        self.ops.control_ticks += 1
        tracer = self.tracer
        frame = (
            tracer.begin_frame(tick, now_s) if tracer is not None else None
        )
        perception_runs = self.health.is_up("perception") and not (
            self.harness.perception_crashed(now_s)
        )
        shed = TickShed()
        if cfg.degradation_enabled and cfg.load_shedding_enabled:
            shed = self.shedder.plan(
                self.degradation.mode, self.ops.control_ticks
            )
        if cfg.degradation_enabled and not self.degradation.proactive_allowed:
            # Supervisor drives.  With load shedding the pipeline is
            # bypassed outright — its tasks are shed, not executed behind
            # a restart loop — but healthy modules keep heartbeating so
            # recovery detection still works; without shedding the
            # pipeline (if alive) runs in shadow.
            if shed.bypass_pipeline:
                self.ops.record_sheds(
                    self.degradation.mode.name, sorted(shed.skip_tasks)
                )
                self.shedder.account(self.degradation.mode, shed)
            if perception_runs and not self._shadow_stalled(now_s):
                self.health.beat("perception", now_s)
                self.health.beat("planning", now_s)
            command = self.degradation.fallback_command(
                now_s, self.state.speed_mps
            )
            # Safety-critical frame: wins CAN arbitration over any queued
            # backlog of stale proactive traffic.
            if tracer is not None:
                tracer.record(
                    "supervisor_fallback",
                    "supervisor",
                    now_s,
                    now_s + _SUPERVISOR_LATENCY_S,
                    mode=self.degradation.mode.name,
                )
            self._send_command(
                command,
                now_s + _SUPERVISOR_LATENCY_S,
                arbitration_id=shed.can_arbitration_id,
            )
            self.ops.fallback_commands += 1
            return None
        if not perception_runs:
            # Crashed or awaiting restart: no plan leaves the platform and
            # no heartbeat reaches the watchdog this tick.
            self.ops.proactive_skips += 1
            if tracer is not None:
                tracer.instant(
                    "proactive_skip",
                    "supervisor",
                    now_s,
                    reason="perception_down",
                )
            return None
        if shed.reuse_cached_perception and self._cached_perception is not None:
            # Detection cadence dropped this tick: the planner consumes
            # the previous tick's perception output.
            objects, obstacles = self._cached_perception
        else:
            objects, obstacles = self._perceive(now_s)
            self._cached_perception = (objects, obstacles)
        predictions = predict_constant_velocity(
            objects, horizon_s=self.planner.horizon_s, dt_s=self.planner.dt_s
        ) if objects else []
        return PlanRequest(
            now_s=now_s,
            state=self.state,
            predictions=predictions,
            obstacles=obstacles,
            shed=shed,
            tick=tick,
            frame=frame,
        )

    def _proactive_post(
        self, request: PlanRequest, command: ControlCommand
    ) -> None:
        """Everything after the planner call: shedding bookkeeping, latency
        sampling, observability, heartbeats, command shaping and send."""
        cfg = self.config
        now_s = request.now_s
        shed = request.shed
        if shed.skip_tasks:
            self.ops.record_sheds(
                self.degradation.mode.name, sorted(shed.skip_tasks)
            )
            self.shedder.account(self.degradation.mode, shed)
        overhead_s = self.harness.perception_overhead_s(now_s)
        latencies: Optional[Dict[str, float]] = None
        if cfg.fixed_computing_latency_s is not None:
            tcomp = cfg.fixed_computing_latency_s + overhead_s
            self.latency.record(tcomp)
        else:
            latencies, tcomp = self.dataflow.sample_iteration(
                self._rng, skip=shed.skip_tasks or None
            )
            tcomp += overhead_s
            self.latency.record(
                tcomp,
                {
                    stage: self.dataflow.stage_latency(stage, latencies)
                    for stage in SovDataflow.STAGES
                },
            )
        self._observe_iteration(
            request.tick, now_s, tcomp, overhead_s, latencies, shed,
            request.frame,
        )
        # A heartbeat marks a completed-in-time iteration; an injected
        # stall beyond the watchdog deadline loses it (the stall *is* the
        # missed deadline).  The calibrated latency tail is within spec.
        if overhead_s <= cfg.watchdog_timeout_s:
            self.health.beat("perception", now_s)
            self.health.beat("planning", now_s)
        if cfg.degradation_enabled:
            command = self.degradation.shape_command(
                command, self.state.speed_mps
            )
        # The command leaves the computing platform Tcomp after sensing.
        self._send_command(command, now_s + tcomp)

    def _observe_iteration(
        self,
        tick: int,
        now_s: float,
        tcomp: float,
        overhead_s: float,
        latencies: Optional[Dict[str, float]],
        shed: TickShed,
        frame: Optional[FrameTrace],
    ) -> None:
        """Publish one pipeline iteration to the attached observability.

        Pure bookkeeping over values the tick already computed: no RNG
        draws, and with everything disabled the call is two ``None``
        checks — measured <5 % overhead by the tracing benchmark.
        """
        tracer = self.tracer
        missed = None
        if self.attributor is not None:
            critical = (
                self.dataflow.critical_path(latencies)[0]
                if latencies is not None
                else []
            )
            missed = self.attributor.observe(
                tick=tick,
                now_s=now_s,
                total_s=tcomp,
                critical_path=critical,
                task_latencies=latencies,
                fault_overhead_s=overhead_s,
                fault_kinds=self.harness.active_kinds(now_s),
                mode=self.degradation.mode.name,
                shed_tasks=sorted(shed.skip_tasks),
            )
        if self.metrics is not None:
            self.metrics.histogram(
                "tcomp_s", help="end-to-end computing latency per tick"
            ).observe(tcomp)
            if overhead_s > 0.0:
                self.metrics.histogram(
                    "fault_overhead_s", help="injected latency per tick"
                ).observe(overhead_s)
        if tracer is None:
            return
        # Pipelined ticks overlap in time (164 ms mean vs the 100 ms
        # period); the lane allocator spreads them over pipeline.N tracks
        # so each track stays strictly sequential in the exported trace.
        lane = tracer.lane("pipeline", now_s, now_s + tcomp)
        with tracer.span(
            "control_tick",
            lane,
            now_s,
            tick=tick,
            mode=self.degradation.mode.name,
        ) as tick_span:
            if latencies is not None:
                schedule = self.dataflow.iteration_schedule(latencies)
                for name in sorted(schedule, key=lambda n: schedule[n][0]):
                    if name in shed.skip_tasks:
                        continue  # shed: the task never ran this tick
                    start, end = schedule[name]
                    task_lane = tracer.lane(
                        f"{lane}:tasks", now_s + start, now_s + end
                    )
                    tracer.record(
                        name,
                        task_lane,
                        now_s + start,
                        now_s + end,
                        stage=self.dataflow.task(name).stage,
                    )
            if overhead_s > 0.0:
                tracer.record(
                    "fault_overhead",
                    lane,
                    now_s + tcomp - overhead_s,
                    now_s + tcomp,
                )
            tick_span.annotate(tcomp_s=tcomp)
            tick_span.finish(now_s + tcomp)
        if frame is not None:
            frame.total_latency_s = tcomp
            if self.attributor is not None:
                frame.budget_s = self.attributor.budget_s
                if missed is not None:
                    frame.deadline_missed = True
                    tracer.instant(
                        "deadline_miss",
                        "supervisor",
                        now_s,
                        tick=tick,
                        overrun_s=missed.overrun_s,
                        dominant_stage=missed.dominant_stage,
                    )

    def _reactive_tick(self, now_s: float) -> None:
        reading = self.harness.radar_reading(self._forward_distance_m(), now_s)
        if reading is not None:
            # What the reactive path actually saw (post-fault): the
            # engagement invariant compares this against the threshold.
            self.ops.min_forward_range_m = min(
                self.ops.min_forward_range_m, reading
            )
        if not self.harness.sensor_faulted("radar", now_s):
            self.health.beat("radar", now_s)
        decision = self.reactive.evaluate(
            reading, now_s, speed_mps=self.state.speed_mps
        )
        if decision.command is not None:
            # Reactive signals enter the ECU directly; the 30 ms reactive
            # latency already covers sensing + transport (Sec. IV).
            apply_at_s = self.actuator.ready_at(decision.command.timestamp_s)
            if self.tracer is not None:
                lane = self.tracer.lane("reactive", now_s, apply_at_s)
                self.tracer.record(
                    "reactive_brake" if decision.triggered else "reactive_hold",
                    lane,
                    now_s,
                    apply_at_s,
                    triggered=decision.triggered,
                )
            self._pending.append(
                _PendingCommand(
                    apply_at_s=apply_at_s,
                    command=decision.command,
                )
            )
            if decision.triggered:
                self.ops.reactive_overrides += 1
            elif decision.held:
                self.ops.reactive_holds += 1

    # -- the loop ---------------------------------------------------------------

    def drive(self, duration_s: float) -> DriveResult:
        """Run the closed loop for *duration_s* of simulated time."""
        loop = DriveLoop(self, duration_s)
        while not loop.done:
            request = loop.begin_step()
            if request is not None:
                plan = self.planner.plan(
                    request.state,
                    predictions=request.predictions,
                    static_obstacles=request.obstacles,
                    now_s=request.now_s,
                )
                self._proactive_post(request, plan.command)
            loop.finish_step()
        return loop.finalize()


class DriveLoop:
    """One drive's simulation loop, steppable from the outside.

    ``drive()`` runs it to completion inline; the batched stepper
    (:mod:`repro.runtime.batched`) holds one ``DriveLoop`` per concurrent
    drive and advances them in lockstep, answering each step's
    :class:`PlanRequest` (if any) from a vectorized planning round.  The
    step decomposition is exactly the body of the original monolithic
    loop, so interleaving *between* drives cannot change any single
    drive's arithmetic.
    """

    def __init__(self, sov: SystemsOnAVehicle, duration_s: float) -> None:
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        self.sov = sov
        cfg = sov.config
        self._dt = cfg.sim_dt_s
        self._control_period = 1.0 / cfg.control_rate_hz
        self._reactive_period = 1.0 / cfg.reactive_rate_hz
        self._next_control = 0.0
        self._next_reactive = 0.0
        self.now = 0.0
        self._min_clearance = float("inf")
        self._steps_left = int(round(duration_s / self._dt))

    @property
    def done(self) -> bool:
        return self._steps_left <= 0

    def begin_step(self) -> Optional[PlanRequest]:
        """Supervision + the pre-planner half of a due proactive tick."""
        request: Optional[PlanRequest] = None
        if self.now >= self._next_control:
            self.sov._supervise(self.now)
            request = self.sov._proactive_pre(self.now)
            self._next_control += self._control_period
        return request

    def finish_step(self) -> None:
        """Reactive path, command delivery, physics, and bookkeeping."""
        sov = self.sov
        cfg = sov.config
        now = self.now
        dt = self._dt
        if cfg.reactive_enabled and now >= self._next_reactive:
            sov._reactive_tick(now)
            self._next_reactive += self._reactive_period
        # Deliver commands whose actuation time has come.
        due = [p for p in sov._pending if p.apply_at_s <= now]
        sov._pending = [p for p in sov._pending if p.apply_at_s > now]
        for pending in sorted(due, key=lambda p: p.apply_at_s):
            sov.ecu.receive(pending.command)
        command = sov.ecu.active_command(now) or ControlCommand()
        if sov.harness.scenario.faults:
            # An actuator-level steering bias (Sec. III-C lateral
            # fault) corrupts the command *after* the ECU: neither the
            # planner nor the reactive path sees it coming.
            bias = sov.harness.steering_bias_rad(now)
            if bias != 0.0:
                command = replace(
                    command, steer_rad=command.steer_rad + bias
                )
        previous = sov.state
        sov.state = sov.model.step(sov.state, command, dt)
        sov.world.advance(dt)
        sov.ops.distance_m += math.hypot(
            sov.state.x_m - previous.x_m, sov.state.y_m - previous.y_m
        )
        sov.ops.energy_j += (
            cfg.vehicle_power_w + cfg.ad_power_w
        ) * dt
        sov.battery.drain(cfg.vehicle_power_w + cfg.ad_power_w, dt)
        for obstacle in sov.world.obstacles:
            clearance = obstacle.distance_to(sov.state.x_m, sov.state.y_m)
            self._min_clearance = min(self._min_clearance, clearance)
            if clearance <= 0.0:
                sov.ops.collisions += 1
        self.now = now + dt
        self._steps_left -= 1

    def finalize(self) -> DriveResult:
        """Flush end-of-drive state and assemble the :class:`DriveResult`."""
        sov = self.sov
        now = self.now
        sov.ops.faults_injected = dict(sov.harness.injections)
        sov.ops.mode_ticks = dict(sov.degradation.mode_ticks)
        # Flush the open residency segment (a drive ending mid-transition
        # would otherwise lose it and the fractions would not sum to 1).
        sov.degradation.finalize(now)
        attribution: Optional[AttributionTable] = None
        if sov.attributor is not None:
            attribution = sov.attributor.table
            attribution.check_consistency()
        metrics_snapshot: Optional[Dict[str, float]] = None
        if sov.metrics is not None:
            # One flat view: the ops-log mirror plus the streaming
            # histograms the loop populated tick by tick.
            metrics_snapshot = registry_from_operations_log(
                sov.ops
            ).snapshot()
            metrics_snapshot.update(sov.metrics.snapshot())
        return DriveResult(
            final_state=sov.state,
            ops=sov.ops,
            latency=sov.latency,
            min_obstacle_clearance_m=self._min_clearance,
            stopped=sov.state.speed_mps < 0.05,
            health=sov.health.report(elapsed_s=now),
            final_mode=sov.degradation.mode.name,
            mode_residency=sov.degradation.residency_fractions(),
            trace=sov.tracer,
            attribution=attribution,
            metrics=metrics_snapshot,
        )


def obstacle_ahead_scenario(
    object_distance_m: float,
    computing_latency_s: Optional[float] = None,
    reactive_enabled: bool = True,
    initial_speed_mps: float = calibration.TYPICAL_SPEED_MPS,
    seed: int = 0,
    fault_scenario: Optional[FaultScenario] = None,
    degradation_enabled: bool = True,
) -> SystemsOnAVehicle:
    """The Eq. 1 validation scenario: a single-lane corridor with an
    obstacle that is *object_distance_m* ahead when the drive starts.

    With a single lane the planner cannot swerve; the run measures whether
    the vehicle stops in time — the closed-loop counterpart of Fig. 3a.
    An optional *fault_scenario* turns the same corridor into a safety
    drill (the fault-campaign study builds on this).
    """
    if object_distance_m <= 0:
        raise ValueError("object distance must be positive")
    world = World(
        obstacles=[Obstacle(object_distance_m, 0.0, radius_m=0.4)]
    )
    config = SovConfig(
        fixed_computing_latency_s=computing_latency_s,
        reactive_enabled=reactive_enabled,
        seed=seed,
        scenario=fault_scenario,
        degradation_enabled=degradation_enabled,
    )
    return SystemsOnAVehicle(
        world=world,
        lane_map=straight_corridor(length_m=300.0, n_lanes=1),
        initial_state=VehicleState(speed_mps=initial_speed_mps),
        config=config,
    )
