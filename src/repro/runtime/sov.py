"""The closed-loop Systems-on-a-Vehicle (paper Sec. V).

Integrates everything: the world, perception surrogates, the MPC planner
(proactive path), the reactive path, the CAN bus, the ECU/actuator, the
vehicle dynamics, the battery, and the sampled computing-latency model.
The control loop runs at the paper's 10 Hz; each proactive command reaches
the actuator after ``Tcomp`` (sampled from the calibrated dataflow) +
``Tdata`` (CAN) + ``Tmech`` (actuator), so Eq. 1 plays out mechanically in
closed loop rather than analytically.

The loop is fault-aware (Sec. III-C): a :class:`FaultScenario` injects
sensor dropouts, CAN loss/delay bursts, perception crashes/stalls, and
GPS denial; a heartbeat/watchdog :class:`HealthMonitor` notices dead
modules and models supervised restarts; and a graceful-degradation state
machine (NOMINAL → DEGRADED → REACTIVE_ONLY → SAFE_STOP) shapes or
replaces the planner's commands each tick.  With no scenario attached the
fault machinery consumes no randomness and the loop behaves exactly as
the nominal model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import calibration
from ..planning.mpc import MpcPlanner
from ..planning.prediction import TrackedObject
from ..planning.reactive import ReactivePath
from ..robustness.degradation import (
    DegradationMode,
    DegradationPolicy,
    DegradationStateMachine,
    HealthInputs,
)
from ..robustness.faults import FaultHarness, FaultScenario
from ..robustness.health import HealthMonitor, HealthReport
from ..scene.lanes import LaneMap, straight_corridor
from ..scene.world import Agent, Obstacle, World
from ..vehicle.actuator import Actuator, EngineControlUnit
from ..vehicle.battery import Battery
from ..vehicle.dynamics import BicycleModel, ControlCommand, VehicleState
from .canbus import CanBus
from .dataflow import SovDataflow, paper_dataflow
from .shedding import LoadShedder, LoadShedPolicy, TickShed
from .telemetry import LatencyStats, OperationsLog

#: Latency of a degradation-supervisor fallback command: the supervisor
#: runs on the safety island next to the planner output stage, so only
#: a planning-scale delay applies before the frame enters the CAN bus.
_SUPERVISOR_LATENCY_S = 0.005

#: How long one observed CAN transmit error keeps the bus flagged lossy.
_CAN_DEGRADED_HOLD_S = 0.5


@dataclass
class SovConfig:
    """Closed-loop simulation parameters."""

    control_rate_hz: float = calibration.THROUGHPUT_REQUIREMENT_HZ
    reactive_rate_hz: float = 20.0
    sim_dt_s: float = 0.005
    sensing_range_m: float = 40.0
    reactive_enabled: bool = True
    #: Probability that the vision pipeline misses an entity on a given
    #: control tick (Sec. III-C safety scenario 2: "vision algorithms
    #: produce wrong results, e.g., missing an object").  The reactive
    #: path still sees it through radar/sonar.
    vision_miss_prob: float = 0.0
    fixed_computing_latency_s: Optional[float] = None
    ad_power_w: float = calibration.AD_POWER_W
    vehicle_power_w: float = calibration.VEHICLE_POWER_W
    seed: int = 0
    #: Declarative fault schedule for this drive (None: inject nothing).
    scenario: Optional[FaultScenario] = None
    #: Whether the degradation supervisor may shape/replace commands.
    #: Disabling it (together with ``reactive_enabled=False``) yields the
    #: unprotected baseline the fault campaign ablates against.
    degradation_enabled: bool = True
    degradation_policy: Optional[DegradationPolicy] = None
    #: Heartbeat watchdog timeout for on-vehicle modules.
    watchdog_timeout_s: float = 0.5
    #: Mean time-to-repair for supervised module restarts.
    mttr_mean_s: float = 0.8
    #: Whether HealthMonitor verdicts drive load shedding (fault-aware
    #: scheduling): degraded modes shed pipeline work instead of running
    #: the full dataflow behind a restart loop.
    load_shedding_enabled: bool = True
    #: Which work each degradation mode sheds (None: default policy).
    shed_policy: Optional[LoadShedPolicy] = None


@dataclass
class DriveResult:
    """Outcome of one closed-loop drive."""

    final_state: VehicleState
    ops: OperationsLog
    latency: LatencyStats
    min_obstacle_clearance_m: float
    stopped: bool
    health: Optional[HealthReport] = None
    final_mode: str = DegradationMode.NOMINAL.name
    #: Wall-clock share of the drive spent in each degradation mode
    #: (sums to 1.0; the final open segment is flushed at drive end).
    mode_residency: Dict[str, float] = field(default_factory=dict)

    @property
    def collided(self) -> bool:
        return self.ops.collisions > 0

    @property
    def sheds_by_mode(self) -> Dict[str, int]:
        """Load-shedding counts per degradation mode (telemetry view)."""
        return dict(self.ops.sheds_by_mode)

    @property
    def entered_safe_stop(self) -> bool:
        return self.ops.mode_ticks.get(DegradationMode.SAFE_STOP.name, 0) > 0


@dataclass
class _PendingCommand:
    apply_at_s: float
    command: ControlCommand


class SystemsOnAVehicle:
    """The full on-vehicle system in closed loop."""

    def __init__(
        self,
        world: World,
        lane_map: Optional[LaneMap] = None,
        initial_state: Optional[VehicleState] = None,
        config: Optional[SovConfig] = None,
        dataflow: Optional[SovDataflow] = None,
    ) -> None:
        self.world = world
        self.lane_map = lane_map or straight_corridor(length_m=200.0, n_lanes=1)
        self.config = config or SovConfig()
        self.state = initial_state or VehicleState(
            speed_mps=calibration.TYPICAL_SPEED_MPS
        )
        self.model = BicycleModel()
        self.planner = MpcPlanner(lane_map=self.lane_map, model=self.model)
        self.reactive = ReactivePath()
        self.can_bus = CanBus()
        self.ecu = EngineControlUnit()
        self.actuator = Actuator()
        self.battery = Battery()
        self.dataflow = dataflow or paper_dataflow()
        self._rng = np.random.default_rng(self.config.seed)
        self.latency = LatencyStats()
        self.ops = OperationsLog()
        self._pending: List[_PendingCommand] = []
        # -- robustness stack -------------------------------------------------
        self.harness = FaultHarness(self.config.scenario, seed=self.config.seed)
        self.health = HealthMonitor(
            default_timeout_s=self.config.watchdog_timeout_s,
            mttr_mean_s=self.config.mttr_mean_s,
            seed=self.config.seed,
        )
        self.health.register("perception")
        self.health.register("planning")
        if self.config.reactive_enabled:
            self.health.register("radar")
        self.degradation = DegradationStateMachine(
            self.config.degradation_policy
        )
        self.shedder = LoadShedder(self.config.shed_policy)
        self._cached_perception: Optional[
            Tuple[List[TrackedObject], List[Obstacle]]
        ] = None
        self._can_drops_seen = 0
        self._can_degraded_until_s = -math.inf

    # -- perception surrogate -------------------------------------------------

    def _perceive(self, now_s: float) -> Tuple[List[TrackedObject], List[Obstacle]]:
        """Perception output: tracked agents and visible static obstacles.

        In the full system this comes from detection + radar tracking; in
        the closed loop we read the world within sensing range (perception
        accuracy is characterized separately in :mod:`repro.perception`).
        A camera dropout fault blinds this path entirely — and silently:
        the perception task keeps heartbeating on empty frames.
        """
        objects: List[TrackedObject] = []
        obstacles: List[Obstacle] = []
        if self.harness.vision_blinded(now_s):
            return objects, obstacles
        for entity in self.world.entities_in_range(
            self.state.x_m, self.state.y_m, self.config.sensing_range_m
        ):
            if (
                self.config.vision_miss_prob > 0.0
                and self._rng.random() < self.config.vision_miss_prob
            ):
                continue  # a missed detection: the planner never sees it
            if isinstance(entity, Agent):
                objects.append(
                    TrackedObject(
                        object_id=entity.agent_id,
                        x_m=entity.x_m,
                        y_m=entity.y_m,
                        vx_mps=entity.vx_mps,
                        vy_mps=entity.vy_mps,
                        radius_m=entity.radius_m,
                        label=entity.kind,
                    )
                )
            else:
                obstacles.append(entity)
        return objects, obstacles

    def _forward_distance_m(self) -> Optional[float]:
        """Radar/sonar forward range for the reactive path."""
        hit = self.world.nearest_obstruction(
            self.state.x_m,
            self.state.y_m,
            self.state.heading_rad,
            fov_rad=math.radians(40.0),
        )
        return None if hit is None else hit[0]

    # -- supervision ------------------------------------------------------------

    def _supervise(self, now_s: float) -> None:
        """Advance the watchdog and the degradation state machine."""
        self.health.check(now_s)
        if self.can_bus.frames_dropped > self._can_drops_seen:
            self._can_drops_seen = self.can_bus.frames_dropped
            self._can_degraded_until_s = now_s + _CAN_DEGRADED_HOLD_S
        if not self.config.degradation_enabled:
            return
        inputs = HealthInputs(
            perception_up=self.health.is_up("perception"),
            planning_up=self.health.is_up("planning"),
            radar_up=(
                self.health.is_up("radar")
                if self.config.reactive_enabled
                else True
            ),
            gps_ok=not self.harness.gps_denied(now_s),
            can_ok=now_s >= self._can_degraded_until_s,
        )
        self.degradation.update(now_s, inputs)

    def _shadow_stalled(self, now_s: float) -> bool:
        """Whether an injected stall would blow the watchdog deadline
        even when the module's output is not driving (shadow execution)."""
        stall = sum(
            f.extra_latency_s
            for f in self.harness.scenario.active("perception_stall", now_s)
        )
        return stall > self.config.watchdog_timeout_s

    # -- control paths ---------------------------------------------------------

    def _send_command(
        self,
        command: ControlCommand,
        leave_at_s: float,
        arbitration_id: Optional[int] = None,
    ) -> None:
        """Ship a command over the (possibly faulty) CAN bus to the ECU."""
        self.can_bus.set_fault(
            self.harness.can_fault(leave_at_s), self.harness.can_rng()
        )
        if (
            arbitration_id is not None
            and arbitration_id < CanBus.PRIORITY_NORMAL
        ):
            self.ops.can_priority_sends += 1
        message = self.can_bus.send(
            command, leave_at_s, arbitration_id=arbitration_id
        )
        if message.dropped:
            self.ops.can_frames_dropped += 1
            return
        self._pending.append(
            _PendingCommand(
                apply_at_s=self.actuator.ready_at(message.deliver_at_s),
                command=command,
            )
        )

    def _proactive_tick(self, now_s: float) -> None:
        from ..planning.prediction import predict_constant_velocity

        cfg = self.config
        self.ops.control_ticks += 1
        perception_runs = self.health.is_up("perception") and not (
            self.harness.perception_crashed(now_s)
        )
        shed = TickShed()
        if cfg.degradation_enabled and cfg.load_shedding_enabled:
            shed = self.shedder.plan(
                self.degradation.mode, self.ops.control_ticks
            )
        if cfg.degradation_enabled and not self.degradation.proactive_allowed:
            # Supervisor drives.  With load shedding the pipeline is
            # bypassed outright — its tasks are shed, not executed behind
            # a restart loop — but healthy modules keep heartbeating so
            # recovery detection still works; without shedding the
            # pipeline (if alive) runs in shadow.
            if shed.bypass_pipeline:
                self.ops.record_sheds(
                    self.degradation.mode.name, sorted(shed.skip_tasks)
                )
                self.shedder.account(self.degradation.mode, shed)
            if perception_runs and not self._shadow_stalled(now_s):
                self.health.beat("perception", now_s)
                self.health.beat("planning", now_s)
            command = self.degradation.fallback_command(
                now_s, self.state.speed_mps
            )
            # Safety-critical frame: wins CAN arbitration over any queued
            # backlog of stale proactive traffic.
            self._send_command(
                command,
                now_s + _SUPERVISOR_LATENCY_S,
                arbitration_id=shed.can_arbitration_id,
            )
            self.ops.fallback_commands += 1
            return
        if not perception_runs:
            # Crashed or awaiting restart: no plan leaves the platform and
            # no heartbeat reaches the watchdog this tick.
            self.ops.proactive_skips += 1
            return
        if shed.reuse_cached_perception and self._cached_perception is not None:
            # Detection cadence dropped this tick: the planner consumes
            # the previous tick's perception output.
            objects, obstacles = self._cached_perception
        else:
            objects, obstacles = self._perceive(now_s)
            self._cached_perception = (objects, obstacles)
        predictions = predict_constant_velocity(
            objects, horizon_s=self.planner.horizon_s, dt_s=self.planner.dt_s
        ) if objects else []
        plan = self.planner.plan(
            self.state,
            predictions=predictions,
            static_obstacles=obstacles,
            now_s=now_s,
        )
        if shed.skip_tasks:
            self.ops.record_sheds(
                self.degradation.mode.name, sorted(shed.skip_tasks)
            )
            self.shedder.account(self.degradation.mode, shed)
        overhead_s = self.harness.perception_overhead_s(now_s)
        if cfg.fixed_computing_latency_s is not None:
            tcomp = cfg.fixed_computing_latency_s + overhead_s
            self.latency.record(tcomp)
        else:
            latencies, tcomp = self.dataflow.sample_iteration(
                self._rng, skip=shed.skip_tasks or None
            )
            tcomp += overhead_s
            self.latency.record(
                tcomp,
                {
                    stage: self.dataflow.stage_latency(stage, latencies)
                    for stage in SovDataflow.STAGES
                },
            )
        # A heartbeat marks a completed-in-time iteration; an injected
        # stall beyond the watchdog deadline loses it (the stall *is* the
        # missed deadline).  The calibrated latency tail is within spec.
        if overhead_s <= cfg.watchdog_timeout_s:
            self.health.beat("perception", now_s)
            self.health.beat("planning", now_s)
        command = plan.command
        if cfg.degradation_enabled:
            command = self.degradation.shape_command(
                command, self.state.speed_mps
            )
        # The command leaves the computing platform Tcomp after sensing.
        self._send_command(command, now_s + tcomp)

    def _reactive_tick(self, now_s: float) -> None:
        reading = self.harness.radar_reading(self._forward_distance_m(), now_s)
        if not self.harness.sensor_faulted("radar", now_s):
            self.health.beat("radar", now_s)
        decision = self.reactive.evaluate(
            reading, now_s, speed_mps=self.state.speed_mps
        )
        if decision.command is not None:
            # Reactive signals enter the ECU directly; the 30 ms reactive
            # latency already covers sensing + transport (Sec. IV).
            self._pending.append(
                _PendingCommand(
                    apply_at_s=self.actuator.ready_at(
                        decision.command.timestamp_s
                    ),
                    command=decision.command,
                )
            )
            if decision.triggered:
                self.ops.reactive_overrides += 1
            elif decision.held:
                self.ops.reactive_holds += 1

    # -- the loop ---------------------------------------------------------------

    def drive(self, duration_s: float) -> DriveResult:
        """Run the closed loop for *duration_s* of simulated time."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        cfg = self.config
        dt = cfg.sim_dt_s
        control_period = 1.0 / cfg.control_rate_hz
        reactive_period = 1.0 / cfg.reactive_rate_hz
        next_control = 0.0
        next_reactive = 0.0
        now = 0.0
        min_clearance = float("inf")
        steps = int(round(duration_s / dt))
        for _ in range(steps):
            if now >= next_control:
                self._supervise(now)
                self._proactive_tick(now)
                next_control += control_period
            if cfg.reactive_enabled and now >= next_reactive:
                self._reactive_tick(now)
                next_reactive += reactive_period
            # Deliver commands whose actuation time has come.
            due = [p for p in self._pending if p.apply_at_s <= now]
            self._pending = [p for p in self._pending if p.apply_at_s > now]
            for pending in sorted(due, key=lambda p: p.apply_at_s):
                self.ecu.receive(pending.command)
            command = self.ecu.active_command(now) or ControlCommand()
            previous = self.state
            self.state = self.model.step(self.state, command, dt)
            self.world.advance(dt)
            self.ops.distance_m += math.hypot(
                self.state.x_m - previous.x_m, self.state.y_m - previous.y_m
            )
            self.ops.energy_j += (
                cfg.vehicle_power_w + cfg.ad_power_w
            ) * dt
            self.battery.drain(cfg.vehicle_power_w + cfg.ad_power_w, dt)
            for obstacle in self.world.obstacles:
                clearance = obstacle.distance_to(self.state.x_m, self.state.y_m)
                min_clearance = min(min_clearance, clearance)
                if clearance <= 0.0:
                    self.ops.collisions += 1
            now += dt
        self.ops.faults_injected = dict(self.harness.injections)
        self.ops.mode_ticks = dict(self.degradation.mode_ticks)
        # Flush the open residency segment (a drive ending mid-transition
        # would otherwise lose it and the fractions would not sum to 1).
        self.degradation.finalize(now)
        return DriveResult(
            final_state=self.state,
            ops=self.ops,
            latency=self.latency,
            min_obstacle_clearance_m=min_clearance,
            stopped=self.state.speed_mps < 0.05,
            health=self.health.report(elapsed_s=now),
            final_mode=self.degradation.mode.name,
            mode_residency=self.degradation.residency_fractions(),
        )


def obstacle_ahead_scenario(
    object_distance_m: float,
    computing_latency_s: Optional[float] = None,
    reactive_enabled: bool = True,
    initial_speed_mps: float = calibration.TYPICAL_SPEED_MPS,
    seed: int = 0,
    fault_scenario: Optional[FaultScenario] = None,
    degradation_enabled: bool = True,
) -> SystemsOnAVehicle:
    """The Eq. 1 validation scenario: a single-lane corridor with an
    obstacle that is *object_distance_m* ahead when the drive starts.

    With a single lane the planner cannot swerve; the run measures whether
    the vehicle stops in time — the closed-loop counterpart of Fig. 3a.
    An optional *fault_scenario* turns the same corridor into a safety
    drill (the fault-campaign study builds on this).
    """
    if object_distance_m <= 0:
        raise ValueError("object distance must be positive")
    world = World(
        obstacles=[Obstacle(object_distance_m, 0.0, radius_m=0.4)]
    )
    config = SovConfig(
        fixed_computing_latency_s=computing_latency_s,
        reactive_enabled=reactive_enabled,
        seed=seed,
        scenario=fault_scenario,
        degradation_enabled=degradation_enabled,
    )
    return SystemsOnAVehicle(
        world=world,
        lane_map=straight_corridor(length_m=300.0, n_lanes=1),
        initial_state=VehicleState(speed_mps=initial_speed_mps),
        config=config,
    )
