"""The SoV runtime: dataflow, pipelined scheduler, CAN bus, closed loop.

Fault injection, health monitoring, and the degradation supervisor the
closed loop consults live in :mod:`repro.robustness`.
"""

from .alp import AlpExecutor, AlpReport, paper_assignment, paper_devices, single_device_assignment
from .canbus import CanBus, CanMessage
from .dataflow import LatencyDistribution, SovDataflow, Task, paper_dataflow
from .sensor_hub import FpgaSensorHub
from .scheduler import FrameTiming, PipelinedExecutor, PipelineReport
from .shedding import LoadShedder, LoadShedPolicy, TickShed
from .sov import (
    DriveResult,
    SovConfig,
    SystemsOnAVehicle,
    obstacle_ahead_scenario,
)
from .telemetry import LatencyStats, OperationsLog

__all__ = [
    "AlpExecutor",
    "AlpReport",
    "CanBus",
    "CanMessage",
    "DriveResult",
    "FpgaSensorHub",
    "FrameTiming",
    "LatencyDistribution",
    "LatencyStats",
    "LoadShedder",
    "LoadShedPolicy",
    "OperationsLog",
    "PipelineReport",
    "PipelinedExecutor",
    "SovConfig",
    "SovDataflow",
    "SystemsOnAVehicle",
    "Task",
    "TickShed",
    "obstacle_ahead_scenario",
    "paper_assignment",
    "paper_devices",
    "single_device_assignment",
]
