"""Fault-aware load shedding for the SoV dataflow (paper Sec. III-C, IV).

When the health picture degrades, blindly restarting modules is not the
only lever: the scheduler can *shed* work so the surviving pipeline runs
leaner (the π-Edge argument — safety-critical tasks keep their budget by
taking it from deferrable ones).  The policy maps each degradation mode
to a per-tick scheduling decision:

* ``NOMINAL`` — nothing is shed; the pipeline runs exactly as calibrated.
* ``DEGRADED`` — KCF tracking is skipped every tick (radar tracking or
  coasted tracks stand in) and detection runs at a reduced cadence; on
  the off-cadence ticks the planner consumes the previous tick's
  perception output.
* ``REACTIVE_ONLY`` / ``SAFE_STOP`` — the proactive pipeline is bypassed
  entirely: no perception/planning work is scheduled, and the supervisor
  (guarded by the reactive path) drives.  Safety-critical commands are
  sent at CAN arbitration priority so they never queue behind backlogged
  proactive traffic.

Decisions are pure functions of ``(mode, tick_index)``: the shedder
consumes no randomness, so enabling it never perturbs the nominal
simulation, and a shed iteration is never slower than the un-shed one
(the latency samples are identical; shedding only zeroes terms).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from ..robustness.degradation import DegradationMode
from .canbus import CanBus

#: The proactive-pipeline tasks bypassed wholesale in REACTIVE_ONLY and
#: SAFE_STOP (everything downstream of the sensor interfaces).
PIPELINE_TASKS: Tuple[str, ...] = (
    "localization",
    "depth",
    "detection",
    "tracking",
    "planning",
)


@dataclass(frozen=True)
class LoadShedPolicy:
    """Which work each degradation mode sheds."""

    #: Tasks skipped on *every* DEGRADED tick (the KCF tracker first:
    #: cheap to drop, and radar tracking covers its role — Sec. IV).
    degraded_skip_tasks: Tuple[str, ...] = ("tracking",)
    #: Detection runs on one tick in this many while DEGRADED (cadence
    #: drop); 1 keeps detection at full rate.
    degraded_detection_period: int = 2
    #: Tasks governed by the detection cadence (the serialized chain).
    detection_chain: Tuple[str, ...] = ("detection", "tracking")
    #: Whether REACTIVE_ONLY / SAFE_STOP bypass the pipeline entirely.
    bypass_when_reactive: bool = True

    def __post_init__(self) -> None:
        if self.degraded_detection_period < 1:
            raise ValueError("detection period must be >= 1")


@dataclass(frozen=True)
class TickShed:
    """One control tick's scheduling decision."""

    #: Dataflow tasks whose latency is shed this tick.
    skip_tasks: FrozenSet[str] = frozenset()
    #: The whole proactive pipeline is bypassed (supervisor drives).
    bypass_pipeline: bool = False
    #: Perception may serve the previous tick's output (cadence drop).
    reuse_cached_perception: bool = False
    #: Arbitration id for this tick's outgoing command.
    can_arbitration_id: int = CanBus.PRIORITY_NORMAL

    @property
    def sheds_anything(self) -> bool:
        return bool(self.skip_tasks) or self.bypass_pipeline


class LoadShedder:
    """Maps (degradation mode, tick index) to a :class:`TickShed`."""

    def __init__(self, policy: Optional[LoadShedPolicy] = None) -> None:
        self.policy = policy or LoadShedPolicy()
        #: Shed-task counts keyed by mode name, mirrored into telemetry.
        self.sheds_by_mode: Dict[str, int] = {}

    def plan(self, mode: DegradationMode, tick_index: int) -> TickShed:
        policy = self.policy
        if mode is DegradationMode.NOMINAL:
            return TickShed()
        if mode is DegradationMode.DEGRADED:
            skip = set(policy.degraded_skip_tasks)
            off_cadence = (
                policy.degraded_detection_period > 1
                and tick_index % policy.degraded_detection_period != 0
            )
            if off_cadence:
                skip.update(policy.detection_chain)
            return TickShed(
                skip_tasks=frozenset(skip),
                reuse_cached_perception=off_cadence,
            )
        # REACTIVE_ONLY / SAFE_STOP: the supervisor drives; its commands
        # are safety-critical on the wire.
        return TickShed(
            skip_tasks=(
                frozenset(PIPELINE_TASKS)
                if policy.bypass_when_reactive
                else frozenset()
            ),
            bypass_pipeline=policy.bypass_when_reactive,
            can_arbitration_id=CanBus.PRIORITY_CRITICAL,
        )

    def account(self, mode: DegradationMode, shed: TickShed) -> None:
        """Tally one tick's sheds (the SoV mirrors this into telemetry)."""
        if shed.skip_tasks:
            self.sheds_by_mode[mode.name] = self.sheds_by_mode.get(
                mode.name, 0
            ) + len(shed.skip_tasks)

    @property
    def total_sheds(self) -> int:
        return sum(self.sheds_by_mode.values())
