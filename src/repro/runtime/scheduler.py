"""Pipelined execution of the SoV dataflow (paper Sec. IV).

"Sensing, perception, and planning are serialized; they are all on the
critical path of the end-to-end latency.  We pipeline the three modules to
improve the throughput, which is dictated by the slowest stage."

The scheduler replays many frames through the three-stage pipeline using
the standard pipeline recurrence: a frame starts in a stage when both the
frame's previous stage and the stage's previous frame have finished.  It
reports per-frame end-to-end latency (which pipelining does *not* reduce)
and sustained throughput (which it does).

Fault-aware scheduling: ``run`` optionally takes a degradation-mode
schedule and a :class:`~repro.runtime.shedding.LoadShedPolicy`; frames
processed in a degraded mode shed tasks (KCF tracking, detection cadence,
or the whole pipeline) exactly as the closed-loop SoV does, so the
executor can quantify what shedding buys: a shed frame is never slower
than its un-shed twin because the latency samples are identical and
shedding only zeroes terms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import calibration
from ..robustness.degradation import DegradationMode
from .dataflow import SovDataflow, paper_dataflow
from .shedding import LoadShedder, LoadShedPolicy
from .telemetry import LatencyStats


@dataclass(frozen=True)
class FrameTiming:
    """Per-stage timing of one frame through the pipeline."""

    frame_index: int
    arrival_s: float
    stage_start_s: Tuple[float, ...]
    stage_finish_s: Tuple[float, ...]

    @property
    def completion_s(self) -> float:
        return self.stage_finish_s[-1]

    @property
    def latency_s(self) -> float:
        """End-to-end latency including any pipeline queueing."""
        return self.completion_s - self.arrival_s

    @property
    def service_latency_s(self) -> float:
        """Pure processing latency (no queueing): sum of stage services."""
        return sum(
            f - s for s, f in zip(self.stage_start_s, self.stage_finish_s)
        )


@dataclass
class PipelineReport:
    """Result of a pipelined run."""

    timings: List[FrameTiming]
    stats: LatencyStats
    throughput_hz: float
    bottleneck_stage: str
    #: Shed-task counts per degradation mode (empty without a schedule).
    sheds_by_mode: Dict[str, int] = field(default_factory=dict)
    #: Frames processed with the proactive pipeline bypassed entirely.
    frames_bypassed: int = 0

    def meets_throughput_requirement(
        self, required_hz: float = calibration.THROUGHPUT_REQUIREMENT_HZ
    ) -> bool:
        return self.throughput_hz >= required_hz


class PipelinedExecutor:
    """Replays frames through sensing -> perception -> planning."""

    def __init__(
        self,
        dataflow: Optional[SovDataflow] = None,
        frame_rate_hz: float = 10.0,
        seed: int = 0,
    ) -> None:
        if frame_rate_hz <= 0:
            raise ValueError("frame rate must be positive")
        self.dataflow = dataflow or paper_dataflow()
        self.frame_rate_hz = frame_rate_hz
        self._rng = np.random.default_rng(seed)

    def run(
        self,
        n_frames: int,
        mode_schedule: Optional[Callable[[int], DegradationMode]] = None,
        shed_policy: Optional[LoadShedPolicy] = None,
        tracer=None,
    ) -> PipelineReport:
        """Replay *n_frames* through the pipeline.

        *mode_schedule* maps a frame index to the degradation mode the
        vehicle held when that frame arrived; frames in degraded modes
        shed work per *shed_policy* (fault-aware scheduling).  With no
        schedule every frame runs NOMINAL and the behaviour — including
        the RNG stream — is identical to the unscheduled executor.

        A :class:`~repro.observability.tracing.Tracer` passed as *tracer*
        records one span per (frame, stage) on ``pipe:<stage>`` tracks —
        the Fig. 6 pipeline occupancy picture, viewable in Perfetto.
        Stage occupancy is sequential per stage by the pipeline
        recurrence, so each track is overlap-free by construction.
        """
        if n_frames <= 0:
            raise ValueError("need at least one frame")
        shedder = LoadShedder(shed_policy)
        stages = SovDataflow.STAGES
        stats = LatencyStats()
        timings: List[FrameTiming] = []
        frames_bypassed = 0
        prev_finish = {stage: 0.0 for stage in stages}
        stage_busy = {stage: 0.0 for stage in stages}
        for k in range(n_frames):
            arrival = k / self.frame_rate_hz
            mode = (
                mode_schedule(k) if mode_schedule else DegradationMode.NOMINAL
            )
            shed = shedder.plan(mode, k)
            shedder.account(mode, shed)
            frames_bypassed += int(shed.bypass_pipeline)
            latencies, _total = self.dataflow.sample_iteration(
                self._rng, skip=shed.skip_tasks or None
            )
            services = {
                stage: self.dataflow.stage_latency(stage, latencies)
                for stage in stages
            }
            starts, finishes = [], []
            ready = arrival
            for stage in stages:
                start = max(ready, prev_finish[stage])
                finish = start + services[stage]
                prev_finish[stage] = finish
                stage_busy[stage] += services[stage]
                starts.append(start)
                finishes.append(finish)
                ready = finish
            timing = FrameTiming(
                frame_index=k,
                arrival_s=arrival,
                stage_start_s=tuple(starts),
                stage_finish_s=tuple(finishes),
            )
            timings.append(timing)
            stats.record(timing.service_latency_s, services)
            if tracer is not None:
                frame_trace = tracer.begin_frame(k, arrival)
                for stage, start, finish in zip(stages, starts, finishes):
                    tracer.record(
                        stage,
                        f"pipe:{stage}",
                        start,
                        finish,
                        frame=k,
                        mode=mode.name,
                    )
                frame_trace.total_latency_s = timing.latency_s
        makespan = timings[-1].completion_s - timings[0].arrival_s
        throughput = (n_frames - 1) / makespan if makespan > 0 else float("inf")
        bottleneck = max(stage_busy, key=lambda s: stage_busy[s])
        return PipelineReport(
            timings=timings,
            stats=stats,
            throughput_hz=throughput,
            bottleneck_stage=bottleneck,
            sheds_by_mode=dict(shedder.sheds_by_mode),
            frames_bypassed=frames_bypassed,
        )

    def serialized_throughput_hz(self, n_frames: int = 200) -> float:
        """Throughput if the three stages were NOT pipelined.

        One frame must fully complete before the next starts; the rate is
        1 / mean end-to-end latency — the baseline pipelining beats.
        """
        rng = np.random.default_rng(12345)
        totals = [
            self.dataflow.sample_iteration(rng)[1] for _ in range(n_frames)
        ]
        return 1.0 / float(np.mean(totals))
