"""Accelerator-level parallelism (ALP) execution model (paper Sec. VII).

"While the most common form of ALP today is found on a single chip ...
ALP in autonomous vehicles usually exists across multiple chips.  For
instance, in our current computing platform localization is accelerated
on an FPGA while depth estimation and object detection are accelerated by
a GPU."

This module executes the Fig. 5 dataflow on an explicit *device* model:
each task is assigned to a device; exclusive devices (CPU cores, fixed
FPGA blocks) serialize their tasks, shared devices (the GPU) co-run theirs
under the Fig. 8 contention model.  The report exposes what the stage-level
scheduler cannot: per-device utilization and the average number of
simultaneously-busy accelerators — the ALP the paper says future work
should exploit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..hw.contention import ContentionModel, gpu_contention_model
from .dataflow import SovDataflow, paper_dataflow


@dataclass(frozen=True)
class Device:
    """One execution venue."""

    name: str
    shared: bool = False  # shared devices co-run tasks under contention


def paper_devices() -> Dict[str, Device]:
    """The deployed platform's venues (Fig. 7).

    The Zynq's sensing pipeline (ISP + interfaces) and the localization
    accelerator are spatially separate fabric blocks, hence independent
    devices; the GPU is one shared device; planning and tracking live on
    CPU cores.
    """
    return {
        "fpga_sensing": Device("fpga_sensing"),
        "fpga_localization": Device("fpga_localization"),
        "gpu": Device("gpu", shared=True),
        "cpu": Device("cpu"),
    }


def paper_assignment() -> Dict[str, str]:
    """Task -> device, per Sec. V-B2."""
    return {
        "sensing": "fpga_sensing",
        "localization": "fpga_localization",
        "depth": "gpu",
        "detection": "gpu",
        "tracking": "cpu",
        "planning": "cpu",
    }


def single_device_assignment(device: str = "cpu") -> Dict[str, str]:
    """Everything on one venue — the no-ALP baseline."""
    return {task: device for task in paper_assignment()}


@dataclass(frozen=True)
class TaskExecution:
    """One task instance's schedule."""

    frame: int
    task: str
    device: str
    start_s: float
    finish_s: float


@dataclass
class AlpReport:
    """Result of an ALP execution run."""

    executions: List[TaskExecution]
    frame_latencies_s: List[float]
    throughput_hz: float
    device_utilization: Dict[str, float]
    alp_parallelism: float

    @property
    def mean_latency_s(self) -> float:
        return float(np.mean(self.frame_latencies_s))

    @property
    def bottleneck_device(self) -> str:
        return max(self.device_utilization, key=lambda d: self.device_utilization[d])


class AlpExecutor:
    """List-scheduler over devices with dataflow dependencies."""

    def __init__(
        self,
        dataflow: Optional[SovDataflow] = None,
        devices: Optional[Dict[str, Device]] = None,
        assignment: Optional[Mapping[str, str]] = None,
        contention: Optional[ContentionModel] = None,
        frame_rate_hz: float = 10.0,
        seed: int = 0,
    ) -> None:
        if frame_rate_hz <= 0:
            raise ValueError("frame rate must be positive")
        self.dataflow = dataflow or paper_dataflow()
        self.devices = devices or paper_devices()
        self.assignment = dict(assignment or paper_assignment())
        unknown_tasks = set(self.assignment) - set(self.dataflow.task_names)
        if unknown_tasks:
            raise ValueError(f"assignment names unknown tasks {unknown_tasks}")
        missing = set(self.dataflow.task_names) - set(self.assignment)
        if missing:
            raise ValueError(f"assignment misses tasks {missing}")
        for device in self.assignment.values():
            if device not in self.devices:
                raise ValueError(f"unknown device {device!r}")
        self.contention = contention or gpu_contention_model()
        self.frame_rate_hz = frame_rate_hz
        self._rng = np.random.default_rng(seed)

    def _contended_latency(
        self, task: str, base_s: float, co_resident: List[str]
    ) -> float:
        return self.contention.shared_latency_s(task, base_s, co_resident)

    def run(self, n_frames: int) -> AlpReport:
        if n_frames <= 0:
            raise ValueError("need at least one frame")
        import networkx as nx

        order = list(nx.topological_sort(self.dataflow._graph))
        device_free = {name: 0.0 for name in self.devices}
        executions: List[TaskExecution] = []
        frame_latencies: List[float] = []
        for k in range(n_frames):
            arrival = k / self.frame_rate_hz
            latencies, _ = self.dataflow.sample_iteration(self._rng)
            # Contention: tasks sharing a shared device slow each other.
            shared_groups: Dict[str, List[str]] = {}
            for task, device in self.assignment.items():
                if self.devices[device].shared:
                    shared_groups.setdefault(device, []).append(task)
            finish: Dict[str, float] = {}
            frame_execs: List[TaskExecution] = []
            # Shared devices co-run tasks *within* a frame but pipeline
            # across frames: this frame's group waits for the previous
            # frame's occupancy, captured before any updates below.
            free_at_frame_start = dict(device_free)
            for task in order:
                device_name = self.assignment[task]
                device = self.devices[device_name]
                duration = latencies[task]
                if device.shared:
                    co = [
                        t
                        for t in shared_groups.get(device_name, [])
                        if t != task
                    ]
                    duration = self._contended_latency(task, duration, co)
                deps_done = max(
                    (finish[d] for d in self.dataflow.dependencies(task)),
                    default=arrival,
                )
                if device.shared:
                    start = max(
                        deps_done, free_at_frame_start[device_name], arrival
                    )
                else:
                    start = max(deps_done, device_free[device_name], arrival)
                end = start + duration
                finish[task] = end
                if not device.shared:
                    device_free[device_name] = end
                frame_execs.append(
                    TaskExecution(k, task, device_name, start, end)
                )
            # Shared devices free when their last co-runner finishes.
            for device_name, tasks in shared_groups.items():
                device_free[device_name] = max(
                    e.finish_s
                    for e in frame_execs
                    if e.device == device_name
                )
            executions.extend(frame_execs)
            frame_latencies.append(max(finish.values()) - arrival)
        makespan = max(e.finish_s for e in executions)
        utilization = self._utilization(executions, makespan)
        parallelism = self._parallelism(executions, makespan)
        throughput = (
            (n_frames - 1)
            / (executions[-1].finish_s - frame_latencies[0])
            if n_frames > 1
            else float("inf")
        )
        return AlpReport(
            executions=executions,
            frame_latencies_s=frame_latencies,
            throughput_hz=throughput,
            device_utilization=utilization,
            alp_parallelism=parallelism,
        )

    @staticmethod
    def _utilization(
        executions: List[TaskExecution], makespan: float
    ) -> Dict[str, float]:
        """Busy-time union per device over the makespan."""
        by_device: Dict[str, List[Tuple[float, float]]] = {}
        for execution in executions:
            by_device.setdefault(execution.device, []).append(
                (execution.start_s, execution.finish_s)
            )
        utilization = {}
        for device, intervals in by_device.items():
            intervals.sort()
            busy = 0.0
            current_start, current_end = intervals[0]
            for start, end in intervals[1:]:
                if start > current_end:
                    busy += current_end - current_start
                    current_start, current_end = start, end
                else:
                    current_end = max(current_end, end)
            busy += current_end - current_start
            utilization[device] = busy / makespan if makespan > 0 else 0.0
        return utilization

    @staticmethod
    def _parallelism(
        executions: List[TaskExecution], makespan: float
    ) -> float:
        """Average number of simultaneously busy devices.

        Computed as total busy device-time (union per device) divided by
        the makespan — the effective ALP the platform achieves.
        """
        if makespan <= 0:
            return 0.0
        utilization = AlpExecutor._utilization(executions, makespan)
        return float(sum(utilization.values()))
