"""Controller Area Network (CAN) bus model (paper Fig. 2, Fig. 7).

Control commands travel from the computing platform to the ECU over the
CAN bus with ~1 ms latency (``Tdata``).  The model is a delay queue with a
frame-size-based serialization time on a classic 500 kbit/s bus, so
``Tdata`` emerges from bus physics rather than being a bare constant —
and contention from chatty senders is observable.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from ..core import calibration


@dataclass(frozen=True)
class CanMessage:
    """One CAN frame."""

    payload: Any
    sent_at_s: float
    deliver_at_s: float
    arbitration_id: int = 0

    @property
    def latency_s(self) -> float:
        return self.deliver_at_s - self.sent_at_s


class CanBus:
    """A serialized delay queue at CAN bit rates.

    A classic CAN 2.0 frame with an 8-byte payload is ~111 bits of wire
    time plus stuffing; at 500 kbit/s that is ~0.25 ms.  The remaining
    fixed latency models controller queuing/driver overheads, bringing
    the nominal total to the paper's ~1 ms.
    """

    FRAME_BITS = 111

    def __init__(
        self,
        bit_rate_bps: float = 500_000.0,
        fixed_overhead_s: float = None,
    ) -> None:
        if bit_rate_bps <= 0:
            raise ValueError("bit rate must be positive")
        self.bit_rate_bps = bit_rate_bps
        wire_time = self.FRAME_BITS / bit_rate_bps
        if fixed_overhead_s is None:
            fixed_overhead_s = calibration.CAN_BUS_LATENCY_S - wire_time
        if fixed_overhead_s < 0:
            raise ValueError("fixed overhead must be non-negative")
        self.fixed_overhead_s = fixed_overhead_s
        self._queue: List[Tuple[float, int, CanMessage]] = []
        self._bus_free_at_s = 0.0
        self._sequence = 0

    @property
    def frame_time_s(self) -> float:
        return self.FRAME_BITS / self.bit_rate_bps

    def nominal_latency_s(self) -> float:
        return self.frame_time_s + self.fixed_overhead_s

    def send(self, payload: Any, now_s: float, arbitration_id: int = 0) -> CanMessage:
        """Queue a frame; delivery accounts for bus serialization."""
        start = max(now_s, self._bus_free_at_s)
        finish = start + self.frame_time_s
        self._bus_free_at_s = finish
        message = CanMessage(
            payload=payload,
            sent_at_s=now_s,
            deliver_at_s=finish + self.fixed_overhead_s,
            arbitration_id=arbitration_id,
        )
        heapq.heappush(self._queue, (message.deliver_at_s, self._sequence, message))
        self._sequence += 1
        return message

    def deliver_due(self, now_s: float) -> List[CanMessage]:
        """Pop every message whose delivery time has arrived."""
        delivered = []
        while self._queue and self._queue[0][0] <= now_s:
            delivered.append(heapq.heappop(self._queue)[2])
        return delivered

    @property
    def pending(self) -> int:
        return len(self._queue)
