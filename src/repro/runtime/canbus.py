"""Controller Area Network (CAN) bus model (paper Fig. 2, Fig. 7).

Control commands travel from the computing platform to the ECU over the
CAN bus with ~1 ms latency (``Tdata``).  The model is a delay queue with a
frame-size-based serialization time on a classic 500 kbit/s bus, so
``Tdata`` emerges from bus physics rather than being a bare constant —
and contention from chatty senders is observable.

Fault injection (:class:`repro.robustness.faults.CanBusFault`) layers
frame loss and delay bursts on top: a lost frame still occupies the wire
(it is corrupted and dropped after serialization), so loss under
contention delays the survivors too.

Arbitration-aware priority (fault-aware scheduling): CAN arbitration is
id-ordered — the lowest arbitration id on the wire wins the bus.  A frame
sent with an id below :data:`CanBus.PRIORITY_NORMAL` (e.g. a reactive or
degradation-supervisor brake command) waits only for the frame currently
being transmitted, not for the whole queued backlog; the preempted backlog
pays the displaced wire time instead.  Commitments already made are never
rewritten — preemption only changes where *new* frames slot in — which
keeps the model causal at the cost of a one-frame overlap approximation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, List, Optional, Tuple

import numpy as np

from ..core import calibration

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..robustness.faults import CanBusFault


@dataclass(frozen=True)
class CanMessage:
    """One CAN frame."""

    payload: Any
    sent_at_s: float
    deliver_at_s: float
    arbitration_id: int = 0
    #: True when fault injection corrupted the frame: it occupied the bus
    #: but never reaches the receiver.
    dropped: bool = False

    @property
    def latency_s(self) -> float:
        return self.deliver_at_s - self.sent_at_s


class CanBus:
    """A serialized delay queue at CAN bit rates.

    A classic CAN 2.0 frame with an 8-byte payload is ~111 bits of wire
    time plus stuffing; at 500 kbit/s that is ~0.25 ms.  The remaining
    fixed latency models controller queuing/driver overheads, bringing
    the nominal total to the paper's ~1 ms.
    """

    FRAME_BITS = 111
    #: Arbitration id of safety-critical traffic (reactive / supervisor
    #: brake commands): wins arbitration against everything below it.
    PRIORITY_CRITICAL = 0x010
    #: Arbitration id of ordinary proactive-pipeline traffic.  Ids >= this
    #: queue behind the full backlog; ids < this preempt the backlog.
    PRIORITY_NORMAL = 0x100

    def __init__(
        self,
        bit_rate_bps: float = 500_000.0,
        fixed_overhead_s: Optional[float] = None,
    ) -> None:
        if bit_rate_bps <= 0:
            raise ValueError("bit rate must be positive")
        self.bit_rate_bps = bit_rate_bps
        wire_time = self.FRAME_BITS / bit_rate_bps
        if fixed_overhead_s is None:
            fixed_overhead_s = calibration.CAN_BUS_LATENCY_S - wire_time
        if fixed_overhead_s < 0:
            raise ValueError("fixed overhead must be non-negative")
        self.fixed_overhead_s = fixed_overhead_s
        self._queue: List[Tuple[float, int, CanMessage]] = []
        self._bus_free_at_s = 0.0
        self._sequence = 0
        self._fault: Optional["CanBusFault"] = None
        self._fault_rng: Optional[np.random.Generator] = None
        self.frames_sent = 0
        self.frames_dropped = 0
        #: Recent wire commitments (start_s, end_s), trimmed as they age
        #: out; used to find the frame occupying the wire at an instant.
        self._wire_slots: List[Tuple[float, float]] = []
        #: Critical frames that jumped a non-empty backlog.
        self.priority_preemptions = 0
        #: Optional span tracer (duck-typed; set by the SoV).  Each frame
        #: records its wire slot, which is serialized by construction —
        #: the only repeat is the preemption one-frame overlap, rendered
        #: as two identical intervals.
        self.tracer = None

    @property
    def frame_time_s(self) -> float:
        return self.FRAME_BITS / self.bit_rate_bps

    def nominal_latency_s(self) -> float:
        return self.frame_time_s + self.fixed_overhead_s

    # -- fault injection -------------------------------------------------------

    def set_fault(
        self,
        fault: Optional["CanBusFault"],
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """Install (or clear) the active fault model for subsequent sends."""
        if fault is not None and rng is None and self._fault_rng is None:
            raise ValueError("a CAN fault needs an RNG for loss decisions")
        self._fault = fault
        if rng is not None:
            self._fault_rng = rng

    @property
    def fault_active(self) -> bool:
        return self._fault is not None

    # -- the wire --------------------------------------------------------------

    def _wire_busy_until(self, now_s: float) -> float:
        """When the frame physically on the wire at *now_s* finishes
        (``now_s`` itself when the wire is idle)."""
        for start, end in reversed(self._wire_slots):
            if start <= now_s < end:
                return end
        return now_s

    def send(
        self,
        payload: Any,
        now_s: float,
        arbitration_id: Optional[int] = None,
    ) -> CanMessage:
        """Queue a frame; delivery accounts for bus serialization.

        Frames with an arbitration id below :data:`PRIORITY_NORMAL` win
        arbitration against the queued backlog: they wait only for the
        frame currently on the wire, and the backlog absorbs the displaced
        frame time.  Under an active fault the frame may be corrupted
        (``dropped=True``, never delivered) or delayed; either way it
        occupies the wire.
        """
        if arbitration_id is None:
            arbitration_id = self.PRIORITY_NORMAL
        backlogged = self._bus_free_at_s > now_s + self.frame_time_s
        if arbitration_id < self.PRIORITY_NORMAL and backlogged:
            # Critical frame: next arbitration round after the current
            # transmission, ahead of every queued normal frame.  Future
            # normal traffic pays the displaced wire time.
            start = max(now_s, self._wire_busy_until(now_s))
            self._bus_free_at_s += self.frame_time_s
            self.priority_preemptions += 1
        else:
            start = max(now_s, self._bus_free_at_s)
            self._bus_free_at_s = start + self.frame_time_s
        finish = start + self.frame_time_s
        self._wire_slots.append((start, finish))
        if len(self._wire_slots) > 64:
            del self._wire_slots[:32]
        self.frames_sent += 1
        extra_delay = 0.0
        dropped = False
        if self._fault is not None:
            if (
                self._fault.loss_prob > 0.0
                and self._fault_rng.random() < self._fault.loss_prob
            ):
                dropped = True
            extra_delay = self._fault.extra_delay_s
        message = CanMessage(
            payload=payload,
            sent_at_s=now_s,
            deliver_at_s=finish + self.fixed_overhead_s + extra_delay,
            arbitration_id=arbitration_id,
            dropped=dropped,
        )
        if self.tracer is not None:
            self.tracer.record(
                "can_frame",
                "canbus",
                start,
                finish,
                arbitration_id=arbitration_id,
                dropped=dropped,
                latency_s=message.latency_s,
            )
        if dropped:
            self.frames_dropped += 1
        else:
            heapq.heappush(
                self._queue, (message.deliver_at_s, self._sequence, message)
            )
            self._sequence += 1
        return message

    def deliver_due(self, now_s: float) -> List[CanMessage]:
        """Pop every message whose delivery time has arrived."""
        delivered = []
        while self._queue and self._queue[0][0] <= now_s:
            delivered.append(heapq.heappop(self._queue)[2])
        return delivered

    @property
    def pending(self) -> int:
        return len(self._queue)

    @property
    def loss_rate(self) -> float:
        """Observed frame-loss fraction over the bus's lifetime."""
        if self.frames_sent == 0:
            return 0.0
        return self.frames_dropped / self.frames_sent
